package repro

import (
	"context"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestSteadyStateZeroAlloc gates the headline property of the hot-path
// work: the steady-state publish path — GetBuffer → Emit → drainTX →
// dispatch → shared-memory delivery → Consume → Release — performs zero
// heap allocations per message once the pools and topology snapshots are
// warm. A regression here fails `go test ./...`, not just a human
// reading benchstat. The run-to-completion subtest gates the synchronous
// variant of the same path (Emit delivers on the calling goroutine,
// DESIGN.md §11) at the same zero.
//
// testing.AllocsPerRun counts process-wide mallocs (all goroutines), so
// an allocation smuggled into the polling threads trips the gate too.
// The cluster is kernel-only and otherwise quiet for the same reason.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate measures the plain build")
	}
	t.Run("queued", func(t *testing.T) {
		gateZeroAlloc(t)
	})
	t.Run("run-to-completion", func(t *testing.T) {
		gateZeroAlloc(t, insane.WithRunToCompletion(true))
	})
}

func gateZeroAlloc(t *testing.T, opts ...insane.Option) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sess, err := cluster.Node("a").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts(opts...)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := st.CreateSink(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(1)
	if err != nil {
		t.Fatal(err)
	}

	// One deadline context reused across every op keeps ConsumeContext on
	// the pooled-timer path; a fresh context per op would allocate and
	// fail the gate for the wrong reason.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	op := func() {
		buf, err := src.GetBuffer(64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.Emit(buf, 64); err != nil {
			t.Fatal(err)
		}
		msg, err := sink.ConsumeContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(msg)
	}

	// Warm the wrapper pools, poller env caches, timer pool and topology
	// snapshots: first messages pay one-time costs by design.
	for i := 0; i < 500; i++ {
		op()
	}

	// Retry once: AllocsPerRun is precise about mallocs but shares the
	// process with the Go runtime itself (e.g. a background GC starting
	// mid-run can allocate), so a single nonzero reading gets one
	// re-check before it fails the build.
	var avg float64
	for attempt := 0; attempt < 2; attempt++ {
		avg = testing.AllocsPerRun(200, op)
		if avg == 0 {
			break
		}
	}
	if avg != 0 {
		t.Fatalf("steady-state publish path allocates: %.2f allocs/op, want 0", avg)
	}
	var assembled insane.Options
	for _, opt := range opts {
		opt(&assembled)
	}
	if assembled.RunToCompletion {
		// The gate must have measured the fast path, not a fallback.
		s := cluster.Node("a").Stats()
		if s.RTCDeliveries == 0 || s.RTCFallbacks != 0 {
			t.Errorf("RTC gate: deliveries=%d fallbacks=%d, want >0/0",
				s.RTCDeliveries, s.RTCFallbacks)
		}
	}
}
