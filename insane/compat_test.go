package insane_test

// Compatibility coverage for the deprecated API surface. The paper-shaped
// calls — CreateStream(Options), Consume(block) and ConsumeTimeout(d) —
// remain exported wrappers over CreateStreamOpts and ConsumeContext;
// every other caller in this repository uses the preferred forms, so
// these tests are the only sanctioned users of the old signatures.

import (
	"errors"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestDeprecatedCreateStream checks the struct-options constructor still
// builds the same stream as the functional-options path it wraps.
func TestDeprecatedCreateStreamMatchesOpts(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	sess, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	viaStruct, err := sess.CreateStream(insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		t.Fatal(err)
	}
	if viaStruct.Technology() != viaOpts.Technology() {
		t.Errorf("CreateStream mapped to %q, CreateStreamOpts to %q",
			viaStruct.Technology(), viaOpts.Technology())
	}
	if viaStruct.FellBack() != viaOpts.FellBack() {
		t.Error("CreateStream and CreateStreamOpts disagree on fallback")
	}
}

// TestDeprecatedConsume keeps the boolean-flag consume and the plain
// timeout consume working: ErrNoData on an empty non-blocking poll,
// ErrTimeout on an expired wait, data on a blocking wait.
func TestDeprecatedConsume(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{})
	sess, _ := c.Node("edge-1").InitSession()
	st, _ := sess.CreateStreamOpts()
	sink, _ := st.CreateSink(1, nil)
	// By-value comparisons: the hot path translates sentinels without
	// wrapping, so both errors.Is and == must hold.
	if _, err := sink.Consume(false); err != insane.ErrNoData || !errors.Is(err, insane.ErrNoData) {
		t.Errorf("empty non-blocking consume = %v, want ErrNoData by value", err)
	}
	if _, err := sink.ConsumeTimeout(5 * time.Millisecond); err != insane.ErrTimeout || !errors.Is(err, insane.ErrTimeout) {
		t.Errorf("timeout consume = %v, want ErrTimeout by value", err)
	}
	// Co-located delivery then blocking consume.
	src, _ := st.CreateSource(1)
	send(t, src, []byte("x"))
	m, err := sink.Consume(true)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Available() != 0 {
		t.Error("Available after drain != 0")
	}
	sink.Release(m)
	sink.Release(m) // double release is a no-op on a released message
}
