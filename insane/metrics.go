package insane

import (
	"time"

	"github.com/insane-mw/insane/internal/telemetry"
)

// LatencyStats summarizes one per-stage latency histogram of a node.
// Quantiles are upper bounds from a log-linear histogram with at most
// ~12% relative error per bucket.
type LatencyStats struct {
	// Count is how many messages were observed.
	Count uint64
	// Mean is the arithmetic mean latency.
	Mean time.Duration
	// P50, P90, P99, P999 are latency quantile upper bounds; P999 is the
	// tail the timing-isolation guarantee (§12) is stated against.
	P50, P90, P99, P999 time.Duration
	// Max is an upper bound of the largest observation.
	Max time.Duration
}

// DistStats summarizes a dimensionless distribution (queue occupancies,
// batch sizes).
type DistStats struct {
	Count         uint64
	Mean          float64
	P50, P99, Max uint64
}

// MempoolClass is one slot size class of the node's memory manager.
type MempoolClass struct {
	// SlotSize is the usable bytes per slot.
	SlotSize int
	// Capacity and Free are the configured and currently free slot
	// counts.
	Capacity, Free int
}

// MempoolMetrics reports the memory manager's activity: Gets/Failures
// mirror the hit/miss behaviour of the zero-copy pools, and exhaustion
// (Failures) is the backpressure signal of the slot-recycling design.
type MempoolMetrics struct {
	Gets, Failures, Releases uint64
	Classes                  []MempoolClass
}

// EnvCacheMetrics reports the pollers' packet-envelope free lists
// (hit/refill/miss/recycle/drop), the runtime-internal analogue of a
// DPDK mempool cache.
type EnvCacheMetrics struct {
	Hits, Refills, Misses, Recycles, Drops uint64
}

// Metrics is a typed snapshot of one node's runtime telemetry: every
// pipeline-stage counter and latency histogram the runtime maintains,
// aggregated over its per-poller shards. Prefer it over parsing the
// Prometheus endpoint when consuming metrics programmatically.
type Metrics struct {
	// Node is the node name the snapshot was taken from.
	Node string

	// Emit admission.
	Emits, EmitBytes, EmitBackpressure uint64
	// Scheduler and datapath dispatch.
	SchedEnqueues, Dispatches uint64
	// NIC and shared-memory traffic.
	TxMessages, RxMessages, LocalDeliveries uint64
	// Run-to-completion fast path (DESIGN.md §11): deliveries made
	// synchronously on the emitting goroutine, and emits on RTC-enabled
	// streams that fell back to the queued path.
	RTCDeliveries, RTCFallbacks uint64
	// Drop and degradation counters.
	DroppedNoSink, DroppedBackpressure, TechDowngrades uint64
	// Consume side.
	Consumes, ConsumeBytes uint64

	// Per-stage latency distributions (virtual time, Fig. 6).
	SchedDwell      LatencyStats
	DeliverLatency  LatencyStats
	ConsumeLatency  LatencyStats
	StageSend       LatencyStats
	StageNetwork    LatencyStats
	StageRecv       LatencyStats
	StageProcessing LatencyStats

	// RTCDeliver is the charged cost of a run-to-completion delivery
	// (RTC hop plus per-sink delivery cost).
	RTCDeliver LatencyStats

	// Occupancy distributions.
	TxRingOccupancy DistStats
	DispatchBatch   DistStats

	Mempool  MempoolMetrics
	EnvCache EnvCacheMetrics
	// SchedQueueDepth is the packets parked in the schedulers at
	// snapshot time.
	SchedQueueDepth uint64

	// Tenants holds the per-tenant view for nodes with declared tenants
	// (DESIGN.md §12); empty in single-tenant mode.
	Tenants []TenantMetrics
}

// TenantMetrics is one tenant's slice of a node's telemetry plus its
// quota gauges.
type TenantMetrics struct {
	// Tenant is the tenant the row describes.
	Tenant TenantID
	// Weight is the tenant's configured WDRR share.
	Weight int

	// Emit admission, as seen by this tenant's sessions.
	Emits, EmitBytes, EmitBackpressure uint64
	// QuotaRejects counts admissions refused by the tenant's own quotas
	// (slot budget or TX token cap).
	QuotaRejects uint64
	// Consume side.
	Consumes, ConsumeBytes uint64
	// DroppedBackpressure counts deliveries dropped on this tenant's
	// full sink rings.
	DroppedBackpressure uint64

	// ConsumeLatency is the end-to-end latency observed by this tenant's
	// sinks (P999 is the timing-isolation figure of merit).
	ConsumeLatency LatencyStats

	// MemUsed/MemLimit are the slot budget gauges (limit 0 = unlimited).
	MemUsed, MemLimit int64
	// TxInflight/TxLimit are the TX token gauges (limit 0 = unlimited).
	TxInflight, TxLimit int64
}

// latencyStats converts a histogram snapshot to the public summary.
func latencyStats(h *telemetry.HistSnapshot) LatencyStats {
	return LatencyStats{
		Count: h.Count,
		Mean:  time.Duration(h.Mean()),
		P50:   time.Duration(h.Quantile(0.50)),
		P90:   time.Duration(h.Quantile(0.90)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
		Max:   time.Duration(h.Max()),
	}
}

// distStats converts a dimensionless histogram snapshot.
func distStats(h *telemetry.HistSnapshot) DistStats {
	return DistStats{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Metrics merges the node's telemetry shards into a typed snapshot. It
// allocates and briefly locks scheduler queues: call it from monitoring
// or reporting code, not per message.
func (n *Node) Metrics() Metrics {
	s := n.rt.MetricsSnapshot()
	m := Metrics{
		Node:                n.name,
		Emits:               s.Counters[telemetry.CtrEmits],
		EmitBytes:           s.Counters[telemetry.CtrEmitBytes],
		EmitBackpressure:    s.Counters[telemetry.CtrEmitBackpressure],
		SchedEnqueues:       s.Counters[telemetry.CtrSchedEnqueues],
		Dispatches:          s.Counters[telemetry.CtrDispatches],
		TxMessages:          s.Counters[telemetry.CtrTxMessages],
		RxMessages:          s.Counters[telemetry.CtrRxMessages],
		LocalDeliveries:     s.Counters[telemetry.CtrLocalDeliveries],
		RTCDeliveries:       s.Counters[telemetry.CtrRTCDeliveries],
		RTCFallbacks:        s.Counters[telemetry.CtrRTCFallbacks],
		DroppedNoSink:       s.Counters[telemetry.CtrNoSinkDrops],
		DroppedBackpressure: s.Counters[telemetry.CtrRingFullDrops],
		TechDowngrades:      s.Counters[telemetry.CtrTechDowngrades],
		Consumes:            s.Counters[telemetry.CtrConsumes],
		ConsumeBytes:        s.Counters[telemetry.CtrConsumeBytes],

		SchedDwell:      latencyStats(&s.Hists[telemetry.HistSchedDwell]),
		DeliverLatency:  latencyStats(&s.Hists[telemetry.HistDeliverLatency]),
		ConsumeLatency:  latencyStats(&s.Hists[telemetry.HistConsumeLatency]),
		StageSend:       latencyStats(&s.Hists[telemetry.HistStageSend]),
		StageNetwork:    latencyStats(&s.Hists[telemetry.HistStageNetwork]),
		StageRecv:       latencyStats(&s.Hists[telemetry.HistStageRecv]),
		StageProcessing: latencyStats(&s.Hists[telemetry.HistStageProcessing]),
		RTCDeliver:      latencyStats(&s.Hists[telemetry.HistRTCDeliver]),

		TxRingOccupancy: distStats(&s.Hists[telemetry.HistTxRingOccupancy]),
		DispatchBatch:   distStats(&s.Hists[telemetry.HistDispatchBatch]),

		Mempool: MempoolMetrics{
			Gets:     s.Mempool.Gets,
			Failures: s.Mempool.Failures,
			Releases: s.Mempool.Releases,
		},
		EnvCache: EnvCacheMetrics{
			Hits:     s.EnvCache.Hits,
			Refills:  s.EnvCache.Refills,
			Misses:   s.EnvCache.Misses,
			Recycles: s.EnvCache.Recycles,
			Drops:    s.EnvCache.Drops,
		},
		SchedQueueDepth: s.SchedQueueDepth,
	}
	for i, size := range s.Mempool.SlotSizes {
		m.Mempool.Classes = append(m.Mempool.Classes, MempoolClass{
			SlotSize: size,
			Capacity: s.Mempool.CapSlots[i],
			Free:     s.Mempool.FreeSlots[i],
		})
	}
	for _, ts := range n.rt.TenantSnapshots() {
		m.Tenants = append(m.Tenants, TenantMetrics{
			Tenant:              TenantID(ts.Tenant),
			Weight:              ts.Weight,
			Emits:               ts.Snap.Counters[telemetry.CtrEmits],
			EmitBytes:           ts.Snap.Counters[telemetry.CtrEmitBytes],
			EmitBackpressure:    ts.Snap.Counters[telemetry.CtrEmitBackpressure],
			QuotaRejects:        ts.Snap.Counters[telemetry.CtrTenantQuotaRejects],
			Consumes:            ts.Snap.Counters[telemetry.CtrConsumes],
			ConsumeBytes:        ts.Snap.Counters[telemetry.CtrConsumeBytes],
			DroppedBackpressure: ts.Snap.Counters[telemetry.CtrRingFullDrops],
			ConsumeLatency:      latencyStats(&ts.Snap.Hists[telemetry.HistConsumeLatency]),
			MemUsed:             ts.MemUsed,
			MemLimit:            ts.MemLimit,
			TxInflight:          ts.Inflight,
			TxLimit:             ts.InflightLimit,
		})
	}
	return m
}
