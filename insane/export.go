package insane

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"

	"github.com/insane-mw/insane/internal/telemetry"
)

// serveMetrics binds the cluster's debug HTTP endpoint: Prometheus text
// at /metrics, runtime profiles under /debug/pprof/.
func (c *Cluster) serveMetrics(addr string) error {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	c.metricsLn = ln
	c.metricsSrv = &http.Server{Handler: mux}
	c.metricsDone = make(chan struct{})
	//insane:goroutine owner=Cluster stop=Close
	go func(srv *http.Server, ln net.Listener, done chan struct{}) {
		defer close(done)
		_ = srv.Serve(ln)
	}(c.metricsSrv, ln, c.metricsDone)
	return nil
}

// MetricsAddr reports the bound address of the metrics endpoint, or ""
// when ClusterOptions.MetricsAddr was not set. With an ephemeral-port
// request ("127.0.0.1:0") this is how callers learn the actual port.
func (c *Cluster) MetricsAddr() string {
	if c.metricsLn == nil {
		return ""
	}
	return c.metricsLn.Addr().String()
}

// handleMetrics renders every node's merged telemetry snapshot in the
// Prometheus text exposition format, one node="..." label per node.
func (c *Cluster) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snaps := make([]telemetry.NodeSnapshot, 0, len(c.order))
	for _, name := range c.order {
		n := c.nodes[name]
		snaps = append(snaps, telemetry.NodeSnapshot{
			Node:    n.name,
			Snap:    n.rt.MetricsSnapshot(),
			Tenants: n.rt.TenantSnapshots(),
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WriteProm(w, snaps)
}
