package insane_test

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestWireJitterSpreadsLatencies: with WireJitter set, repeated deliveries
// show a latency distribution instead of a single deterministic value —
// what the paper's box-plot whiskers depict.
func TestWireJitterSpreadsLatencies(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:      []insane.NodeSpec{{Name: "a"}, {Name: "b"}},
		WireJitter: 300 * time.Nanosecond,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sessA, _ := c.Node("a").InitSession()
	sessB, _ := c.Node("b").InitSession()
	stA, _ := sessA.CreateStreamOpts()
	stB, _ := sessB.CreateStreamOpts()
	sink, _ := stB.CreateSink(1, nil)
	waitSubs(t, c.Node("a"), 1, 1)
	src, _ := stA.CreateSource(1)

	distinct := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		send(t, src, []byte{byte(i)})
		m, err := consumeWithin(sink, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		distinct[m.Latency] = true
		sink.Release(m)
	}
	if len(distinct) < 10 {
		t.Errorf("jittered latencies collapsed to %d distinct values", len(distinct))
	}
}

// TestCustomMapper exercises the user-configured mapping strategy of
// §5.2 through the public API.
func TestCustomMapper(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "a", DPDK: true, XDP: true, RDMA: true},
			{Name: "b", DPDK: true, XDP: true, RDMA: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, _ := c.Node("a").InitSession()

	// A strategy that always prefers XDP, against the default's RDMA.
	st, err := sess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithMapper(func(available []string) string {
			for _, name := range available {
				if name == "xdp" {
					return name
				}
			}
			return ""
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Technology() != "xdp" || st.FellBack() {
		t.Errorf("custom mapper ignored: %s (fallback=%v)", st.Technology(), st.FellBack())
	}

	// Returning "" delegates to the default strategy.
	st2, _ := sess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithMapper(func([]string) string { return "" }),
	)
	if st2.Technology() != "rdma" {
		t.Errorf("delegating mapper broke default: %s", st2.Technology())
	}

	// An unknown name degrades to the default, best effort.
	st3, _ := sess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithMapper(func([]string) string { return "quantum-nic" }),
	)
	if st3.Technology() != "rdma" {
		t.Errorf("unknown pick broke default: %s", st3.Technology())
	}

	// Deliberately picking the kernel for a fast stream is a fallback.
	st4, _ := sess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithMapper(func([]string) string { return "kernel-udp" }),
	)
	if st4.Technology() != "kernel-udp" || !st4.FellBack() {
		t.Errorf("kernel pick: %s fallback=%v, want kernel-udp true", st4.Technology(), st4.FellBack())
	}
}
