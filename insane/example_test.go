package insane_test

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
)

// Example shows the complete send/receive cycle of the INSANE API: QoS
// options instead of sockets, zero-copy buffers instead of writes.
func Example() {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "edge-1", DPDK: true},
			{Name: "edge-2", DPDK: true},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	rx, _ := cluster.Node("edge-2").InitSession()
	defer rx.Close()
	rxStream, _ := rx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	sink, _ := rxStream.CreateSink(7, nil)

	tx, _ := cluster.Node("edge-1").InitSession()
	defer tx.Close()
	txStream, _ := tx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	fmt.Println("technology:", txStream.Technology())

	for cluster.Node("edge-1").SubscriberCount(7) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	src, _ := txStream.CreateSource(7)
	buf, _ := src.GetBuffer(32)
	n := copy(buf.Payload, "hello edge")
	src.Emit(buf, n)

	msg, _ := consumeWithin(sink, 2*time.Second)
	fmt.Printf("received: %s\n", msg.Payload)
	sink.Release(msg)
	// Output:
	// technology: dpdk
	// received: hello edge
}

// ExampleOptions demonstrates the QoS mapping: the same Fast request maps
// to different technologies depending on the node's hardware, falling
// back to the kernel (with a warning) when nothing accelerated exists.
func ExampleOptions() {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "rich", DPDK: true, XDP: true, RDMA: true},
			{Name: "frugal", DPDK: true, XDP: true},
			{Name: "bare"},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	show := func(node string, opts ...insane.Option) {
		sess, _ := cluster.Node(node).InitSession()
		defer sess.Close()
		st, _ := sess.CreateStreamOpts(opts...)
		fmt.Printf("%s: %s (fallback=%v)\n", node, st.Technology(), st.FellBack())
	}
	show("rich", insane.WithDatapath(insane.Fast))
	show("frugal", insane.WithDatapath(insane.Fast))
	show("frugal", insane.WithDatapath(insane.Fast), insane.WithResources(insane.Frugal))
	show("bare", insane.WithDatapath(insane.Fast))
	// Output:
	// rich: rdma (fallback=false)
	// frugal: dpdk (fallback=false)
	// frugal: xdp (fallback=false)
	// bare: kernel-udp (fallback=true)
}
