package insane

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/core"
	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/qos"
)

// Datapath is the acceleration QoS policy of a stream (§5.2).
type Datapath int

// Acceleration levels: Slow maps to kernel networking, Fast requests an
// accelerated technology.
const (
	Slow Datapath = iota
	Fast
)

// Resources is the resource-consumption QoS policy.
type Resources int

// Resource-consumption levels: WhateverItTakes permits busy-polling
// technologies like DPDK; Frugal avoids dedicating spinning cores.
const (
	WhateverItTakes Resources = iota
	Frugal
)

// Timing is the time-sensitiveness QoS policy.
type Timing int

// Time-sensitiveness levels: BestEffort uses the FIFO scheduler;
// TimeSensitive uses the IEEE 802.1Qbv time-aware scheduler.
const (
	BestEffort Timing = iota
	TimeSensitive
)

// Options is the QoS requirement set of a stream (create_stream).
type Options struct {
	Datapath  Datapath
	Resources Resources
	Timing    Timing
	// Class is the 802.1Qbv traffic class (0-7) of time-sensitive
	// streams; higher is more critical.
	Class uint8
	// Mapper overrides the default mapping strategy (§5.2: streams map
	// "according to a user-configured mapping strategy"). It receives
	// the technology names available on the node (as in
	// Node.Technologies()) and must return one of them; returning ""
	// delegates back to the default strategy.
	Mapper func(available []string) string
	// DisableTelemetry opts the stream's messages out of the per-stage
	// latency histograms (Node.Metrics, /metrics); throughput counters
	// always run. See WithTelemetry.
	DisableTelemetry bool
	// RunToCompletion opts the stream's sources into the synchronous
	// local fast path (DESIGN.md §11): when every subscriber of the
	// emitted channel is local, the fanout is small, and the stream's
	// TSN gate (if any) is open, Emit delivers straight into the sink
	// rings on the calling goroutine instead of queueing for a polling
	// thread. Emits that fail a precondition silently take the queued
	// path. Requires the application's single-goroutine-per-source emit
	// discipline (already the Source contract). See WithRunToCompletion.
	RunToCompletion bool
}

// toQoS converts the public options to the internal policy type.
func (o Options) toQoS() qos.Options {
	out := qos.Options{
		Class:           o.Class,
		NoTelemetry:     o.DisableTelemetry,
		RunToCompletion: o.RunToCompletion,
	}
	if o.Mapper != nil {
		userPick := o.Mapper
		out.Mapper = func(inner qos.Options, caps datapath.Caps) (model.Tech, bool) {
			names := make([]string, 0, 4)
			for _, tech := range caps.List() {
				names = append(names, tech.String())
			}
			pick := userPick(names)
			if pick == "" {
				return qos.DefaultMap(inner, caps)
			}
			for _, tech := range caps.List() {
				if tech.String() == pick {
					// The hint was honored only if it matches the
					// acceleration request; picking the kernel for a
					// fast stream is still a (deliberate) fallback.
					fb := inner.Datapath == qos.DatapathFast && tech == model.TechKernelUDP
					return tech, fb
				}
			}
			// Unknown name: best-effort default, like any other hint.
			return qos.DefaultMap(inner, caps)
		}
	}
	if o.Datapath == Fast {
		out.Datapath = qos.DatapathFast
	} else {
		out.Datapath = qos.DatapathSlow
	}
	if o.Resources == Frugal {
		out.Resources = qos.ResourcesConstrained
	} else {
		out.Resources = qos.ResourcesUnconstrained
	}
	if o.Timing == TimeSensitive {
		out.Timing = qos.TimingSensitive
	} else {
		out.Timing = qos.TimingBestEffort
	}
	return out
}

// Session is an application's connection to the local INSANE runtime
// (init_session / close_session).
//
//insane:shared
type Session struct {
	conn   *core.ClientConn //insane:guardedby immutable after=InitSession
	closed atomic.Bool      //insane:guardedby atomic

	mu    sync.Mutex
	sinks []*Sink //insane:guardedby mu=mu
}

// InitSession opens a session with the node's runtime. Options bind the
// session to a tenant (WithTenant); with none it runs under the default
// tenant, exactly as before options existed.
func (n *Node) InitSession(opts ...SessionOption) (*Session, error) {
	var sc sessionConfig
	for _, opt := range opts {
		opt(&sc)
	}
	conn, err := n.rt.ConnectTenant(string(sc.tenant))
	if err != nil {
		return nil, publicErr(err)
	}
	return &Session{conn: conn}, nil
}

// Tenant returns the tenant the session is bound to ("" = default).
func (s *Session) Tenant() TenantID { return TenantID(s.conn.Tenant()) }

// Close ends the session: every stream, source and sink opened through it
// is closed and all borrowed memory returns to the runtime. Close is
// idempotent — repeated calls return nil without re-flushing.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	sinks := s.sinks
	s.sinks = nil
	s.mu.Unlock()
	for _, k := range sinks {
		k.stopDispatch()
	}
	return publicErr(s.conn.Close())
}

// CreateStream opens a stream with the given QoS options; the runtime
// maps it to the most appropriate technology available on this node.
//
// Deprecated: use CreateStreamOpts with functional options (WithOptions
// wraps an existing Options struct); this signature remains for the
// paper's create_stream(options) shape.
func (s *Session) CreateStream(opts Options) (*Stream, error) {
	return s.CreateStreamOpts(WithOptions(opts))
}

// Stream is an open stream: a set of quality requirements shared by its
// channels (Fig. 1).
//
//insane:shared
type Stream struct {
	sess *Session           //insane:guardedby immutable after=CreateStreamOpts
	h    *core.StreamHandle //insane:guardedby immutable after=CreateStreamOpts
}

// Technology names the network technology the stream was mapped to.
func (st *Stream) Technology() string { return st.h.Tech().String() }

// FellBack reports that acceleration was requested but unavailable, so
// the stream runs on the kernel stack (the §5.2 warning).
func (st *Stream) FellBack() bool { return st.h.FellBack() }

// Close closes the stream (close_stream).
func (st *Stream) Close() { st.h.Close() }

// CreateSource opens a data producer on a channel (create_source).
func (st *Stream) CreateSource(channel int) (*Source, error) {
	h, err := st.h.CreateSource(uint32(channel))
	if err != nil {
		return nil, publicErr(err)
	}
	return &Source{h: h}, nil
}

// DataCallback handles one delivery; the library releases the message
// when the callback returns, so callbacks must copy anything they keep.
type DataCallback func(m *Message)

// CreateSink opens a data consumer on a channel (create_sink). With a
// non-nil callback, the library dispatches every delivery to it from a
// dedicated goroutine; otherwise the application calls Consume.
func (st *Stream) CreateSink(channel int, cb DataCallback) (*Sink, error) {
	h, err := st.h.CreateSink(uint32(channel))
	if err != nil {
		return nil, publicErr(err)
	}
	k := &Sink{h: h}
	if cb != nil {
		k.stop = make(chan struct{})
		k.done = make(chan struct{})
		//insane:goroutine owner=Sink stop=Close
		go k.dispatch(cb)
	}
	st.sess.mu.Lock()
	st.sess.sinks = append(st.sess.sinks, k)
	st.sess.mu.Unlock()
	return k, nil
}

// Buffer is a zero-copy send buffer (get_buffer). Write the payload into
// Payload, then Emit; never touch the buffer afterwards.
type Buffer struct {
	// Payload is the writable application area.
	Payload []byte
	inner   *core.Buffer
}

// Wrapper free lists, mirroring the core layer's: the public Buffer and
// Message structs are recycled when ownership returns to the library
// (successful Emit / Abort / Release), which the API contract — never
// touch a buffer after Emit, a message after Release — makes safe.
var (
	bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

	messagePool = sync.Pool{New: func() any { return new(Message) }}
)

// Source is a data producer on one channel.
//
//insane:shared
type Source struct {
	h *core.SourceHandle //insane:guardedby immutable after=CreateSource
}

// Channel returns the source's channel id.
func (s *Source) Channel() int { return int(s.h.Channel()) }

// GetBuffer borrows a buffer able to hold size payload bytes from the
// runtime memory manager (get_buffer).
//
//insane:hotpath
//insane:acquire resource=mem-slot on=nilerr
func (s *Source) GetBuffer(size int) (*Buffer, error) {
	b, err := s.h.GetBuffer(size)
	if err != nil {
		return nil, publicErr(err)
	}
	out := bufferPool.Get().(*Buffer)
	*out = Buffer{Payload: b.Payload, inner: b}
	return out, nil
}

// Abort returns an unsent buffer to the pool.
//
//insane:hotpath
//insane:release resource=mem-slot
func (s *Source) Abort(b *Buffer) {
	if b != nil && b.inner != nil {
		s.h.Abort(b.inner)
		*b = Buffer{}
		bufferPool.Put(b)
	}
}

// AddProcessing charges application-level processing time to the
// message's virtual clock; layered middleware (e.g. Lunar MoM) uses it to
// account its own overhead in the latency figures.
func (b *Buffer) AddProcessing(d time.Duration) {
	b.inner.VTime = b.inner.VTime.Add(d)
	b.inner.Breakdown.Processing += d
}

// ContinueFrom seeds the buffer's virtual clock from a received message,
// so latency accounting accumulates across an echo (used by the
// ping-pong benchmarks).
func (b *Buffer) ContinueFrom(m *Message) {
	b.inner.VTime = m.d.VTime
	b.inner.Breakdown = m.d.Breakdown
}

// Emit hands the first n payload bytes to the runtime for asynchronous
// transmission (emit_data) and returns a token for EmitOutcome.
//
//insane:hotpath
//insane:transfer resource=mem-slot on=nilerr
func (s *Source) Emit(b *Buffer, n int) (uint32, error) {
	if b == nil || b.inner == nil {
		return 0, ErrBufferConsumed
	}
	seq, err := s.h.Emit(b.inner, n)
	if err == nil {
		// Ownership moved to the runtime; recycle the dead wrapper.
		*b = Buffer{}
		bufferPool.Put(b)
	}
	return seq, publicErr(err)
}

// Outcome reports the fate of an emitted message (check_emit_outcome).
type Outcome struct {
	// LocalSinks and RemotePeers count where the message went.
	LocalSinks, RemotePeers int
	// Err is non-nil if the send failed.
	Err error
}

// EmitOutcome retrieves the result of a past Emit, if available yet.
func (s *Source) EmitOutcome(token uint32) (Outcome, bool) {
	o, ok := s.h.Outcome(token)
	if !ok {
		return Outcome{}, false
	}
	return Outcome{LocalSinks: o.LocalSinks, RemotePeers: o.RemotePeers, Err: o.Err}, true
}

// Close closes the source (close_source).
func (s *Source) Close() { s.h.Close() }

// Message is one received delivery, borrowed zero-copy from the runtime
// pools (consume_data): Release it as soon as processing is done.
type Message struct {
	// Payload is a read-only view into the shared memory slot.
	Payload []byte
	// Channel is the channel the message arrived on.
	Channel int
	// Latency is the accumulated one-way virtual latency.
	Latency time.Duration
	d       *core.Delivery
}

// Breakdown splits the message latency into the Fig. 6 stages.
func (m *Message) Breakdown() (send, network, recv, processing time.Duration) {
	bd := m.d.Breakdown
	return bd.Send, bd.Network, bd.Recv, bd.Processing
}

// Stages is a message latency split by pipeline stage (Fig. 6): sender
// middleware, wire, receiver middleware, and application processing.
type Stages struct {
	Send, Network, Recv, Processing time.Duration
}

// Stages returns the latency breakdown as a struct, convenient to embed
// in higher-layer metadata (Lunar reports it per delivery).
func (m *Message) Stages() Stages {
	bd := m.d.Breakdown
	return Stages{Send: bd.Send, Network: bd.Network, Recv: bd.Recv, Processing: bd.Processing}
}

// Sink is a data consumer on one channel.
//
//insane:shared
type Sink struct {
	h *core.SinkHandle //insane:guardedby immutable after=CreateSink
	// stop/done are nil for callback-free sinks and never reassigned
	// after CreateSink; stopOnce makes closing stop exactly-once even
	// when Session.Close and Sink.Close race (both call stopDispatch).
	stop     chan struct{} //insane:guardedby immutable after=CreateSink
	done     chan struct{} //insane:guardedby immutable after=CreateSink
	stopOnce sync.Once
}

// Channel returns the sink's channel id.
func (k *Sink) Channel() int { return int(k.h.Channel()) }

// Available returns how many deliveries are queued (data_available).
func (k *Sink) Available() int { return k.h.Available() }

// ConsumeContext pops one delivery, waiting until data arrives, the
// context's deadline passes (the context error is returned), or the
// context is canceled. This is the preferred consumption call; Consume
// and ConsumeTimeout are retained as thin wrappers over the same
// primitive.
//
//insane:hotpath allow=block
//insane:acquire resource=mem-slot on=nilerr
func (k *Sink) ConsumeContext(ctx context.Context) (*Message, error) {
	var timeout time.Duration
	if deadline, ok := ctx.Deadline(); ok {
		timeout = time.Until(deadline)
		if timeout <= 0 {
			return nil, ctx.Err()
		}
	}
	d, err := k.h.ConsumeCancel(ctx.Done(), timeout)
	if err != nil {
		switch err {
		case core.ErrCanceled:
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, context.Canceled
		case core.ErrTimeout:
			// The timeout was derived from the context's deadline, so
			// hitting it is the context expiring — even if the internal
			// timer fired an instant before ctx.Err() flipped.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, context.DeadlineExceeded
		}
		return nil, publicErr(err)
	}
	return wrapDelivery(d), nil
}

// Consume pops one delivery. With block=false it returns ErrNoData
// immediately when the sink is empty; with block=true it waits.
//
// Deprecated: use ConsumeContext, which supports cancellation; Consume
// remains for the paper's boolean-flag consume_data signature.
//
//insane:hotpath allow=block
//insane:acquire resource=mem-slot on=nilerr
func (k *Sink) Consume(block bool) (*Message, error) {
	if !block {
		d, err := k.h.TryConsume()
		if err != nil {
			return nil, publicErr(err)
		}
		return wrapDelivery(d), nil
	}
	return k.ConsumeTimeout(0)
}

// ConsumeTimeout pops one delivery, waiting at most d (zero waits
// forever). Unlike ConsumeContext with a deadline it allocates nothing,
// so steady-state request/reply loops stay on the zero-allocation path.
//
// Deprecated: prefer ConsumeContext when cancellation matters more than
// the last allocation.
//
//insane:hotpath allow=block
//insane:acquire resource=mem-slot on=nilerr
func (k *Sink) ConsumeTimeout(d time.Duration) (*Message, error) {
	del, err := k.h.ConsumeCancel(nil, d)
	if err != nil {
		return nil, publicErr(err)
	}
	return wrapDelivery(del), nil
}

// Release returns a consumed message's memory to the runtime
// (release_buffer).
//
//insane:hotpath
//insane:release resource=mem-slot
func (k *Sink) Release(m *Message) {
	if m != nil && m.d != nil {
		k.h.Release(m.d)
		*m = Message{}
		messagePool.Put(m)
	}
}

// Close closes the sink (close_sink), stopping its callback dispatcher.
func (k *Sink) Close() {
	k.stopDispatch()
	k.h.Close()
}

// stopDispatch terminates the callback goroutine, if any. Safe for
// concurrent callers: Session.Close and Sink.Close may race here, and
// the old check-then-close (plus a k.stop = nil write) let two callers
// both observe an open channel and double-close it, or let one read
// stop while the other nil-ed it. sync.Once closes exactly once; both
// callers then park on done until the dispatcher drains.
func (k *Sink) stopDispatch() {
	if k.stop == nil {
		return
	}
	k.stopOnce.Do(func() { close(k.stop) })
	<-k.done
}

// dispatch is the callback pump: it waits on the sink's notification
// channel and hands every delivery to the callback, releasing the buffer
// afterwards.
func (k *Sink) dispatch(cb DataCallback) {
	defer close(k.done)
	for {
		d, err := k.h.TryConsume()
		if err == nil {
			m := wrapDelivery(d)
			cb(m)
			k.Release(m)
			continue
		}
		if !errors.Is(err, core.ErrNoData) {
			return // sink closed
		}
		select {
		case <-k.stop:
			return
		case <-k.h.Notify():
		}
	}
}

// wrapDelivery adapts a core delivery to the public Message.
func wrapDelivery(d *core.Delivery) *Message {
	m := messagePool.Get().(*Message)
	*m = Message{
		Payload: d.Payload,
		Channel: int(d.Channel),
		Latency: d.VTime.Duration(),
		d:       d,
	}
	return m
}
