package insane_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestMetricsConcurrentPublishers checks the merged telemetry snapshot
// against ground truth: N goroutines publish a known message count and
// the counters and histogram totals must account for every one.
func TestMetricsConcurrentPublishers(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	const (
		publishers = 4
		perPub     = 200
		channel    = 9
	)

	rx, err := c.Node("edge-2").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rxStream, err := rx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := rxStream.CreateSink(channel, nil)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	txStream, err := tx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, c.Node("edge-1"), channel, 1)

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		src, err := txStream.CreateSource(channel)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(src *insane.Source) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				for {
					b, err := src.GetBuffer(16)
					if errors.Is(err, insane.ErrNoBuffers) {
						time.Sleep(5 * time.Microsecond)
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					n := copy(b.Payload, "telemetry")
					if _, err := src.Emit(b, n); err != nil {
						if err == insane.ErrBackpressure {
							src.Abort(b)
							time.Sleep(5 * time.Microsecond)
							continue
						}
						t.Error(err)
						return
					}
					break
				}
			}
		}(src)
	}

	const total = publishers * perPub
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			m, err := consumeWithin(sink, 5*time.Second)
			if err != nil {
				t.Errorf("consume %d: %v", i, err)
				return
			}
			sink.Release(m)
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		t.FailNow()
	}

	mtx := c.Node("edge-1").Metrics()
	mrx := c.Node("edge-2").Metrics()
	if mtx.Emits != total {
		t.Errorf("edge-1 Emits = %d, want %d", mtx.Emits, total)
	}
	if mtx.SchedEnqueues != total || mtx.Dispatches != total {
		t.Errorf("edge-1 enqueues/dispatches = %d/%d, want %d", mtx.SchedEnqueues, mtx.Dispatches, total)
	}
	if mtx.TxMessages != total {
		t.Errorf("edge-1 TxMessages = %d, want %d", mtx.TxMessages, total)
	}
	if mrx.RxMessages != total {
		t.Errorf("edge-2 RxMessages = %d, want %d", mrx.RxMessages, total)
	}
	if mrx.Consumes != total {
		t.Errorf("edge-2 Consumes = %d, want %d", mrx.Consumes, total)
	}
	if got := mrx.ConsumeLatency.Count; got != total {
		t.Errorf("consume latency observations = %d, want %d", got, total)
	}
	if mrx.ConsumeLatency.P50 <= 0 || mrx.ConsumeLatency.Max < mrx.ConsumeLatency.P50 {
		t.Errorf("consume latency quantiles inconsistent: %+v", mrx.ConsumeLatency)
	}
	if mrx.StageNetwork.Count != total || mrx.StageRecv.Count != total {
		t.Errorf("stage histograms incomplete: net=%d recv=%d", mrx.StageNetwork.Count, mrx.StageRecv.Count)
	}
	if mtx.SchedDwell.Count != total {
		t.Errorf("sched dwell observations = %d, want %d", mtx.SchedDwell.Count, total)
	}
	if mtx.DispatchBatch.Count == 0 || mtx.DispatchBatch.Count > total {
		t.Errorf("dispatch batch count = %d, want 1..%d", mtx.DispatchBatch.Count, total)
	}
	if mtx.Mempool.Gets == 0 || len(mtx.Mempool.Classes) == 0 {
		t.Errorf("mempool metrics missing: %+v", mtx.Mempool)
	}
	for _, cl := range mtx.Mempool.Classes {
		if cl.Free > cl.Capacity {
			t.Errorf("class %d free %d > capacity %d", cl.SlotSize, cl.Free, cl.Capacity)
		}
	}
}

// TestMetricsTelemetryDisabled checks that WithTelemetry(false) keeps a
// stream's messages out of the latency histograms while the counters
// still run.
func TestMetricsTelemetryDisabled(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	rx, _ := c.Node("edge-2").InitSession()
	defer rx.Close()
	rxStream, err := rx.CreateStreamOpts(insane.WithDatapath(insane.Fast), insane.WithTelemetry(false))
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := rxStream.CreateSink(3, nil)
	tx, _ := c.Node("edge-1").InitSession()
	defer tx.Close()
	txStream, err := tx.CreateStreamOpts(insane.WithDatapath(insane.Fast), insane.WithTelemetry(false))
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, c.Node("edge-1"), 3, 1)
	src, _ := txStream.CreateSource(3)
	send(t, src, []byte("quiet"))
	m, err := consumeWithin(sink, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(m)

	mrx := c.Node("edge-2").Metrics()
	if mrx.Consumes != 1 {
		t.Errorf("Consumes = %d, want 1 (counters must still run)", mrx.Consumes)
	}
	if mrx.ConsumeLatency.Count != 0 {
		t.Errorf("ConsumeLatency.Count = %d, want 0 with telemetry disabled", mrx.ConsumeLatency.Count)
	}
}

// TestMetricsEndpoint scrapes the cluster's /metrics endpoint over real
// HTTP and validates the exposition: well-formed families, the required
// per-stage series present, and histogram invariants (+Inf == count).
func TestMetricsEndpoint(t *testing.T) {
	a, b := insane.NodeSpec{DPDK: true}, insane.NodeSpec{DPDK: true}
	a.Name, b.Name = "edge-1", "edge-2"
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:       []insane.NodeSpec{a, b},
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if c.MetricsAddr() == "" {
		t.Fatal("MetricsAddr empty after boot")
	}

	rx, _ := c.Node("edge-2").InitSession()
	defer rx.Close()
	rxStream, _ := rx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	sink, _ := rxStream.CreateSink(5, nil)
	tx, _ := c.Node("edge-1").InitSession()
	defer tx.Close()
	txStream, _ := tx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	waitSubs(t, c.Node("edge-1"), 5, 1)
	src, _ := txStream.CreateSource(5)
	for i := 0; i < 10; i++ {
		send(t, src, []byte("scrape me"))
		m, err := consumeWithin(sink, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(m)
	}

	resp, err := http.Get("http://" + c.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series, types := parsePromText(t, string(body))

	for _, want := range []string{
		"insane_emits_total", "insane_consumes_total", "insane_tx_messages_total",
		"insane_rx_messages_total", "insane_emit_backpressure_total",
		"insane_mempool_gets_total", "insane_mempool_free_slots",
		"insane_envcache_events_total", "insane_sched_queue_depth",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("series %s missing from scrape", want)
		}
	}
	for _, want := range []string{
		"insane_sched_dwell_seconds", "insane_deliver_latency_seconds",
		"insane_consume_latency_seconds", "insane_stage_send_seconds",
		"insane_stage_network_seconds", "insane_stage_recv_seconds",
		"insane_stage_processing_seconds", "insane_txring_occupancy",
		"insane_dispatch_batch",
	} {
		if types[want] != "histogram" {
			t.Errorf("family %s: type %q, want histogram", want, types[want])
		}
		if _, ok := series[want+"_bucket"]; !ok {
			t.Errorf("family %s has no buckets", want)
		}
	}

	// Histogram invariant: the +Inf bucket equals _count per label set.
	for name, samples := range series {
		if !strings.HasSuffix(name, "_bucket") {
			continue
		}
		base := strings.TrimSuffix(name, "_bucket")
		counts := series[base+"_count"]
		for labels, v := range samples {
			if !strings.Contains(labels, `le="+Inf"`) {
				continue
			}
			node := labels[:strings.Index(labels, `,le=`)]
			cnt, ok := counts[node]
			if !ok {
				t.Errorf("%s: no _count for %s", base, node)
				continue
			}
			if v != cnt {
				t.Errorf("%s{%s}: +Inf bucket %v != count %v", base, node, v, cnt)
			}
		}
	}

	// The scrape must show the traffic we generated.
	if v := series["insane_emits_total"][`node="edge-1"`]; v < 10 {
		t.Errorf("edge-1 emits in scrape = %v, want >= 10", v)
	}
	if v := series["insane_consume_latency_seconds_count"][`node="edge-2"`]; v < 10 {
		t.Errorf("edge-2 consume latency count = %v, want >= 10", v)
	}
}

// parsePromText is a minimal Prometheus text-format validator: it checks
// line well-formedness and returns samples[family][labels] plus the
// declared TYPE per family.
func parsePromText(t *testing.T, text string) (map[string]map[string]float64, map[string]string) {
	t.Helper()
	series := make(map[string]map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram" {
				t.Fatalf("unknown type in %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value
		brace := strings.IndexByte(line, '{')
		space := strings.LastIndexByte(line, ' ')
		if space < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		var name, labels string
		if brace >= 0 && brace < space {
			end := strings.IndexByte(line, '}')
			if end < 0 || end > space {
				t.Fatalf("malformed labels in %q", line)
			}
			name, labels = line[:brace], line[brace+1:end]
		} else {
			name = line[:space]
		}
		var v float64
		if _, err := fmt.Sscanf(line[space+1:], "%g", &v); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		if series[name] == nil {
			series[name] = make(map[string]float64)
		}
		series[name][labels] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every sample family must have a TYPE declaration.
	for name := range series {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name {
				if _, ok := types[b]; ok {
					base = b
					break
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("series %s has no TYPE declaration", name)
		}
	}
	return series, types
}

// TestConsumeContext covers the context-aware consume: cancellation,
// deadline, and plain delivery.
func TestConsumeContext(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	rx, _ := c.Node("edge-2").InitSession()
	defer rx.Close()
	rxStream, _ := rx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	sink, err := rxStream.CreateSink(11, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cancellation unblocks a consumer waiting on an empty sink.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sink.ConsumeContext(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled consume = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ConsumeContext did not honor cancellation")
	}

	// Deadline expiry surfaces the context's error.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	if _, err := sink.ConsumeContext(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline consume = %v, want context.DeadlineExceeded", err)
	}

	// An already-expired context never touches the ring.
	ectx, ecancel := context.WithCancel(context.Background())
	ecancel()
	if _, err := sink.ConsumeContext(ectx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled consume = %v, want context.Canceled", err)
	}

	// And a real delivery still comes through.
	tx, _ := c.Node("edge-1").InitSession()
	defer tx.Close()
	txStream, _ := tx.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	waitSubs(t, c.Node("edge-1"), 11, 1)
	src, _ := txStream.CreateSource(11)
	send(t, src, []byte("with context"))
	gctx, gcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer gcancel()
	m, err := sink.ConsumeContext(gctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "with context" {
		t.Errorf("payload = %q", m.Payload)
	}
	sink.Release(m)
}

// TestSessionCloseIdempotent verifies repeated Close calls are safe and
// that post-close operations report ErrClosed.
func TestSessionCloseIdempotent(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	sess, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CreateStreamOpts(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sess.Close(); err != nil {
			t.Fatalf("Close #%d = %v", i+1, err)
		}
	}
	if _, err := sess.CreateStreamOpts(); !errors.Is(err, insane.ErrClosed) {
		t.Errorf("CreateStream after Close = %v, want ErrClosed", err)
	}
}

// TestErrorSentinels pins the public error surface: package-own values,
// wired for errors.Is and direct comparison, with no internal leakage.
func TestErrorSentinels(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{}) // kernel only
	sess, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// A mapper hinting at a technology the node lacks falls back to the
	// default strategy instead of failing — hints are best effort.
	st0, err := sess.CreateStreamOpts(insane.WithMapper(func([]string) string { return "rdma" }))
	if err != nil {
		t.Fatalf("unknown mapper hint should fall back, got %v", err)
	}
	if st0.Technology() != "kernel-udp" {
		t.Errorf("fallback tech = %s, want kernel-udp", st0.Technology())
	}

	st, err := sess.CreateStreamOpts()
	if err != nil {
		t.Fatal(err)
	}
	// The ErrNoData / ErrTimeout by-value rows live in compat_test.go:
	// only the deprecated Consume/ConsumeTimeout calls can surface them
	// (ConsumeContext maps both cases to context errors).

	src, err := st.CreateSource(2)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the jumbo class to surface ErrNoBuffers.
	var held []*insane.Buffer
	defer func() {
		for _, b := range held {
			src.Abort(b)
		}
	}()
	for {
		b, err := src.GetBuffer(8000)
		if err != nil {
			if !errors.Is(err, insane.ErrNoBuffers) || err != insane.ErrNoBuffers {
				t.Errorf("pool exhaustion = %v, want ErrNoBuffers by value", err)
			}
			break
		}
		held = append(held, b)
	}

	sess2, _ := c.Node("edge-1").InitSession()
	sess2.Close()
	if _, err := sess2.CreateStreamOpts(); err != insane.ErrClosed {
		t.Errorf("closed session stream = %v, want ErrClosed by value", err)
	}
}

// TestFunctionalOptions checks option/struct equivalence and telemetry
// wiring of CreateStreamOpts.
func TestFunctionalOptions(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true, RDMA: true})
	sess, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	viaOpts, err := sess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithResources(insane.Frugal),
		insane.WithTiming(insane.TimeSensitive),
		insane.WithClass(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	viaStruct, err := sess.CreateStreamOpts(insane.WithOptions(insane.Options{
		Datapath:  insane.Fast,
		Resources: insane.Frugal,
		Timing:    insane.TimeSensitive,
		Class:     5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if viaOpts.Technology() != viaStruct.Technology() {
		t.Errorf("options stream mapped to %s, struct stream to %s",
			viaOpts.Technology(), viaStruct.Technology())
	}

	picked := false
	st, err := sess.CreateStreamOpts(insane.WithMapper(func(avail []string) string {
		picked = true
		for _, tech := range avail {
			if tech == "rdma" {
				return tech
			}
		}
		return ""
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !picked {
		t.Error("WithMapper strategy never consulted")
	}
	if st.Technology() != "rdma" {
		t.Errorf("mapper stream tech = %s, want rdma", st.Technology())
	}
}
