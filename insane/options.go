package insane

// Option configures one aspect of a stream's QoS contract; pass them to
// Session.CreateStreamOpts. The zero contract is slow / whatever-it-takes
// / best-effort with telemetry enabled, exactly like a zero Options
// struct.
type Option func(*Options)

// WithDatapath sets the acceleration policy (§5.2).
func WithDatapath(d Datapath) Option {
	return func(o *Options) { o.Datapath = d }
}

// WithResources sets the resource-consumption policy.
func WithResources(r Resources) Option {
	return func(o *Options) { o.Resources = r }
}

// WithTiming sets the time-sensitiveness policy.
func WithTiming(t Timing) Option {
	return func(o *Options) { o.Timing = t }
}

// WithClass sets the 802.1Qbv traffic class (0-7) of a time-sensitive
// stream; higher is more critical.
func WithClass(class uint8) Option {
	return func(o *Options) { o.Class = class }
}

// WithMapper overrides the default QoS mapping strategy; see
// Options.Mapper.
func WithMapper(m func(available []string) string) Option {
	return func(o *Options) { o.Mapper = m }
}

// WithTelemetry enables or disables the per-message latency histograms
// for the stream. Telemetry is on by default and its hot-path cost is a
// handful of atomic adds; disabling it only skips the per-stage latency
// observations (throughput counters always run).
func WithTelemetry(enabled bool) Option {
	return func(o *Options) { o.DisableTelemetry = !enabled }
}

// WithRunToCompletion opts the stream's sources into the synchronous
// local fast path: purely local, small-fanout emits are delivered on the
// emitting goroutine, skipping the TX ring and polling thread entirely
// (DESIGN.md §11). Emits with remote subscribers, a wide fanout, a
// closed TSN gate, or a full sink ring silently fall back to the queued
// path, so enabling it never changes delivery semantics — only latency.
func WithRunToCompletion(enabled bool) Option {
	return func(o *Options) { o.RunToCompletion = enabled }
}

// WithOptions replaces the whole contract with an assembled Options
// struct; later options still apply on top. It is the bridge for code
// that builds Options programmatically (and for the deprecated
// CreateStream signature, which is now a wrapper over it).
func WithOptions(o Options) Option {
	return func(dst *Options) { *dst = o }
}

// CreateStreamOpts opens a stream from functional options; the runtime
// maps the assembled QoS contract to the most appropriate technology
// available on this node. This is the preferred stream constructor.
func (s *Session) CreateStreamOpts(opts ...Option) (*Stream, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	h, err := s.conn.OpenStream(o.toQoS())
	if err != nil {
		return nil, publicErr(err)
	}
	return &Stream{sess: s, h: h}, nil
}
