// Public tenant API (DESIGN.md §12). Tenants are declared up front in
// ClusterOptions and bound at session creation with
// InitSession(WithTenant(...)); everything else — slot budgets, TX token
// caps, weighted egress shares, class ceilings, per-tenant telemetry —
// follows from that binding with no further application code.

package insane

// TenantID names a tenant declared in ClusterOptions.Tenants. The zero
// value is the implicit default tenant: unlimited, weight 1, no
// dedicated telemetry.
type TenantID string

// TenantSpec declares one tenant and its isolation envelope. Every
// field except Name is optional; a zero value means "unlimited" (or
// weight 1), so a spec can start as just a name and tighten later.
type TenantSpec struct {
	// ID names the tenant; sessions bind to it with WithTenant.
	ID TenantID
	// Weight is the tenant's share of best-effort egress bandwidth under
	// the weighted deficit round-robin scheduler (default 1). Weights
	// are relative: a weight-4 tenant gets 4× the egress of a weight-1
	// tenant while both are backlogged.
	Weight int
	// MemSlots caps how many memory-pool slots the tenant's sessions may
	// hold at once across GetBuffer and in-flight deliveries
	// (0 = unlimited). Exhaustion surfaces as ErrTenantQuota.
	MemSlots int
	// TxTokens caps the tenant's emitted-but-not-yet-dispatched
	// messages (0 = unlimited). Exhaustion surfaces as ErrTenantQuota.
	TxTokens int
	// MaxClass ceilings the 802.1Qbv traffic class the tenant's streams
	// may request (0 = unrestricted). Streams asking for more are
	// clamped with a node warning, mirroring the QoS fallback idiom.
	MaxClass uint8
}

// SessionOption configures InitSession.
type SessionOption func(*sessionConfig)

// sessionConfig collects the session options before Connect.
type sessionConfig struct {
	tenant TenantID
}

// WithTenant binds the session to a declared tenant. Sessions without
// this option run under the default tenant (no quotas, weight 1).
// Binding to an undeclared tenant fails InitSession with
// ErrUnknownTenant.
func WithTenant(id TenantID) SessionOption {
	return func(c *sessionConfig) { c.tenant = id }
}
