package insane

import (
	"errors"

	"github.com/insane-mw/insane/internal/core"
	"github.com/insane-mw/insane/internal/mempool"
)

// Errors surfaced by the client library. They are the package's own
// sentinels — internal error values never cross the public surface — and
// are returned by value, so both errors.Is and direct comparison work.
var (
	// ErrClosed is returned by operations on closed sessions, streams,
	// sources or sinks.
	ErrClosed = errors.New("insane: closed")
	// ErrBackpressure is returned by Emit when the runtime is busy; the
	// caller keeps the buffer and should retry.
	ErrBackpressure = errors.New("insane: runtime busy, retry")
	// ErrNoData is returned by a non-blocking Consume on an empty sink.
	ErrNoData = errors.New("insane: no data available")
	// ErrTimeout is returned by a blocking Consume that hit its deadline.
	ErrTimeout = errors.New("insane: consume timeout")
	// ErrNoBuffers is returned by GetBuffer when the memory pools are
	// momentarily exhausted; slot recycling is the natural flow control
	// of the zero-copy design, so callers back off and retry.
	ErrNoBuffers = errors.New("insane: no free buffers")
	// ErrNoDatapath is returned by CreateStream when the QoS mapping
	// picked a technology this node has no endpoint for.
	ErrNoDatapath = errors.New("insane: no datapath for mapped technology")
	// ErrBufferConsumed is returned by Emit when the buffer is nil or its
	// ownership already moved to the runtime (a previous successful Emit).
	// A static sentinel: Emit sits on the zero-allocation hot path.
	ErrBufferConsumed = errors.New("insane: emit of nil or already-emitted buffer")
	// ErrTenantQuota is returned by GetBuffer (slot budget) and Emit (TX
	// token cap) when the session's tenant is at one of its declared
	// limits; the pressure is the tenant's own, so back off and retry —
	// or release held buffers — rather than treating it as node
	// exhaustion.
	ErrTenantQuota = errors.New("insane: tenant quota exhausted")
	// ErrUnknownTenant is returned by InitSession(WithTenant(...)) when
	// the tenant was not declared in ClusterOptions.Tenants.
	ErrUnknownTenant = errors.New("insane: unknown tenant")
)

// publicErr translates an internal error to the package's sentinels.
// Known sentinels are returned by value (no wrapping) so the translation
// allocates nothing on the hot path; anything unrecognized passes through
// unchanged.
func publicErr(err error) error {
	switch {
	case err == nil:
		return nil
	case err == core.ErrClosed:
		return ErrClosed
	case err == core.ErrBackpressure:
		return ErrBackpressure
	case err == core.ErrNoData:
		return ErrNoData
	case err == core.ErrTimeout:
		return ErrTimeout
	case err == mempool.ErrExhausted:
		return ErrNoBuffers
	case err == core.ErrTenantQuota, err == mempool.ErrQuota:
		return ErrTenantQuota
	}
	// Wrapped variants (e.g. "no endpoint for <tech>") only occur on
	// control paths, where errors.Is unwrapping is affordable.
	switch {
	case errors.Is(err, core.ErrNoDatapath):
		return ErrNoDatapath
	case errors.Is(err, core.ErrClosed):
		return ErrClosed
	case errors.Is(err, mempool.ErrExhausted):
		return ErrNoBuffers
	case errors.Is(err, core.ErrUnknownTenant):
		return ErrUnknownTenant
	}
	return err
}
