package insane_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestRandomTopologiesDeliver is a property test over deployment shapes:
// random node counts, random capability sets, random publisher/subscriber
// placements — every subscribed sink must receive every message, whatever
// technologies end up being used underneath.
func TestRandomTopologiesDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			nodes := 2 + rng.Intn(3) // 2..4
			specs := make([]insane.NodeSpec, nodes)
			for i := range specs {
				specs[i] = insane.NodeSpec{
					Name: fmt.Sprintf("n%d", i),
					DPDK: rng.Intn(2) == 0,
					XDP:  rng.Intn(2) == 0,
					RDMA: rng.Intn(3) == 0,
				}
			}
			cluster, err := insane.NewCluster(insane.ClusterOptions{
				Nodes: specs,
				Seed:  int64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			pub := cluster.Nodes()[rng.Intn(nodes)]
			channel := 100 + rng.Intn(50)
			opts := insane.Options{}
			if rng.Intn(2) == 0 {
				opts.Datapath = insane.Fast
			}
			if rng.Intn(3) == 0 {
				opts.Resources = insane.Frugal
			}

			// Subscribers on every *other* node.
			var sinks []*insane.Sink
			for _, n := range cluster.Nodes() {
				if n == pub {
					continue
				}
				sess, err := n.InitSession()
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				st, err := sess.CreateStreamOpts(insane.WithOptions(opts))
				if err != nil {
					t.Fatal(err)
				}
				k, err := st.CreateSink(channel, nil)
				if err != nil {
					t.Fatal(err)
				}
				sinks = append(sinks, k)
			}
			deadline := time.Now().Add(2 * time.Second)
			for pub.SubscriberCount(channel) < len(sinks) {
				if time.Now().After(deadline) {
					t.Fatalf("only %d of %d subscriptions learned", pub.SubscriberCount(channel), len(sinks))
				}
				time.Sleep(100 * time.Microsecond)
			}

			sess, err := pub.InitSession()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			st, err := sess.CreateStreamOpts(insane.WithOptions(opts))
			if err != nil {
				t.Fatal(err)
			}
			src, err := st.CreateSource(channel)
			if err != nil {
				t.Fatal(err)
			}

			const msgs = 20
			for m := 0; m < msgs; m++ {
				size := 1 + rng.Intn(1024)
				buf, err := src.GetBuffer(size)
				if err != nil {
					t.Fatal(err)
				}
				buf.Payload[0] = byte(m)
				for {
					_, err = src.Emit(buf, size)
					if err != insane.ErrBackpressure {
						break
					}
					time.Sleep(5 * time.Microsecond)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			for si, k := range sinks {
				for m := 0; m < msgs; m++ {
					d, err := consumeWithin(k, 2*time.Second)
					if err != nil {
						t.Fatalf("sink %d, msg %d: %v", si, m, err)
					}
					if d.Payload[0] != byte(m) {
						t.Fatalf("sink %d: message %d arrived as %d", si, m, d.Payload[0])
					}
					k.Release(d)
				}
			}
		})
	}
}
