package insane_test

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestNoGoroutineLeakOnClose proves the shutdown contract the
// goroutinecheck annotations promise: opening a two-node cluster with
// the telemetry endpoint, pushing traffic through a callback sink, and
// closing everything must return the process to its pre-open goroutine
// population. Stacks are compared by creation site, so the failure
// output names the exact `go` statement that leaked.
func TestNoGoroutineLeakOnClose(t *testing.T) {
	before := goroutineSites()

	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "edge-1", DPDK: true},
			{Name: "edge-2", DPDK: true},
		},
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			c.Close()
		}
	}()

	const channel = 7
	var got atomic.Int64
	rx, err := c.Node("edge-2").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	rxStream, err := rx.CreateStreamOpts()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rxStream.CreateSink(channel, func(m *insane.Message) {
		got.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	txStream, err := tx.CreateStreamOpts()
	if err != nil {
		t.Fatal(err)
	}
	src, err := txStream.CreateSource(channel)
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, c.Node("edge-1"), channel, 1)
	send(t, src, []byte("leakcheck"))
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("callback sink never received the message")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Touch the metrics endpoint so its serve goroutine demonstrably
	// ran, then drop the client's idle connections — their readLoop
	// goroutines are the client's, not the cluster's.
	resp, err := http.Get("http://" + c.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()

	rx.Close()
	tx.Close()
	c.Close()
	closed = true

	// The runtimes join their goroutines synchronously, but client-side
	// HTTP teardown is asynchronous: poll briefly before judging.
	deadline = time.Now().Add(2 * time.Second)
	for {
		leaked := diffSites(before, goroutineSites())
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across cluster close:\n%s\nfull dump:\n%s",
				strings.Join(leaked, "\n"), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutineSites counts live goroutines by the source location of the
// `go` statement that created them.
func goroutineSites() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	sites := make(map[string]int)
	for _, g := range strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n") {
		site := "no created-by (root goroutine)"
		for _, line := range strings.Split(g, "\n") {
			if strings.HasPrefix(line, "created by ") {
				site = strings.TrimPrefix(line, "created by ")
				if i := strings.Index(site, " in goroutine"); i >= 0 {
					site = site[:i]
				}
				break
			}
		}
		sites[site]++
	}
	return sites
}

// diffSites lists the creation sites with more live goroutines in
// after than in before.
func diffSites(before, after map[string]int) []string {
	var out []string
	for site, n := range after {
		if extra := n - before[site]; extra > 0 {
			out = append(out, fmt.Sprintf("  %s: +%d", site, extra))
		}
	}
	sort.Strings(out)
	return out
}
