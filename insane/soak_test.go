package insane_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// TestSoakNoSlotLeaks churns sessions, streams, sources and sinks through
// hundreds of open/send/consume/close cycles and then verifies that every
// memory-pool slot on every node returned home. This is the conservation
// invariant the whole zero-copy design rests on: a leaked slot is lost
// capacity forever.
func TestSoakNoSlotLeaks(t *testing.T) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "a", DPDK: true, RDMA: true},
			{Name: "b", DPDK: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	initial := make(map[string][]int)
	for _, n := range cluster.Nodes() {
		initial[n.Name()] = n.Runtime().Mem().FreeSlots()
	}

	rng := rand.New(rand.NewSource(4242))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		pubNode := cluster.Nodes()[rng.Intn(2)]
		subNode := cluster.Nodes()[1-rng.Intn(2)]

		opts := insane.Options{}
		if rng.Intn(2) == 0 {
			opts.Datapath = insane.Fast
		}
		channel := 500 + rng.Intn(8)

		subSess, err := subNode.InitSession()
		if err != nil {
			t.Fatal(err)
		}
		subStream, err := subSess.CreateStreamOpts(insane.WithOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		sink, err := subStream.CreateSink(channel, nil)
		if err != nil {
			t.Fatal(err)
		}

		pubSess, err := pubNode.InitSession()
		if err != nil {
			t.Fatal(err)
		}
		pubStream, err := pubSess.CreateStreamOpts(insane.WithOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		local := pubNode == subNode
		if !local {
			deadline := time.Now().Add(2 * time.Second)
			for pubNode.SubscriberCount(channel) == 0 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
		}
		src, err := pubStream.CreateSource(channel)
		if err != nil {
			t.Fatal(err)
		}

		msgs := 1 + rng.Intn(5)
		for m := 0; m < msgs; m++ {
			size := 1 + rng.Intn(512)
			buf, err := src.GetBuffer(size)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(8) == 0 {
				src.Abort(buf) // exercise the abort path too
				continue
			}
			for {
				_, err = src.Emit(buf, size)
				if err != insane.ErrBackpressure {
					break
				}
				time.Sleep(5 * time.Microsecond)
			}
			if err != nil {
				t.Fatal(err)
			}
			msg, err := consumeWithin(sink, 2*time.Second)
			if err != nil {
				t.Fatalf("iter %d msg %d: %v", i, m, err)
			}
			sink.Release(msg)
		}
		// Sometimes close abruptly (session close reclaims), sometimes
		// tidily (sink first).
		if rng.Intn(2) == 0 {
			sink.Close()
		}
		if err := pubSess.Close(); err != nil {
			t.Fatal(err)
		}
		if err := subSess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for quiescence, then check conservation on every node.
	for _, n := range cluster.Nodes() {
		n := n
		deadline := time.Now().Add(3 * time.Second)
		for {
			got := n.Runtime().Mem().FreeSlots()
			if equalInts(got, initial[n.Name()]) {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("node %s leaked slots: free %v, want %v (stats: %+v)",
					n.Name(), got, initial[n.Name()], n.Runtime().Mem().Stats())
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSoakWarningsBounded: the soak must not spam warnings (only expected
// ones: none here, since capabilities match requests or map cleanly).
func TestSoakWarningsBounded(t *testing.T) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a", DPDK: true}, {Name: "b", DPDK: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < 20; i++ {
		sess, _ := cluster.Nodes()[i%2].InitSession()
		st, _ := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
		if st.FellBack() {
			t.Fatal("unexpected fallback")
		}
		sess.Close()
	}
	for _, n := range cluster.Nodes() {
		if w := n.Warnings(); len(w) != 0 {
			t.Errorf("node %s warnings: %v", n.Name(), w)
		}
	}
}

// TestManyChannelsFanIn drives 16 channels into one consumer node
// concurrently — the MoM-style fan-in shape at the raw API level.
func TestManyChannelsFanIn(t *testing.T) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "hub"}, {Name: "spoke"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	hubSess, _ := cluster.Node("hub").InitSession()
	hubStream, _ := hubSess.CreateStreamOpts()
	const channels = 16
	sinks := make([]*insane.Sink, channels)
	for ch := 0; ch < channels; ch++ {
		k, err := hubStream.CreateSink(700+ch, nil)
		if err != nil {
			t.Fatal(err)
		}
		sinks[ch] = k
	}

	spokeSess, _ := cluster.Node("spoke").InitSession()
	spokeStream, _ := spokeSess.CreateStreamOpts()
	deadline := time.Now().Add(3 * time.Second)
	for ch := 0; ch < channels; ch++ {
		for cluster.Node("spoke").SubscriberCount(700+ch) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("channel %d subscription not learned", ch)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	for ch := 0; ch < channels; ch++ {
		src, err := spokeStream.CreateSource(700 + ch)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := src.GetBuffer(16)
		if err != nil {
			t.Fatal(err)
		}
		n := copy(buf.Payload, fmt.Sprintf("ch%d", ch))
		if _, err := src.Emit(buf, n); err != nil {
			t.Fatal(err)
		}
	}
	for ch, k := range sinks {
		m, err := consumeWithin(k, 2*time.Second)
		if err != nil {
			t.Fatalf("channel %d: %v", ch, err)
		}
		if want := fmt.Sprintf("ch%d", ch); string(m.Payload) != want {
			t.Errorf("channel %d payload = %q, want %q", ch, m.Payload, want)
		}
		k.Release(m)
	}
}
