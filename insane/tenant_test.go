package insane_test

// Tests for the multi-tenant API (DESIGN.md §12): tenant binding at
// session creation, the admission matrix (unknown tenant, slot budget,
// TX token cap), the MaxClass ceiling, and per-tenant telemetry under
// concurrent emit.

import (
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// tenantCluster builds a single-node cluster with the given tenants.
func tenantCluster(t *testing.T, tenants []insane.TenantSpec, spec insane.NodeSpec) *insane.Cluster {
	t.Helper()
	spec.Name = "edge"
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:   []insane.NodeSpec{spec},
		Tenants: tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestTenantBinding(t *testing.T) {
	c := tenantCluster(t, []insane.TenantSpec{{ID: "video", Weight: 3}}, insane.NodeSpec{})
	node := c.Node("edge")

	// Zero-argument InitSession keeps working and binds the default tenant.
	def, err := node.InitSession()
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if def.Tenant() != "" {
		t.Errorf("default session tenant = %q, want \"\"", def.Tenant())
	}

	sess, err := node.InitSession(insane.WithTenant("video"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Tenant() != "video" {
		t.Errorf("session tenant = %q, want \"video\"", sess.Tenant())
	}

	// An undeclared tenant is rejected with the package's own sentinel.
	if _, err := node.InitSession(insane.WithTenant("ghost")); !errors.Is(err, insane.ErrUnknownTenant) {
		t.Errorf("unknown tenant session = %v, want ErrUnknownTenant", err)
	}
}

// TestTenantMemQuota exhausts a 2-slot budget and checks the sentinel,
// the recovery after release, and the quota gauges in Node.Metrics().
func TestTenantMemQuota(t *testing.T) {
	c := tenantCluster(t, []insane.TenantSpec{{ID: "small", MemSlots: 2}}, insane.NodeSpec{})
	node := c.Node("edge")
	sess, err := node.InitSession(insane.WithTenant("small"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts()
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(9)
	if err != nil {
		t.Fatal(err)
	}

	b1, err := src.GetBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := src.GetBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	// Third borrow trips the tenant's own budget, not node exhaustion —
	// and by value, so the hot path stayed allocation-free.
	if _, err := src.GetBuffer(64); err != insane.ErrTenantQuota || !errors.Is(err, insane.ErrTenantQuota) {
		t.Fatalf("over-budget GetBuffer = %v, want ErrTenantQuota by value", err)
	}

	m := node.Metrics()
	if len(m.Tenants) != 1 {
		t.Fatalf("Metrics().Tenants = %d entries, want 1", len(m.Tenants))
	}
	ten := m.Tenants[0]
	if ten.Tenant != "small" {
		t.Errorf("tenant name = %q", ten.Tenant)
	}
	if ten.MemUsed != 2 || ten.MemLimit != 2 {
		t.Errorf("mem gauges = %d/%d, want 2/2", ten.MemUsed, ten.MemLimit)
	}
	if ten.QuotaRejects == 0 {
		t.Error("QuotaRejects = 0 after a refused borrow")
	}

	// Releasing a slot restores admission.
	src.Abort(b1)
	b3, err := src.GetBuffer(64)
	if err != nil {
		t.Fatalf("GetBuffer after release = %v", err)
	}
	src.Abort(b2)
	src.Abort(b3)
	if got := node.Metrics().Tenants[0].MemUsed; got != 0 {
		t.Errorf("MemUsed after releasing everything = %d, want 0", got)
	}
}

// TestTenantTxQuota parks one packet behind a permanently closed TSN
// gate so its TX token stays charged, then checks the second emit is
// refused with ErrTenantQuota.
func TestTenantTxQuota(t *testing.T) {
	// Class 7 only, for an hour: a class-0 time-sensitive packet never
	// leaves the scheduler, so its in-flight token is never returned.
	spec := insane.NodeSpec{TSNSchedule: []insane.GateWindow{{Duration: time.Hour, Classes: 1 << 7}}}
	c := tenantCluster(t, []insane.TenantSpec{{ID: "tiny", TxTokens: 1}}, spec)
	node := c.Node("edge")
	sess, err := node.InitSession(insane.WithTenant("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts(insane.WithTiming(insane.TimeSensitive), insane.WithClass(0))
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(11)
	if err != nil {
		t.Fatal(err)
	}

	b1, err := src.GetBuffer(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Emit(b1, 32); err != nil {
		t.Fatalf("first emit = %v", err)
	}
	b2, err := src.GetBuffer(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Emit(b2, 32); err != insane.ErrTenantQuota || !errors.Is(err, insane.ErrTenantQuota) {
		t.Fatalf("second emit = %v, want ErrTenantQuota by value", err)
	}
	src.Abort(b2)

	ten := node.Metrics().Tenants[0]
	if ten.TxInflight != 1 || ten.TxLimit != 1 {
		t.Errorf("tx gauges = %d/%d, want 1/1", ten.TxInflight, ten.TxLimit)
	}
	if ten.QuotaRejects == 0 {
		t.Error("QuotaRejects = 0 after a refused emit")
	}
}

// TestTenantClassCeiling checks MaxClass clamps a hotter class down and
// leaves a visible warning.
func TestTenantClassCeiling(t *testing.T) {
	c := tenantCluster(t, []insane.TenantSpec{{ID: "capped", MaxClass: 5}}, insane.NodeSpec{})
	node := c.Node("edge")
	sess, err := node.InitSession(insane.WithTenant("capped"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.CreateStreamOpts(insane.WithTiming(insane.TimeSensitive), insane.WithClass(7)); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range node.Warnings() {
		if strings.Contains(w, "class") {
			found = true
		}
	}
	if !found {
		t.Errorf("no class-clamp warning recorded; warnings = %v", node.Warnings())
	}
}

// TestTenantMetricsConcurrent hammers two tenants from concurrent
// emitters while snapshotting Metrics() in parallel; final per-tenant
// counters must account for every message. Run under -race this also
// proves the per-tenant shards and gauges are data-race free.
func TestTenantMetricsConcurrent(t *testing.T) {
	const perTenant = 400
	c := tenantCluster(t, []insane.TenantSpec{
		{ID: "gold", Weight: 3},
		{ID: "bronze", Weight: 1},
	}, insane.NodeSpec{})
	node := c.Node("edge")

	type lane struct {
		id   insane.TenantID
		sess *insane.Session
		src  *insane.Source
		sink *insane.Sink
	}
	lanes := make([]*lane, 0, 2)
	for i, id := range []insane.TenantID{"gold", "bronze"} {
		sess, err := node.InitSession(insane.WithTenant(id))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		st, err := sess.CreateStreamOpts()
		if err != nil {
			t.Fatal(err)
		}
		ch := 21 + i
		sink, err := st.CreateSink(ch, nil)
		if err != nil {
			t.Fatal(err)
		}
		src, err := st.CreateSource(ch)
		if err != nil {
			t.Fatal(err)
		}
		lanes = append(lanes, &lane{id: id, sess: sess, src: src, sink: sink})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2*len(lanes))
	stopSnaps := make(chan struct{})
	snapsDone := make(chan struct{})
	go func() { // concurrent snapshot reader, joined separately below
		defer close(snapsDone)
		for {
			select {
			case <-stopSnaps:
				return
			default:
			}
			_ = node.Metrics()
			runtime.Gosched()
		}
	}()
	for _, l := range lanes {
		wg.Add(2)
		go func(l *lane) {
			defer wg.Done()
			for n := 0; n < perTenant; n++ {
				var buf *insane.Buffer
				for {
					var err error
					if buf == nil {
						buf, err = l.src.GetBuffer(64)
					}
					if err == nil {
						if _, err = l.src.Emit(buf, 64); err == nil {
							break
						}
						if !errors.Is(err, insane.ErrBackpressure) {
							errCh <- err
							return
						}
					} else if !errors.Is(err, insane.ErrNoBuffers) {
						errCh <- err
						return
					}
					runtime.Gosched()
				}
			}
		}(l)
		go func(l *lane) {
			defer wg.Done()
			for n := 0; n < perTenant; n++ {
				m, err := consumeWithin(l.sink, 10*time.Second)
				if err != nil {
					errCh <- err
					return
				}
				l.sink.Release(m)
			}
		}(l)
	}
	go func() {
		wg.Wait()
		close(errCh)
	}()
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stopSnaps)
	<-snapsDone

	m := node.Metrics()
	if len(m.Tenants) != 2 {
		t.Fatalf("Metrics().Tenants = %d entries, want 2", len(m.Tenants))
	}
	byID := map[insane.TenantID]insane.TenantMetrics{}
	for _, tm := range m.Tenants {
		byID[tm.Tenant] = tm
	}
	for _, want := range []struct {
		id     insane.TenantID
		weight int
	}{{"gold", 3}, {"bronze", 1}} {
		tm, ok := byID[want.id]
		if !ok {
			t.Fatalf("tenant %q missing from metrics", want.id)
		}
		if tm.Weight != want.weight {
			t.Errorf("%s weight = %d, want %d", want.id, tm.Weight, want.weight)
		}
		if tm.Emits != perTenant {
			t.Errorf("%s Emits = %d, want %d", want.id, tm.Emits, perTenant)
		}
		if tm.Consumes != perTenant {
			t.Errorf("%s Consumes = %d, want %d", want.id, tm.Consumes, perTenant)
		}
		if tm.EmitBytes != perTenant*64 {
			t.Errorf("%s EmitBytes = %d, want %d", want.id, tm.EmitBytes, perTenant*64)
		}
		if tm.ConsumeLatency.Count != perTenant {
			t.Errorf("%s ConsumeLatency.Count = %d, want %d", want.id, tm.ConsumeLatency.Count, perTenant)
		}
		if tm.TxInflight != 0 {
			t.Errorf("%s TxInflight = %d after drain, want 0", want.id, tm.TxInflight)
		}
	}
}

// TestTenantPromFamilies scrapes /metrics of a tenant-enabled cluster and
// checks the per-tenant families render with tenant labels.
func TestTenantPromFamilies(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:       []insane.NodeSpec{{Name: "edge"}},
		Tenants:     []insane.TenantSpec{{ID: "video", Weight: 2, MemSlots: 128}},
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	node := c.Node("edge")

	sess, err := node.InitSession(insane.WithTenant("video"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts()
	if err != nil {
		t.Fatal(err)
	}
	sink, err := st.CreateSink(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		send(t, src, []byte("tenant traffic"))
		m, err := consumeWithin(sink, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(m)
	}

	resp, err := http.Get("http://" + c.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`insane_tenant_emits_total{node="edge",tenant="video"}`,
		`insane_tenant_consumes_total{node="edge",tenant="video"}`,
		`insane_tenant_weight{node="edge",tenant="video"} 2`,
		`insane_tenant_mem_slots_limit{node="edge",tenant="video"} 128`,
		`insane_tenant_consume_latency_seconds_bucket`,
		`insane_tenant_tx_inflight{node="edge",tenant="video"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestTenantQuotaBalanceAfterChurn is the leak soak for the §12/§13
// charge/refund pairs: sessions churn through an error-injecting
// workload — borrows tripping the slot budget, emits tripping the TX
// token cap and backpressure, aborted buffers, sessions closed with
// unconsumed deliveries still queued — and after every session is gone
// the tenant's gauges must read exactly zero: any residue is a lost
// Uncharge/unchargeTX/Release pair.
func TestTenantQuotaBalanceAfterChurn(t *testing.T) {
	c := tenantCluster(t, []insane.TenantSpec{
		{ID: "churn", MemSlots: 6, TxTokens: 2},
	}, insane.NodeSpec{})
	node := c.Node("edge")

	const rounds = 12
	for round := 0; round < rounds; round++ {
		sess, err := node.InitSession(insane.WithTenant("churn"))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.CreateStreamOpts()
		if err != nil {
			t.Fatal(err)
		}
		ch := 40 + round
		sink, err := st.CreateSink(ch, nil)
		if err != nil {
			t.Fatal(err)
		}
		src, err := st.CreateSource(ch)
		if err != nil {
			t.Fatal(err)
		}

		// Error injection 1: exhaust the slot budget and keep borrowing.
		var held []*insane.Buffer
		for {
			b, err := src.GetBuffer(64)
			if err != nil {
				if !errors.Is(err, insane.ErrTenantQuota) {
					t.Fatalf("round %d: GetBuffer = %v", round, err)
				}
				break
			}
			held = append(held, b)
		}
		if len(held) != 6 {
			t.Fatalf("round %d: borrowed %d slots before quota, want 6", round, len(held))
		}
		// Abort half; the rest goes through Emit's error paths.
		for _, b := range held[:3] {
			src.Abort(b)
		}
		// Error injection 2: emit into the 2-token in-flight cap; retry
		// quota/backpressure rejections, aborting only on real errors.
		for _, b := range held[3:] {
			for {
				_, err := src.Emit(b, 64)
				if err == nil {
					break
				}
				if !errors.Is(err, insane.ErrTenantQuota) && !errors.Is(err, insane.ErrBackpressure) {
					src.Abort(b)
					t.Fatalf("round %d: Emit = %v", round, err)
				}
				runtime.Gosched()
			}
		}
		// Consume some deliveries; on odd rounds leave the rest queued in
		// the sink ring so Close has to settle them.
		toConsume := 3
		if round%2 == 1 {
			toConsume = 1
		}
		for i := 0; i < toConsume; i++ {
			m, err := consumeWithin(sink, 5*time.Second)
			if err != nil {
				t.Fatalf("round %d: consume %d: %v", round, i, err)
			}
			sink.Release(m)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("round %d: Close = %v", round, err)
		}
	}

	ten := node.Metrics().Tenants[0]
	if ten.MemUsed != 0 {
		t.Errorf("MemUsed after churn = %d, want 0 (slot charges leaked)", ten.MemUsed)
	}
	if ten.TxInflight != 0 {
		t.Errorf("TxInflight after churn = %d, want 0 (TX charges leaked)", ten.TxInflight)
	}
	if ten.QuotaRejects == 0 {
		t.Error("QuotaRejects = 0: the workload never tripped a quota, soak proves nothing")
	}
}
