package insane

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/core"
	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/sched"
)

// Topology selects how cluster nodes are interconnected.
type Topology int

// Topologies.
const (
	// TopologyAuto uses a direct cable for two nodes and a switch
	// otherwise.
	TopologyAuto Topology = iota
	// TopologyDirect wires matching technology ports back to back (the
	// paper's local testbed). Only valid for exactly two nodes.
	TopologyDirect
	// TopologySwitched attaches every port to one store-and-forward
	// switch (the paper's public-cloud testbed).
	TopologySwitched
)

// NodeSpec describes one edge node of a cluster and the acceleration
// technologies its hardware offers.
type NodeSpec struct {
	Name string
	// DPDK, XDP and RDMA advertise optional acceleration support;
	// kernel networking is always present.
	DPDK, XDP, RDMA bool
	// SharedPoller maps all datapath plugins of this node to a single
	// polling thread (lowest resource usage, §5.3).
	SharedPoller bool
	// PollersPerPlugin runs several polling threads per datapath plugin
	// for receive-side parallelism (§8). Zero means one. Ignored when
	// SharedPoller is set.
	PollersPerPlugin int
	// TSNSchedule overrides the default 802.1Qbv gate control list for
	// time-sensitive streams on this node.
	TSNSchedule []GateWindow
}

// GateWindow is one slice of an 802.1Qbv cycle for NodeSpec.TSNSchedule.
type GateWindow struct {
	// Duration of the window.
	Duration time.Duration
	// Classes is the bitmask of open traffic classes (bit i = class i).
	Classes uint8
}

// ClusterOptions configures a virtual edge deployment.
type ClusterOptions struct {
	// Nodes lists the edge nodes (at least two for remote traffic).
	Nodes []NodeSpec
	// Topology selects direct cabling or a switch (default auto).
	Topology Topology
	// Cloud switches the calibrated cost environment from the local
	// testbed to the public-cloud one (slower CPU, switch latency).
	Cloud bool
	// LossRate injects random frame loss on every link, in [0,1].
	LossRate float64
	// WireJitter perturbs each frame's wire latency by a uniform
	// ±WireJitter, so latency distributions show realistic spread.
	// Zero keeps all timing deterministic.
	WireJitter time.Duration
	// Seed makes loss injection deterministic.
	Seed int64
	// Tenants declares the cluster's tenants (DESIGN.md §12): every node
	// gets the same tenant table, and sessions bind to one with
	// InitSession(WithTenant(...)). An empty list runs every node in
	// single-tenant mode with zero per-packet tenant overhead.
	Tenants []TenantSpec
	// Logf receives runtime warnings (optional).
	Logf func(format string, args ...any)
	// MetricsAddr, when non-empty, serves the cluster's telemetry as
	// Prometheus text at /metrics — plus net/http/pprof under
	// /debug/pprof/ — on an HTTP listener bound to this address. Use
	// "127.0.0.1:0" for an ephemeral port (Cluster.MetricsAddr reports
	// the bound address); a bare ":port" is normalized to loopback, as
	// the pprof handlers make this a debug endpoint.
	MetricsAddr string
}

// Cluster is a virtual edge deployment: a fabric plus one INSANE runtime
// per node.
//
//insane:shared
type Cluster struct {
	net   *fabric.Network  //insane:guardedby immutable after=NewCluster
	nodes map[string]*Node //insane:guardedby immutable after=NewCluster
	order []string         //insane:guardedby immutable after=NewCluster

	metricsLn  net.Listener //insane:guardedby immutable after=serveMetrics
	metricsSrv *http.Server //insane:guardedby immutable after=serveMetrics
	// metricsDone is closed by the metrics serve goroutine on exit, so
	// Close can join it instead of leaking it.
	metricsDone chan struct{} //insane:guardedby immutable after=serveMetrics
	// metricsClosed makes the endpoint shutdown exactly-once: the old
	// check-then-nil in Close was a double-close/data race when two
	// goroutines raced Close (Close is documented safe to repeat).
	metricsClosed atomic.Bool //insane:guardedby atomic
}

// Node is one edge node running an INSANE runtime.
//
//insane:shared
type Node struct {
	name string        //insane:guardedby immutable after=NewCluster
	rt   *core.Runtime //insane:guardedby immutable after=NewCluster
}

// NewCluster builds the fabric and starts a runtime on every node.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("insane: a cluster needs at least one node")
	}
	topo := opts.Topology
	if topo == TopologyAuto {
		if len(opts.Nodes) == 2 {
			topo = TopologyDirect
		} else {
			topo = TopologySwitched
		}
	}
	if topo == TopologyDirect && len(opts.Nodes) != 2 {
		return nil, fmt.Errorf("insane: direct topology needs exactly 2 nodes, got %d", len(opts.Nodes))
	}
	tb := model.Local
	if opts.Cloud {
		tb = model.Cloud
	}

	net := fabric.New(opts.Seed)
	link := fabric.LinkParams{
		Rate:      tb.LinkRate,
		PropDelay: tb.PropDelay,
		LossRate:  opts.LossRate,
		Jitter:    opts.WireJitter,
		MTU:       netstack.JumboMTU,
	}
	var sw *fabric.Switch
	if topo == TopologySwitched {
		sw = net.AddSwitch("tor", fabric.SwitchParams{Latency: tb.SwitchLatency})
	}

	// One fabric port per technology per node; IP = 10.0.<tech>.<node>.
	type nodePorts struct {
		spec  NodeSpec
		caps  datapath.Caps
		ports map[model.Tech]*fabric.Port
	}
	all := make([]nodePorts, len(opts.Nodes))
	seen := make(map[string]bool, len(opts.Nodes))
	for i, spec := range opts.Nodes {
		if spec.Name == "" {
			return nil, fmt.Errorf("insane: node %d has no name", i)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("insane: duplicate node name %q", spec.Name)
		}
		seen[spec.Name] = true
		if i > 250 {
			return nil, errors.New("insane: too many nodes")
		}
		caps := datapath.Caps{DPDK: spec.DPDK, XDP: spec.XDP, RDMA: spec.RDMA}
		ports := make(map[model.Tech]*fabric.Port)
		for _, tech := range caps.List() {
			ip := netstack.IPv4{10, 0, byte(tech), byte(i + 1)}
			p, err := net.AddHost(fmt.Sprintf("%s-%s", spec.Name, tech), ip)
			if err != nil {
				return nil, err
			}
			ports[tech] = p
			if sw != nil {
				if err := net.ConnectToSwitch(p, sw, link); err != nil {
					return nil, err
				}
			}
		}
		all[i] = nodePorts{spec: spec, caps: caps, ports: ports}
	}
	if topo == TopologyDirect {
		for tech, pa := range all[0].ports {
			if pb, ok := all[1].ports[tech]; ok {
				if err := net.ConnectDirect(pa, pb, link); err != nil {
					return nil, err
				}
			}
		}
	}

	// Peer tables: everyone knows everyone's per-tech addresses.
	addrsOf := func(np nodePorts) map[model.Tech]netstack.IPv4 {
		m := make(map[model.Tech]netstack.IPv4, len(np.ports))
		for tech, p := range np.ports {
			m[tech] = p.IP()
		}
		return m
	}

	var tenants []core.TenantSpec
	for _, ts := range opts.Tenants {
		tenants = append(tenants, core.TenantSpec{
			Name:     string(ts.ID),
			Weight:   ts.Weight,
			MemSlots: ts.MemSlots,
			TxTokens: ts.TxTokens,
			MaxClass: ts.MaxClass,
		})
	}

	c := &Cluster{net: net, nodes: make(map[string]*Node, len(all))}
	for i, np := range all {
		var peers []core.Peer
		for j, other := range all {
			if j == i {
				continue
			}
			peers = append(peers, core.Peer{Name: other.spec.Name, Addrs: addrsOf(other)})
		}
		var gcl sched.GCL
		for _, w := range np.spec.TSNSchedule {
			gcl = append(gcl, sched.GCLEntry{Duration: w.Duration, Gates: w.Classes})
		}
		rt, err := core.NewRuntime(core.Config{
			Name:             np.spec.Name,
			Testbed:          tb,
			Caps:             np.caps,
			Ports:            np.ports,
			Resolver:         net.Resolver(),
			Peers:            peers,
			GCL:              gcl,
			Tenants:          tenants,
			SharedPoller:     np.spec.SharedPoller,
			PollersPerPlugin: np.spec.PollersPerPlugin,
			Logf:             opts.Logf,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[np.spec.Name] = &Node{name: np.spec.Name, rt: rt}
		c.order = append(c.order, np.spec.Name)
	}
	if opts.MetricsAddr != "" {
		if err := c.serveMetrics(opts.MetricsAddr); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Node returns the named node, or nil if absent.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns the cluster's nodes in declaration order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.nodes[name])
	}
	return out
}

// Close stops every runtime and shuts the metrics endpoint down. Safe
// to call repeatedly and from concurrent goroutines: the CAS elects one
// closer for the metrics endpoint, and the fields stay set (immutable
// after serveMetrics) rather than being nil-ed behind a racing reader.
func (c *Cluster) Close() {
	if c.metricsSrv != nil && c.metricsClosed.CompareAndSwap(false, true) {
		_ = c.metricsSrv.Close()
		<-c.metricsDone
	}
	for _, n := range c.nodes {
		if n.rt != nil {
			_ = n.rt.Close()
		}
	}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Technologies lists the networking technologies available on the node,
// kernel UDP first.
func (n *Node) Technologies() []string {
	techs := n.rt.Techs()
	out := make([]string, len(techs))
	for i, t := range techs {
		out[i] = t.String()
	}
	return out
}

// Warnings returns the runtime's accumulated warnings (QoS fallbacks,
// reclaimed sessions, ...).
func (n *Node) Warnings() []string { return n.rt.Warnings() }

// Stats is a snapshot of a node's runtime activity.
type Stats struct {
	// TxMessages and RxMessages count data messages crossing the NIC.
	TxMessages, RxMessages uint64
	// LocalDeliveries counts co-located shared-memory deliveries.
	LocalDeliveries uint64
	// RTCDeliveries counts local deliveries made synchronously by the
	// run-to-completion fast path (a subset of LocalDeliveries);
	// RTCFallbacks counts emits on RTC-enabled streams that took the
	// queued path instead.
	RTCDeliveries, RTCFallbacks uint64
	// DroppedNoSink counts inbound messages with no subscribed sink.
	DroppedNoSink uint64
	// DroppedBackpressure counts deliveries dropped on full sink rings.
	DroppedBackpressure uint64
	// TechDowngrades counts sends below the stream's mapped technology
	// (heterogeneous peers).
	TechDowngrades uint64
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	s := n.rt.Stats()
	return Stats{
		TxMessages:          s.TxMessages,
		RxMessages:          s.RxMessages,
		LocalDeliveries:     s.LocalDeliveries,
		RTCDeliveries:       s.RTCDeliveries,
		RTCFallbacks:        s.RTCFallbacks,
		DroppedNoSink:       s.NoSinkDrops,
		DroppedBackpressure: s.RingFullDrops,
		TechDowngrades:      s.TechDowngrades,
	}
}

// Inspect renders a human-readable snapshot of the node's runtime state
// (datapaths, sessions, subscriptions, pools, counters).
func (n *Node) Inspect() string { return n.rt.Inspect() }

// SubscriberCount reports how many remote peers subscribed to a channel;
// useful to synchronize startup in examples and tests.
func (n *Node) SubscriberCount(channel int) int {
	return n.rt.SubscriberCount(uint32(channel))
}

// Runtime gives access to the underlying runtime for advanced tooling in
// this module (benchmark harness); applications should not need it.
func (n *Node) Runtime() *core.Runtime { return n.rt }
