package insane_test

import (
	"sync"
	"testing"

	"github.com/insane-mw/insane/insane"
)

// TestConcurrentSessionAndSinkClose races Session.Close against
// Sink.Close on callback sinks. The old stopDispatch used a
// check-then-close on the stop channel followed by a k.stop = nil
// write, so two concurrent closers could both see the channel open and
// double-close it (panic), or one could read stop while the other
// nil-ed it (data race). The sync.Once rewrite must survive this loop
// under -race with neither.
func TestConcurrentSessionAndSinkClose(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "edge-1", DPDK: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 50; i++ {
		sess, err := c.Node("edge-1").InitSession()
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.CreateStreamOpts()
		if err != nil {
			t.Fatal(err)
		}
		k, err := st.CreateSink(1, func(m *insane.Message) {})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			k.Close()
		}()
		go func() {
			defer wg.Done()
			if err := sess.Close(); err != nil {
				t.Errorf("session close: %v", err)
			}
		}()
		wg.Wait()
	}
}

// TestConcurrentClusterClose races Cluster.Close against itself with
// the metrics endpoint up. The old shutdown nil-ed metricsSrv and
// metricsDone after closing, so a second closer could double-Close the
// server or receive on a nil channel; the atomic.Bool CAS elects one
// closer and the fields stay immutable after serveMetrics.
func TestConcurrentClusterClose(t *testing.T) {
	for i := 0; i < 20; i++ {
		c, err := insane.NewCluster(insane.ClusterOptions{
			Nodes:       []insane.NodeSpec{{Name: "edge-1", DPDK: true}},
			MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Close()
			}()
		}
		wg.Wait()
	}
}
