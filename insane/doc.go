// Package insane is the public API of the INSANE middleware reproduction:
// a unified, QoS-aware interface to heterogeneous network acceleration
// technologies for edge cloud applications (Rosa, Garbugli, Corradi,
// Bellavista — Middleware '23).
//
// # Programming model
//
// Applications never touch a network technology directly. They open a
// Session with the local runtime, create Streams annotated with high-level
// QoS options (datapath acceleration, resource consumption, time
// sensitiveness), and open Sources and Sinks on numeric channels inside a
// stream. The runtime maps every stream to the most appropriate technology
// available on the node — RDMA, DPDK, XDP or kernel UDP — at stream
// creation time, so the same binary runs unmodified on heterogeneous edge
// nodes and keeps working after migration.
//
// All data movement is asynchronous and zero-copy: a Source borrows a
// Buffer from the runtime's memory pools, writes the payload in place and
// Emits it; a Sink either registers a callback or Consumes deliveries,
// releasing each buffer when done. There is no after-write protection:
// never touch a buffer after Emit.
//
// # Quick start
//
//	cluster, _ := insane.NewCluster(insane.ClusterOptions{
//		Nodes: []insane.NodeSpec{
//			{Name: "edge-1", DPDK: true},
//			{Name: "edge-2", DPDK: true},
//		},
//	})
//	defer cluster.Close()
//
//	sess, _ := cluster.Node("edge-1").InitSession()
//	stream, _ := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
//	src, _ := stream.CreateSource(42)
//
//	buf, _ := src.GetBuffer(64)
//	copy(buf.Payload, "hello")
//	src.Emit(buf, 5)
//
// The virtual fabric underneath (internal/fabric) stands in for the NICs
// and switches of the paper's testbeds; all timing is reported in
// calibrated virtual time (see DESIGN.md).
package insane
