package insane

import (
	"errors"
	"fmt"
	"testing"

	"github.com/insane-mw/insane/internal/core"
	"github.com/insane-mw/insane/internal/mempool"
)

// TestPublicErrTranslation pins the boundary translation: every internal
// sentinel maps to the package's own value (by identity, so both direct
// comparison and errors.Is hold), wrapped internals unwrap, and unknown
// errors pass through untouched.
func TestPublicErrTranslation(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{nil, nil},
		{core.ErrClosed, ErrClosed},
		{core.ErrBackpressure, ErrBackpressure},
		{core.ErrNoData, ErrNoData},
		{core.ErrTimeout, ErrTimeout},
		{mempool.ErrExhausted, ErrNoBuffers},
		{core.ErrTenantQuota, ErrTenantQuota},
		{mempool.ErrQuota, ErrTenantQuota},
		{fmt.Errorf("%w: dpdk", core.ErrNoDatapath), ErrNoDatapath},
		{fmt.Errorf("%w: 9999 bytes", mempool.ErrExhausted), ErrNoBuffers},
		{fmt.Errorf("%w: %q", core.ErrUnknownTenant, "ghost"), ErrUnknownTenant},
	}
	for _, c := range cases {
		if got := publicErr(c.in); got != c.want {
			t.Errorf("publicErr(%v) = %v, want %v", c.in, got, c.want)
		}
	}

	other := errors.New("application error")
	if got := publicErr(other); got != other {
		t.Errorf("unknown error rewritten to %v", got)
	}

	// The public values must be this package's own, not aliases of the
	// internal ones — the redesign stops the leak.
	if ErrClosed == core.ErrClosed || ErrBackpressure == core.ErrBackpressure {
		t.Error("public sentinels alias internal/core values")
	}
}
