package insane_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// twoNodes builds a two-node cluster where both nodes offer the given
// technologies.
func twoNodes(t *testing.T, spec insane.NodeSpec) *insane.Cluster {
	t.Helper()
	a, b := spec, spec
	a.Name, b.Name = "edge-1", "edge-2"
	c, err := insane.NewCluster(insane.ClusterOptions{Nodes: []insane.NodeSpec{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitSubs waits until node n sees k remote subscribers on channel.
func waitSubs(t *testing.T, n *insane.Node, channel, k int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for n.SubscriberCount(channel) < k {
		if time.Now().After(deadline) {
			t.Fatalf("subscription on channel %d not learned", channel)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// consumeWithin pops one delivery with a deadline, the test-side idiom
// for the context-aware consume call.
func consumeWithin(k *insane.Sink, d time.Duration) (*insane.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return k.ConsumeContext(ctx)
}

func send(t *testing.T, src *insane.Source, payload []byte) uint32 {
	t.Helper()
	b, err := src.GetBuffer(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Payload, payload)
	tok, err := src.Emit(b, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestClusterValidation(t *testing.T) {
	if _, err := insane.NewCluster(insane.ClusterOptions{}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:    []insane.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Topology: insane.TopologyDirect,
	}); err == nil {
		t.Error("3-node direct topology accepted")
	}
	if _, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a"}, {Name: "a"}},
	}); err == nil {
		t.Error("duplicate node names accepted")
	}
	if _, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{}},
	}); err == nil {
		t.Error("unnamed node accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true})
	sess1, err := c.Node("edge-1").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := c.Node("edge-2").InitSession()
	if err != nil {
		t.Fatal(err)
	}
	st1, err := sess1.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Technology() != "dpdk" {
		t.Fatalf("fast stream on DPDK nodes → %s", st1.Technology())
	}
	st2, _ := sess2.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	sink, err := st2.CreateSink(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, c.Node("edge-1"), 42, 1)
	src, err := st1.CreateSource(42)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("hello edge cloud")
	tok := send(t, src, msg)

	got, err := consumeWithin(sink, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, msg) {
		t.Errorf("payload = %q, want %q", got.Payload, msg)
	}
	if got.Channel != 42 {
		t.Errorf("channel = %d", got.Channel)
	}
	if got.Latency <= 0 {
		t.Error("latency not accounted")
	}
	s, n, r, p := got.Breakdown()
	if s+n+r+p != got.Latency {
		t.Error("breakdown does not sum to latency")
	}
	sink.Release(got)

	deadline := time.Now().Add(time.Second)
	for {
		if o, ok := src.EmitOutcome(tok); ok {
			if o.RemotePeers != 1 || o.Err != nil {
				t.Fatalf("outcome = %+v", o)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no outcome")
		}
		time.Sleep(time.Millisecond)
	}

	if err := sess1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCallbackSink(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{})
	sess1, _ := c.Node("edge-1").InitSession()
	sess2, _ := c.Node("edge-2").InitSession()
	st1, _ := sess1.CreateStreamOpts()
	st2, _ := sess2.CreateStreamOpts()

	var mu sync.Mutex
	var got [][]byte
	sink, err := st2.CreateSink(7, func(m *insane.Message) {
		mu.Lock()
		got = append(got, append([]byte(nil), m.Payload...))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, c.Node("edge-1"), 7, 1)
	src, _ := st1.CreateSource(7)
	for i := 0; i < 5; i++ {
		send(t, src, []byte{byte(i)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("callback saw %d of 5 messages", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if len(m) != 1 || m[0] != byte(i) {
			t.Errorf("message %d = %v", i, m)
		}
	}
	sink.Close()
	sink.Close() // idempotent
}

func TestFallbackVisibleToApplication(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{}) // kernel only
	sess, _ := c.Node("edge-1").InitSession()
	st, err := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack() || st.Technology() != "kernel-udp" {
		t.Errorf("fallback not visible: tech=%s fellback=%v", st.Technology(), st.FellBack())
	}
	if len(c.Node("edge-1").Warnings()) == 0 {
		t.Error("no warning recorded")
	}
}

func TestFrugalResourcesPickXDP(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true, XDP: true})
	sess, _ := c.Node("edge-1").InitSession()
	st, _ := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast), insane.WithResources(insane.Frugal))
	if st.Technology() != "xdp" {
		t.Errorf("frugal fast stream = %s, want xdp", st.Technology())
	}
	st2, _ := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if st2.Technology() != "dpdk" {
		t.Errorf("unconstrained fast stream = %s, want dpdk", st2.Technology())
	}
}

func TestNodeIntrospection(t *testing.T) {
	c := twoNodes(t, insane.NodeSpec{DPDK: true, RDMA: true})
	n := c.Node("edge-1")
	techs := n.Technologies()
	if len(techs) != 3 || techs[0] != "kernel-udp" {
		t.Errorf("technologies = %v", techs)
	}
	if c.Node("nope") != nil {
		t.Error("unknown node lookup returned non-nil")
	}
	if len(c.Nodes()) != 2 || c.Nodes()[0].Name() != "edge-1" {
		t.Error("Nodes() order wrong")
	}
	var st insane.Stats = n.Stats()
	if st.TxMessages != 0 {
		t.Error("fresh node has traffic")
	}
}

// TestMigrationScenario is the paper's core motivation: a component using
// a fast stream on a DPDK node migrates to a kernel-only node; the same
// code re-attaches and keeps communicating, just on a slower plane.
func TestMigrationScenario(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "edge-dpdk", DPDK: true},
			{Name: "edge-bare"},
			{Name: "cloud", DPDK: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The consumer runs on "cloud" throughout.
	cloudSess, _ := c.Node("cloud").InitSession()
	cloudStream, _ := cloudSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	sink, _ := cloudStream.CreateSink(99, nil)
	defer sink.Close()

	// Component runs on the DPDK node first: the exact same code block is
	// executed on both nodes (the portability claim).
	runComponent := func(node *insane.Node, payload []byte) (string, bool) {
		sess, err := node.InitSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		st, err := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
		if err != nil {
			t.Fatal(err)
		}
		waitSubs(t, node, 99, 1)
		src, err := st.CreateSource(99)
		if err != nil {
			t.Fatal(err)
		}
		send(t, src, payload)
		return st.Technology(), st.FellBack()
	}

	tech1, fb1 := runComponent(c.Node("edge-dpdk"), []byte("from dpdk node"))
	m1, err := consumeWithin(sink, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(m1)

	tech2, fb2 := runComponent(c.Node("edge-bare"), []byte("from bare node"))
	m2, err := consumeWithin(sink, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(m2)

	if tech1 != "dpdk" || fb1 {
		t.Errorf("pre-migration: tech=%s fellback=%v, want dpdk", tech1, fb1)
	}
	if tech2 != "kernel-udp" || !fb2 {
		t.Errorf("post-migration: tech=%s fellback=%v, want kernel fallback", tech2, fb2)
	}
}

func TestSwitchedTopologyThreeNodes(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sessA, _ := c.Node("a").InitSession()
	stA, _ := sessA.CreateStreamOpts()
	var sinks []*insane.Sink
	for _, name := range []string{"b", "c"} {
		sess, _ := c.Node(name).InitSession()
		st, _ := sess.CreateStreamOpts()
		k, err := st.CreateSink(5, nil)
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, k)
	}
	waitSubs(t, c.Node("a"), 5, 2)
	src, _ := stA.CreateSource(5)
	send(t, src, []byte("multicast"))
	for i, k := range sinks {
		m, err := consumeWithin(k, 2*time.Second)
		if err != nil {
			t.Fatalf("sink %d: %v", i, err)
		}
		if string(m.Payload) != "multicast" {
			t.Errorf("sink %d payload = %q", i, m.Payload)
		}
		k.Release(m)
	}
}

func TestLossyLinkBestEffort(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes:    []insane.NodeSpec{{Name: "a"}, {Name: "b"}},
		LossRate: 0.3,
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sessA, _ := c.Node("a").InitSession()
	sessB, _ := c.Node("b").InitSession()
	stA, _ := sessA.CreateStreamOpts()
	stB, _ := sessB.CreateStreamOpts()
	sink, _ := stB.CreateSink(1, nil)

	// The SUB itself may be lost: keep re-creating sinks until the
	// subscription lands (applications would re-announce; the control
	// plane is best-effort like everything else, §5.2).
	deadline := time.Now().Add(3 * time.Second)
	for c.Node("a").SubscriberCount(1) == 0 {
		if time.Now().After(deadline) {
			t.Skip("subscription never survived the lossy link")
		}
		extra, _ := stB.CreateSink(1, nil)
		extra.Close()
		time.Sleep(time.Millisecond)
	}

	src, _ := stA.CreateSource(1)
	const total = 200
	for i := 0; i < total; i++ {
		send(t, src, []byte{byte(i)})
	}
	received := 0
	for {
		m, err := consumeWithin(sink, 100*time.Millisecond)
		if err != nil {
			break
		}
		received++
		sink.Release(m)
	}
	if received == 0 || received >= total {
		t.Errorf("received %d of %d over a 30%% lossy link", received, total)
	}
}
