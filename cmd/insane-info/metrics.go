package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/insane-mw/insane/insane"
)

// metricsSmoke boots a small two-node cluster, pushes a burst of traffic
// through it, scrapes its own Prometheus endpoint over HTTP and prints
// the exposition verbatim. It doubles as the CI smoke test for the
// /metrics surface (make metrics-smoke).
func metricsSmoke(w io.Writer, addr string) error {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "alpha", DPDK: true, RDMA: true},
			{Name: "beta", DPDK: true, RDMA: true},
		},
		// A declared tenant so the scrape also covers the per-tenant
		// metric families (DESIGN.md §12).
		Tenants:     []insane.TenantSpec{{ID: "smoke", Weight: 2}},
		MetricsAddr: addr,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	if err := metricsTraffic(cluster); err != nil {
		return err
	}

	resp, err := http.Get("http://" + cluster.MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: unexpected status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// metricsTraffic runs a short pub/sub exchange so every pipeline stage
// has observations before the scrape.
func metricsTraffic(cluster *insane.Cluster) error {
	const channel, messages = 7, 64

	sub, err := cluster.Node("beta").InitSession(insane.WithTenant("smoke"))
	if err != nil {
		return err
	}
	defer sub.Close()
	subStream, err := sub.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	sink, err := subStream.CreateSink(channel, nil)
	if err != nil {
		return err
	}

	pub, err := cluster.Node("alpha").InitSession(insane.WithTenant("smoke"))
	if err != nil {
		return err
	}
	defer pub.Close()
	pubStream, err := pub.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	src, err := pubStream.CreateSource(channel)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Node("alpha").SubscriberCount(channel) == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}

	for i := 0; i < messages; i++ {
		buf, err := src.GetBuffer(64)
		if err != nil {
			return err
		}
		n := copy(buf.Payload, fmt.Sprintf("reading %d", i))
		if _, err := src.Emit(buf, n); err != nil {
			src.Abort(buf)
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		m, err := sink.ConsumeContext(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		sink.Release(m)
	}
	return nil
}
