// Command insane-info prints the static system information of the
// reproduction: the technology capability matrix (Table 1), the testbed
// profiles (Table 2), and the QoS mapping decision table.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/insane-mw/insane/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "insane-info:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("insane-info", flag.ContinueOnError)
	var (
		testbeds = fs.Bool("testbeds", false, "print only the testbed profiles")
		qosTable = fs.Bool("qos", false, "print only the QoS mapping table")
		metrics  = fs.Bool("metrics", false, "boot a 2-node cluster, run traffic, and print its Prometheus /metrics scrape")
		addr     = fs.String("metrics-addr", "127.0.0.1:0", "listen address for -metrics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics {
		return metricsSmoke(os.Stdout, *addr)
	}
	ids := []string{"table1", "table2", "ablation-qos"}
	if *testbeds {
		ids = []string{"table2"}
	}
	if *qosTable {
		ids = []string{"ablation-qos"}
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, experiments.RunConfig{})
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		fmt.Println()
	}
	return nil
}
