package main

import "testing"

func TestRunAll(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTestbedsOnly(t *testing.T) {
	if err := run([]string{"-testbeds"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQoSOnly(t *testing.T) {
	if err := run([]string{"-qos"}); err != nil {
		t.Fatal(err)
	}
}
