// Command lunar-demo runs the two INSANE-based applications of §7 end to
// end on a virtual three-node edge deployment: Lunar MoM distributing
// sensor readings, then Lunar Streaming pushing raw HD camera frames, and
// prints what the middleware did underneath.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/lunar/mom"
	"github.com/insane-mw/insane/lunar/streaming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lunar-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "sensor-gw", DPDK: true},
			{Name: "edge-dc", DPDK: true, RDMA: true},
			{Name: "bare-node"},
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	fmt.Println("== virtual edge deployment ==")
	for _, n := range cluster.Nodes() {
		fmt.Printf("  %-10s techs=%v\n", n.Name(), n.Technologies())
	}

	if err := momDemo(cluster); err != nil {
		return err
	}
	if err := streamingDemo(cluster); err != nil {
		return err
	}

	fmt.Println("\n== per-stage telemetry after the demo ==")
	for _, n := range cluster.Nodes() {
		m := n.Metrics()
		fmt.Printf("  %-10s emits=%d consumes=%d tx=%d rx=%d local=%d backpressure=%d\n",
			n.Name(), m.Emits, m.Consumes, m.TxMessages, m.RxMessages,
			m.LocalDeliveries, m.EmitBackpressure)
		if m.ConsumeLatency.Count > 0 {
			fmt.Printf("  %-10s consume latency p50=%v p99=%v  stages p99: send=%v net=%v recv=%v proc=%v\n",
				n.Name(), m.ConsumeLatency.P50, m.ConsumeLatency.P99,
				m.StageSend.P99, m.StageNetwork.P99, m.StageRecv.P99, m.StageProcessing.P99)
		}
	}

	fmt.Println("\n== runtime state after the demo ==")
	for _, n := range cluster.Nodes() {
		fmt.Print(n.Inspect())
	}
	return nil
}

// momDemo publishes sensor readings from the gateway; the edge DC and the
// bare node subscribe — each on the best technology its hardware has.
func momDemo(cluster *insane.Cluster) error {
	fmt.Println("\n== Lunar MoM: decentralized pub/sub ==")
	gw, err := mom.New(cluster.Node("sensor-gw"), insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer gw.Close()
	fmt.Printf("  sensor-gw publishes over %s\n", gw.Technology())

	var received atomic.Int64
	for _, name := range []string{"edge-dc", "bare-node"} {
		sub, err := mom.New(cluster.Node(name), insane.Options{Datapath: insane.Fast})
		if err != nil {
			return err
		}
		defer sub.Close()
		node := name
		tech := sub.Technology()
		err = sub.Subscribe("plant/line1/temp", func(payload []byte, m mom.Meta) {
			received.Add(1)
			fmt.Printf("  %-10s got %q (stream tech %s) one-way %v (send %v / net %v / recv %v / proc %v)\n",
				node, payload, tech, m.Latency,
				m.Stages.Send, m.Stages.Network, m.Stages.Recv, m.Stages.Processing)
		})
		if err != nil {
			return err
		}
	}
	waitFor(func() bool {
		return cluster.Node("sensor-gw").SubscriberCount(mom.TopicChannel("plant/line1/temp")) >= 2
	})

	for i := 0; i < 3; i++ {
		msg := fmt.Sprintf("23.%d C", i)
		if err := gw.Publish("plant/line1/temp", []byte(msg)); err != nil {
			return err
		}
	}
	waitFor(func() bool { return received.Load() >= 6 })
	fmt.Printf("  downgrades on sensor-gw: %d (bare-node has no DPDK plane)\n",
		cluster.Node("sensor-gw").Stats().TechDowngrades)
	return nil
}

// streamingDemo pushes three raw HD frames from the gateway camera to the
// edge DC.
func streamingDemo(cluster *insane.Cluster) error {
	fmt.Println("\n== Lunar Streaming: raw HD frames ==")
	client, err := streaming.Connect(cluster.Node("edge-dc"), "cam0", insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer client.Close()
	waitFor(func() bool {
		return cluster.Node("sensor-gw").SubscriberCount(streaming.StreamChannel("cam0")) >= 1
	})
	server, err := streaming.OpenServer(cluster.Node("sensor-gw"), "cam0", insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer server.Close()

	frame := make([]byte, 2_760_000) // HD raw RGB (Table 4)
	for i := range frame {
		frame[i] = byte(i)
	}
	for i := 0; i < 3; i++ {
		frags, err := server.SendFrame(frame)
		if err != nil {
			return err
		}
		got, err := client.NextFrame(10 * time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  frame %d: %d fragments, %.2f MB reassembled, per-fragment one-way %v (send %v / net %v / recv %v / proc %v)\n",
			got.ID, frags, float64(len(got.Data))/1e6, got.Latency,
			got.Stages.Send, got.Stages.Network, got.Stages.Recv, got.Stages.Processing)
	}
	return nil
}

// waitFor polls a condition with a 5s deadline.
func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}
