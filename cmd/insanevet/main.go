// Command insanevet vets the INSANE tree for violations of the runtime
// conventions the compiler cannot check: zero-copy buffer ownership
// (§5.1), poller lock ordering (§5.3), atomic-counter discipline and
// timebase-routed clock reads. See README, "Static analysis".
//
// Usage:
//
//	go run ./cmd/insanevet ./...        # whole module (CI entry point)
//	go run ./cmd/insanevet -list        # describe the rules
//	go run ./cmd/insanevet ./internal/core ./insane/...
//
// Findings print in go-vet style; the command exits non-zero when any
// survive suppression. Waive one with an explicit, reasoned directive:
//
//	//lint:ignore insanevet/<rule> <reason>
package main

import (
	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/multichecker"
)

func main() {
	multichecker.Main(lint.Analyzers()...)
}
