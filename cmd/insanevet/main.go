// Command insanevet vets the INSANE tree for violations of the runtime
// conventions the compiler cannot check: zero-copy buffer ownership
// (§5.1), poller lock ordering (§5.3) with a whole-program lock-cycle
// proof, atomic-counter discipline, timebase-routed clock reads,
// errors.Is discipline on wrapped sentinels, channel/WaitGroup misuse
// (syncmisuse), and — via the whole-program hotpathcheck and
// goroutinecheck rules — freedom from allocation and blocking on every
// //insane:hotpath-rooted call chain, and a verified owner and stop
// path for every goroutine the runtime spawns (annotated with
// //insane:goroutine owner=<type> stop=<method>). The archcheck rule
// fences imports to the layering declared in ARCH.layers (a stale spec
// aborts the run), boundedcheck proves every loop reachable from a
// hot-path root bounded by a compile-time constant or waived with a
// verified //insane:bounded by=<reason> annotation, paircheck proves
// every //insane:acquire balanced by a release or transfer on all
// control-flow paths, and guardcheck proves every field of an
// //insane:shared struct accessed under its declared synchronization
// regime (//insane:guardedby mu=<lock> | atomic | rcu=<publisher> |
// confined owner=<func> | immutable after=<init>), whole-program, with
// caller-held lock obligations propagated through *Locked functions
// and stale //insane:unguarded waivers reported as findings. See
// README, "Static analysis".
//
// Usage:
//
//	go run ./cmd/insanevet ./...               # whole module (CI entry point)
//	go run ./cmd/insanevet -list               # describe the rules
//	go run ./cmd/insanevet -json ./...         # findings as JSON (CI annotation)
//	go run ./cmd/insanevet -run hotpathcheck ./...
//
// Findings print in go-vet style. Exit codes: 0 clean, 1 findings,
// 2 usage or load error — including packages that failed to parse or
// type-check, which are listed on stderr and treated as a failure so a
// silent skip can never let violations through. Waive one finding with
// an explicit, reasoned directive:
//
//	//lint:ignore insanevet/<rule> <reason>
package main

import (
	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/multichecker"
)

func main() {
	multichecker.Main(lint.Analyzers()...)
}
