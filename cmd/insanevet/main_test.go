package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/multichecker"
)

func TestListAnalyzers(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-list"}, &out, &errw, lint.Analyzers()...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw.String())
	}
	for _, name := range []string{"bufownership", "lockorder", "atomicfield", "timebase"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestDirtyModuleFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-C", "testdata/dirty", "./..."}, &out, &errw, lint.Analyzers()...)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "used after Emit") {
		t.Errorf("expected a bufownership finding, got:\n%s", out.String())
	}
}

func TestBadPatternFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"./no/such/dir"}, &out, &errw, lint.Analyzers()...)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a load error", code)
	}
}
