package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/multichecker"
)

func TestListAnalyzers(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-list"}, &out, &errw, lint.Analyzers()...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw.String())
	}
	for _, name := range []string{"bufownership", "lockorder", "atomicfield", "timebase", "hotpathcheck", "sentinelcompare"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestDirtyModuleFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-C", "testdata/dirty", "./..."}, &out, &errw, lint.Analyzers()...)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "used after Emit") {
		t.Errorf("expected a bufownership finding, got:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json wire form CI consumes: a parseable
// array whose entries carry analyzer, position and message.
func TestJSONOutput(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-C", "testdata/dirty", "-json", "./..."}, &out, &errw, lint.Analyzers()...)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty array for a dirty module")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestBrokenModuleSkipsAndFails: a package that cannot be type-checked
// was never analyzed, so the driver must name it and exit 2.
func TestBrokenModuleSkipsAndFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-C", "testdata/broken", "./..."}, &out, &errw, lint.Analyzers()...)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "skipped") {
		t.Errorf("stderr does not announce skipped packages:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "broken") {
		t.Errorf("stderr does not name the skipped package:\n%s", errw.String())
	}
}

// TestUnknownAnalyzerName: -run with a name not in the suite is a
// usage error.
func TestUnknownAnalyzerName(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"-run", "nosuch", "./..."}, &out, &errw, lint.Analyzers()...)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no analyzer named") {
		t.Errorf("stderr missing the unknown-name message:\n%s", errw.String())
	}
}

func TestBadPatternFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := multichecker.Run([]string{"./no/such/dir"}, &out, &errw, lint.Analyzers()...)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a load error", code)
	}
}
