// Package dirty is a deliberately violating module used by the driver
// test: insanevet must exit 1 on it.
package dirty

// Buffer mimics the zero-copy send buffer.
type Buffer struct{ Payload []byte }

// Source mimics the client-library producer.
type Source struct{}

// Emit mimics the ownership-transferring send, annotated the way the
// real client library is so the registry-driven bufownership rule
// recognizes it as consuming.
//
//insane:transfer resource=slot on=nilerr
func (s *Source) Emit(b *Buffer, n int) (uint32, error) { _ = b; return 0, nil }

// Bad touches a buffer after emitting it.
func Bad(s *Source, b *Buffer) byte {
	s.Emit(b, 1)
	return b.Payload[0]
}
