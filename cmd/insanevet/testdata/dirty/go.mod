module example.com/dirty

go 1.22
