// Package broken fails to type-check; the driver must report it as
// skipped and exit 2 rather than silently passing a tree it never
// analyzed.
package broken

func oops() int {
	return "not an int"
}
