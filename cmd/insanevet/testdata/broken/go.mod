module example.com/broken

go 1.22
