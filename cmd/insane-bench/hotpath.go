// Hot-path baseline mode: measures the middleware's real wall-clock
// steady-state operations (borrow → emit → shared-memory delivery →
// consume → release) and writes BENCH_hotpath.json via internal/bench.
// This is the perf trajectory future changes regress against; the
// allocation-gate tests assert the same path stays at 0 allocs/op.

package main

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
)

// hotpathWarmup fills the wrapper pools, poller caches and topology
// snapshots before measurement starts, so one-time costs don't bill the
// steady state.
const hotpathWarmup = 500

// runHotpath measures the hot-path suite and writes the JSON baseline.
func runHotpath(path string, iters int) error {
	specs := []struct {
		name  string
		size  int
		sinks int
	}{
		{name: "emit-consume-local/64B", size: 64, sinks: 1},
		{name: "emit-consume-local/4KB", size: 4096, sinks: 1},
		{name: "emit-consume-fanout/64B-4sinks", size: 64, sinks: 4},
	}
	results := make([]bench.HotpathResult, 0, len(specs))
	for _, spec := range specs {
		res, err := measureEmitConsume(spec.name, spec.size, spec.sinks, iters)
		if err != nil {
			return err
		}
		fmt.Println(res)
		results = append(results, res)
	}
	if err := bench.WriteHotpathJSON(path, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// measureEmitConsume times one publish→deliver configuration on a quiet
// kernel-only cluster (no simulated busy-poll planes), so the numbers
// isolate the middleware's own path.
func measureEmitConsume(name string, size, nsinks, iters int) (bench.HotpathResult, error) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		return bench.HotpathResult{}, err
	}
	defer cluster.Close()
	sess, err := cluster.Node("a").InitSession()
	if err != nil {
		return bench.HotpathResult{}, err
	}
	defer sess.Close()
	st, err := sess.CreateStream(insane.Options{})
	if err != nil {
		return bench.HotpathResult{}, err
	}
	sinks := make([]*insane.Sink, nsinks)
	for i := range sinks {
		if sinks[i], err = st.CreateSink(1, nil); err != nil {
			return bench.HotpathResult{}, err
		}
	}
	src, err := st.CreateSource(1)
	if err != nil {
		return bench.HotpathResult{}, err
	}
	op := func() error {
		buf, err := src.GetBuffer(size)
		if err != nil {
			return err
		}
		if _, err := src.Emit(buf, size); err != nil {
			return err
		}
		for _, k := range sinks {
			msg, err := k.ConsumeTimeout(time.Second)
			if err != nil {
				return err
			}
			k.Release(msg)
		}
		return nil
	}
	for i := 0; i < hotpathWarmup; i++ {
		if err := op(); err != nil {
			return bench.HotpathResult{}, fmt.Errorf("warmup: %w", err)
		}
	}
	return bench.MeasureHotpath(name, iters, op)
}
