// Hot-path baseline mode: measures the middleware's real wall-clock
// steady-state operations (borrow → emit → shared-memory delivery →
// consume → release) and writes BENCH_hotpath.json via internal/bench.
// This is the perf trajectory future changes regress against; the
// allocation-gate tests assert the same path stays at 0 allocs/op.

package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
)

// hotpathWarmup fills the wrapper pools, poller caches and topology
// snapshots before measurement starts, so one-time costs don't bill the
// steady state.
const hotpathWarmup = 500

// hotpathSpecs is the measured suite: the queued path at two payload
// sizes and a fanout, plus run-to-completion variants of each (the
// 4-sink fanout sits exactly at the RTC admission limit, so it measures
// the fast path's worst admitted case).
var hotpathSpecs = []struct {
	name  string
	size  int
	sinks int
	rtc   bool
}{
	{name: "emit-consume-local/64B", size: 64, sinks: 1},
	{name: "emit-consume-local/4KB", size: 4096, sinks: 1},
	{name: "emit-consume-fanout/64B-4sinks", size: 64, sinks: 4},
	{name: "emit-consume-local-rtc/64B", size: 64, sinks: 1, rtc: true},
	{name: "emit-consume-local-rtc/4KB", size: 4096, sinks: 1, rtc: true},
	{name: "emit-consume-fanout-rtc/64B-4sinks", size: 64, sinks: 4, rtc: true},
}

// measureHotpathSuite runs every spec and returns the results.
func measureHotpathSuite(iters int) ([]bench.HotpathResult, error) {
	results := make([]bench.HotpathResult, 0, len(hotpathSpecs))
	for _, spec := range hotpathSpecs {
		res, err := measureEmitConsume(spec.name, spec.size, spec.sinks, iters, spec.rtc)
		if err != nil {
			return nil, err
		}
		fmt.Println(res)
		results = append(results, res)
	}
	return results, nil
}

// runHotpath measures the hot-path and throughput suites and writes the
// JSON baseline.
func runHotpath(path string, iters int) error {
	results, err := measureHotpathSuite(iters)
	if err != nil {
		return err
	}
	// Scale the throughput run with the requested precision so CI's
	// short-iteration smoke stays short.
	throughput, err := runThroughput(iters)
	if err != nil {
		return err
	}
	if err := bench.WriteHotpathJSON(path, results, throughput); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runCompare re-measures the hot-path suite and gates it against a
// committed baseline: exit non-zero when any entry regresses more than
// tolerance in ns/op or rises at all in allocs/op.
func runCompare(path string, iters int, tolerance float64) error {
	baseline, err := bench.ReadHotpathJSON(path)
	if err != nil {
		return err
	}
	fresh, err := measureHotpathSuite(iters)
	if err != nil {
		return err
	}
	report, failed := bench.CompareHotpath(baseline, fresh, tolerance)
	fmt.Print(report)
	if failed {
		return fmt.Errorf("hot-path regression against %s (tolerance %.0f%%)", path, tolerance*100)
	}
	fmt.Printf("no regression against %s (tolerance %.0f%%)\n", path, tolerance*100)
	return nil
}

// measureEmitConsume times one publish→deliver configuration on a quiet
// kernel-only cluster (no simulated busy-poll planes), so the numbers
// isolate the middleware's own path. With rtc set the stream opts into
// the run-to-completion fast path; the measurement double-checks that
// the fast path actually ran (zero fallbacks), so a silently degraded
// configuration cannot masquerade as an RTC number.
func measureEmitConsume(name string, size, nsinks, iters int, rtc bool) (bench.HotpathResult, error) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		return bench.HotpathResult{}, err
	}
	defer cluster.Close()
	sess, err := cluster.Node("a").InitSession()
	if err != nil {
		return bench.HotpathResult{}, err
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts(insane.WithRunToCompletion(rtc))
	if err != nil {
		return bench.HotpathResult{}, err
	}
	sinks := make([]*insane.Sink, nsinks)
	for i := range sinks {
		if sinks[i], err = st.CreateSink(1, nil); err != nil {
			return bench.HotpathResult{}, err
		}
	}
	src, err := st.CreateSource(1)
	if err != nil {
		return bench.HotpathResult{}, err
	}
	// One deadline context reused across the whole measured run keeps
	// ConsumeContext on the pooled-timer path, so the context adds no
	// per-op allocation to the number being measured.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	op := func() error {
		buf, err := src.GetBuffer(size)
		if err != nil {
			return err
		}
		if _, err := src.Emit(buf, size); err != nil {
			src.Abort(buf)
			return err
		}
		for _, k := range sinks {
			msg, err := k.ConsumeContext(ctx)
			if err != nil {
				return err
			}
			k.Release(msg)
		}
		return nil
	}
	res, err := bench.MeasureHotpath(name, iters, hotpathWarmup, op)
	if err != nil {
		return res, err
	}
	if rtc {
		s := cluster.Node("a").Stats()
		if s.RTCDeliveries == 0 || s.RTCFallbacks > 0 {
			return res, errors.New(name + ": run-to-completion path did not engage " +
				fmt.Sprintf("(rtc=%d fallbacks=%d)", s.RTCDeliveries, s.RTCFallbacks))
		}
	}
	return res, nil
}
