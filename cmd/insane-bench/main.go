// Command insane-bench regenerates the paper's evaluation: every table
// and figure of §6-§7 plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	insane-bench                  # run everything
//	insane-bench -experiment fig7a
//	insane-bench -list
//	insane-bench -rounds 1000 -jobs 20000
//	insane-bench -hotpath BENCH_hotpath.json   # hot-path baseline only
//	insane-bench -isolation -isolation-out BENCH_isolation.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/insane-mw/insane/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "insane-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("insane-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id to run, or 'all'")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		rounds     = fs.Int("rounds", 0, "ping-pong rounds for latency experiments (0 = default)")
		jobs       = fs.Int("jobs", 0, "messages for simulated throughput runs (0 = default)")
		hotpath    = fs.String("hotpath", "", "measure the hot-path suite and write this JSON baseline file")
		hotIters   = fs.Int("hotpath-iters", 20000, "iterations per hot-path measurement")
		throughput = fs.Bool("throughput", false, "measure multi-core throughput (pollers × streams) and print packets/sec")
		compare    = fs.String("compare", "", "re-measure the hot-path suite and fail on regression against this baseline file")
		tolerance  = fs.Float64("compare-tolerance", 0.10, "ns/op headroom for -compare (0.10 = +10%)")
		isolation  = fs.Bool("isolation", false, "run the tenant timing-isolation scenario and fail if the TSN p99.9 exceeds -isolation-budget")
		isoOut     = fs.String("isolation-out", "", "write the isolation results to this JSON baseline file")
		isoMsgs    = fs.Int("isolation-msgs", 5000, "paced TSN messages per isolation scenario")
		isoBudget  = fs.Duration("isolation-budget", 5*time.Millisecond, "TSN p99.9 ceiling for -isolation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	if *compare != "" {
		return runCompare(*compare, *hotIters, *tolerance)
	}
	if *isolation {
		return runIsolation(*isoOut, *isoMsgs, *isoBudget)
	}
	if *throughput {
		_, err := runThroughput(*hotIters)
		return err
	}
	if *hotpath != "" {
		if err := runHotpath(*hotpath, *hotIters); err != nil {
			return err
		}
		// Baseline mode runs the experiments only when explicitly asked.
		if *experiment == "all" {
			return nil
		}
	}
	cfg := experiments.RunConfig{Rounds: *rounds, Jobs: *jobs}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
