// Multi-core throughput mode (-throughput): drives pollers × streams
// worth of concurrent emit→deliver→consume traffic through one node and
// reports aggregate packets/sec plus per-stage virtual-time breakdowns
// from the runtime's telemetry. This is the scaling axis of the paper's
// §8 receive-side parallelism discussion: the hot-path suite proves the
// single-message latency floor, this mode proves the rate holds up when
// every core is busy.

package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
)

// throughputPollerPoints are the polling-thread counts the committed
// baseline records (pps at 1, 2 and 4 pollers per plugin).
var throughputPollerPoints = []int{1, 2, 4}

// runThroughput measures the throughput suite and prints the results;
// used both standalone (-throughput) and by the baseline writer.
func runThroughput(packetsPerStream int) ([]bench.ThroughputResult, error) {
	results := make([]bench.ThroughputResult, 0, len(throughputPollerPoints))
	for _, pollers := range throughputPollerPoints {
		streams := pollers * 2 // keep every poller fed by two producers
		res, err := measureThroughput(
			fmt.Sprintf("throughput/64B-%dp", pollers),
			pollers, streams, 64, packetsPerStream)
		if err != nil {
			return nil, err
		}
		fmt.Println(res)
		results = append(results, res)
	}
	return results, nil
}

// measureThroughput runs streams concurrent producer/consumer pairs on
// one node with the given polling-thread count. Each stream gets its own
// session (hence its own single-producer TX lane) and its own channel,
// so the topology exercises the per-(session,technology) lane design
// rather than serializing on a shared ring.
func measureThroughput(name string, pollers, streams, size, packets int) (bench.ThroughputResult, error) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a", PollersPerPlugin: pollers}},
	})
	if err != nil {
		return bench.ThroughputResult{}, err
	}
	defer cluster.Close()
	node := cluster.Node("a")

	type pair struct {
		src  *insane.Source
		sink *insane.Sink
	}
	pairs := make([]pair, streams)
	sessions := make([]*insane.Session, streams)
	for i := 0; i < streams; i++ {
		sess, err := node.InitSession()
		if err != nil {
			return bench.ThroughputResult{}, err
		}
		sessions[i] = sess
		st, err := sess.CreateStreamOpts()
		if err != nil {
			return bench.ThroughputResult{}, err
		}
		sink, err := st.CreateSink(100+i, nil)
		if err != nil {
			return bench.ThroughputResult{}, err
		}
		src, err := st.CreateSource(100 + i)
		if err != nil {
			return bench.ThroughputResult{}, err
		}
		pairs[i] = pair{src: src, sink: sink}
	}
	defer func() {
		for _, s := range sessions {
			_ = s.Close()
		}
	}()

	// Warm the wrapper pools and topology caches before timing.
	for _, p := range pairs {
		for w := 0; w < 64; w++ {
			if err := pumpOne(p.src, p.sink, size); err != nil {
				return bench.ThroughputResult{}, fmt.Errorf("warmup: %w", err)
			}
		}
	}

	errs := make(chan error, 2*streams)
	var wg sync.WaitGroup
	start := time.Now()
	for _, p := range pairs {
		wg.Add(2)
		go func(src *insane.Source) {
			defer wg.Done()
			for n := 0; n < packets; n++ {
				if err := emitRetry(src, size); err != nil {
					errs <- err
					return
				}
			}
		}(p.src)
		go func(sink *insane.Sink) {
			defer wg.Done()
			// One deadline context reused across the drain loop keeps
			// ConsumeContext on the allocation-free pooled-timer path; the
			// deadline is a liveness guard for the whole drain, not a
			// per-message budget.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for n := 0; n < packets; n++ {
				msg, err := sink.ConsumeContext(ctx)
				if err != nil {
					errs <- err
					return
				}
				sink.Release(msg)
			}
		}(p.sink)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return bench.ThroughputResult{}, err
		}
	}

	m := node.Metrics()
	total := streams * packets
	return bench.ThroughputResult{
		Name:          name,
		Pollers:       pollers,
		Streams:       streams,
		Packets:       total,
		Elapsed:       elapsed.Seconds(),
		PacketsPerSec: float64(total) / elapsed.Seconds(),
		SchedDwellNs:  float64(m.SchedDwell.Mean.Nanoseconds()),
		DeliverNs:     float64(m.DeliverLatency.Mean.Nanoseconds()),
	}, nil
}

// pumpOne sends and consumes a single message on one stream pair.
func pumpOne(src *insane.Source, sink *insane.Sink, size int) error {
	if err := emitRetry(src, size); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msg, err := sink.ConsumeContext(ctx)
	if err != nil {
		return err
	}
	sink.Release(msg)
	return nil
}

// emitRetry emits one message, retrying transient backpressure: a full
// TX lane or exhausted slot pool just means the consumer side is
// behind. Retries yield — and, when the pressure persists, sleep — so
// a spinning producer cannot starve the polling threads on a machine
// with few cores.
func emitRetry(src *insane.Source, size int) error {
	var buf *insane.Buffer
	for attempt := 0; attempt < 1_000_000; attempt++ {
		var err error
		if buf == nil {
			buf, err = src.GetBuffer(size)
		}
		if err == nil {
			// On ErrBackpressure ownership stays with us: retry the same
			// buffer next pass.
			if _, err = src.Emit(buf, size); err == nil {
				return nil
			}
			if !errors.Is(err, insane.ErrBackpressure) {
				src.Abort(buf)
				return err
			}
		} else if !errors.Is(err, insane.ErrNoBuffers) {
			return err
		}
		if attempt%256 == 255 {
			time.Sleep(50 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	if buf != nil {
		src.Abort(buf)
	}
	return errors.New("emit: backpressure never cleared")
}
