// Tenant timing-isolation mode: proves the DESIGN.md §12 guarantee that
// a best-effort tenant flooding a node cannot move a TSN tenant's p99.9
// consume latency past its gate-cycle budget. The scenario runs twice —
// quiet, then under flood — and both runs must hold the same budget, so
// the committed BENCH_isolation.json is the regressable form of the
// 802.1Qbv claim.

package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
)

// tsnPace staggers the paced emits against the 250µs default gate cycle
// (it divides neither the 50µs class-7 window nor the 200µs best-effort
// window), so the measured sample covers every gate phase instead of
// locking onto one.
const tsnPace = 37 * time.Microsecond

// floodGen owns the noisy tenant's emit and drain goroutines: a
// best-effort load generator that pushes 1KB messages as fast as the
// tenant's admission control (slot budget, TX tokens, ring
// backpressure) allows, with a paired drainer recycling the quotas.
type floodGen struct {
	stop   chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// halt signals both goroutines and joins them. Only measureIsolation
// calls it (success path plus a deferred cleanup), so the already-closed
// check does not race.
func (g *floodGen) halt() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
		g.cancel()
	}
	g.wg.Wait()
}

// startFlood launches the generator pair on an already-bound noisy
// tenant source/sink.
func startFlood(src *insane.Source, sink *insane.Sink) *floodGen {
	// The drain context doubles as the drainer's stop signal: halt
	// cancels it, ConsumeContext returns, the goroutine exits.
	ctx, cancel := context.WithCancel(context.Background())
	g := &floodGen{stop: make(chan struct{}), cancel: cancel}
	g.wg.Add(2)
	//insane:goroutine owner=floodGen stop=halt
	go func() { // flood emitter
		defer g.wg.Done()
		var buf *insane.Buffer
		for {
			select {
			case <-g.stop:
				if buf != nil {
					src.Abort(buf)
				}
				return
			default:
			}
			var err error
			if buf == nil {
				if buf, err = src.GetBuffer(1024); err != nil {
					// Slot budget exhausted until the drainer catches
					// up — exactly the backpressure being tested.
					runtime.Gosched()
					continue
				}
			}
			if _, err = src.Emit(buf, 1024); err != nil {
				// Ring backpressure and TX-token rejections both mean
				// "retry the same buffer"; anything else is fatal to
				// the flood but must not wedge the benchmark.
				if errors.Is(err, insane.ErrBackpressure) || errors.Is(err, insane.ErrTenantQuota) {
					runtime.Gosched()
					continue
				}
				src.Abort(buf)
				return
			}
			buf = nil
			// Yield after every emit: the scenario measures the
			// middleware's tenant isolation, not Go's preemption
			// quantum. Without this, on a single-CPU host the hot
			// emit loop holds the only P for ~10ms stretches and the
			// poller misses gate windows for reasons no middleware
			// scheduler can fix (deployments pin poller threads).
			runtime.Gosched()
		}
	}()
	//insane:goroutine owner=floodGen stop=halt
	go func() { // flood drainer: keeps slots and TX tokens recycling
		defer g.wg.Done()
		for {
			select {
			case <-g.stop:
				return
			default:
			}
			m, err := sink.ConsumeContext(ctx)
			if err != nil {
				return
			}
			sink.Release(m)
		}
	}()
	return g
}

// runIsolation measures the quiet baseline and the flooded run, writes
// the JSON baseline, and fails if either run's p99.9 exceeds the budget.
func runIsolation(path string, msgs int, budget time.Duration) error {
	results := make([]bench.IsolationResult, 0, 2)
	for _, scenario := range []struct {
		name  string
		flood bool
	}{
		{name: "isolation/quiet", flood: false},
		{name: "isolation/flood", flood: true},
	} {
		res, err := measureIsolation(scenario.name, msgs, scenario.flood, budget)
		if err != nil {
			return err
		}
		fmt.Println(res)
		results = append(results, res)
	}
	if path != "" {
		if err := bench.WriteIsolationJSON(path, results); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	for _, r := range results {
		if !r.Pass {
			return fmt.Errorf("%s: TSN p99.9 %.0f ns exceeds budget %.0f ns",
				r.Name, r.TSNP999Ns, r.BudgetNs)
		}
	}
	return nil
}

// measureIsolation runs one scenario on a fresh single-node cluster: a
// TSN tenant paces class-7 time-sensitive messages through the default
// 802.1Qbv schedule while (optionally) a best-effort tenant floods the
// same node as fast as admission control lets it. The TSN tail comes
// from the per-tenant consume-latency histogram in Node.Metrics(), i.e.
// virtual time including the real wall-clock gate waits.
func measureIsolation(name string, msgs int, flood bool, budget time.Duration) (bench.IsolationResult, error) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "bench"}},
		Tenants: []insane.TenantSpec{
			{ID: "tsn", Weight: 4},
			{ID: "noisy", Weight: 1, MemSlots: 512, TxTokens: 256},
		},
	})
	if err != nil {
		return bench.IsolationResult{}, err
	}
	defer cluster.Close()
	node := cluster.Node("bench")

	tsnSess, err := node.InitSession(insane.WithTenant("tsn"))
	if err != nil {
		return bench.IsolationResult{}, err
	}
	defer tsnSess.Close()
	tsnStream, err := tsnSess.CreateStreamOpts(
		insane.WithTiming(insane.TimeSensitive), insane.WithClass(7))
	if err != nil {
		return bench.IsolationResult{}, err
	}
	tsnSink, err := tsnStream.CreateSink(40, nil)
	if err != nil {
		return bench.IsolationResult{}, err
	}
	tsnSrc, err := tsnStream.CreateSource(40)
	if err != nil {
		return bench.IsolationResult{}, err
	}

	var gen *floodGen
	if flood {
		noisySess, err := node.InitSession(insane.WithTenant("noisy"))
		if err != nil {
			return bench.IsolationResult{}, err
		}
		defer noisySess.Close()
		noisyStream, err := noisySess.CreateStreamOpts()
		if err != nil {
			return bench.IsolationResult{}, err
		}
		noisySink, err := noisyStream.CreateSink(41, nil)
		if err != nil {
			return bench.IsolationResult{}, err
		}
		noisySrc, err := noisyStream.CreateSource(41)
		if err != nil {
			return bench.IsolationResult{}, err
		}
		gen = startFlood(noisySrc, noisySink)
		defer gen.halt()
	}

	// One deadline context reused across all paced round-trips; the
	// deadline is a liveness guard for the whole run, not a per-message
	// budget.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sent := 0
	start := time.Now()
	for i := 0; i < msgs; i++ {
		buf, err := tsnSrc.GetBuffer(128)
		if err != nil {
			return bench.IsolationResult{}, fmt.Errorf("tsn GetBuffer: %w", err)
		}
		if _, err := tsnSrc.Emit(buf, 128); err != nil {
			tsnSrc.Abort(buf)
			return bench.IsolationResult{}, fmt.Errorf("tsn Emit: %w", err)
		}
		m, err := tsnSink.ConsumeContext(ctx)
		if err != nil {
			return bench.IsolationResult{}, fmt.Errorf("tsn Consume: %w", err)
		}
		tsnSink.Release(m)
		sent++
		time.Sleep(tsnPace)
	}
	elapsed := time.Since(start)
	if gen != nil {
		gen.halt()
	}

	res := bench.IsolationResult{
		Name:        name,
		TSNMessages: sent,
		BudgetNs:    float64(budget.Nanoseconds()),
	}
	for _, tm := range node.Metrics().Tenants {
		switch tm.Tenant {
		case "tsn":
			res.TSNP50Ns = float64(tm.ConsumeLatency.P50.Nanoseconds())
			res.TSNP99Ns = float64(tm.ConsumeLatency.P99.Nanoseconds())
			res.TSNP999Ns = float64(tm.ConsumeLatency.P999.Nanoseconds())
		case "noisy":
			res.FloodMessages = int(tm.Consumes)
			if elapsed > 0 {
				res.FloodPktPerSec = float64(tm.Consumes) / elapsed.Seconds()
			}
		}
	}
	if res.TSNP999Ns == 0 {
		return res, errors.New(name + ": no TSN latency samples recorded")
	}
	res.Pass = res.TSNP999Ns <= res.BudgetNs
	return res, nil
}
