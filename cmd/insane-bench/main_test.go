package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "table1", "-rounds", "10", "-jobs", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	if err := run([]string{"-experiment", "table1, table4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
