package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "table1", "-rounds", "10", "-jobs", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	if err := run([]string{"-experiment", "table1, table4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunHotpath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hotpath.json")
	if err := run([]string{"-hotpath", path, "-hotpath-iters", "200"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"emit-consume-local/64B", "ns_per_op", "allocs_per_op", "bytes_per_op"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("baseline file missing %q", want)
		}
	}
}

func TestRunHotpathBadIters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hotpath.json")
	if err := run([]string{"-hotpath", path, "-hotpath-iters", "0"}); err == nil {
		t.Fatal("zero iterations accepted")
	}
}
