// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md's per-experiment index) plus real hot-path
// microbenchmarks for the middleware's ns-scale-overhead claim.
//
// The figure/table benchmarks report their headline numbers as custom
// metrics; full tables come from `go run ./cmd/insane-bench`.
package repro

import (
	"context"
	"strconv"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/experiments"
	"github.com/insane-mw/insane/internal/experiments/apps"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/sim"
)

// benchCfg keeps benchmark iterations modest; the numbers are virtual
// time, so more rounds only tighten nothing.
var benchCfg = experiments.RunConfig{Rounds: 100, Jobs: 3000}

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) experiments.Report {
	b.Helper()
	var rep experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// metricFromCell parses a table cell into a float for ReportMetric.
func metricFromCell(b *testing.B, rep experiments.Report, row, col int) float64 {
	b.Helper()
	cells := rep.Tables[0].Rows
	v, err := strconv.ParseFloat(cells[row][col], 64)
	if err != nil {
		b.Fatalf("cell[%d][%d] = %q: %v", row, col, cells[row][col], err)
	}
	return v
}

func BenchmarkTable3LoC(b *testing.B) {
	rep := runExperiment(b, "table3")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "insane-loc")
	b.ReportMetric(metricFromCell(b, rep, 1, 1), "udp-loc")
	b.ReportMetric(metricFromCell(b, rep, 2, 1), "dpdk-loc")
}

func BenchmarkFig5aLatencyLocal(b *testing.B) {
	rep := runExperiment(b, "fig5a")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "rawdpdk-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 1, 1), "insanefast-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 3, 1), "kernel-rtt-us")
}

func BenchmarkFig5bLatencyCloud(b *testing.B) {
	rep := runExperiment(b, "fig5b")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "rawdpdk-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 1, 1), "insanefast-rtt-us")
}

func BenchmarkFig6Breakdown(b *testing.B) {
	rep := runExperiment(b, "fig6")
	b.ReportMetric(metricFromCell(b, rep, 0, 5), "local-oneway-us")
	b.ReportMetric(metricFromCell(b, rep, 1, 5), "cloud-oneway-us")
}

func BenchmarkFig7aSystemsLocal(b *testing.B) {
	rep := runExperiment(b, "fig7a")
	b.ReportMetric(metricFromCell(b, rep, 6, 1), "rawdpdk-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 5, 1), "insanefast-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 2, 1), "catnap-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 4, 1), "catnip-rtt-us")
}

func BenchmarkFig7bSystemsCloud(b *testing.B) {
	rep := runExperiment(b, "fig7b")
	b.ReportMetric(metricFromCell(b, rep, 6, 1), "rawdpdk-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 5, 1), "insanefast-rtt-us")
}

func BenchmarkFig8aThroughput(b *testing.B) {
	rep := runExperiment(b, "fig8a")
	// Row order matches fig8Systems; the last column is 8KB.
	last := len(rep.Tables[0].Header) - 1
	b.ReportMetric(metricFromCell(b, rep, 3, last), "rawdpdk-8k-gbps")
	b.ReportMetric(metricFromCell(b, rep, 5, last), "insanefast-8k-gbps")
	b.ReportMetric(metricFromCell(b, rep, 1, last), "catnip-8k-gbps")
}

func BenchmarkFig8bMultiSink(b *testing.B) {
	rep := runExperiment(b, "fig8b")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "1sink-gbps")
	b.ReportMetric(metricFromCell(b, rep, 3, 1), "6sink-gbps")
	b.ReportMetric(metricFromCell(b, rep, 4, 1), "8sink-gbps")
}

func BenchmarkFig9aMomLatency(b *testing.B) {
	rep := runExperiment(b, "fig9a")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "lunarfast-rtt-us")
	b.ReportMetric(metricFromCell(b, rep, 2, 1), "cyclone-rtt-us")
}

func BenchmarkFig9bMomThroughput(b *testing.B) {
	rep := runExperiment(b, "fig9b")
	b.ReportMetric(metricFromCell(b, rep, 0, 3), "lunarfast-1k-gbps")
	b.ReportMetric(metricFromCell(b, rep, 4, 3), "cyclone-1k-gbps")
}

func BenchmarkFig11aStreamingFPS(b *testing.B) {
	rep := runExperiment(b, "fig11a")
	b.ReportMetric(metricFromCell(b, rep, 0, 1), "hd-fast-fps")
	b.ReportMetric(metricFromCell(b, rep, 3, 1), "4k-fast-fps")
}

func BenchmarkFig11bStreamingLatency(b *testing.B) {
	rep := runExperiment(b, "fig11b")
	b.ReportMetric(metricFromCell(b, rep, 3, 1), "4k-fast-ms")
	b.ReportMetric(metricFromCell(b, rep, 4, 1), "8k-fast-ms")
}

func BenchmarkAblationIPCHop(b *testing.B) {
	rep := runExperiment(b, "ablation-ipc")
	b.ReportMetric(metricFromCell(b, rep, 2, 3), "ipc-cost-us")
}

func BenchmarkAblationBatching(b *testing.B) {
	rep := runExperiment(b, "ablation-batching")
	b.ReportMetric(metricFromCell(b, rep, 2, 1), "on-8k-gbps")
	b.ReportMetric(metricFromCell(b, rep, 2, 2), "off-8k-gbps")
}

func BenchmarkAblationThreadMapping(b *testing.B) {
	runExperiment(b, "ablation-threads")
}

func BenchmarkAblationTSN(b *testing.B) {
	runExperiment(b, "ablation-tsn")
}

// BenchmarkEmitConsumeLocal measures the real wall-clock hot path of the
// middleware — borrow, emit, shared-memory delivery, consume, release —
// the operations whose overhead the paper claims is ns-scale.
func BenchmarkEmitConsumeLocal(b *testing.B) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a", DPDK: true}, {Name: "b", DPDK: true}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	sess, err := cluster.Node("a").InitSession()
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.CreateStreamOpts()
	if err != nil {
		b.Fatal(err)
	}
	sink, err := st.CreateSink(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	src, err := st.CreateSource(1)
	if err != nil {
		b.Fatal(err)
	}
	// One deadline context reused for every iteration keeps the consume
	// on the allocation-free pooled-timer path.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := src.GetBuffer(64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := src.Emit(buf, 64); err != nil {
			b.Fatal(err)
		}
		msg, err := sink.ConsumeContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		sink.Release(msg)
	}
}

// BenchmarkRemotePingPong measures the real wall-clock round trip of the
// full middleware path over the virtual fabric (not the modeled virtual
// time — this is what the Go implementation actually costs per message).
func BenchmarkRemotePingPong(b *testing.B) {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{{Name: "a", DPDK: true}, {Name: "b", DPDK: true}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ReportAllocs()
	b.ResetTimer()
	rtts := apps.InsanePingPong(cluster, 64, b.N, true)
	b.StopTimer()
	if len(rtts) != b.N {
		b.Fatalf("completed %d of %d rounds", len(rtts), b.N)
	}
	b.ReportMetric(float64(bench.Summarize(rtts).Median.Nanoseconds())/1000, "virtual-rtt-us")
}

// BenchmarkSimPipeline measures the discrete-event engine itself.
func BenchmarkSimPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.SystemGoodput(model.SysInsaneFast, 1024, 1000, model.Local)
	}
}
