// Quickstart: the smallest complete INSANE program — two edge nodes, one
// QoS-annotated stream, one zero-copy message each way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/insane-mw/insane/insane"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A virtual edge deployment: both nodes have DPDK-capable NICs.
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "edge-1", DPDK: true},
			{Name: "edge-2", DPDK: true},
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Receiver: open a session, a fast stream, and a sink on channel 42.
	rxSess, err := cluster.Node("edge-2").InitSession()
	if err != nil {
		return err
	}
	defer rxSess.Close()
	rxStream, err := rxSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	sink, err := rxStream.CreateSink(42, nil)
	if err != nil {
		return err
	}

	// Sender: same stream options, a source on the same channel.
	txSess, err := cluster.Node("edge-1").InitSession()
	if err != nil {
		return err
	}
	defer txSess.Close()
	txStream, err := txSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	fmt.Printf("stream mapped to %q (fallback=%v)\n", txStream.Technology(), txStream.FellBack())

	// Wait until the subscription gossip reached the sender.
	for cluster.Node("edge-1").SubscriberCount(42) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	src, err := txStream.CreateSource(42)
	if err != nil {
		return err
	}

	// Zero-copy send: borrow a buffer, write in place, emit.
	buf, err := src.GetBuffer(64)
	if err != nil {
		return err
	}
	n := copy(buf.Payload, "hello, accelerated edge cloud")
	if _, err := src.Emit(buf, n); err != nil {
		src.Abort(buf)
		return err
	}

	// Zero-copy receive: consume, read, release.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	msg, err := sink.ConsumeContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("received %q on channel %d\n", msg.Payload, msg.Channel)
	fmt.Printf("one-way virtual latency: %v\n", msg.Latency)
	send, network, recv, processing := msg.Breakdown()
	fmt.Printf("  breakdown: send=%v network=%v recv=%v processing=%v\n",
		send, network, recv, processing)
	sink.Release(msg)
	return nil
}
