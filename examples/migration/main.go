// Migration: the paper's core motivation (§1). A latency-critical
// component streams readings to an edge datacenter. It first runs on a
// node with DPDK; then it "migrates" to a node that only has the kernel
// stack. The exact same component code runs in both placements — INSANE
// remaps the stream at session creation and warns about the fallback.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/insane-mw/insane/insane"
)

const channel = 99

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "edge-dpdk", DPDK: true}, // initial placement
			{Name: "edge-bare"},             // migration target
			{Name: "edge-dc", DPDK: true},   // the consumer
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// The consumer stays put on the edge datacenter node.
	dcSess, err := cluster.Node("edge-dc").InitSession()
	if err != nil {
		return err
	}
	defer dcSess.Close()
	dcStream, err := dcSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	sink, err := dcStream.CreateSink(channel, nil)
	if err != nil {
		return err
	}

	// One component, zero placement-specific code.
	component := func(node *insane.Node) error {
		sess, err := node.InitSession()
		if err != nil {
			return err
		}
		defer sess.Close() // detach: the migration moment

		stream, err := sess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
		if err != nil {
			return err
		}
		fmt.Printf("[%s] stream mapped to %q (fallback=%v)\n",
			node.Name(), stream.Technology(), stream.FellBack())

		for node.SubscriberCount(channel) == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		src, err := stream.CreateSource(channel)
		if err != nil {
			return err
		}
		buf, err := src.GetBuffer(32)
		if err != nil {
			return err
		}
		n := copy(buf.Payload, "reading from "+node.Name())
		if _, err := src.Emit(buf, n); err != nil {
			src.Abort(buf)
			return err
		}
		return nil
	}

	for _, placement := range []string{"edge-dpdk", "edge-bare"} {
		if err := component(cluster.Node(placement)); err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		msg, err := sink.ConsumeContext(ctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("[edge-dc]   received %q, one-way %v\n\n", msg.Payload, msg.Latency)
		sink.Release(msg)
	}

	fmt.Println("warnings recorded by the runtimes:")
	for _, n := range cluster.Nodes() {
		for _, w := range n.Warnings() {
			fmt.Printf("  %s: %s\n", n.Name(), w)
		}
	}
	return nil
}
