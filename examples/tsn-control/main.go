// TSN control loop: a time-sensitive stream sharing a node with bulk
// traffic (§5.2/§5.3). The control commands ride traffic class 7 through
// the IEEE 802.1Qbv time-aware shaper while a bulk stream hammers the
// same datapath; the example shows both flows coexisting and the
// class-7 QoS option in use.
//
// Run with:
//
//	go run ./examples/tsn-control
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/insane-mw/insane/insane"
)

const (
	controlCh = 1
	bulkCh    = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A custom gate control list: a protected window for class 7 at the
	// head of every 10ms cycle, the rest open to best effort. The shaper
	// runs on the host wall clock, so the cycle is sized well above OS
	// scheduling granularity; the class-7 delay is bounded by one cycle.
	schedule := []insane.GateWindow{
		{Duration: 2 * time.Millisecond, Classes: 1 << 7},
		{Duration: 8 * time.Millisecond, Classes: 0x7F},
	}
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "plc", DPDK: true, TSNSchedule: schedule},
			{Name: "actuator", DPDK: true, TSNSchedule: schedule},
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	rxSess, err := cluster.Node("actuator").InitSession()
	if err != nil {
		return err
	}
	defer rxSess.Close()
	rxCtl, err := rxSess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithTiming(insane.TimeSensitive),
		insane.WithClass(7),
	)
	if err != nil {
		return err
	}
	ctlSink, err := rxCtl.CreateSink(controlCh, nil)
	if err != nil {
		return err
	}
	rxBulk, err := rxSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}
	bulkSink, err := rxBulk.CreateSink(bulkCh, nil)
	if err != nil {
		return err
	}

	txSess, err := cluster.Node("plc").InitSession()
	if err != nil {
		return err
	}
	defer txSess.Close()
	ctlStream, err := txSess.CreateStreamOpts(
		insane.WithDatapath(insane.Fast),
		insane.WithTiming(insane.TimeSensitive),
		insane.WithClass(7),
	)
	if err != nil {
		return err
	}
	bulkStream, err := txSess.CreateStreamOpts(insane.WithDatapath(insane.Fast))
	if err != nil {
		return err
	}

	for cluster.Node("plc").SubscriberCount(controlCh) == 0 ||
		cluster.Node("plc").SubscriberCount(bulkCh) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctlSrc, err := ctlStream.CreateSource(controlCh)
	if err != nil {
		return err
	}
	bulkSrc, err := bulkStream.CreateSource(bulkCh)
	if err != nil {
		return err
	}

	// Interleave bulk bursts with control commands.
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			b, err := bulkSrc.GetBuffer(1024)
			if err != nil {
				return err
			}
			if _, err := bulkSrc.Emit(b, 1024); err != nil {
				bulkSrc.Abort(b)
				return err
			}
		}
		cmd, err := ctlSrc.GetBuffer(16)
		if err != nil {
			return err
		}
		n := copy(cmd.Payload, fmt.Sprintf("setpoint %d", round))
		if _, err := ctlSrc.Emit(cmd, n); err != nil {
			ctlSrc.Abort(cmd)
			return err
		}

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		msg, err := ctlSink.ConsumeContext(ctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("control %q delivered, one-way %v (class 7; gate wait bounded by the 10ms cycle)\n",
			msg.Payload, msg.Latency)
		ctlSink.Release(msg)
	}

	// Drain the bulk stream.
	bulk := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		m, err := bulkSink.ConsumeContext(ctx)
		cancel()
		if err != nil {
			break
		}
		bulk++
		bulkSink.Release(m)
	}
	fmt.Printf("bulk messages delivered alongside: %d\n", bulk)
	return nil
}
