// MoM sensors: a factory-floor data-distribution scenario on Lunar MoM
// (§7.1). Three sensor gateways publish readings on per-line topics; a
// quality-control service subscribes to all lines; a dashboard subscribes
// to one. Dissemination, fanout and technology selection are all INSANE's
// job.
//
// Run with:
//
//	go run ./examples/mom-sensors
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/lunar/mom"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "gw-line1", DPDK: true},
			{Name: "gw-line2", DPDK: true},
			{Name: "qc-service", DPDK: true, RDMA: true},
			{Name: "dashboard"}, // commodity box: kernel networking only
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Quality control consumes every production line, accelerated.
	qc, err := mom.New(cluster.Node("qc-service"), insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer qc.Close()
	var qcSeen atomic.Int64
	for _, line := range []string{"line1", "line2"} {
		line := line
		if err := qc.Subscribe("plant/"+line+"/vibration", func(p []byte, m mom.Meta) {
			qcSeen.Add(1)
			fmt.Printf("[qc]        %s: %-18q one-way %v\n", line, p, m.Latency)
		}); err != nil {
			return err
		}
	}

	// The dashboard only watches line1, over plain kernel networking.
	dash, err := mom.New(cluster.Node("dashboard"), insane.Options{Datapath: insane.Slow})
	if err != nil {
		return err
	}
	defer dash.Close()
	var dashSeen atomic.Int64
	if err := dash.Subscribe("plant/line1/vibration", func(p []byte, m mom.Meta) {
		dashSeen.Add(1)
		fmt.Printf("[dashboard] line1: %-18q one-way %v\n", p, m.Latency)
	}); err != nil {
		return err
	}

	// Gateways publish three readings each.
	for _, gwName := range []string{"gw-line1", "gw-line2"} {
		gw, err := mom.New(cluster.Node(gwName), insane.Options{Datapath: insane.Fast})
		if err != nil {
			return err
		}
		defer gw.Close()
		line := gwName[3:] // "line1" / "line2"
		topic := "plant/" + line + "/vibration"
		// Wait for subscriptions to propagate to this gateway.
		want := 1
		if line == "line1" {
			want = 2 // qc + dashboard
		}
		deadline := time.Now().Add(2 * time.Second)
		for cluster.Node(gwName).SubscriberCount(mom.TopicChannel(topic)) < want &&
			time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		for i := 0; i < 3; i++ {
			reading := fmt.Sprintf("%s: %0.2f mm/s", line, 1.1+float64(i)/10)
			if err := gw.Publish(topic, []byte(reading)); err != nil {
				return err
			}
		}
	}

	// line1 → qc + dashboard (3 each), line2 → qc (3): 9 deliveries.
	deadline := time.Now().Add(3 * time.Second)
	for qcSeen.Load()+dashSeen.Load() < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("\ndeliveries: qc=%d dashboard=%d\n", qcSeen.Load(), dashSeen.Load())
	return nil
}
