// Camera streaming: the industrial image-inspection scenario of §7.2 on
// Lunar Streaming. A production-line camera streams raw Full-HD frames to
// an analysis node; the framework fragments each frame into jumbo-sized
// chunks and reassembles it on arrival.
//
// Run with:
//
//	go run ./examples/camera-streaming
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/lunar/streaming"
)

// frameCount is how many frames the camera produces.
const frameCount = 5

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// camera produces synthetic raw RGB frames (Full HD: 6.22 MB, Table 4).
type camera struct {
	produced int
	frame    []byte
}

func newCamera() *camera {
	f := make([]byte, 6_220_000)
	for i := range f {
		f[i] = byte(i * 7)
	}
	return &camera{frame: f}
}

// GetFrame returns the next captured frame (get_frame in the paper).
func (c *camera) GetFrame() ([]byte, error) {
	c.produced++
	return c.frame, nil
}

// WaitNext reports whether another frame will come (wait_next).
func (c *camera) WaitNext() bool { return c.produced < frameCount }

func run() error {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "camera-node", DPDK: true},
			{Name: "analysis-node", DPDK: true},
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := streaming.Connect(cluster.Node("analysis-node"), "line1-cam",
		insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer client.Close()

	// Let the camera node learn the client's subscription.
	for cluster.Node("camera-node").SubscriberCount(streaming.StreamChannel("line1-cam")) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	server, err := streaming.OpenServer(cluster.Node("camera-node"), "line1-cam",
		insane.Options{Datapath: insane.Fast})
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Printf("streaming over %q\n", server.Technology())

	// Drive the paper's server loop in the background.
	errc := make(chan error, 1)
	go func() { errc <- server.Loop(newCamera()) }()

	start := time.Now()
	for i := 0; i < frameCount; i++ {
		frame, err := client.NextFrame(30 * time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("frame %d: %.2f MB in %d fragments, per-fragment one-way %v\n",
			frame.ID, float64(len(frame.Data))/1e6, frame.Fragments, frame.Latency)
	}
	elapsed := time.Since(start)
	fmt.Printf("\nmoved %d full-HD frames (%.1f MB) through the middleware in %v wall time\n",
		frameCount, float64(frameCount)*6.22, elapsed.Round(time.Millisecond))
	return <-errc
}
