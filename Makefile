# INSANE reproduction — common tasks. Run `make help` for a summary.

GO ?= go

.PHONY: all test race vet lint lint-hotpath lint-concurrency lint-arch lint-bounded lint-pair lint-guard bench bench-baseline bench-compare bench-isolation metrics-smoke experiments demo examples loc help

all: vet test lint ## vet + test + lint (the CI gate)

help: ## list the available targets
	@awk -F':.*## ' '/^[a-z-]+:.*## /{printf "  %-12s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

test: ## run the full test suite
	$(GO) test ./...

race: ## run the test suite under the race detector
	$(GO) test -race ./...

vet: ## run go vet
	$(GO) vet ./...

lint: ## run the insanevet static-analysis suite (see README, "Static analysis")
	$(GO) run ./cmd/insanevet ./...

lint-hotpath: ## prove the //insane:hotpath call graph allocation- and block-free
	$(GO) run ./cmd/insanevet -run hotpathcheck ./...

lint-concurrency: ## prove goroutine lifecycles, the global lock graph, and sync usage
	$(GO) run ./cmd/insanevet -run goroutinecheck,lockorder,syncmisuse ./...

lint-arch: ## enforce the ARCH.layers layering fence (a stale spec entry fails the run)
	$(GO) run ./cmd/insanevet -run archcheck ./...

lint-bounded: ## prove every hot-path loop bounded or waived with //insane:bounded
	$(GO) run ./cmd/insanevet -run boundedcheck ./...

lint-pair: ## prove every resource acquire balanced by a release/transfer on all paths
	$(GO) run ./cmd/insanevet -run paircheck ./...

lint-guard: ## prove every //insane:shared field's declared synchronization regime
	$(GO) run ./cmd/insanevet -run guardcheck ./...

bench: ## run every benchmark
	$(GO) test -bench=. -benchmem ./...

bench-baseline: ## measure the hot-path suite and refresh BENCH_hotpath.json
	$(GO) run ./cmd/insane-bench -hotpath BENCH_hotpath.json

bench-compare: ## re-measure the hot-path suite; fail on >10% ns/op or any allocs/op regression
	$(GO) run ./cmd/insane-bench -compare BENCH_hotpath.json

bench-isolation: ## run the tenant timing-isolation scenario and refresh BENCH_isolation.json
	$(GO) run ./cmd/insane-bench -isolation -isolation-out BENCH_isolation.json

metrics-smoke: ## boot a 2-node cluster, scrape /metrics, check the required series
	$(GO) run ./cmd/insane-info -metrics > /tmp/insane_metrics.prom
	@for series in insane_emits_total insane_consumes_total \
	  insane_tx_messages_total insane_rx_messages_total \
	  insane_consume_latency_seconds_bucket insane_sched_dwell_seconds_bucket \
	  insane_stage_network_seconds_bucket insane_mempool_gets_total \
	  insane_mempool_free_slots insane_envcache_events_total \
	  insane_emit_backpressure_total insane_sched_queue_depth \
	  insane_tenant_emits_total insane_tenant_consumes_total \
	  insane_tenant_weight insane_tenant_mem_slots_used \
	  insane_tenant_tx_inflight insane_tenant_consume_latency_seconds_bucket; do \
	  grep -q "^$$series" /tmp/insane_metrics.prom || { echo "missing series: $$series"; exit 1; }; \
	done
	@echo "metrics-smoke: all required series present"

# Regenerate every table and figure of the paper's evaluation.
experiments: ## regenerate all paper tables and figures
	$(GO) run ./cmd/insane-bench

demo: ## run both §7 Lunar applications end to end
	$(GO) run ./cmd/lunar-demo

examples: ## run every example program
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/mom-sensors
	$(GO) run ./examples/camera-streaming
	$(GO) run ./examples/tsn-control

# Count the repository's lines of Go.
loc: ## count lines of Go
	@find . -name '*.go' | xargs wc -l | tail -1
