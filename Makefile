# INSANE reproduction — common tasks.

GO ?= go

.PHONY: all test race vet bench experiments demo examples loc

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/insane-bench

demo:
	$(GO) run ./cmd/lunar-demo

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/mom-sensors
	$(GO) run ./examples/camera-streaming
	$(GO) run ./examples/tsn-control

# Count the repository's lines of Go.
loc:
	@find . -name '*.go' | xargs wc -l | tail -1
