//go:build race

package repro

// raceEnabled lets the allocation gate skip under the race detector,
// whose instrumentation allocates on paths that are otherwise clean.
const raceEnabled = true
