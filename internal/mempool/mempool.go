// Package mempool implements the INSANE memory manager (§5.3 of the paper):
// the component that decouples the technology-agnostic API from the
// heterogeneous zero-copy mechanisms of each datapath.
//
// At startup the manager reserves memory areas (pools) divided into
// fixed-size slots, each uniquely identified within its pool by a slot id.
// Applications and the runtime exchange slot ids — never bytes — over the
// token rings, which is what makes the transfer zero-copy inside a host.
// Slots are reference counted so a single received packet can be delivered
// to multiple local sinks (Fig. 8b) without copies.
//
// In the C prototype the pool is a shared-memory segment registered with the
// NIC for DMA; here it is a contiguous Go byte slice shared by the runtime
// and the (in-process) client library, which preserves the programming model
// and the slot-id protocol exactly.
package mempool

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/insane-mw/insane/internal/ringbuf"
)

// Errors returned by the manager.
var (
	// ErrExhausted is returned by Get when no free slot of a suitable
	// class is available. Callers typically back off and retry: under
	// sustained overload this is the built-in flow control of the
	// zero-copy design (a sender cannot outrun slot recycling).
	ErrExhausted = errors.New("mempool: no free slot available")
	// ErrTooLarge is returned when the requested size exceeds every
	// configured slot class.
	ErrTooLarge = errors.New("mempool: requested size exceeds largest slot class")
	// ErrBadSlot is returned for operations on slot ids that do not
	// identify a live, borrowed slot.
	ErrBadSlot = errors.New("mempool: invalid slot id or slot not in use")
)

// SlotID uniquely identifies a slot across all pools of one manager.
// The high bits select the pool (size class), the low bits the slot index.
type SlotID uint32

const (
	poolShift = 24
	indexMask = (1 << poolShift) - 1
)

// NoSlot is the zero SlotID sentinel; valid ids are never equal to it
// because pool numbering starts at 1.
const NoSlot SlotID = 0

func makeSlotID(pool, index int) SlotID {
	return SlotID(uint32(pool+1)<<poolShift | uint32(index))
}

func (id SlotID) pool() int  { return int(id>>poolShift) - 1 }
func (id SlotID) index() int { return int(id & indexMask) }

// String renders the id as pool/index for diagnostics.
func (id SlotID) String() string {
	if id == NoSlot {
		return "slot(none)"
	}
	return fmt.Sprintf("slot(%d/%d)", id.pool(), id.index())
}

// ClassConfig describes one slot size class of a pool.
type ClassConfig struct {
	// SlotSize is the usable bytes per slot. Must be > 0.
	SlotSize int
	// Slots is the number of slots in the class. Must be > 0.
	Slots int
}

// Config configures a Manager.
type Config struct {
	// Classes lists the slot size classes. They are sorted by SlotSize
	// internally; Get picks the smallest class that fits a request.
	// If empty, DefaultClasses is used.
	Classes []ClassConfig
}

// DefaultClasses mirrors the evaluation setup: a standard-MTU class and a
// jumbo-frame class (the paper enables jumbo frames for payloads > 1.5 KB).
var DefaultClasses = []ClassConfig{
	{SlotSize: 2048, Slots: 4096},
	{SlotSize: 9216, Slots: 1024},
}

// Owner identifies the session that borrowed a slot, used to reclaim slots
// when a client detaches without releasing (crash / migration).
type Owner int32

// NoOwner marks a slot borrowed by the runtime itself.
const NoOwner Owner = 0

// slotState tracks the lifecycle of one slot.
//
//insane:shared
type slotState struct {
	refs  atomic.Int32 //insane:guardedby atomic
	owner atomic.Int32 //insane:guardedby atomic
	// gen increments on every recycle, detecting stale-id release bugs.
	gen atomic.Uint32 //insane:guardedby atomic
	// budget is the tenant budget the slot is charged against, nil for
	// unbudgeted borrows. Atomic for two reasons: the guardcheck regime
	// proof cannot see the free-ring ownership argument that made a plain
	// pointer borderline-safe, and the Swap in the release paths makes
	// the uncharge exactly-once even if a final Release races a
	// crash-reclaiming ReleaseOwner.
	budget atomic.Pointer[Budget] //insane:guardedby atomic
}

// pool is one size class: a contiguous backing area plus slot bookkeeping.
//
//insane:shared
type pool struct {
	slotSize int         //insane:guardedby immutable after=NewManager
	backing  []byte      //insane:guardedby immutable after=NewManager
	states   []slotState //insane:guardedby immutable after=NewManager
	free     *ringbuf.MPMC[uint32] //insane:guardedby immutable after=NewManager
}

// Manager owns the memory pools and the borrow/release protocol.
// All methods are safe for concurrent use.
//
//insane:shared
type Manager struct {
	pools []*pool //insane:guardedby immutable after=NewManager

	// stats
	gets     atomic.Uint64 //insane:guardedby atomic
	fails    atomic.Uint64 //insane:guardedby atomic
	releases atomic.Uint64 //insane:guardedby atomic
}

// NewManager reserves the configured pools up front (no allocation happens
// afterwards on the data path).
func NewManager(cfg Config) (*Manager, error) {
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = DefaultClasses
	}
	sorted := make([]ClassConfig, len(classes))
	copy(sorted, classes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SlotSize < sorted[j].SlotSize })

	if len(sorted) >= 1<<8 {
		return nil, fmt.Errorf("mempool: too many classes (%d)", len(sorted))
	}
	m := &Manager{pools: make([]*pool, 0, len(sorted))}
	for _, c := range sorted {
		if c.SlotSize <= 0 || c.Slots <= 0 {
			return nil, fmt.Errorf("mempool: invalid class %+v", c)
		}
		if c.Slots > indexMask {
			return nil, fmt.Errorf("mempool: class has too many slots (%d)", c.Slots)
		}
		free, err := ringbuf.NewMPMC[uint32](c.Slots)
		if err != nil {
			return nil, fmt.Errorf("mempool: %w", err)
		}
		p := &pool{
			slotSize: c.SlotSize,
			backing:  make([]byte, c.SlotSize*c.Slots),
			states:   make([]slotState, c.Slots),
			free:     free,
		}
		for i := 0; i < c.Slots; i++ {
			if !p.free.TryPush(uint32(i)) {
				return nil, fmt.Errorf("mempool: free ring underprovisioned")
			}
		}
		m.pools = append(m.pools, p)
	}
	return m, nil
}

// Get borrows a slot able to hold size bytes for the given owner.
// The returned buffer aliases pool memory: it is valid until Release
// (or the final Release when the reference count was raised).
//
//insane:hotpath
//insane:acquire resource=mem-slot on=nilerr
func (m *Manager) Get(size int, owner Owner) (SlotID, []byte, error) {
	return m.GetBudget(size, owner, nil)
}

// GetBudget is Get with tenant accounting: the borrow is charged against
// b (nil skips accounting entirely) and returns ErrQuota when the
// tenant's cap is reached. The final Release — or a crash-reclaim via
// ReleaseOwner — uncharges the budget automatically.
//
//insane:hotpath
//insane:acquire resource=mem-slot on=nilerr
func (m *Manager) GetBudget(size int, owner Owner, b *Budget) (SlotID, []byte, error) {
	if b != nil && !b.TryCharge() {
		m.fails.Add(1)
		return NoSlot, nil, ErrQuota
	}
	//insane:bounded by=one entry per slot-size class, fixed at manager construction
	for pi, p := range m.pools {
		if size > p.slotSize {
			continue
		}
		idx, ok := p.free.TryPop()
		if !ok {
			continue // class exhausted; try a larger one
		}
		st := &p.states[idx]
		st.refs.Store(1)
		st.owner.Store(int32(owner))
		st.budget.Store(b)
		m.gets.Add(1)
		id := makeSlotID(pi, int(idx))
		return id, p.slotBuf(int(idx)), nil
	}
	if b != nil {
		b.Uncharge()
	}
	m.fails.Add(1)
	if len(m.pools) > 0 && size > m.pools[len(m.pools)-1].slotSize {
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return NoSlot, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	return NoSlot, nil, ErrExhausted
}

// Buf returns the full buffer of a borrowed slot.
//
//insane:hotpath
func (m *Manager) Buf(id SlotID) ([]byte, error) {
	p, idx, err := m.locate(id)
	if err != nil {
		return nil, err
	}
	if p.states[idx].refs.Load() <= 0 {
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return nil, fmt.Errorf("%w: %v", ErrBadSlot, id)
	}
	return p.slotBuf(idx), nil
}

// SlotSize returns the capacity of the slot identified by id.
func (m *Manager) SlotSize(id SlotID) (int, error) {
	p, _, err := m.locate(id)
	if err != nil {
		return 0, err
	}
	return p.slotSize, nil
}

// AddRef raises the reference count of a borrowed slot by n (multi-sink
// delivery takes one reference per sink before handing out the slot id).
//
//insane:hotpath
func (m *Manager) AddRef(id SlotID, n int) error {
	if n <= 0 {
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return fmt.Errorf("mempool: AddRef count %d must be positive", n)
	}
	p, idx, err := m.locate(id)
	if err != nil {
		return err
	}
	st := &p.states[idx]
	//insane:bounded by=lock-free CAS retry: a failed swap means another referencer made progress
	for {
		cur := st.refs.Load()
		if cur <= 0 {
			//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
			return fmt.Errorf("%w: %v", ErrBadSlot, id)
		}
		if st.refs.CompareAndSwap(cur, cur+int32(n)) {
			return nil
		}
	}
}

// Release drops one reference; when the count reaches zero the slot returns
// to its pool's free ring.
//
//insane:hotpath
//insane:release resource=mem-slot
func (m *Manager) Release(id SlotID) error {
	p, idx, err := m.locate(id)
	if err != nil {
		return err
	}
	st := &p.states[idx]
	n := st.refs.Add(-1)
	if n < 0 {
		st.refs.Add(1) // undo; report misuse
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return fmt.Errorf("%w: double release of %v", ErrBadSlot, id)
	}
	if n == 0 {
		if b := st.budget.Swap(nil); b != nil {
			b.Uncharge()
		}
		st.owner.Store(int32(NoOwner))
		st.gen.Add(1)
		m.releases.Add(1)
		if !p.free.TryPush(uint32(idx)) {
			// Cannot happen: ring capacity equals slot count.
			//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
			return fmt.Errorf("mempool: free ring overflow for %v", id)
		}
	}
	return nil
}

// ReleaseOwner force-releases every slot currently borrowed by owner,
// returning how many were reclaimed. The runtime calls this when a client
// session detaches abruptly (the migration / crash path).
func (m *Manager) ReleaseOwner(owner Owner) int {
	if owner == NoOwner {
		return 0
	}
	reclaimed := 0
	for _, p := range m.pools {
		for idx := range p.states {
			st := &p.states[idx]
			if Owner(st.owner.Load()) != owner {
				continue
			}
			// Drop all outstanding references at once.
			if refs := st.refs.Swap(0); refs > 0 {
				if b := st.budget.Swap(nil); b != nil {
					b.Uncharge()
				}
				st.owner.Store(int32(NoOwner))
				st.gen.Add(1)
				m.releases.Add(1)
				p.free.TryPush(uint32(idx))
				reclaimed++
			}
		}
	}
	return reclaimed
}

// FreeSlots reports the currently free slot count per class, smallest
// class first.
func (m *Manager) FreeSlots() []int {
	out := make([]int, len(m.pools))
	for i, p := range m.pools {
		out[i] = p.free.Len()
	}
	return out
}

// ClassInfo describes one configured size class.
type ClassInfo struct {
	// SlotSize is the usable bytes per slot.
	SlotSize int
	// Slots is the configured slot count of the class.
	Slots int
}

// Classes reports the configured size classes, smallest first; exporters
// pair it with FreeSlots to publish capacity and occupancy gauges.
func (m *Manager) Classes() []ClassInfo {
	out := make([]ClassInfo, len(m.pools))
	for i, p := range m.pools {
		out[i] = ClassInfo{SlotSize: p.slotSize, Slots: len(p.states)}
	}
	return out
}

// Stats reports cumulative manager activity.
type Stats struct {
	Gets     uint64 // successful borrows
	Failures uint64 // exhausted/oversized requests
	Releases uint64 // slots fully recycled
}

// Stats returns a snapshot of cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Gets:     m.gets.Load(),
		Failures: m.fails.Load(),
		Releases: m.releases.Load(),
	}
}

func (m *Manager) locate(id SlotID) (*pool, int, error) {
	pi, idx := id.pool(), id.index()
	if pi < 0 || pi >= len(m.pools) {
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSlot, id)
	}
	p := m.pools[pi]
	if idx >= len(p.states) {
		//lint:ignore insanevet/hotpathcheck cold error path, never taken steady-state
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSlot, id)
	}
	return p, idx, nil
}

func (p *pool) slotBuf(idx int) []byte {
	off := idx * p.slotSize
	return p.backing[off : off+p.slotSize : off+p.slotSize]
}
