package mempool

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{Classes: []ClassConfig{
		{SlotSize: 128, Slots: 8},
		{SlotSize: 1024, Slots: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	bad := []Config{
		{Classes: []ClassConfig{{SlotSize: 0, Slots: 1}}},
		{Classes: []ClassConfig{{SlotSize: 64, Slots: 0}}},
		{Classes: []ClassConfig{{SlotSize: 64, Slots: -3}}},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
	}
}

func TestNewManagerDefaults(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	free := m.FreeSlots()
	if len(free) != len(DefaultClasses) {
		t.Fatalf("FreeSlots classes = %d, want %d", len(free), len(DefaultClasses))
	}
	for i, c := range DefaultClasses {
		if free[i] != c.Slots {
			t.Errorf("class %d free = %d, want %d", i, free[i], c.Slots)
		}
	}
}

func TestGetPicksSmallestFittingClass(t *testing.T) {
	m := newTestManager(t)
	id, buf, err := m.Get(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 128 {
		t.Errorf("small request buf len = %d, want 128", len(buf))
	}
	if sz, _ := m.SlotSize(id); sz != 128 {
		t.Errorf("SlotSize = %d, want 128", sz)
	}

	id2, buf2, err := m.Get(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf2) != 1024 {
		t.Errorf("large request buf len = %d, want 1024", len(buf2))
	}
	if id == id2 {
		t.Error("distinct borrows returned same slot id")
	}
}

func TestGetTooLarge(t *testing.T) {
	m := newTestManager(t)
	if _, _, err := m.Get(4096, 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Get(4096) err = %v, want ErrTooLarge", err)
	}
}

func TestGetExhaustionAndOverflowToLargerClass(t *testing.T) {
	m := newTestManager(t)
	// Drain the small class entirely.
	ids := make([]SlotID, 0, 8)
	for i := 0; i < 8; i++ {
		id, _, err := m.Get(64, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Next small request overflows into the 1024 class.
	id, buf, err := m.Get(64, 1)
	if err != nil {
		t.Fatalf("overflow Get: %v", err)
	}
	if len(buf) != 1024 {
		t.Errorf("overflow buf len = %d, want 1024", len(buf))
	}
	// Drain the large class too.
	for i := 0; i < 3; i++ {
		if _, _, err := m.Get(64, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := m.Get(64, 1); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted Get err = %v, want ErrExhausted", err)
	}
	// Releasing brings capacity back.
	if err := m.Release(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get(64, 1); err != nil {
		t.Errorf("Get after release: %v", err)
	}
}

func TestSlotBuffersDoNotOverlap(t *testing.T) {
	m := newTestManager(t)
	id1, b1, _ := m.Get(128, 1)
	id2, b2, _ := m.Get(128, 1)
	for i := range b1 {
		b1[i] = 0xAA
	}
	for i := range b2 {
		b2[i] = 0x55
	}
	for i, v := range b1 {
		if v != 0xAA {
			t.Fatalf("slot %v byte %d clobbered", id1, i)
		}
	}
	for i, v := range b2 {
		if v != 0x55 {
			t.Fatalf("slot %v byte %d clobbered", id2, i)
		}
	}
}

func TestReleaseLifecycle(t *testing.T) {
	m := newTestManager(t)
	id, _, err := m.Get(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(id); err == nil {
		t.Error("double release: want error, got nil")
	}
	if _, err := m.Buf(id); err == nil {
		t.Error("Buf after release: want error, got nil")
	}
}

func TestAddRefMultiSink(t *testing.T) {
	m := newTestManager(t)
	id, _, err := m.Get(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate delivery to 3 sinks: 2 extra refs.
	if err := m.AddRef(id, 2); err != nil {
		t.Fatal(err)
	}
	freeBefore := m.FreeSlots()[0]
	for i := 0; i < 2; i++ {
		if err := m.Release(id); err != nil {
			t.Fatal(err)
		}
		if got := m.FreeSlots()[0]; got != freeBefore {
			t.Fatalf("slot recycled early after %d releases", i+1)
		}
	}
	if err := m.Release(id); err != nil {
		t.Fatal(err)
	}
	if got := m.FreeSlots()[0]; got != freeBefore+1 {
		t.Errorf("slot not recycled after final release: free = %d", got)
	}
	if err := m.AddRef(id, 1); err == nil {
		t.Error("AddRef on freed slot: want error, got nil")
	}
}

func TestBadSlotIDs(t *testing.T) {
	m := newTestManager(t)
	for _, id := range []SlotID{NoSlot, makeSlotID(5, 0), makeSlotID(0, 99)} {
		if err := m.Release(id); err == nil {
			t.Errorf("Release(%v): want error", id)
		}
		if _, err := m.Buf(id); err == nil {
			t.Errorf("Buf(%v): want error", id)
		}
	}
}

func TestReleaseOwner(t *testing.T) {
	m := newTestManager(t)
	var mine []SlotID
	for i := 0; i < 3; i++ {
		id, _, err := m.Get(64, 42)
		if err != nil {
			t.Fatal(err)
		}
		mine = append(mine, id)
	}
	other, _, err := m.Get(64, 43)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.ReleaseOwner(42); n != 3 {
		t.Errorf("ReleaseOwner reclaimed %d, want 3", n)
	}
	if n := m.ReleaseOwner(42); n != 0 {
		t.Errorf("second ReleaseOwner reclaimed %d, want 0", n)
	}
	if n := m.ReleaseOwner(NoOwner); n != 0 {
		t.Errorf("ReleaseOwner(NoOwner) reclaimed %d, want 0", n)
	}
	// Other owner's slot still live.
	if _, err := m.Buf(other); err != nil {
		t.Errorf("other owner's slot was reclaimed: %v", err)
	}
	// Reclaimed slots usable again.
	for range mine {
		if _, _, err := m.Get(64, 1); err != nil {
			t.Fatalf("Get after ReleaseOwner: %v", err)
		}
	}
}

func TestStats(t *testing.T) {
	m := newTestManager(t)
	id, _, _ := m.Get(64, 1)
	m.Get(64, 1)
	m.Get(1<<20, 1) // fails
	m.Release(id)
	s := m.Stats()
	if s.Gets != 2 || s.Failures != 1 || s.Releases != 1 {
		t.Errorf("Stats = %+v, want {2 1 1}", s)
	}
}

// TestQuickBorrowReleaseConservation: any interleaving of borrows and
// releases conserves the total slot count.
func TestQuickBorrowReleaseConservation(t *testing.T) {
	prop := func(ops []bool) bool {
		m, err := NewManager(Config{Classes: []ClassConfig{{SlotSize: 64, Slots: 16}}})
		if err != nil {
			return false
		}
		var live []SlotID
		for _, borrow := range ops {
			if borrow {
				if id, _, err := m.Get(32, 1); err == nil {
					live = append(live, id)
				}
			} else if len(live) > 0 {
				id := live[len(live)-1]
				live = live[:len(live)-1]
				if err := m.Release(id); err != nil {
					return false
				}
			}
		}
		return m.FreeSlots()[0] == 16-len(live)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestConcurrentGetRelease hammers the manager from many goroutines and
// checks conservation at the end.
func TestConcurrentGetRelease(t *testing.T) {
	m, err := NewManager(Config{Classes: []ClassConfig{{SlotSize: 256, Slots: 64}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(owner Owner) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id, buf, err := m.Get(100, owner)
				if err != nil {
					continue
				}
				buf[0] = byte(owner)
				if buf[0] != byte(owner) {
					t.Errorf("lost write on %v", id)
					return
				}
				if err := m.Release(id); err != nil {
					t.Errorf("release %v: %v", id, err)
					return
				}
			}
		}(Owner(g + 1))
	}
	wg.Wait()
	if free := m.FreeSlots()[0]; free != 64 {
		t.Errorf("free = %d after workload, want 64", free)
	}
}

func BenchmarkGetRelease(b *testing.B) {
	m, _ := NewManager(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, _, err := m.Get(1024, 1)
		if err != nil {
			b.Fatal(err)
		}
		m.Release(id)
	}
}

func TestAddRefRejectsNonPositive(t *testing.T) {
	m := newTestManager(t)
	id, _, err := m.Get(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddRef(id, 0); err == nil {
		t.Error("AddRef(0) accepted")
	}
	if err := m.AddRef(id, -2); err == nil {
		t.Error("AddRef(-2) accepted")
	}
	if err := m.Release(id); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReleaseAndReleaseOwnerUnchargesOnce races the normal
// release path against the crash-reclaim path for the same slots. The
// old plain *Budget pointer let both observe it non-nil and uncharge
// twice, silently inflating the tenant's quota; the atomic.Pointer
// Swap(nil) makes settlement exactly-once, so used must come back to
// exactly zero — never negative — every round.
func TestConcurrentReleaseAndReleaseOwnerUnchargesOnce(t *testing.T) {
	const owner Owner = 3
	for round := 0; round < 200; round++ {
		m := newTestManager(t)
		b := NewBudget(8)
		var ids []SlotID
		for {
			id, _, err := m.GetBudget(64, owner, b)
			if err != nil {
				break
			}
			ids = append(ids, id)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, id := range ids {
				_ = m.Release(id)
			}
		}()
		go func() {
			defer wg.Done()
			m.ReleaseOwner(owner)
		}()
		wg.Wait()
		if used := b.Used(); used != 0 {
			t.Fatalf("round %d: budget used = %d after full release, want 0 (negative means a double uncharge)", round, used)
		}
	}
}
