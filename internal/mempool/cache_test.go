package mempool

import (
	"sync"
	"testing"
)

func newIntPool(t *testing.T, sharedCap int) *CachePool[*int] {
	t.Helper()
	built := 0
	p, err := NewCachePool[*int](sharedCap, func() *int {
		built++
		v := built
		return &v
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCacheHitAfterPut(t *testing.T) {
	c := newIntPool(t, 8).NewCache(4)
	a := c.Get()
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after cold Get: %+v", s)
	}
	c.Put(a)
	b := c.Get()
	if b != a {
		t.Error("Get after Put did not return the recycled object")
	}
	if s := c.Stats(); s.Hits != 1 || s.Recycles != 1 || s.Misses != 1 {
		t.Fatalf("after recycle: %+v", s)
	}
}

// TestCacheSpillAndRefill: overflowing one cache spills to the shared
// ring, which then refills a sibling cache.
func TestCacheSpillAndRefill(t *testing.T) {
	p := newIntPool(t, 16)
	a, b := p.NewCache(4), p.NewCache(4)

	objs := make([]*int, 8)
	for i := range objs {
		objs[i] = a.Get()
	}
	for _, o := range objs {
		a.Put(o)
	}
	// 8 puts into a cache of 4: at least one spill batch reached the
	// shared ring, and nothing was dropped (shared has room).
	if s := a.Stats(); s.Drops != 0 || s.Recycles != 8 {
		t.Fatalf("after overflow puts: %+v", s)
	}
	if p.shared.Len() == 0 {
		t.Fatal("no objects spilled to the shared ring")
	}

	spilled := p.shared.Len()
	for i := 0; i < spilled; i++ {
		b.Get()
	}
	if s := b.Stats(); s.Refills != uint64(spilled) || s.Misses != 0 {
		t.Fatalf("sibling refill: %+v (spilled %d)", s, spilled)
	}
}

// TestCacheDropWhenEverythingFull: puts beyond local+shared capacity are
// dropped to the GC, not stuck.
func TestCacheDropWhenEverythingFull(t *testing.T) {
	p := newIntPool(t, 1) // shared rounds up to the MPMC minimum, 2
	c := p.NewCache(2)
	held := make([]*int, 5) // one more than local cap + shared cap
	for i := 0; i < 16; i++ {
		for j := range held {
			held[j] = c.Get()
		}
		for _, v := range held {
			c.Put(v)
		}
	}
	s := c.Stats()
	if s.Drops == 0 {
		t.Fatalf("expected drops with tiny shared ring: %+v", s)
	}
	// The cache must still function after drops.
	if c.Get() == nil {
		t.Fatal("Get returned nil after drops")
	}
}

// TestCacheConcurrentSiblings exercises distinct caches of one pool from
// concurrent goroutines (the per-poller regime) under -race.
func TestCacheConcurrentSiblings(t *testing.T) {
	p := newIntPool(t, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.NewCache(8)
			held := make([]*int, 0, 4)
			for i := 0; i < 10_000; i++ {
				held = append(held, c.Get())
				if len(held) == cap(held) {
					for _, v := range held {
						if v == nil {
							t.Error("nil object from cache")
							return
						}
						c.Put(v)
					}
					held = held[:0]
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkCacheGetPut(b *testing.B) {
	p, err := NewCachePool[*int](64, func() *int { return new(int) })
	if err != nil {
		b.Fatal(err)
	}
	c := p.NewCache(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(c.Get())
	}
}
