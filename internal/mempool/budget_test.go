package mempool

import (
	"errors"
	"sync"
	"testing"
)

func newBudgetManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{Classes: []ClassConfig{{SlotSize: 256, Slots: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBudgetCapsBorrows(t *testing.T) {
	m := newBudgetManager(t)
	b := NewBudget(2)

	id1, _, err := m.GetBudget(64, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := m.GetBudget(64, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.GetBudget(64, 1, b); !errors.Is(err, ErrQuota) {
		t.Fatalf("third borrow: got %v, want ErrQuota", err)
	}
	if got := b.Used(); got != 2 {
		t.Fatalf("Used = %d, want 2", got)
	}

	// Releasing one slot frees one unit of budget.
	if err := m.Release(id1); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != 1 {
		t.Fatalf("Used after release = %d, want 1", got)
	}
	id3, _, err := m.GetBudget(64, 1, b)
	if err != nil {
		t.Fatalf("borrow after release: %v", err)
	}
	_ = m.Release(id2)
	_ = m.Release(id3)
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after all releases = %d, want 0", got)
	}
}

func TestBudgetMultiRefUnchargesOnFinalRelease(t *testing.T) {
	m := newBudgetManager(t)
	b := NewBudget(1)

	id, _, err := m.GetBudget(64, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddRef(id, 2); err != nil {
		t.Fatal(err)
	}
	_ = m.Release(id)
	_ = m.Release(id)
	if got := b.Used(); got != 1 {
		t.Fatalf("Used before final release = %d, want 1", got)
	}
	_ = m.Release(id)
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after final release = %d, want 0", got)
	}
}

func TestBudgetReleaseOwnerReclaims(t *testing.T) {
	m := newBudgetManager(t)
	b := NewBudget(4)
	for i := 0; i < 3; i++ {
		if _, _, err := m.GetBudget(64, 7, b); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.ReleaseOwner(7); n != 3 {
		t.Fatalf("ReleaseOwner reclaimed %d, want 3", n)
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after ReleaseOwner = %d, want 0", got)
	}
}

func TestBudgetUnlimitedGaugesOnly(t *testing.T) {
	m := newBudgetManager(t)
	b := NewBudget(0)
	ids := make([]SlotID, 0, 8)
	for i := 0; i < 8; i++ {
		id, _, err := m.GetBudget(64, 1, b)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := b.Used(); got != 8 {
		t.Fatalf("Used = %d, want 8", got)
	}
	if got := b.Limit(); got != 0 {
		t.Fatalf("Limit = %d, want 0", got)
	}
	for _, id := range ids {
		_ = m.Release(id)
	}
}

// TestBudgetConcurrent hammers one capped budget from many goroutines;
// under -race this doubles as the happens-before proof for the plain
// slotState.budget field.
func TestBudgetConcurrent(t *testing.T) {
	m, err := NewManager(Config{Classes: []ClassConfig{{SlotSize: 256, Slots: 64}}})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(owner Owner) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id, _, err := m.GetBudget(64, owner, b)
				if errors.Is(err, ErrQuota) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				_ = m.Release(id)
			}
		}(Owner(g + 1))
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after drain = %d, want 0", got)
	}
	if free := m.FreeSlots()[0]; free != 64 {
		t.Fatalf("free slots = %d, want 64", free)
	}
}
