// Per-poller object caches, modeled on DPDK's per-lcore mempool cache:
// each polling thread keeps a small private free list of hot objects and
// only touches the shared (lock-free, but cache-line-bouncing) ring when
// the private list runs dry or overflows. On the steady-state path a
// Get/Put pair is two slice operations on thread-private memory — no
// atomics, no allocation — which is what keeps the runtime's per-message
// overhead at the ns scale the paper claims (§5.3, §6.2).
//
// Objects can migrate between caches: a packet wrapper allocated by the
// polling thread that drained the TX ring may be recycled by a different
// thread that dispatched it (the paper's §8 multi-threaded datapath).
// The shared overflow ring is what rebalances the private lists in that
// regime.

package mempool

import (
	"sync/atomic"

	"github.com/insane-mw/insane/internal/ringbuf"
)

// CachePool is the shared backing store of a family of Caches holding
// the same object kind: a bounded MPMC ring that absorbs overflow from
// one cache and refills another, plus the constructor for cold misses.
//
//insane:shared
type CachePool[T any] struct {
	shared *ringbuf.MPMC[T] //insane:guardedby immutable after=NewCachePool
	newT   func() T         //insane:guardedby immutable after=NewCachePool
}

// NewCachePool creates the shared store. sharedCap bounds how many idle
// objects the pool retains across all caches (excess is dropped to the
// GC); newT constructs an object on a cold miss.
func NewCachePool[T any](sharedCap int, newT func() T) (*CachePool[T], error) {
	ring, err := ringbuf.NewMPMC[T](sharedCap)
	if err != nil {
		return nil, err
	}
	return &CachePool[T]{shared: ring, newT: newT}, nil
}

// NewCache creates one private cache over the pool. localCap bounds the
// private free list; the canonical owner is a single goroutine (Get/Put
// are not safe for concurrent use on the same Cache, matching DPDK's
// per-lcore contract), while distinct Caches of one pool may run
// concurrently.
func (p *CachePool[T]) NewCache(localCap int) *Cache[T] {
	if localCap < 1 {
		localCap = 1
	}
	return &Cache[T]{pool: p, local: make([]T, 0, localCap)}
}

// CacheStats reports cumulative cache activity.
type CacheStats struct {
	// Hits counts Gets served from the private free list (the
	// zero-atomic fast path).
	Hits uint64
	// Refills counts Gets served from the shared ring.
	Refills uint64
	// Misses counts Gets that had to construct a fresh object.
	Misses uint64
	// Recycles counts Puts absorbed by the private list or shared ring.
	Recycles uint64
	// Drops counts Puts discarded to the GC because both were full.
	Drops uint64
}

// Cache is one private free list. See CachePool.NewCache for the
// ownership contract.
//
// Deliberately not //insane:shared: a Cache instance belongs to exactly
// one goroutine (DPDK's per-lcore contract — Get/Put are not safe for
// concurrent use), so there is no cross-goroutine regime to declare
// here; the owning package pins the owner (core's pollLoop confines
// poller.envs via its own //insane:guardedby specs). The stats fields
// below are the one exception — atomics precisely so a monitoring
// goroutine may read them — and atomicfield already polices those.
type Cache[T any] struct {
	pool  *CachePool[T]
	local []T

	// Stats are atomics only so a monitoring goroutine may read them
	// while the owner runs; the owner is still the only writer.
	hits, refills, misses, recycles, drops atomic.Uint64
}

// Get returns a recycled object, preferring the private list, then the
// shared ring, then a fresh construction. The caller owns the result
// until Put.
//
//insane:hotpath
//insane:acquire resource=pooled-obj
func (c *Cache[T]) Get() T {
	if n := len(c.local); n > 0 {
		v := c.local[n-1]
		var zero T
		c.local[n-1] = zero
		c.local = c.local[:n-1]
		c.hits.Add(1)
		return v
	}
	if v, ok := c.pool.shared.TryPop(); ok {
		c.refills.Add(1)
		return v
	}
	c.misses.Add(1)
	//lint:ignore insanevet/hotpathcheck cold-miss constructor; steady state hits the free lists
	return c.pool.newT()
}

// Put recycles an object. Ownership passes back to the cache: the caller
// must not use v afterwards (the same protocol the insanevet
// bufownership rule enforces for Emit/Release).
//
//insane:hotpath
//insane:release resource=pooled-obj
func (c *Cache[T]) Put(v T) {
	if len(c.local) < cap(c.local) {
		c.local = append(c.local, v)
		c.recycles.Add(1)
		return
	}
	// Private list full: spill half of it to the shared ring so bursts
	// of frees don't thrash the shared ring one element at a time.
	spill := cap(c.local) / 2
	kept := len(c.local) - spill
	moved := 0
	if spill > 0 {
		moved = c.pool.shared.PushBatch(c.local[kept:])
	}
	var zero T
	//insane:bounded by=len(c.local) <= cap(c.local), fixed at pool construction
	for i := kept + moved; i < len(c.local); i++ {
		c.drops.Add(1) // shared ring full too: drop to the GC
		c.local[i] = zero
	}
	//insane:bounded by=moved <= len(c.local) <= cap(c.local), fixed at pool construction
	for i := kept; i < kept+moved; i++ {
		c.local[i] = zero
	}
	c.local = append(c.local[:kept], v)
	c.recycles.Add(1)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[T]) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Refills:  c.refills.Load(),
		Misses:   c.misses.Load(),
		Recycles: c.recycles.Load(),
		Drops:    c.drops.Load(),
	}
}
