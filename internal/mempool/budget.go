// Per-tenant slot accounting. A Budget is the memory-manager half of the
// runtime's tenant isolation (DESIGN.md §12): every slot borrowed through
// GetBudget is charged against the tenant's budget and uncharged when the
// slot fully recycles, so one tenant exhausting its quota cannot starve
// the shared pools for everyone else. Charging is a single atomic add —
// the partitioning is pure accounting, the backing memory stays one
// contiguous pool per size class.
package mempool

import (
	"errors"
	"sync/atomic"
)

// ErrQuota is returned by GetBudget when the tenant's slot budget is
// exhausted. A static sentinel: the borrow path is hot and must not
// format an error per rejection. Callers treat it like ErrExhausted —
// release slots (or wait for the consumer side to) and retry — except
// the pressure is the tenant's own, not the node's.
var ErrQuota = errors.New("mempool: tenant slot quota exhausted")

// Budget caps how many slots one tenant may hold at once. The zero limit
// disables the cap but keeps the usage gauge running, so exporters can
// show per-tenant occupancy even for unlimited tenants. All methods are
// safe for concurrent use.
//
//insane:shared
type Budget struct {
	used  atomic.Int64 //insane:guardedby atomic
	limit int64        //insane:guardedby immutable after=NewBudget
}

// NewBudget returns a budget allowing up to limit concurrently held
// slots; limit <= 0 means unlimited (gauge only).
func NewBudget(limit int) *Budget {
	b := &Budget{}
	if limit > 0 {
		b.limit = int64(limit)
	}
	return b
}

// TryCharge reserves one slot against the budget, reporting false when
// the cap is reached. The optimistic add-then-undo keeps the common case
// one uncontended atomic; a transient overshoot between the add and the
// undo only makes concurrent chargers fail slightly early, never lets
// usage exceed the limit.
//
//insane:hotpath
//insane:acquire resource=tenant-mem on=true
func (b *Budget) TryCharge() bool {
	used := b.used.Add(1)
	if b.limit > 0 && used > b.limit {
		b.used.Add(-1)
		return false
	}
	return true
}

// Uncharge returns one reserved slot to the budget.
//
//insane:hotpath
//insane:release resource=tenant-mem
func (b *Budget) Uncharge() { b.used.Add(-1) }

// Used reports the slots currently charged.
func (b *Budget) Used() int64 { return b.used.Load() }

// Limit reports the configured cap (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }
