// Package timebase provides the virtual time primitives shared by the whole
// reproduction: a virtual timestamp type, clocks (real and simulated), and
// transmission-rate arithmetic.
//
// The paper reports µs-scale round-trip times measured on 100 Gbps hardware.
// Wall-clock measurements of a pure-Go reproduction would be dominated by Go
// scheduler noise, so latency-sensitive components annotate every packet with
// a virtual timestamp (VTime) and add calibrated model costs as the packet
// traverses each stage. Experiments then report virtual durations, which are
// deterministic and reproducible.
package timebase

import (
	"fmt"
	"sync/atomic"
	"time"
)

// VTime is a virtual timestamp in nanoseconds since an arbitrary epoch
// (usually the start of an experiment). It is deliberately a distinct type
// from time.Duration so that timestamps and durations cannot be mixed up.
type VTime int64

// Add returns the timestamp advanced by d.
func (t VTime) Add(d time.Duration) VTime { return t + VTime(d) }

// Sub returns the duration elapsed between o and t (t - o).
func (t VTime) Sub(o VTime) time.Duration { return time.Duration(t - o) }

// Before reports whether t is strictly earlier than o.
func (t VTime) Before(o VTime) bool { return t < o }

// After reports whether t is strictly later than o.
func (t VTime) After(o VTime) bool { return t > o }

// Duration converts the timestamp to the duration elapsed since the epoch.
func (t VTime) Duration() time.Duration { return time.Duration(t) }

// String formats the timestamp as a duration since the epoch.
func (t VTime) String() string { return time.Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b VTime) VTime {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b VTime) VTime {
	if a < b {
		return a
	}
	return b
}

// Clock supplies virtual timestamps. Implementations must be safe for
// concurrent use, and — the pollers read the clock once per drain pass —
// Now is a trusted hot-path boundary: implementations must not allocate
// or block.
type Clock interface {
	//insane:hotpath
	Now() VTime
}

// RealClock is a Clock backed by the monotonic wall clock, reporting time
// elapsed since the clock was created. It is used by functional tests that
// do not care about calibrated timing.
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock whose epoch is the moment of the call.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns the virtual time elapsed since the clock's epoch.
func (c *RealClock) Now() VTime { return VTime(time.Since(c.start)) }

// SimClock is a settable Clock used by the discrete-event simulator and by
// deterministic tests. The zero value reads as time zero.
type SimClock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *SimClock) Now() VTime { return VTime(c.now.Load()) }

// Set moves the clock to t. Moving backwards is allowed (tests only).
func (c *SimClock) Set(t VTime) { c.now.Store(int64(t)) }

// Advance moves the clock forward by d and returns the new time.
func (c *SimClock) Advance(d time.Duration) VTime {
	return VTime(c.now.Add(int64(d)))
}

// Wall returns the current wall-clock time. It is the single
// sanctioned wall-clock read for the datapath packages: the insanevet
// timebase rule forbids direct time.Now/time.Since there so that every
// clock access is either virtual (through a Clock) or routed through
// this auditable escape hatch. Use it only for genuine wall-clock
// deadlines — session flush bounds, poller-pass waits — never for
// latency accounting, which must stay in virtual time.
func Wall() time.Time { return time.Now() }

// WallSince returns the wall-clock duration elapsed since t, the
// companion escape hatch to Wall for timeout bookkeeping.
func WallSince(t time.Time) time.Duration { return time.Since(t) }

// Rate is a transmission rate in bits per second.
type Rate int64

// Common rates used by the testbed profiles.
const (
	Kbps Rate = 1_000
	Mbps Rate = 1_000_000
	Gbps Rate = 1_000_000_000
)

// Transmission returns the time needed to serialize n bytes at rate r.
// A zero or negative rate is treated as infinitely fast.
func (r Rate) Transmission(n int) time.Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	// ns = bits / (bits/s) * 1e9, computed to avoid overflow for jumbo
	// frames at low rates: bits*1e9 fits int64 up to ~1.1 GB frames.
	return time.Duration(bits * int64(time.Second) / int64(r))
}

// Goodput returns the achieved rate when n payload bytes take d.
// A non-positive duration reports zero.
func Goodput(n int, d time.Duration) Rate {
	if d <= 0 || n <= 0 {
		return 0
	}
	return Rate(int64(n) * 8 * int64(time.Second) / int64(d))
}

// String formats the rate using the closest human unit (e.g. "86.9 Gbps").
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2f Gbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2f Mbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2f Kbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%d bps", int64(r))
	}
}
