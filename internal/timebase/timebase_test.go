package timebase

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVTimeArithmetic(t *testing.T) {
	base := VTime(1000)
	if got := base.Add(500 * time.Nanosecond); got != VTime(1500) {
		t.Errorf("Add = %v", got)
	}
	if got := VTime(1500).Sub(base); got != 500*time.Nanosecond {
		t.Errorf("Sub = %v", got)
	}
	if !base.Before(VTime(1001)) || base.Before(base) {
		t.Error("Before wrong")
	}
	if !VTime(1001).After(base) || base.After(base) {
		t.Error("After wrong")
	}
	if base.Duration() != time.Microsecond {
		t.Errorf("Duration = %v", base.Duration())
	}
	if base.String() != "1µs" {
		t.Errorf("String = %q", base.String())
	}
	if Max(base, VTime(2000)) != VTime(2000) || Min(base, VTime(2000)) != base {
		t.Error("Max/Min wrong")
	}
}

func TestQuickVTimeAddSubInverse(t *testing.T) {
	prop := func(start int64, delta int32) bool {
		v := VTime(start)
		d := time.Duration(delta)
		return v.Add(d).Sub(v) == d
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if !a.Before(b) {
		t.Errorf("real clock not advancing: %v then %v", a, b)
	}
	if a < 0 {
		t.Error("clock started negative")
	}
}

func TestSimClock(t *testing.T) {
	var c SimClock
	if c.Now() != 0 {
		t.Error("zero SimClock not at 0")
	}
	c.Set(VTime(100))
	if c.Now() != 100 {
		t.Error("Set failed")
	}
	if got := c.Advance(50 * time.Nanosecond); got != 150 || c.Now() != 150 {
		t.Errorf("Advance = %v, now = %v", got, c.Now())
	}
}

func TestSimClockConcurrent(t *testing.T) {
	var c SimClock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Errorf("concurrent advance = %v, want 8000", c.Now())
	}
}

func TestRateTransmission(t *testing.T) {
	cases := []struct {
		rate Rate
		n    int
		want time.Duration
	}{
		{100 * Gbps, 1250, 100 * time.Nanosecond}, // 10k bits at 100G
		{Gbps, 125, time.Microsecond},
		{0, 1000, 0}, // infinite rate
		{Gbps, 0, 0}, // nothing to send
		{-5, 100, 0}, // invalid rate treated as infinite
		{Mbps, 125, time.Millisecond},
	}
	for _, c := range cases {
		if got := c.rate.Transmission(c.n); got != c.want {
			t.Errorf("(%v).Transmission(%d) = %v, want %v", c.rate, c.n, got, c.want)
		}
	}
}

func TestRateTransmissionJumboNoOverflow(t *testing.T) {
	// A 1 GB burst at 1 Kbps must not overflow int64 ns math badly: the
	// formula guards up to ~1.1 GB frames.
	d := Kbps.Transmission(1 << 20)
	if d <= 0 {
		t.Errorf("large transmission = %v", d)
	}
}

func TestGoodput(t *testing.T) {
	// 1250 bytes in 100ns = 100 Gbps.
	if got := Goodput(1250, 100*time.Nanosecond); got != 100*Gbps {
		t.Errorf("Goodput = %v", got)
	}
	if Goodput(0, time.Second) != 0 || Goodput(100, 0) != 0 || Goodput(100, -1) != 0 {
		t.Error("degenerate goodput not zero")
	}
}

func TestQuickRateRoundTrip(t *testing.T) {
	// Goodput(n, Transmission(n)) ≈ rate for well-conditioned inputs.
	prop := func(k uint16) bool {
		n := int(k) + 1000
		r := 10 * Gbps
		d := r.Transmission(n)
		got := Goodput(n, d)
		diff := int64(got) - int64(r)
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) < 0.01*float64(r)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{86_900_000_000, "86.90 Gbps"},
		{250 * Mbps, "250.00 Mbps"},
		{9 * Kbps, "9.00 Kbps"},
		{42, "42 bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestWall(t *testing.T) {
	t0 := Wall()
	if since := WallSince(t0); since < 0 {
		t.Errorf("WallSince(Wall()) = %v, want >= 0", since)
	}
	if !Wall().After(t0.Add(-time.Second)) {
		t.Error("Wall() went backwards by more than a second")
	}
}
