// Package telemetry is the runtime's always-on observability substrate
// (DESIGN.md §8): per-poller, cache-line-padded counter/histogram shards
// written with plain atomic stores on the hot path, merged into immutable
// snapshots off it. The design goals, in order:
//
//  1. Zero allocations and no locks on the publish path — every metric
//     lives in a preallocated array inside a shard, so recording is an
//     index computation plus an atomic add (the allocation-gate tests
//     TestSteadyStateZeroAlloc{,Core} cover the instrumented path).
//  2. No cross-core cache-line bouncing in steady state — each polling
//     thread owns one shard, client-side handles (sources, sinks) are
//     striped round-robin over a small set of extra shards, and shards
//     are padded so two writers never share a line.
//  3. Cheap reads at any time — Snapshot() sums the shards; readers
//     never stall writers.
package telemetry

import "sync/atomic"

// CounterID enumerates the hot-path event counters. Keep NameOf and the
// DESIGN.md §8 reference table in sync when adding one.
type CounterID int

// Hot-path counters.
const (
	// CtrEmits counts messages admitted by Emit into a TX ring.
	CtrEmits CounterID = iota
	// CtrEmitBytes accumulates admitted payload bytes.
	CtrEmitBytes
	// CtrEmitBackpressure counts Emits rejected with a full TX ring.
	CtrEmitBackpressure
	// CtrSchedEnqueues counts packets filed with a scheduler.
	CtrSchedEnqueues
	// CtrDispatches counts packets dispatched out of the schedulers.
	CtrDispatches
	// CtrTxMessages counts per-peer remote sends.
	CtrTxMessages
	// CtrRxMessages counts data messages received from the network.
	CtrRxMessages
	// CtrLocalDeliveries counts shared-memory deliveries to local sinks.
	CtrLocalDeliveries
	// CtrNoSinkDrops counts received messages with no subscribed sink.
	CtrNoSinkDrops
	// CtrRingFullDrops counts deliveries dropped on full sink rings.
	CtrRingFullDrops
	// CtrTechDowngrades counts remote sends below the stream's mapped
	// technology (QoS fallback to a plane the peer actually has).
	CtrTechDowngrades
	// CtrConsumes counts deliveries handed to the application.
	CtrConsumes
	// CtrConsumeBytes accumulates consumed payload bytes.
	CtrConsumeBytes
	// CtrRTCDeliveries counts local deliveries made synchronously on the
	// emitting goroutine by the run-to-completion fast path (a subset of
	// CtrLocalDeliveries).
	CtrRTCDeliveries
	// CtrRTCFallbacks counts Emits on RTC-enabled streams that had to take
	// the queued path (remote subscriber, fanout over budget, closed TSN
	// gate, or a full sink ring).
	CtrRTCFallbacks
	// CtrTenantQuotaRejects counts admissions refused by a tenant quota
	// (mempool slot budget or in-flight TX token cap, DESIGN.md §12).
	CtrTenantQuotaRejects
	// CtrTxReclaims counts TX tokens reclaimed from a session's lanes at
	// detach: each was charged and queued but never drained by a poller
	// (slot released, tenant uncharged, DESIGN.md §13).
	CtrTxReclaims

	// NumCounters sizes the per-shard counter array.
	NumCounters
)

// counterNames are the stable identifiers used by exporters.
var counterNames = [NumCounters]string{
	CtrEmits:              "emits",
	CtrEmitBytes:          "emit_bytes",
	CtrEmitBackpressure:   "emit_backpressure",
	CtrSchedEnqueues:      "sched_enqueues",
	CtrDispatches:         "dispatches",
	CtrTxMessages:         "tx_messages",
	CtrRxMessages:         "rx_messages",
	CtrLocalDeliveries:    "local_deliveries",
	CtrNoSinkDrops:        "drops_no_sink",
	CtrRingFullDrops:      "drops_ring_full",
	CtrTechDowngrades:     "tech_downgrades",
	CtrConsumes:           "consumes",
	CtrConsumeBytes:       "consume_bytes",
	CtrRTCDeliveries:      "rtc_deliveries",
	CtrRTCFallbacks:       "rtc_fallbacks",
	CtrTenantQuotaRejects: "tenant_quota_rejects",
	CtrTxReclaims:         "tx_reclaims",
}

// NameOf returns the stable exporter name of a counter.
func NameOf(c CounterID) string { return counterNames[c] }

// HistID enumerates the per-stage histograms. Latency histograms record
// nanoseconds; size histograms record dimensionless quantities.
type HistID int

// Pipeline-stage histograms (the §6 per-stage breakdown, live).
const (
	// HistSchedDwell is the time a packet spends between scheduler
	// enqueue and dispatch (runtime clock), ns.
	HistSchedDwell HistID = iota
	// HistTxRingOccupancy samples a session TX ring's depth at each
	// drain pass (dimensionless).
	HistTxRingOccupancy
	// HistDispatchBatch records the packet count of each non-empty
	// dispatch batch (dimensionless).
	HistDispatchBatch
	// HistDeliverLatency records the charged per-sink delivery cost, ns.
	HistDeliverLatency
	// HistConsumeLatency records the end-to-end one-way virtual latency
	// observed at Consume, ns.
	HistConsumeLatency
	// HistStageSend/Network/Recv/Processing split HistConsumeLatency by
	// Fig. 6 stage, ns.
	HistStageSend
	HistStageNetwork
	HistStageRecv
	HistStageProcessing
	// HistRTCDeliver records the charged cost of one run-to-completion
	// delivery (the RTC hop plus the per-sink delivery cost), ns.
	HistRTCDeliver

	// NumHists sizes the per-shard histogram array.
	NumHists
)

// histNames are the stable identifiers used by exporters.
var histNames = [NumHists]string{
	HistSchedDwell:      "sched_dwell",
	HistTxRingOccupancy: "txring_occupancy",
	HistDispatchBatch:   "dispatch_batch",
	HistDeliverLatency:  "deliver_latency",
	HistConsumeLatency:  "consume_latency",
	HistStageSend:       "stage_send",
	HistStageNetwork:    "stage_network",
	HistStageRecv:       "stage_recv",
	HistStageProcessing: "stage_processing",
	HistRTCDeliver:      "rtc_deliver",
}

// HistNameOf returns the stable exporter name of a histogram.
func HistNameOf(h HistID) string { return histNames[h] }

// LatencyHist reports whether a histogram records nanoseconds (true) or
// a dimensionless size (false); exporters use it to pick units.
func LatencyHist(h HistID) bool {
	return h != HistTxRingOccupancy && h != HistDispatchBatch
}

// Shard is one writer-private slab of counters and histograms. The
// canonical owner is a single goroutine (a polling thread), but all
// writes are atomic, so striping several client goroutines over one
// shard stays correct — it only costs contention, never lost updates.
//
//insane:shared
type Shard struct {
	//insane:guardedby atomic
	counters [NumCounters]atomic.Uint64
	//insane:guardedby atomic
	hists [NumHists]Hist
	// pad keeps neighboring shards on distinct cache lines even though
	// the shards are individually heap-allocated (the allocator may
	// still co-locate two small tails).
	//insane:guardedby immutable after=New
	pad [64]byte //nolint:unused // padding, deliberately never read
}

// Inc adds 1 to a counter.
//
//insane:hotpath
func (s *Shard) Inc(c CounterID) { s.counters[c].Add(1) }

// Add adds n to a counter.
//
//insane:hotpath
func (s *Shard) Add(c CounterID, n uint64) { s.counters[c].Add(n) }

// Observe records one value into a histogram.
//
//insane:hotpath
func (s *Shard) Observe(h HistID, v int64) { s.hists[h].observe(v) }

// Telemetry owns the shard set of one runtime.
//
//insane:shared
type Telemetry struct {
	shards []*Shard      //insane:guardedby immutable after=New
	next   atomic.Uint32 //insane:guardedby atomic
}

// New creates a telemetry domain with n shards (at least 1): typically
// one per polling thread plus a few for client-side handles.
func New(n int) *Telemetry {
	if n < 1 {
		n = 1
	}
	t := &Telemetry{shards: make([]*Shard, n)}
	for i := range t.shards {
		t.shards[i] = new(Shard)
	}
	return t
}

// Shard returns shard i (i < the n given to New); pollers bind their
// shard once at startup.
func (t *Telemetry) Shard(i int) *Shard { return t.shards[i] }

// AssignShard hands out shards round-robin; sources and sinks call it
// once at creation so concurrent client goroutines spread over the
// shard set instead of hammering one line.
func (t *Telemetry) AssignShard() *Shard {
	return t.shards[int(t.next.Add(1))%len(t.shards)]
}

// Snapshot is a merged, immutable view of every shard, plus the
// capacity gauges the runtime fills in (pool and cache state is owned
// by other packages and sampled at snapshot time).
type Snapshot struct {
	Counters [NumCounters]uint64
	Hists    [NumHists]HistSnapshot

	// Mempool is the slot-pool activity sampled at snapshot time.
	Mempool MempoolSnapshot
	// EnvCache aggregates the pollers' packet-envelope free lists.
	EnvCache EnvCacheSnapshot
	// SchedQueueDepth is the total packets parked in the schedulers.
	SchedQueueDepth uint64
}

// MempoolSnapshot mirrors the memory manager's counters and per-class
// free-slot gauges.
type MempoolSnapshot struct {
	Gets, Failures, Releases uint64
	// FreeSlots and CapSlots are per size class, smallest first.
	FreeSlots, CapSlots []int
	// SlotSizes lists the per-class slot sizes, smallest first.
	SlotSizes []int
}

// EnvCacheSnapshot aggregates the per-poller envelope cache counters.
type EnvCacheSnapshot struct {
	Hits, Refills, Misses, Recycles, Drops uint64
}

// Snapshot merges all shards. It allocates and is intended for the
// control path (exporters, Inspect, tests), never the data path.
func (t *Telemetry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for _, sh := range t.shards {
		for c := range s.Counters {
			s.Counters[c] += sh.counters[c].Load()
		}
		for h := range s.Hists {
			s.Hists[h].merge(&sh.hists[h])
		}
	}
	return s
}

// Counter returns one merged counter value without building a full
// snapshot (cheap enough for polling in tests).
func (t *Telemetry) Counter(c CounterID) uint64 {
	var v uint64
	for _, sh := range t.shards {
		v += sh.counters[c].Load()
	}
	return v
}
