package telemetry

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSeriesRe matches one sample line: name{labels} value.
var promSeriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf)$`)

// parseProm validates text-format output line by line and returns the
// samples as fullname{labels} -> value.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("invalid metric type in %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSeriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := typed[m[1]]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no preceding TYPE", m[1])
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestWritePromFormat renders a populated snapshot for two nodes and
// checks the output is well-formed, histograms are cumulative, and
// +Inf buckets equal _count.
func TestWritePromFormat(t *testing.T) {
	tel := New(2)
	sh := tel.Shard(0)
	for i := 0; i < 100; i++ {
		sh.Inc(CtrEmits)
		sh.Observe(HistConsumeLatency, int64(i)*10_000)
		sh.Observe(HistTxRingOccupancy, int64(i%7))
	}
	snap := tel.Snapshot()
	snap.Mempool = MempoolSnapshot{
		Gets: 100, Releases: 100,
		FreeSlots: []int{4000, 1000}, CapSlots: []int{4096, 1024},
		SlotSizes: []int{2048, 9216},
	}
	snap.EnvCache = EnvCacheSnapshot{Hits: 90, Misses: 10}
	empty := New(1).Snapshot()
	empty.Mempool = snap.Mempool

	var b strings.Builder
	if err := WriteProm(&b, []NodeSnapshot{{Node: "a", Snap: snap}, {Node: "b", Snap: empty}}); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseProm(t, text)

	if got := samples[`insane_emits_total{node="a"}`]; got != 100 {
		t.Fatalf("emits a = %v, want 100", got)
	}
	if got := samples[`insane_emits_total{node="b"}`]; got != 0 {
		t.Fatalf("emits b = %v, want 0", got)
	}
	if got := samples[`insane_consume_latency_seconds_count{node="a"}`]; got != 100 {
		t.Fatalf("consume count = %v, want 100", got)
	}
	if got := samples[`insane_consume_latency_seconds_bucket{node="a",le="+Inf"}`]; got != 100 {
		t.Fatalf("+Inf bucket = %v, want 100", got)
	}
	if got := samples[`insane_mempool_free_slots{node="a",class="2048"}`]; got != 4000 {
		t.Fatalf("free slots = %v, want 4000", got)
	}

	// Cumulative bucket counts never decrease with growing le.
	var prev float64
	bucketRe := regexp.MustCompile(`insane_consume_latency_seconds_bucket\{node="a",le="([^"]+)"\} ([0-9]+)`)
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) < 10 {
		t.Fatalf("expected many buckets, got %d", len(matches))
	}
	for _, m := range matches {
		v, _ := strconv.ParseFloat(m[2], 64)
		if v < prev {
			t.Fatalf("bucket counts not cumulative at le=%s: %v < %v", m[1], v, prev)
		}
		prev = v
	}

	// HELP/TYPE present exactly once per metric family.
	for _, fam := range []string{"insane_emits_total", "insane_consume_latency_seconds", "insane_envcache_events_total"} {
		if n := strings.Count(text, fmt.Sprintf("# TYPE %s ", fam)); n != 1 {
			t.Fatalf("TYPE for %s appears %d times, want 1", fam, n)
		}
	}
}
