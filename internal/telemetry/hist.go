// Log-linear fixed-bucket histograms, the HDR-histogram idiom: bucket
// boundaries grow exponentially (one octave per power of two) and each
// octave is subdivided linearly, so a single preallocated array covers
// nanoseconds to tens of seconds with bounded (~12%) relative error and
// O(1) recording — one bit-scan plus one atomic add, no allocation, no
// locks. This is what lets every pipeline stage keep an always-on
// latency distribution without breaking the hot path's 0 allocs/op
// discipline (DESIGN.md §8).

package telemetry

import (
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits sets the linear subdivision: 2^histSubBits sub-buckets
	// per octave (8 → worst-case relative error 1/2^3 ≈ 12%).
	histSubBits = 3
	histSub     = 1 << histSubBits

	// histMaxExp caps the tracked magnitude at 2^histMaxExp
	// (≈ 34 s in nanoseconds); larger values clamp into the last bucket.
	histMaxExp = 35

	// NumBuckets is the bucket count of every histogram: histSub unit
	// buckets for values below 2^histSubBits, then histSub linear
	// sub-buckets per octave up to histMaxExp.
	NumBuckets = histSub + (histMaxExp-histSubBits+1)*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the top bit, >= histSubBits
	if exp > histMaxExp {
		return NumBuckets - 1
	}
	sub := int(v>>(uint(exp)-histSubBits)) & (histSub - 1)
	return histSub + (exp-histSubBits)*histSub + sub
}

// BucketUpper returns the inclusive upper bound of bucket i (the largest
// value that maps into it).
func BucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := histSubBits + (i-histSub)/histSub
	sub := uint64((i-histSub)%histSub + 1)
	return uint64(1)<<uint(exp) + sub<<(uint(exp)-histSubBits) - 1
}

// Hist is one fixed-bucket histogram: preallocated, recorded into with
// plain atomic adds, merged off the hot path. The sum rides along so
// Prometheus `_sum`/`_count` semantics and mean latencies fall out of a
// snapshot directly.
//
//insane:shared
type Hist struct {
	//insane:guardedby atomic
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64 //insane:guardedby atomic
	sum     atomic.Uint64 //insane:guardedby atomic
}

// observe records one value (negative values clamp to zero).
func (h *Hist) observe(v int64) {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.buckets[bucketIndex(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
}

// HistSnapshot is a merged, immutable view of one histogram.
type HistSnapshot struct {
	// Count and Sum aggregate every recorded value.
	Count, Sum uint64
	// Buckets holds per-bucket occupancy (not cumulative); bucket i
	// covers (BucketUpper(i-1), BucketUpper(i)].
	Buckets [NumBuckets]uint64
}

// merge accumulates a live histogram into the snapshot.
func (s *HistSnapshot) merge(h *Hist) {
	// Count is loaded before the buckets: a concurrent observe between
	// the two loads can only make the bucket total >= Count, never lose
	// a recorded value from the buckets.
	s.Count += h.count.Load()
	s.Sum += h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] += h.buckets[i].Load()
	}
}

// Quantile returns an upper bound of the q-quantile (q in [0,1]) of the
// recorded values, or 0 when the histogram is empty.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper bound of the highest occupied bucket.
func (s *HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Mean returns the arithmetic mean of the recorded values.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
