package telemetry

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexBounds checks that every value maps into range and that
// BucketUpper is a consistent inclusive upper bound: v always lands in a
// bucket whose upper bound is >= v, and the previous bucket's bound < v.
func TestBucketIndexBounds(t *testing.T) {
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1000, 4096,
		1_000_000, 1 << 30, 1 << 35, 1 << 36, 1 << 60, ^uint64(0)}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if v <= 1<<histMaxExp { // clamped values legitimately exceed the bound
			if up := BucketUpper(i); up < v {
				t.Fatalf("value %d landed in bucket %d with upper %d", v, i, up)
			}
			if i > 0 {
				if low := BucketUpper(i - 1); low >= v {
					t.Fatalf("value %d in bucket %d but bucket %d upper %d >= v", v, i, i-1, low)
				}
			}
		}
	}
}

// TestBucketUpperMonotonic checks the exported bounds strictly increase.
func TestBucketUpperMonotonic(t *testing.T) {
	prev := BucketUpper(0)
	for i := 1; i < NumBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev {
			t.Fatalf("BucketUpper(%d)=%d <= BucketUpper(%d)=%d", i, up, i-1, prev)
		}
		prev = up
	}
}

// TestHistQuantile records a known distribution and checks quantile
// bounds respect the log-linear error envelope.
func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.observe(int64(i) * 1000) // 1µs .. 1ms
	}
	var s HistSnapshot
	s.merge(&h)
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	p50 := s.Quantile(0.5)
	if p50 < 400_000 || p50 > 650_000 {
		t.Fatalf("p50 = %d ns, want ≈ 500000 within bucket error", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 900_000 || p99 > 1_200_000 {
		t.Fatalf("p99 = %d ns, want ≈ 990000 within bucket error", p99)
	}
	if max := s.Max(); max < 1_000_000 || max > 1_200_000 {
		t.Fatalf("max = %d ns, want ≈ 1000000 within bucket error", max)
	}
	if mean := s.Mean(); mean < 500_000 || mean > 501_200 {
		t.Fatalf("mean = %f, want 500500", mean)
	}
}

// TestConcurrentRecording hammers one telemetry domain from many
// goroutines and checks no update is lost and histogram totals match
// counter totals exactly.
func TestConcurrentRecording(t *testing.T) {
	const (
		workers = 8
		perW    = 10_000
	)
	tel := New(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			sh := tel.AssignShard()
			for i := 0; i < perW; i++ {
				sh.Inc(CtrEmits)
				sh.Add(CtrEmitBytes, 64)
				sh.Observe(HistConsumeLatency, rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()

	snap := tel.Snapshot()
	if got := snap.Counters[CtrEmits]; got != workers*perW {
		t.Fatalf("emits = %d, want %d", got, workers*perW)
	}
	if got := snap.Counters[CtrEmitBytes]; got != workers*perW*64 {
		t.Fatalf("emit bytes = %d, want %d", got, workers*perW*64)
	}
	h := snap.Hists[HistConsumeLatency]
	if h.Count != workers*perW {
		t.Fatalf("hist count = %d, want %d", h.Count, workers*perW)
	}
	var bucketTotal uint64
	for _, b := range h.Buckets {
		bucketTotal += b
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count)
	}
}

// TestSnapshotMonotonic checks that successive snapshots never go
// backwards while writers run.
func TestSnapshotMonotonic(t *testing.T) {
	tel := New(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sh := tel.Shard(0)
		for {
			select {
			case <-stop:
				return
			default:
				sh.Inc(CtrDispatches)
				sh.Observe(HistSchedDwell, 123)
			}
		}
	}()
	var prevCtr, prevHist uint64
	for i := 0; i < 200; i++ {
		s := tel.Snapshot()
		if s.Counters[CtrDispatches] < prevCtr {
			t.Fatalf("counter went backwards: %d < %d", s.Counters[CtrDispatches], prevCtr)
		}
		if s.Hists[HistSchedDwell].Count < prevHist {
			t.Fatalf("hist count went backwards: %d < %d", s.Hists[HistSchedDwell].Count, prevHist)
		}
		prevCtr = s.Counters[CtrDispatches]
		prevHist = s.Hists[HistSchedDwell].Count
	}
	close(stop)
	wg.Wait()
}

// TestMetricNamesComplete checks every counter and histogram has a name
// and help text (exporters render them unconditionally).
func TestMetricNamesComplete(t *testing.T) {
	for c := CounterID(0); c < NumCounters; c++ {
		if NameOf(c) == "" || CounterHelp(c) == "" {
			t.Fatalf("counter %d missing name or help", c)
		}
		if !strings.HasPrefix(CounterMetricName(c), MetricPrefix) {
			t.Fatalf("counter %d metric name %q missing prefix", c, CounterMetricName(c))
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		if HistNameOf(h) == "" || HistHelp(h) == "" {
			t.Fatalf("hist %d missing name or help", h)
		}
	}
}
