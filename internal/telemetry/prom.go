// Prometheus text exposition (version 0.0.4) for telemetry snapshots.
// The exporter runs on the control path only: it renders merged
// snapshots, never touches live shards, and coalesces the fine log-linear
// buckets to one `le` per octave so a scrape stays compact while the
// in-memory histograms keep their full resolution for quantiles.

package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// MetricPrefix namespaces every exported series.
const MetricPrefix = "insane_"

// counterHelp documents each counter for # HELP lines and the DESIGN.md
// reference table.
var counterHelp = [NumCounters]string{
	CtrEmits:              "Messages admitted by Emit into a session TX ring.",
	CtrEmitBytes:          "Payload bytes admitted by Emit.",
	CtrEmitBackpressure:   "Emit attempts rejected because the TX ring was full.",
	CtrSchedEnqueues:      "Packets filed with a per-technology scheduler.",
	CtrDispatches:         "Packets dispatched out of the schedulers.",
	CtrTxMessages:         "Data messages sent to remote peers (per-peer sends).",
	CtrRxMessages:         "Data messages received from the network.",
	CtrLocalDeliveries:    "Shared-memory deliveries to co-located sinks.",
	CtrNoSinkDrops:        "Received messages dropped for lack of a subscribed sink.",
	CtrRingFullDrops:      "Deliveries dropped on full sink rings (backpressure).",
	CtrTechDowngrades:     "Remote sends forced below the stream's mapped technology.",
	CtrConsumes:           "Deliveries handed to the application by Consume.",
	CtrConsumeBytes:       "Payload bytes handed to the application by Consume.",
	CtrRTCDeliveries:      "Local deliveries made synchronously by the run-to-completion fast path.",
	CtrRTCFallbacks:       "Emits on RTC-enabled streams that fell back to the queued path.",
	CtrTenantQuotaRejects: "Admissions refused by a tenant quota (slot budget or TX token cap).",
	CtrTxReclaims:         "TX tokens reclaimed undrained from the lanes of a detaching session.",
}

// histHelp documents each histogram.
var histHelp = [NumHists]string{
	HistSchedDwell:      "Time a packet spends queued in a scheduler before dispatch.",
	HistTxRingOccupancy: "Session TX ring depth sampled at each drain pass.",
	HistDispatchBatch:   "Packets per non-empty dispatch batch.",
	HistDeliverLatency:  "Charged per-sink delivery cost.",
	HistConsumeLatency:  "End-to-end one-way virtual latency observed at Consume.",
	HistStageSend:       "Send-stage share of the one-way latency (Fig. 6).",
	HistStageNetwork:    "Network-stage share of the one-way latency (Fig. 6).",
	HistStageRecv:       "Receive-stage share of the one-way latency (Fig. 6).",
	HistStageProcessing: "Processing-stage share of the one-way latency (Fig. 6).",
	HistRTCDeliver:      "Charged cost of one run-to-completion delivery (RTC hop + per-sink cost).",
}

// CounterMetricName returns the full Prometheus series name of a counter.
func CounterMetricName(c CounterID) string {
	return MetricPrefix + counterNames[c] + "_total"
}

// HistMetricName returns the full Prometheus series name of a histogram.
func HistMetricName(h HistID) string {
	if LatencyHist(h) {
		return MetricPrefix + histNames[h] + "_seconds"
	}
	return MetricPrefix + histNames[h]
}

// CounterHelp returns the # HELP text of a counter.
func CounterHelp(c CounterID) string { return counterHelp[c] }

// HistHelp returns the # HELP text of a histogram.
func HistHelp(h HistID) string { return histHelp[h] }

// NodeSnapshot pairs a node name with its merged snapshot for export.
type NodeSnapshot struct {
	Node string
	Snap *Snapshot
	// Tenants carries the node's per-tenant domains; empty when the node
	// declares no tenants (single-tenant mode exports nothing extra).
	Tenants []TenantSnapshot
}

// TenantSnapshot is one tenant's merged telemetry plus its quota gauges,
// sampled together on the control path (DESIGN.md §12).
type TenantSnapshot struct {
	// Tenant is the declared tenant name (the `tenant` label value).
	Tenant string
	// Weight is the tenant's WDRR share.
	Weight int
	// Snap merges the tenant's private shard set.
	Snap *Snapshot
	// MemUsed/MemLimit are the mempool slot budget gauges (limit 0 =
	// unlimited).
	MemUsed, MemLimit int64
	// Inflight/InflightLimit are the TX token quota gauges (limit 0 =
	// unlimited).
	Inflight, InflightLimit int64
}

// WriteProm renders the snapshots in Prometheus text format: one
// HELP/TYPE block per metric, one series per node (label node="...").
func WriteProm(w io.Writer, nodes []NodeSnapshot) error {
	bw := &errWriter{w: w}

	for c := CounterID(0); c < NumCounters; c++ {
		name := CounterMetricName(c)
		bw.printf("# HELP %s %s\n# TYPE %s counter\n", name, counterHelp[c], name)
		for _, n := range nodes {
			bw.printf("%s{node=%q} %d\n", name, n.Node, n.Snap.Counters[c])
		}
	}

	for h := HistID(0); h < NumHists; h++ {
		name := HistMetricName(h)
		bw.printf("# HELP %s %s\n# TYPE %s histogram\n", name, histHelp[h], name)
		for _, n := range nodes {
			writeHist(bw, name, nodeLabel(n.Node), &n.Snap.Hists[h], LatencyHist(h))
		}
	}

	writeMempool(bw, nodes)
	writeEnvCache(bw, nodes)

	name := MetricPrefix + "sched_queue_depth"
	bw.printf("# HELP %s Packets parked in the per-technology schedulers.\n# TYPE %s gauge\n", name, name)
	for _, n := range nodes {
		bw.printf("%s{node=%q} %d\n", name, n.Node, n.Snap.SchedQueueDepth)
	}

	writeTenants(bw, nodes)
	return bw.err
}

// tenantCounters is the per-tenant counter subset exported with a
// tenant label; the rest of the counters are runtime-wide by nature
// (scheduler, RX, peer TX) and stay node-level only.
var tenantCounters = []CounterID{
	CtrEmits, CtrEmitBytes, CtrEmitBackpressure, CtrTenantQuotaRejects,
	CtrConsumes, CtrConsumeBytes, CtrRingFullDrops,
}

// writeTenants renders the tenant-labeled series for nodes that declare
// tenants: the counter subset, the consume-latency histogram, and the
// quota gauges.
func writeTenants(bw *errWriter, nodes []NodeSnapshot) {
	any := false
	for _, n := range nodes {
		if len(n.Tenants) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}

	for _, c := range tenantCounters {
		name := MetricPrefix + "tenant_" + counterNames[c] + "_total"
		bw.printf("# HELP %s Per-tenant: %s\n# TYPE %s counter\n", name, counterHelp[c], name)
		for _, n := range nodes {
			for _, ts := range n.Tenants {
				bw.printf("%s{node=%q,tenant=%q} %d\n", name, n.Node, ts.Tenant, ts.Snap.Counters[c])
			}
		}
	}

	hname := MetricPrefix + "tenant_" + histNames[HistConsumeLatency] + "_seconds"
	bw.printf("# HELP %s Per-tenant: %s\n# TYPE %s histogram\n", hname, histHelp[HistConsumeLatency], hname)
	for _, n := range nodes {
		for _, ts := range n.Tenants {
			writeHist(bw, hname, tenantLabels(n.Node, ts.Tenant), &ts.Snap.Hists[HistConsumeLatency], true)
		}
	}

	type gauge struct {
		name, help string
		pick       func(TenantSnapshot) int64
	}
	gauges := []gauge{
		{"tenant_weight", "Configured WDRR weight of the tenant.", func(t TenantSnapshot) int64 { return int64(t.Weight) }},
		{"tenant_mem_slots_used", "Mempool slots currently charged to the tenant.", func(t TenantSnapshot) int64 { return t.MemUsed }},
		{"tenant_mem_slots_limit", "Tenant mempool slot budget (0 = unlimited).", func(t TenantSnapshot) int64 { return t.MemLimit }},
		{"tenant_tx_inflight", "TX tokens currently in flight for the tenant.", func(t TenantSnapshot) int64 { return t.Inflight }},
		{"tenant_tx_inflight_limit", "Tenant in-flight TX token cap (0 = unlimited).", func(t TenantSnapshot) int64 { return t.InflightLimit }},
	}
	for _, g := range gauges {
		name := MetricPrefix + g.name
		bw.printf("# HELP %s %s\n# TYPE %s gauge\n", name, g.help, name)
		for _, n := range nodes {
			for _, ts := range n.Tenants {
				bw.printf("%s{node=%q,tenant=%q} %d\n", name, n.Node, ts.Tenant, g.pick(ts))
			}
		}
	}
}

// writeHist renders one histogram series under a pre-rendered label set
// (e.g. `node="n1"` or `node="n1",tenant="cam"`). The fine buckets are
// coalesced per octave; cumulative counts and `le` bounds follow the
// exposition-format contract (le is an inclusive upper bound, the +Inf
// bucket equals _count).
func writeHist(bw *errWriter, name, labels string, s *HistSnapshot, seconds bool) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if (i+1)%histSub != 0 && i != NumBuckets-1 {
			continue // emit one le per octave boundary
		}
		le := float64(BucketUpper(i))
		if seconds {
			le /= 1e9
		}
		bw.printf("%s_bucket{%s,le=%q} %d\n",
			name, labels, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	bw.printf("%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	sum := float64(s.Sum)
	if seconds {
		sum /= 1e9
	}
	bw.printf("%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(sum, 'g', -1, 64))
	bw.printf("%s_count{%s} %d\n", name, labels, cum)
}

// nodeLabel renders the node label pair.
func nodeLabel(node string) string { return "node=" + strconv.Quote(node) }

// tenantLabels renders the node+tenant label pairs.
func tenantLabels(node, tenant string) string {
	return "node=" + strconv.Quote(node) + ",tenant=" + strconv.Quote(tenant)
}

// writeMempool renders the memory-manager series.
func writeMempool(bw *errWriter, nodes []NodeSnapshot) {
	type ctr struct{ name, help string }
	ctrs := []ctr{
		{"mempool_gets_total", "Successful slot borrows from the memory manager."},
		{"mempool_failures_total", "Slot requests failed (pools exhausted or oversized)."},
		{"mempool_releases_total", "Slots fully recycled to their free rings."},
	}
	pick := func(m MempoolSnapshot, i int) uint64 {
		switch i {
		case 0:
			return m.Gets
		case 1:
			return m.Failures
		default:
			return m.Releases
		}
	}
	for i, c := range ctrs {
		name := MetricPrefix + c.name
		bw.printf("# HELP %s %s\n# TYPE %s counter\n", name, c.help, name)
		for _, n := range nodes {
			bw.printf("%s{node=%q} %d\n", name, n.Node, pick(n.Snap.Mempool, i))
		}
	}
	free := MetricPrefix + "mempool_free_slots"
	bw.printf("# HELP %s Free slots per size class.\n# TYPE %s gauge\n", free, free)
	for _, n := range nodes {
		m := n.Snap.Mempool
		for i, f := range m.FreeSlots {
			bw.printf("%s{node=%q,class=\"%d\"} %d\n", free, n.Node, m.SlotSizes[i], f)
		}
	}
	capName := MetricPrefix + "mempool_capacity_slots"
	bw.printf("# HELP %s Configured slots per size class.\n# TYPE %s gauge\n", capName, capName)
	for _, n := range nodes {
		m := n.Snap.Mempool
		for i, c := range m.CapSlots {
			bw.printf("%s{node=%q,class=\"%d\"} %d\n", capName, n.Node, m.SlotSizes[i], c)
		}
	}
}

// writeEnvCache renders the packet-envelope free-list series.
func writeEnvCache(bw *errWriter, nodes []NodeSnapshot) {
	name := MetricPrefix + "envcache_events_total"
	bw.printf("# HELP %s Packet-envelope free-list events by kind.\n# TYPE %s counter\n", name, name)
	for _, n := range nodes {
		e := n.Snap.EnvCache
		for _, kv := range [...]struct {
			k string
			v uint64
		}{
			{"hit", e.Hits}, {"refill", e.Refills}, {"miss", e.Misses},
			{"recycle", e.Recycles}, {"drop", e.Drops},
		} {
			bw.printf("%s{node=%q,event=%q} %d\n", name, n.Node, kv.k, kv.v)
		}
	}
}

// errWriter folds write errors so the render body stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
