package refsys

import (
	"time"

	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// Sendfile models the sendfile(2)-based streaming baseline of Fig. 11:
// the kernel pushes file pages straight to the socket, so there is no
// user-space copy on the sender (sender-side zero-copy), but the stream
// still traverses the kernel protocol stack per packet and the receiver
// copies every fragment for reassembly.
type Sendfile struct {
	tb model.Testbed
	// chunk is the per-packet payload (jumbo frames, as the evaluation
	// enables them for big payloads).
	chunk int
}

// NewSendfile returns the baseline model for a testbed.
func NewSendfile(tb model.Testbed) *Sendfile {
	return &Sendfile{tb: tb, chunk: netstack.MaxPayload(netstack.JumboMTU)}
}

// perPacket returns the pipeline bottleneck for one chunk: the kernel
// stack stage without the user→kernel copy (that is what sendfile saves),
// against the wire and the receiver stack (which still copies).
func (s *Sendfile) perPacket() time.Duration {
	tc := model.KernelUDP()
	// Sender: stack processing only, no syscall per packet (one sendfile
	// call covers the file) and no user copy.
	txStack := tc.TxStack
	txStack.PerByteNs = 0 // page references, not copies
	tx := txStack.Occupancy(s.chunk, 1, s.tb)
	// Receiver: full kernel receive path including the copy out.
	rx := tc.RxStack.Occupancy(s.chunk, 1, s.tb) + tc.RxPoll.Occupancy(s.chunk, 1, s.tb)
	wire := s.tb.WireOccupancy(s.chunk + netstack.HeadersLen)
	worst := tx
	if rx > worst {
		worst = rx
	}
	if wire > worst {
		worst = wire
	}
	return worst
}

// FrameLatency returns the modeled time to move one frame of size bytes
// end to end: pipeline fill (one-way latency of the first chunk) plus one
// bottleneck period per remaining chunk.
func (s *Sendfile) FrameLatency(size int) time.Duration {
	chunks := (size + s.chunk - 1) / s.chunk
	if chunks == 0 {
		chunks = 1
	}
	oneWay := model.Build(model.SysUDPNonBlocking).OneWayLatency(s.chunk, s.tb)
	return oneWay + time.Duration(chunks-1)*s.perPacket()
}

// FPS returns the modeled sustainable frames per second for frames of
// size bytes.
func (s *Sendfile) FPS(size int) float64 {
	chunks := (size + s.chunk - 1) / s.chunk
	if chunks == 0 {
		chunks = 1
	}
	perFrame := time.Duration(chunks) * s.perPacket()
	if perFrame <= 0 {
		return 0
	}
	return float64(time.Second) / float64(perFrame)
}

// Goodput returns the modeled sustained byte rate of the baseline.
func (s *Sendfile) Goodput() timebase.Rate {
	return timebase.Goodput(s.chunk, s.perPacket())
}
