package refsys

import (
	"bytes"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

func pair(t *testing.T, f Flavor) (*Participant, *Participant) {
	t.Helper()
	net := fabric.New(5)
	ipA, ipB := netstack.IPv4{10, 8, 0, 1}, netstack.IPv4{10, 8, 0, 2}
	pa, _ := net.AddHost("a", ipA)
	pb, _ := net.AddHost("b", ipB)
	if err := net.ConnectDirect(pa, pb, fabric.DefaultLink); err != nil {
		t.Fatal(err)
	}
	epA := netstack.Endpoint{IP: ipA, Port: 7400}
	epB := netstack.Endpoint{IP: ipB, Port: 7400}
	a, err := NewParticipant(f, Config{Port: pa, Resolver: net.Resolver(), Local: epA, Peers: []netstack.Endpoint{epB}, Testbed: model.Local, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParticipant(f, Config{Port: pb, Resolver: net.Resolver(), Local: epB, Peers: []netstack.Endpoint{epA}, Testbed: model.Local, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestCyclonePublishSubscribe(t *testing.T) {
	a, b := pair(t, FlavorCyclone)
	var got []Sample
	b.Subscribe("sensors/temp", func(s Sample) { got = append(got, s) })
	msg := []byte("23.5C")
	if err := a.Publish("sensors/temp", msg); err != nil {
		t.Fatal(err)
	}
	if n := b.Spin(1, 2*time.Second); n != 1 {
		t.Fatalf("dispatched %d samples, want 1", n)
	}
	if !bytes.Equal(got[0].Payload, msg) {
		t.Errorf("payload = %q", got[0].Payload)
	}
	// One-way ≈ blocking kernel path + marshal + unmarshal ≈ 9.7 µs ± jitter.
	if got[0].Latency < 7*time.Microsecond || got[0].Latency > 13*time.Microsecond {
		t.Errorf("cyclone one-way = %v, want ≈9.7µs", got[0].Latency)
	}
}

func TestZeroMQSlowerThanCyclone(t *testing.T) {
	measure := func(f Flavor) time.Duration {
		a, b := pair(t, f)
		var lat time.Duration
		b.Subscribe("t", func(s Sample) { lat = s.Latency })
		if err := a.Publish("t", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if b.Spin(1, 2*time.Second) != 1 {
			t.Fatal("no sample")
		}
		return lat
	}
	cy := measure(FlavorCyclone)
	zmq := measure(FlavorZeroMQ)
	// ZeroMQ adds ≈10 µs per direction.
	if zmq < cy+5*time.Microsecond {
		t.Errorf("zmq %v not clearly slower than cyclone %v", zmq, cy)
	}
}

func TestTopicFiltering(t *testing.T) {
	a, b := pair(t, FlavorCyclone)
	delivered := 0
	b.Subscribe("wanted", func(Sample) { delivered++ })
	if err := a.Publish("unwanted", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if n := b.Spin(1, 100*time.Millisecond); n != 0 {
		t.Errorf("dispatched %d samples of an unsubscribed topic", n)
	}
	if delivered != 0 {
		t.Error("handler ran for foreign topic")
	}
}

func TestJitterVariability(t *testing.T) {
	a, b := pair(t, FlavorCyclone)
	var lats []time.Duration
	b.Subscribe("t", func(s Sample) { lats = append(lats, s.Latency) })
	for i := 0; i < 50; i++ {
		if err := a.Publish("t", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if n := b.Spin(50, 2*time.Second); n != 50 {
		t.Fatalf("dispatched %d of 50", n)
	}
	min, max := lats[0], lats[0]
	for _, l := range lats {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min < 200*time.Nanosecond {
		t.Errorf("jitter spread = %v, want visible variability", max-min)
	}
}

func TestModelRTTFig9a(t *testing.T) {
	// Cyclone ≈ +45% over blocking-socket systems: ~19.3 µs at 64 B.
	cy := ModelRTT(FlavorCyclone, 64, model.Local)
	if cy < 18*time.Microsecond || cy > 21*time.Microsecond {
		t.Errorf("cyclone model RTT = %v, want ≈19.3µs", cy)
	}
	// ZeroMQ ≈ Cyclone + 20 µs.
	zmq := ModelRTT(FlavorZeroMQ, 64, model.Local)
	if d := zmq - cy; d != 20*time.Microsecond {
		t.Errorf("zmq - cyclone = %v, want 20µs", d)
	}
}

func TestModelThroughputFig9b(t *testing.T) {
	gbps := func(payload int) float64 {
		return float64(ModelThroughput(FlavorCyclone, payload, model.Local)) / float64(timebase.Gbps)
	}
	if got := gbps(1024); got < 4.2 || got > 5.2 {
		t.Errorf("cyclone @1KB = %.2f Gbps, want ≈4.69", got)
	}
	if got := gbps(64); got < 0.25 || got > 0.45 {
		t.Errorf("cyclone @64B = %.2f Gbps, want ≈0.37", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewParticipant(Flavor(9), Config{}); err == nil {
		t.Error("bad flavor accepted")
	}
	if _, err := NewParticipant(FlavorCyclone, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if FlavorCyclone.String() != "Cyclone DDS" || Flavor(9).String() != "unknown" {
		t.Error("Flavor.String wrong")
	}
	if TopicID("a") == TopicID("b") {
		t.Error("distinct topics hash equal")
	}
}

func TestSendfileModel(t *testing.T) {
	sf := NewSendfile(model.Local)
	// HD frame (2.76 MB): latency must exceed a 99 MB 8K frame's only by
	// the chunk count ratio, and FPS must be ordered by size.
	sizes := []int{2_760_000, 6_220_000, 11_600_000, 24_880_000, 99_530_000}
	prevLat := time.Duration(0)
	prevFPS := 1e18
	for _, size := range sizes {
		lat := sf.FrameLatency(size)
		fps := sf.FPS(size)
		if lat <= prevLat {
			t.Errorf("latency not increasing at %d", size)
		}
		if fps >= prevFPS {
			t.Errorf("FPS not decreasing at %d", size)
		}
		prevLat, prevFPS = lat, fps
	}
	// Goodput of the kernel path with jumbo chunks lands in the tens of
	// Gbps (sender-side zero copy, receive copy bound).
	g := float64(sf.Goodput()) / float64(timebase.Gbps)
	if g < 10 || g > 60 {
		t.Errorf("sendfile goodput = %.1f Gbps, implausible", g)
	}
	if sf.FPS(0) <= 0 {
		t.Error("zero-size frame FPS must be positive")
	}
}
