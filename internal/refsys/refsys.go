// Package refsys implements the reference systems the paper compares the
// Lunar applications against (§7): a Cyclone-DDS-like decentralized
// pub/sub middleware, a ZeroMQ-like messaging socket, and a sendfile-based
// zero-copy file sender. All run over the kernel UDP datapath — the paper
// configures DDS and ZeroMQ with UDP transports — with per-message
// serialization costs calibrated to Fig. 9.
package refsys

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/kernel"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// Flavor selects the modeled middleware.
type Flavor int

// The reference middlewares of Fig. 9.
const (
	// FlavorCyclone models Cyclone DDS: RTPS wire protocol, CDR
	// serialization, blocking-socket receive thread. The paper measures
	// it ≈45% above blocking-socket systems with higher variability.
	FlavorCyclone Flavor = iota + 1
	// FlavorZeroMQ models ZeroMQ's UDP (radio/dish) support: an extra
	// internal I/O-thread queue hop per side adds ≈20 µs to Cyclone's
	// RTT, with unstable throughput (excluded from Fig. 9b).
	FlavorZeroMQ
)

// String names the flavor as in the figure legends.
func (f Flavor) String() string {
	switch f {
	case FlavorCyclone:
		return "Cyclone DDS"
	case FlavorZeroMQ:
		return "ZeroMQ UDP"
	default:
		return "unknown"
	}
}

// Per-message middleware costs, calibrated against Fig. 9 (64 B..1 KB).
//
// Cyclone: RTT ≈ blocking UDP + 2×(marshal+unmarshal) ≈ 13.3 + 6 = 19.3 µs
// (+45%); throughput 1 KB ≈ 4.7 Gbps → per-message bottleneck ≈ 1.75 µs.
// ZeroMQ: + ~5 µs of I/O-thread queueing on each of the four pub/deliver
// hops of an echo → +20 µs RTT.
var (
	cycloneMarshal   = model.Component{Name: "cdr-marshal", Category: model.CatProcessing, Class: model.ScaleKernel, Fixed: 1600, PerByteNs: 0.14}
	cycloneUnmarshal = model.Component{Name: "cdr-unmarshal", Category: model.CatProcessing, Class: model.ScaleKernel, Fixed: 1400, PerByteNs: 0.14}
	zmqQueueHop      = model.Component{Name: "zmq-io-thread", Category: model.CatProcessing, Class: model.ScaleKernel, LatencyOnly: 5000}
)

// rtpsHeaderLen is the wire overhead the RTPS-like protocol adds per
// message (a reduced RTPS submessage header).
const rtpsHeaderLen = 20

// rtpsMagic identifies the modeled RTPS encapsulation.
const rtpsMagic = 0x52545053 // "RTPS"

// Participant is a pub/sub endpoint of the reference middleware: it owns
// a kernel UDP socket with a blocking receive thread, like the paper's
// DDS configuration.
type Participant struct {
	flavor Flavor
	tb     model.Testbed
	mm     *mempool.Manager
	ep     datapath.Endpoint
	local  netstack.Endpoint
	// peers are the statically discovered remote participants.
	peers []netstack.Endpoint
	// jitter models Cyclone's higher variability (±, uniform).
	jitter time.Duration
	rng    *rand.Rand

	readers map[uint32]func(Sample)
	pending []*datapath.Packet
}

// Sample is one received publication.
type Sample struct {
	Topic   string
	Payload []byte
	// Latency is the accumulated one-way virtual latency, middleware
	// overhead included.
	Latency time.Duration
	// VTime and Breakdown allow echo benchmarks to continue the clock.
	VTime     timebase.VTime
	Breakdown fabric.Breakdown
}

// Config configures a participant.
type Config struct {
	Port     *fabric.Port
	Resolver *netstack.Resolver
	Local    netstack.Endpoint
	Peers    []netstack.Endpoint
	Testbed  model.Testbed
	// Seed drives the latency jitter model.
	Seed int64
}

// NewParticipant opens a participant of the given flavor.
func NewParticipant(f Flavor, cfg Config) (*Participant, error) {
	if f != FlavorCyclone && f != FlavorZeroMQ {
		return nil, fmt.Errorf("refsys: unknown flavor %d", f)
	}
	if cfg.Port == nil || cfg.Resolver == nil {
		return nil, errors.New("refsys: incomplete config")
	}
	mm, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		return nil, err
	}
	ep, err := kernel.Plugin{}.Open(datapath.Config{
		Port:     cfg.Port,
		Resolver: cfg.Resolver,
		Local:    cfg.Local,
		Alloc: func(size int) (mempool.SlotID, []byte, error) {
			return mm.Get(size, mempool.NoOwner)
		},
		Testbed:  cfg.Testbed,
		Blocking: true, // DDS receive threads block on the socket (§7.1)
		Burst:    1,
	})
	if err != nil {
		return nil, err
	}
	jitter := 1500 * time.Nanosecond
	if f == FlavorZeroMQ {
		jitter = 4 * time.Microsecond // "unstable performance" (§7.1)
	}
	return &Participant{
		flavor:  f,
		tb:      cfg.Testbed,
		mm:      mm,
		ep:      ep,
		local:   cfg.Local,
		peers:   append([]netstack.Endpoint(nil), cfg.Peers...),
		jitter:  jitter,
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(f))),
		readers: make(map[uint32]func(Sample)),
	}, nil
}

// TopicID hashes a topic name to its wire identifier.
func TopicID(topic string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(topic))
	return h.Sum32()
}

// Publish serializes and sends one sample on a topic to all peers.
func (p *Participant) Publish(topic string, payload []byte) error {
	return p.PublishAt(topic, payload, 0, fabric.Breakdown{})
}

// PublishAt publishes a sample with a seeded virtual clock (for echoes).
func (p *Participant) PublishAt(topic string, payload []byte, at timebase.VTime, bd fabric.Breakdown) error {
	msgLen := rtpsHeaderLen + len(payload)
	slot, buf, err := p.mm.Get(datapath.Headroom+msgLen, mempool.NoOwner)
	if err != nil {
		return err
	}
	defer p.mm.Release(slot)

	// Serialize (CDR-like): the copy below is the marshaling pass.
	w := buf[datapath.Headroom:]
	binary.BigEndian.PutUint32(w[0:4], rtpsMagic)
	binary.BigEndian.PutUint32(w[4:8], TopicID(topic))
	binary.BigEndian.PutUint32(w[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(w[12:16], 0) // writer entity id
	binary.BigEndian.PutUint32(w[16:20], 0) // sequence high bits
	copy(w[rtpsHeaderLen:], payload)

	pkt := &datapath.Packet{
		Slot: slot, Buf: buf,
		Off: datapath.Headroom, Len: msgLen,
		Src: p.local, VTime: at, Breakdown: bd,
	}
	pkt.Charge(cycloneMarshal, len(payload), 1, p.tb)
	if p.flavor == FlavorZeroMQ {
		pkt.Charge(zmqQueueHop, len(payload), 1, p.tb)
	}
	// Jitter: the paper observes markedly higher variability than the
	// raw socket baselines.
	j := time.Duration(p.rng.Int63n(int64(2*p.jitter))) - p.jitter
	if j > 0 {
		pkt.VTime = pkt.VTime.Add(j)
		pkt.Breakdown.Processing += j
	}

	for _, peer := range p.peers {
		out := *pkt
		if _, err := p.ep.Send([]*datapath.Packet{&out}, peer); err != nil {
			return err
		}
	}
	return nil
}

// Subscribe registers a handler for a topic; samples arrive via Spin.
func (p *Participant) Subscribe(topic string, handler func(Sample)) {
	p.readers[TopicID(topic)] = handler
}

// Spin processes inbound samples until the timeout elapses or n samples
// were dispatched (n <= 0 means no count limit). It returns the number
// dispatched. This mirrors a DDS waitset loop.
func (p *Participant) Spin(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	dispatched := 0
	for (n <= 0 || dispatched < n) && time.Now().Before(deadline) {
		if err := p.ep.WaitRecv(time.Until(deadline)); err != nil {
			break
		}
		pkts, err := p.ep.Poll(4)
		if err != nil {
			break
		}
		for _, pkt := range pkts {
			if p.deliver(pkt) {
				dispatched++
			}
		}
	}
	return dispatched
}

// deliver parses and dispatches one packet; returns whether a handler ran.
func (p *Participant) deliver(pkt *datapath.Packet) bool {
	defer p.mm.Release(pkt.Slot)
	b := pkt.Bytes()
	if len(b) < rtpsHeaderLen || binary.BigEndian.Uint32(b[0:4]) != rtpsMagic {
		return false
	}
	topicID := binary.BigEndian.Uint32(b[4:8])
	plen := int(binary.BigEndian.Uint32(b[8:12]))
	if rtpsHeaderLen+plen > len(b) {
		return false
	}
	handler, ok := p.readers[topicID]
	if !ok {
		return false
	}
	pkt.Charge(cycloneUnmarshal, plen, 1, p.tb)
	if p.flavor == FlavorZeroMQ {
		pkt.Charge(zmqQueueHop, plen, 1, p.tb)
	}
	handler(Sample{
		Payload:   append([]byte(nil), b[rtpsHeaderLen:rtpsHeaderLen+plen]...),
		Latency:   pkt.VTime.Duration(),
		VTime:     pkt.VTime,
		Breakdown: pkt.Breakdown,
	})
	return true
}

// Close releases the participant's socket.
func (p *Participant) Close() error { return p.ep.Close() }

// ModelRTT returns the analytic ping-pong RTT of the flavor for Fig. 9a:
// the blocking-socket pipeline plus two marshal/unmarshal pairs (and, for
// ZeroMQ, four I/O-thread hops).
func ModelRTT(f Flavor, payload int, tb model.Testbed) time.Duration {
	base := model.Build(model.SysUDPBlocking).RTT(payload, tb)
	perDir := cycloneMarshal.Latency(payload, tb) + cycloneUnmarshal.Latency(payload, tb)
	rtt := base + 2*perDir
	if f == FlavorZeroMQ {
		rtt += 4 * zmqQueueHop.Latency(payload, tb)
	}
	return rtt
}

// ModelThroughput returns the analytic sustained goodput of the flavor
// for Fig. 9b: the marshaling stage (on the publisher core) bottlenecks
// the kernel pipeline; unmarshaling runs on the subscriber core.
func ModelThroughput(f Flavor, payload int, tb model.Testbed) timebase.Rate {
	p := model.Build(model.SysUDPBlocking)
	bottleneck := p.Bottleneck(payload, 1, tb)
	if m := cycloneMarshal.Occupancy(payload, 1, tb); m > bottleneck {
		bottleneck = m
	}
	if u := cycloneUnmarshal.Occupancy(payload, 1, tb); u > bottleneck {
		bottleneck = u
	}
	return timebase.Goodput(payload, bottleneck)
}
