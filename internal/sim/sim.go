// Package sim is a small discrete-event simulation engine used by the
// experiment harness to reproduce the paper's throughput figures.
//
// Latency figures come from the real middleware running over the virtual
// fabric (each packet accumulates calibrated stage costs), but sustained
// throughput is a queueing phenomenon: back-to-back messages pipeline
// through CPU cores, the NIC and the wire, and the slowest stage governs
// the rate. The engine models each pipeline stage as a FIFO server with
// deterministic per-job service times and lets experiments measure
// makespan, per-job latency and per-stage utilization — and, in tests,
// cross-check the analytic bottleneck model of internal/model.
package sim

import (
	"container/heap"
	"time"

	"github.com/insane-mw/insane/internal/timebase"
)

// event is one scheduled callback.
type event struct {
	at  timebase.VTime
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a sequential discrete-event executor. Not safe for concurrent
// use; a simulation runs on one goroutine.
type Engine struct {
	now timebase.VTime
	q   eventQueue
	seq uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() timebase.VTime { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t timebase.VTime, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.q, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now.Add(d), fn) }

// Step executes the next event; it reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	ev := heap.Pop(&e.q).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.q) }

// Server is a single FIFO resource (a CPU core, a NIC engine, the wire):
// jobs occupy it for their service time in arrival order.
type Server struct {
	eng  *Engine
	name string
	free timebase.VTime
	busy time.Duration
	jobs int
}

// NewServer attaches a named server to the engine.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Process enqueues a job arriving now with the given service time; done
// (optional) runs at completion. Returns the completion time.
func (s *Server) Process(service time.Duration, done func(end timebase.VTime)) timebase.VTime {
	start := timebase.Max(s.eng.Now(), s.free)
	end := start.Add(service)
	s.free = end
	s.busy += service
	s.jobs++
	if done != nil {
		s.eng.At(end, func() { done(end) })
	}
	return end
}

// Busy returns the cumulative service time the server performed.
func (s *Server) Busy() time.Duration { return s.busy }

// Jobs returns how many jobs the server processed.
func (s *Server) Jobs() int { return s.jobs }

// Utilization returns busy time over the horizon (or over Now if zero).
func (s *Server) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		horizon = time.Duration(s.eng.Now())
	}
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / float64(horizon)
}

// StageSpec describes one pipeline stage for RunPipeline.
type StageSpec struct {
	// Name identifies the stage in results.
	Name string
	// Service returns the occupancy of job i on this stage.
	Service func(job int) time.Duration
	// Delay is added after the stage completes without occupying it
	// (propagation, switch latency, scheduling waits).
	Delay time.Duration
}

// Result summarizes one pipeline run.
type Result struct {
	// Latency holds each job's source-to-sink virtual latency.
	Latency []time.Duration
	// Makespan is the completion time of the last job.
	Makespan time.Duration
	// Utilization maps stage name to busy fraction over the makespan.
	Utilization map[string]float64
}

// RunPipeline pushes jobs back-to-back (all arrive at time zero, as in
// the paper's stress test that sends one million messages at full speed)
// through the stages and collects latency and utilization.
func RunPipeline(stages []StageSpec, jobs int) Result {
	eng := NewEngine()
	servers := make([]*Server, len(stages))
	for i, st := range stages {
		servers[i] = NewServer(eng, st.Name)
	}
	res := Result{Latency: make([]time.Duration, jobs)}
	starts := make([]timebase.VTime, jobs)

	// advance moves job j through stage i at the current time.
	var advance func(j, i int)
	advance = func(j, i int) {
		if i == len(stages) {
			res.Latency[j] = eng.Now().Sub(starts[j])
			if m := eng.Now().Duration(); m > res.Makespan {
				res.Makespan = m
			}
			return
		}
		st := stages[i]
		service := time.Duration(0)
		if st.Service != nil {
			service = st.Service(j)
		}
		servers[i].Process(service, func(end timebase.VTime) {
			if st.Delay > 0 {
				eng.At(end.Add(st.Delay), func() { advance(j, i+1) })
				return
			}
			advance(j, i+1)
		})
	}
	for j := 0; j < jobs; j++ {
		j := j
		starts[j] = 0
		eng.At(0, func() { advance(j, 0) })
	}
	eng.Run()

	res.Utilization = make(map[string]float64, len(servers))
	for _, s := range servers {
		res.Utilization[s.Name()] += s.Utilization(res.Makespan)
	}
	return res
}

// Goodput converts a pipeline run into sustained goodput for a payload
// size: total payload bytes over the makespan.
func (r Result) Goodput(payload int) timebase.Rate {
	if r.Makespan <= 0 {
		return 0
	}
	return timebase.Goodput(payload*len(r.Latency), r.Makespan)
}
