package sim

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/timebase"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.After(30*time.Nanosecond, func() { order = append(order, 3) })
	eng.After(10*time.Nanosecond, func() { order = append(order, 1) })
	eng.After(20*time.Nanosecond, func() { order = append(order, 2) })
	// Simultaneous events run in scheduling order.
	eng.After(10*time.Nanosecond, func() { order = append(order, 10) })
	eng.Run()
	want := []int{1, 10, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Now() != timebase.VTime(30*time.Nanosecond) {
		t.Errorf("final time = %v", eng.Now())
	}
	if eng.Pending() != 0 || eng.Step() {
		t.Error("engine not drained")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	hits := 0
	eng.After(10, func() {
		hits++
		eng.After(5, func() { hits++ })
	})
	eng.Run()
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	eng := NewEngine()
	eng.After(100*time.Nanosecond, func() {
		// Scheduling in the past clamps to now rather than time-travel.
		eng.At(0, func() {
			if eng.Now() != timebase.VTime(100*time.Nanosecond) {
				t.Errorf("past event ran at %v", eng.Now())
			}
		})
	})
	eng.Run()
}

func TestServerFIFO(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "cpu")
	var ends []timebase.VTime
	eng.At(0, func() {
		s.Process(10*time.Nanosecond, func(end timebase.VTime) { ends = append(ends, end) })
		s.Process(10*time.Nanosecond, func(end timebase.VTime) { ends = append(ends, end) })
	})
	eng.Run()
	if len(ends) != 2 || ends[0] != 10 || ends[1] != 20 {
		t.Errorf("ends = %v, want [10 20]", ends)
	}
	if s.Busy() != 20*time.Nanosecond || s.Jobs() != 2 {
		t.Errorf("busy=%v jobs=%d", s.Busy(), s.Jobs())
	}
	if u := s.Utilization(0); u != 1.0 {
		t.Errorf("utilization = %f, want 1.0", u)
	}
}

// TestPipelineBottleneckLaw: with deterministic services and back-to-back
// arrivals, sustained throughput equals 1/maxService.
func TestPipelineBottleneckLaw(t *testing.T) {
	stages := []StageSpec{
		{Name: "a", Service: func(int) time.Duration { return 50 }},
		{Name: "b", Service: func(int) time.Duration { return 200 }}, // bottleneck
		{Name: "c", Service: func(int) time.Duration { return 100 }},
	}
	const jobs = 1000
	res := RunPipeline(stages, jobs)
	// Makespan ≈ jobs×bottleneck + fill of the other stages.
	want := time.Duration(jobs*200 + 150)
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// The bottleneck stage saturates; others do not.
	if res.Utilization["b"] < 0.99 {
		t.Errorf("bottleneck utilization = %f", res.Utilization["b"])
	}
	if res.Utilization["a"] > 0.3 {
		t.Errorf("non-bottleneck utilization = %f", res.Utilization["a"])
	}
	// First job sees the empty pipeline: latency = sum of services.
	if res.Latency[0] != 350 {
		t.Errorf("first-job latency = %v, want 350", res.Latency[0])
	}
	// Later jobs queue behind the bottleneck.
	if res.Latency[jobs-1] <= res.Latency[0] {
		t.Error("queueing latency did not grow")
	}
}

func TestPipelineDelayDoesNotOccupy(t *testing.T) {
	// A huge delay after a fast stage must not reduce throughput.
	stages := []StageSpec{
		{Name: "fast", Service: func(int) time.Duration { return 10 }, Delay: 10 * time.Millisecond},
	}
	res := RunPipeline(stages, 100)
	want := time.Duration(100*10) + 10*time.Millisecond
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestSimMatchesAnalyticBottleneck cross-checks the DES against the
// calibrated analytic model: the simulated goodput of each system must be
// within a few percent of the closed-form bottleneck throughput once the
// pipeline-fill transient is amortized.
func TestSimMatchesAnalyticBottleneck(t *testing.T) {
	const jobs = 5000
	systems := []model.System{
		model.SysUDPNonBlocking, model.SysRawDPDK, model.SysCatnip,
		model.SysInsaneSlow, model.SysInsaneFast,
	}
	for _, sys := range systems {
		for _, payload := range []int{64, 1024, 8192} {
			res := SystemGoodput(sys, payload, jobs, model.Local)
			got := float64(res.Goodput(payload))
			want := float64(model.Build(sys).Throughput(payload, model.Local))
			if want == 0 {
				t.Fatalf("%v: analytic throughput is zero", sys)
			}
			ratio := got / want
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("%v @%dB: sim %.2f vs analytic %.2f Gbps (ratio %.3f)",
					sys, payload, got/1e9, want/1e9, ratio)
			}
		}
	}
}

// TestSimLatencyUnderLoadGrows: the DES exposes queueing that the
// analytic model cannot (sanity for Fig. 8's regime).
func TestSimLatencyUnderLoadGrows(t *testing.T) {
	res := SystemGoodput(model.SysInsaneFast, 1024, 200, model.Local)
	if res.Latency[199] <= res.Latency[0] {
		t.Error("no queueing delay under sustained load")
	}
	// Unloaded latency (first job) approximates the one-way model.
	oneWay := model.Build(model.SysInsaneFast).OneWayLatency(1024, model.Local)
	first := res.Latency[0]
	// The DES charges occupancy-only work (TX completion reaping) and
	// amortized burst costs differently, so allow a generous band.
	if first < oneWay/2 || first > oneWay*2 {
		t.Errorf("first-job latency %v far from one-way model %v", first, oneWay)
	}
}

func TestGoodputZeroJobs(t *testing.T) {
	res := Result{}
	if res.Goodput(100) != 0 {
		t.Error("goodput of empty run must be 0")
	}
}

// TestMultiSinkDESMatchesAnalytic cross-validates the Fig. 8b analytic
// fanout model against the discrete-event simulation.
func TestMultiSinkDESMatchesAnalytic(t *testing.T) {
	const payload = 1024
	for _, n := range []int{1, 2, 4, 6, 8} {
		res := MultiSinkGoodput(model.SysInsaneFast, n, payload, 3000, model.Local)
		got := float64(res.Goodput(payload))
		want := float64(model.MultiSinkPerSinkThroughput(model.SysInsaneFast, n, payload, model.Local))
		ratio := got / want
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%d sinks: DES %.2f vs analytic %.2f Gbps (ratio %.3f)",
				n, got/1e9, want/1e9, ratio)
		}
	}
}
