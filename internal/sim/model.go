package sim

import (
	"time"

	"github.com/insane-mw/insane/internal/model"
)

// StagesFor converts a calibrated system pipeline (internal/model) into
// simulation stages for a given payload size: non-wire stages become CPU
// servers with the pipeline's per-burst occupancy, the wire becomes a
// serialization server plus a pure propagation/switch delay, and
// latency-only waits become delays.
func StagesFor(sys model.System, payload int, tb model.Testbed) []StageSpec {
	p := model.Build(sys)
	burst := 1
	if sys.Batching() {
		burst = model.DefaultBurst
	}
	out := make([]StageSpec, 0, len(p.Stages))
	for _, st := range p.Stages {
		st := st
		if st.Wire {
			out = append(out, StageSpec{
				Name: st.Name,
				Service: func(int) time.Duration {
					return tb.WireOccupancy(payload + model.FrameOverhead)
				},
				Delay: tb.PropDelay + tb.SwitchLatency,
			})
			continue
		}
		occ := st.Occupancy(payload, burst, tb)
		wait := stageWait(st, tb)
		out = append(out, StageSpec{
			Name:    st.Name,
			Service: func(int) time.Duration { return occ },
			Delay:   wait,
		})
	}
	return out
}

// stageWait sums the latency-only components of a stage (queueing waits
// that delay packets without occupying the resource).
func stageWait(st model.Stage, tb model.Testbed) time.Duration {
	var d time.Duration
	for _, c := range st.Comps {
		d += tb.Scale(c.Class, c.LatencyOnly)
	}
	return d
}

// SystemGoodput runs jobs messages of the given payload through the
// system's simulated pipeline and returns the sustained goodput.
func SystemGoodput(sys model.System, payload, jobs int, tb model.Testbed) Result {
	return RunPipeline(StagesFor(sys, payload, tb), jobs)
}

// MultiSinkGoodput simulates the Fig. 8b scenario: the receiving polling
// thread delivers every packet to n sinks, so its per-packet service time
// grows by the calibrated fanout cost. Returns the per-sink goodput run.
func MultiSinkGoodput(sys model.System, n, payload, jobs int, tb model.Testbed) Result {
	stages := StagesFor(sys, payload, tb)
	extra := tb.Scale(model.ScaleRuntime, model.DefaultRuntimeCosts().MultiSinkExtra(n))
	for i := range stages {
		if stages[i].Name != "runtime-rx" {
			continue
		}
		base := stages[i].Service
		stages[i].Service = func(j int) time.Duration { return base(j) + extra }
	}
	return RunPipeline(stages, jobs)
}
