// Package demikernel reimplements the Demikernel baseline the paper
// compares against (Zhang et al., SOSP '21): a library-OS datapath
// architecture with a queue-descriptor API, linked into the application
// process. Two library OSes are provided, matching the paper's §6:
//
//   - Catnap: network operations map to kernel sockets;
//   - Catnip: network operations map to DPDK.
//
// The two structural differences from INSANE that the paper's results
// hinge on are reproduced faithfully:
//
//  1. No runtime IPC hop — the library shares the application's address
//     space, so per-packet overhead is lower (Fig. 7);
//  2. No sender batching — Catnip "is optimized for latency and sends one
//     packet per time on the network", which caps its throughput well
//     below INSANE's opportunistic batching (Fig. 8a).
package demikernel

import (
	"errors"
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/dpdk"
	"github.com/insane-mw/insane/internal/datapath/kernel"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// Variant selects the library OS.
type Variant int

// The library OSes of the paper's evaluation.
const (
	// Catnap maps I/O to kernel sockets.
	Catnap Variant = iota + 1
	// Catnip maps I/O to DPDK.
	Catnip
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Catnap:
		return "catnap"
	case Catnip:
		return "catnip"
	default:
		return "unknown"
	}
}

// Errors returned by the library.
var (
	ErrBadQD    = errors.New("demikernel: invalid queue descriptor")
	ErrNotBound = errors.New("demikernel: socket not bound")
	ErrTimeout  = errors.New("demikernel: wait timeout")
)

// QD is a queue descriptor (the Demikernel handle for an I/O queue).
type QD int

// Result is the completion of a pop operation.
type Result struct {
	// Payload is the received datagram.
	Payload []byte
	// From is the sender address.
	From netstack.Endpoint
	// VTime is the accumulated virtual latency of the datagram.
	VTime timebase.VTime
	// Breakdown splits VTime by pipeline stage.
	Breakdown fabric.Breakdown
}

// Config configures a library OS instance.
type Config struct {
	// Port is the NIC port the library drives.
	Port *fabric.Port
	// Resolver is the fabric address table.
	Resolver *netstack.Resolver
	// Testbed selects the calibrated cost environment.
	Testbed model.Testbed
	// Blocking selects blocking receives for Catnap (the paper measures
	// Catnap against both socket modes).
	Blocking bool
}

// LibOS is one Demikernel instance: single-threaded, like the original's
// run-to-completion model.
type LibOS struct {
	variant Variant
	cfg     Config
	costs   model.LibCosts
	mm      *mempool.Manager
	ep      datapath.Endpoint

	sockets map[QD]*socket
	nextQD  QD
}

// socket is one UDP queue.
type socket struct {
	local   netstack.Endpoint
	remote  netstack.Endpoint
	bound   bool
	pending []*datapath.Packet
}

// New creates a library OS of the given variant.
func New(v Variant, cfg Config) (*LibOS, error) {
	if cfg.Port == nil || cfg.Resolver == nil {
		return nil, errors.New("demikernel: incomplete config")
	}
	mm, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		return nil, err
	}
	l := &LibOS{
		variant: v,
		cfg:     cfg,
		mm:      mm,
		sockets: make(map[QD]*socket),
	}
	switch v {
	case Catnap:
		l.costs = model.CatnapLib()
	case Catnip:
		l.costs = model.CatnipLib()
	default:
		return nil, fmt.Errorf("demikernel: unknown variant %d", v)
	}
	return l, nil
}

// Socket creates a UDP queue and returns its descriptor.
func (l *LibOS) Socket() (QD, error) {
	l.nextQD++
	l.sockets[l.nextQD] = &socket{}
	return l.nextQD, nil
}

// Bind attaches the queue to a local address, opening the underlying
// datapath.
func (l *LibOS) Bind(qd QD, local netstack.Endpoint) error {
	s, ok := l.sockets[qd]
	if !ok {
		return ErrBadQD
	}
	if l.ep == nil {
		alloc := func(size int) (mempool.SlotID, []byte, error) {
			return l.mm.Get(size, mempool.NoOwner)
		}
		dcfg := datapath.Config{
			Port:     l.cfg.Port,
			Resolver: l.cfg.Resolver,
			Local:    local,
			Alloc:    alloc,
			Testbed:  l.cfg.Testbed,
			Blocking: l.cfg.Blocking,
			Burst:    1, // Demikernel sends/receives one packet per time
		}
		var (
			ep  datapath.Endpoint
			err error
		)
		switch l.variant {
		case Catnap:
			ep, err = kernel.Plugin{}.Open(dcfg)
		case Catnip:
			ep, err = dpdk.Plugin{}.Open(dcfg)
		}
		if err != nil {
			return err
		}
		l.ep = ep
	}
	s.local = local
	s.bound = true
	return nil
}

// Connect sets the default destination of the queue.
func (l *LibOS) Connect(qd QD, remote netstack.Endpoint) error {
	s, ok := l.sockets[qd]
	if !ok {
		return ErrBadQD
	}
	s.remote = remote
	return nil
}

// Push sends payload to the queue's connected destination. The libOS
// overhead is charged on the pushing side; there is no batching.
func (l *LibOS) Push(qd QD, payload []byte) error {
	return l.PushAt(qd, payload, 0, fabric.Breakdown{})
}

// PushAt sends payload seeding the packet's virtual clock (echo servers
// continue the request's clock for RTT accounting).
func (l *LibOS) PushAt(qd QD, payload []byte, at timebase.VTime, bd fabric.Breakdown) error {
	s, ok := l.sockets[qd]
	if !ok {
		return ErrBadQD
	}
	if !s.bound || l.ep == nil {
		return ErrNotBound
	}
	slot, buf, err := l.mm.Get(datapath.Headroom+len(payload), mempool.NoOwner)
	if err != nil {
		return err
	}
	defer l.mm.Release(slot)
	copy(buf[datapath.Headroom:], payload)
	pkt := &datapath.Packet{
		Slot: slot, Buf: buf,
		Off: datapath.Headroom, Len: len(payload),
		Src: s.local, VTime: at, Breakdown: bd,
	}
	pkt.Charge(l.costs.PerSide, len(payload), 1, l.cfg.Testbed)

	if l.variant == Catnip {
		// Catnip runs its own stack: frame in place (zero-copy), one
		// packet per send.
		dstMAC, err := l.cfg.Resolver.Resolve(s.remote.IP)
		if err != nil {
			return err
		}
		n, err := netstack.EncodeUDP(buf, netstack.FrameMeta{
			SrcMAC: l.cfg.Port.MAC(), DstMAC: dstMAC,
			Src: s.local, Dst: s.remote,
		}, len(payload), l.cfg.Port.MTU())
		if err != nil {
			return err
		}
		pkt.Off, pkt.Len, pkt.Framed = 0, n, true
	}
	_, err = l.ep.Send([]*datapath.Packet{pkt}, s.remote)
	return err
}

// Pop receives one datagram from the queue, waiting up to timeout (zero
// blocks the busy-poll loop until data shows up, without deadline).
func (l *LibOS) Pop(qd QD, timeout time.Duration) (Result, error) {
	s, ok := l.sockets[qd]
	if !ok {
		return Result{}, ErrBadQD
	}
	if !s.bound || l.ep == nil {
		return Result{}, ErrNotBound
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if len(s.pending) > 0 {
			pkt := s.pending[0]
			s.pending = s.pending[1:]
			return l.complete(pkt)
		}
		if l.cfg.Blocking {
			if err := l.ep.WaitRecv(timeout); err != nil {
				return Result{}, ErrTimeout
			}
		}
		pkts, err := l.ep.Poll(1)
		if err != nil {
			return Result{}, err
		}
		if len(pkts) > 0 {
			s.pending = append(s.pending, pkts...)
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Result{}, ErrTimeout
		}
	}
}

// complete finishes a pop: Catnip parses its own frames; both variants
// charge the libOS overhead on the popping side.
func (l *LibOS) complete(pkt *datapath.Packet) (Result, error) {
	defer l.mm.Release(pkt.Slot)
	payloadView := pkt.Bytes()
	from := pkt.Src
	if pkt.Framed {
		meta, payload, err := netstack.DecodeUDP(payloadView)
		if err != nil {
			return Result{}, err
		}
		payloadView = payload
		from = meta.Src
	}
	pkt.Charge(l.costs.PerSide, len(payloadView), 1, l.cfg.Testbed)
	out := Result{
		Payload:   append([]byte(nil), payloadView...),
		From:      from,
		VTime:     pkt.VTime,
		Breakdown: pkt.Breakdown,
	}
	return out, nil
}

// Close releases the endpoint.
func (l *LibOS) Close() error {
	if l.ep != nil {
		return l.ep.Close()
	}
	return nil
}
