package demikernel

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// pair builds two connected LibOS instances of the same variant.
func pair(t *testing.T, v Variant, blocking bool) (*LibOS, *LibOS, QD, QD) {
	t.Helper()
	net := fabric.New(3)
	ipA, ipB := netstack.IPv4{10, 9, 0, 1}, netstack.IPv4{10, 9, 0, 2}
	pa, err := net.AddHost("a", ipA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := net.AddHost("b", ipB)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectDirect(pa, pb, fabric.DefaultLink); err != nil {
		t.Fatal(err)
	}
	mk := func(port *fabric.Port, ip netstack.IPv4) (*LibOS, QD) {
		l, err := New(v, Config{Port: port, Resolver: net.Resolver(), Testbed: model.Local, Blocking: blocking})
		if err != nil {
			t.Fatal(err)
		}
		qd, err := l.Socket()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Bind(qd, netstack.Endpoint{IP: ip, Port: 9000}); err != nil {
			t.Fatal(err)
		}
		return l, qd
	}
	la, qa := mk(pa, ipA)
	lb, qb := mk(pb, ipB)
	if err := la.Connect(qa, netstack.Endpoint{IP: ipB, Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if err := lb.Connect(qb, netstack.Endpoint{IP: ipA, Port: 9000}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { la.Close(); lb.Close() })
	return la, lb, qa, qb
}

func TestCatnapRoundTrip(t *testing.T) {
	la, lb, qa, qb := pair(t, Catnap, false)
	msg := []byte("catnap datagram")
	if err := la.Push(qa, msg); err != nil {
		t.Fatal(err)
	}
	res, err := lb.Pop(qb, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, msg) {
		t.Errorf("payload = %q, want %q", res.Payload, msg)
	}
	// Catnap one-way ≈ kernel one-way + 540 ns lib ≈ 6.83 µs.
	if res.VTime.Duration() < 6*time.Microsecond || res.VTime.Duration() > 8*time.Microsecond {
		t.Errorf("catnap one-way = %v, want ≈6.8µs", res.VTime)
	}
}

func TestCatnipRoundTrip(t *testing.T) {
	la, lb, qa, qb := pair(t, Catnip, false)
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	if err := la.Push(qa, msg); err != nil {
		t.Fatal(err)
	}
	res, err := lb.Pop(qb, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, msg) {
		t.Error("payload mismatch")
	}
	// Catnip one-way ≈ raw DPDK 1.72 µs + 410 ns lib = 2.13 µs.
	if res.VTime.Duration() < 1900*time.Nanosecond || res.VTime.Duration() > 2400*time.Nanosecond {
		t.Errorf("catnip one-way = %v, want ≈2.13µs", res.VTime)
	}
}

// TestPingPongRTTMatchesFig7 runs a full echo and compares the accumulated
// virtual RTT with the paper's Fig. 7a values.
func TestPingPongRTTMatchesFig7(t *testing.T) {
	cases := []struct {
		variant  Variant
		blocking bool
		want     time.Duration
	}{
		{Catnap, false, 13660 * time.Nanosecond},
		{Catnip, false, 4260 * time.Nanosecond},
	}
	for _, c := range cases {
		t.Run(c.variant.String(), func(t *testing.T) {
			la, lb, qa, qb := pair(t, c.variant, c.blocking)
			msg := make([]byte, 64)
			if err := la.Push(qa, msg); err != nil {
				t.Fatal(err)
			}
			req, err := lb.Pop(qb, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if err := lb.PushAt(qb, req.Payload, req.VTime, req.Breakdown); err != nil {
				t.Fatal(err)
			}
			pong, err := la.Pop(qa, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			rtt := pong.VTime.Duration()
			lo := time.Duration(float64(c.want) * 0.95)
			hi := time.Duration(float64(c.want) * 1.05)
			if rtt < lo || rtt > hi {
				t.Errorf("%s RTT = %v, want ≈%v", c.variant, rtt, c.want)
			}
		})
	}
}

func TestBlockingCatnap(t *testing.T) {
	la, lb, qa, qb := pair(t, Catnap, true)
	if err := la.Push(qa, []byte("wake up")); err != nil {
		t.Fatal(err)
	}
	res, err := lb.Pop(qb, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "wake up" {
		t.Errorf("payload = %q", res.Payload)
	}
}

func TestPopTimeout(t *testing.T) {
	_, lb, _, qb := pair(t, Catnap, false)
	start := time.Now()
	if _, err := lb.Pop(qb, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("pop returned before deadline")
	}
}

func TestAPIValidation(t *testing.T) {
	if _, err := New(Variant(9), Config{}); err == nil {
		t.Error("bad variant accepted")
	}
	net := fabric.New(1)
	p, _ := net.AddHost("x", netstack.IPv4{10, 9, 1, 1})
	l, err := New(Catnap, Config{Port: p, Resolver: net.Resolver(), Testbed: model.Local})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Bind(QD(99), netstack.Endpoint{}); !errors.Is(err, ErrBadQD) {
		t.Errorf("bad qd bind = %v", err)
	}
	if err := l.Connect(QD(99), netstack.Endpoint{}); !errors.Is(err, ErrBadQD) {
		t.Errorf("bad qd connect = %v", err)
	}
	if err := l.Push(QD(99), nil); !errors.Is(err, ErrBadQD) {
		t.Errorf("bad qd push = %v", err)
	}
	qd, _ := l.Socket()
	if err := l.Push(qd, []byte("x")); !errors.Is(err, ErrNotBound) {
		t.Errorf("unbound push = %v", err)
	}
	if _, err := l.Pop(qd, time.Millisecond); !errors.Is(err, ErrNotBound) {
		t.Errorf("unbound pop = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantString(t *testing.T) {
	if Catnap.String() != "catnap" || Catnip.String() != "catnip" || Variant(9).String() != "unknown" {
		t.Error("Variant.String wrong")
	}
}
