// Package sched implements INSANE's packet schedulers (§5.3): the default
// FIFO strategy, which forwards packets "as soon as the user code emits
// them", and a Time-Sensitive Networking scheduler implementing the IEEE
// 802.1Qbv time-aware shaper for streams marked time-sensitive.
//
// The 802.1Qbv shaper divides time into a repeating cycle described by a
// gate control list (GCL): each entry opens a subset of the eight traffic
// classes for a slice of the cycle. A packet may only leave while its
// class's gate is open, which bounds the interference lower-priority
// traffic can impose on a time-critical flow — the deterministic behaviour
// the paper targets for edge soft real-time applications.
package sched

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/timebase"
)

// NumClasses is the number of 802.1Qbv traffic classes.
const NumClasses = 8

// Scheduler orders outgoing packets. Implementations are used by exactly
// one polling thread and need not be safe for concurrent use (§5.3: each
// datapath is driven by one thread).
type Scheduler interface {
	// Enqueue accepts a packet for transmission at virtual time now
	// (used to account gate waits; FIFO ignores it).
	//insane:hotpath
	Enqueue(p *datapath.Packet, now timebase.VTime)
	// Dequeue fills dst with packets eligible for transmission at
	// virtual time now and returns how many were written.
	//insane:hotpath
	Dequeue(dst []*datapath.Packet, now timebase.VTime) int
	// Pending returns the number of queued packets.
	//insane:hotpath
	Pending() int
	// NextEvent returns the next virtual time at which more packets may
	// become eligible (gate opening), or zero when nothing is queued or
	// everything queued is already eligible.
	//insane:hotpath
	NextEvent(now timebase.VTime) timebase.VTime
}

// FIFO is the default scheduler: strict arrival order, always eligible.
type FIFO struct {
	q []*datapath.Packet
}

var _ Scheduler = (*FIFO)(nil)

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue appends the packet.
//
//insane:hotpath
//lint:ignore insanevet/hotpathcheck append growth is amortized; the queue reaches steady-state capacity
func (f *FIFO) Enqueue(p *datapath.Packet, _ timebase.VTime) { f.q = append(f.q, p) }

// Dequeue pops up to len(dst) packets in arrival order.
//
//insane:hotpath
func (f *FIFO) Dequeue(dst []*datapath.Packet, _ timebase.VTime) int {
	n := copy(dst, f.q)
	remaining := copy(f.q, f.q[n:])
	//insane:bounded by=zeroes the n entries just popped, n <= len(dst) (the caller's burst)
	for i := remaining; i < len(f.q); i++ {
		f.q[i] = nil
	}
	f.q = f.q[:remaining]
	return n
}

// Pending returns the queue length.
func (f *FIFO) Pending() int { return len(f.q) }

// NextEvent always returns zero: FIFO packets are immediately eligible.
func (f *FIFO) NextEvent(timebase.VTime) timebase.VTime { return 0 }

// GCLEntry is one slice of the 802.1Qbv cycle.
type GCLEntry struct {
	// Duration is the length of the slice.
	Duration time.Duration
	// Gates is a bitmask of open traffic classes (bit i = class i).
	Gates uint8
}

// GCL is a gate control list: a full cycle of gate states.
type GCL []GCLEntry

// Validate checks that the list describes a usable cycle.
func (g GCL) Validate() error {
	if len(g) == 0 {
		return fmt.Errorf("sched: empty gate control list")
	}
	for i, e := range g {
		if e.Duration <= 0 {
			return fmt.Errorf("sched: GCL entry %d has non-positive duration", i)
		}
	}
	var anyOpen uint8
	for _, e := range g {
		anyOpen |= e.Gates
	}
	if anyOpen == 0 {
		return fmt.Errorf("sched: no gate ever opens")
	}
	return nil
}

// Cycle returns the total cycle duration.
func (g GCL) Cycle() time.Duration {
	var d time.Duration
	for _, e := range g {
		d += e.Duration
	}
	return d
}

// DefaultGCL returns a two-slice cycle commonly used in industrial TSN
// profiles: a protected window for class 7 (time-critical traffic)
// followed by an open window for everything else. Cycle length follows the
// typical 802.1Qbv isochronous cycle of industrial deployments.
func DefaultGCL() GCL {
	return GCL{
		{Duration: 50 * time.Microsecond, Gates: 1 << 7},
		{Duration: 200 * time.Microsecond, Gates: 0x7F},
	}
}

// tasEntry is one queued packet with its enqueue time, so the gate wait
// can be charged to the packet's virtual clock on release.
type tasEntry struct {
	pkt *datapath.Packet
	at  timebase.VTime
}

// TAS is the IEEE 802.1Qbv time-aware shaper: one FIFO queue per traffic
// class, gated by the cycle position, with strict priority (highest class
// first) among simultaneously open gates.
type TAS struct {
	gcl    GCL
	cycle  time.Duration
	queues [NumClasses][]tasEntry
	count  int
}

var _ Scheduler = (*TAS)(nil)

// NewTAS returns a shaper driven by the given gate control list.
func NewTAS(gcl GCL) (*TAS, error) {
	if err := gcl.Validate(); err != nil {
		return nil, err
	}
	return &TAS{gcl: gcl, cycle: gcl.Cycle()}, nil
}

// Enqueue files the packet under its traffic class, recording when it
// arrived on the scheduler's clock. The packet — its slot and its
// pooled envelope — belongs to the scheduler until Dequeue hands it to
// dispatch.
//
//insane:hotpath
//insane:transfer resource=pooled-obj
//insane:transfer resource=mem-slot
func (t *TAS) Enqueue(p *datapath.Packet, now timebase.VTime) {
	class := p.Class
	if class >= NumClasses {
		class = NumClasses - 1
	}
	//lint:ignore insanevet/hotpathcheck append growth is amortized; class queues reach steady-state capacity
	t.queues[class] = append(t.queues[class], tasEntry{pkt: p, at: now})
	t.count++
}

// gatesAt returns the open-gate mask at virtual time now.
func (t *TAS) gatesAt(now timebase.VTime) uint8 {
	pos := time.Duration(now) % t.cycle
	//insane:bounded by=one entry per gate-control-list slot, fixed at scheduler construction
	for _, e := range t.gcl {
		if pos < e.Duration {
			return e.Gates
		}
		pos -= e.Duration
	}
	return 0 // unreachable: pos < cycle by construction
}

// GateOpenAt reports whether a traffic class's gate is open at virtual
// time now. Unlike the queue operations it is safe to call concurrently
// with a poller using the shaper: it reads only the gate control list and
// cycle length, both immutable after construction. The run-to-completion
// fast path uses it to honor 802.1Qbv windows without taking the
// scheduler lock.
//
//insane:hotpath
func (t *TAS) GateOpenAt(class uint8, now timebase.VTime) bool {
	if class >= NumClasses {
		class = NumClasses - 1
	}
	return t.gatesAt(now)&(1<<class) != 0
}

// Dequeue drains eligible packets: only classes whose gate is open at now,
// highest class first. A dequeued packet that had to wait for its gate
// carries the wait (now minus its enqueue time, both on the scheduler's
// clock) as added virtual latency.
//
//insane:hotpath
func (t *TAS) Dequeue(dst []*datapath.Packet, now timebase.VTime) int {
	if t.count == 0 || len(dst) == 0 {
		return 0
	}
	gates := t.gatesAt(now)
	n := 0
	for class := NumClasses - 1; class >= 0 && n < len(dst); class-- {
		if gates&(1<<uint(class)) == 0 {
			continue
		}
		q := t.queues[class]
		take := len(q)
		if take > len(dst)-n {
			take = len(dst) - n
		}
		//insane:bounded by=take <= len(dst)-n, the caller's burst buffer
		for i := 0; i < take; i++ {
			e := q[i]
			if wait := now.Sub(e.at); wait > 0 {
				e.pkt.VTime = e.pkt.VTime.Add(wait)
				e.pkt.Breakdown.Send += wait
			}
			dst[n] = e.pkt
			n++
		}
		remaining := copy(q, q[take:])
		//insane:bounded by=zeroes the take entries just popped, take <= len(dst) (the caller's burst)
		for i := remaining; i < len(q); i++ {
			q[i] = tasEntry{}
		}
		t.queues[class] = q[:remaining]
		t.count -= take
	}
	return n
}

// Pending returns the total queued packets across classes.
func (t *TAS) Pending() int { return t.count }

// NextEvent returns the virtual time of the next gate change that could
// release queued packets, or zero when the queue is empty or some queued
// class is already open.
func (t *TAS) NextEvent(now timebase.VTime) timebase.VTime {
	if t.count == 0 {
		return 0
	}
	var queued uint8
	for class := range t.queues {
		if len(t.queues[class]) > 0 {
			queued |= 1 << uint(class)
		}
	}
	if t.gatesAt(now)&queued != 0 {
		return 0 // something is eligible right now
	}
	// Walk entry boundaries forward from the current cycle position until
	// an entry opens a queued class.
	pos := time.Duration(now) % t.cycle
	idx, off := t.entryAt(pos)
	elapsed := t.gcl[idx].Duration - off // time to the end of this entry
	//insane:bounded by=one pass over the gate-control list, fixed at construction by Validate
	for i := 1; i <= len(t.gcl); i++ {
		e := t.gcl[(idx+i)%len(t.gcl)]
		if e.Gates&queued != 0 {
			return now.Add(elapsed)
		}
		elapsed += e.Duration
	}
	return 0 // no gate ever opens for queued classes (prevented by Validate)
}

// entryAt locates the GCL entry covering cycle position pos, returning its
// index and the offset within it.
func (t *TAS) entryAt(pos time.Duration) (int, time.Duration) {
	//insane:bounded by=one pass over the gate-control list, fixed at construction by Validate
	for i, e := range t.gcl {
		if pos < e.Duration {
			return i, pos
		}
		pos -= e.Duration
	}
	return len(t.gcl) - 1, t.gcl[len(t.gcl)-1].Duration
}
