package sched

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/timebase"
)

func tpkt(tenant uint16, class uint8, size int) *datapath.Packet {
	return &datapath.Packet{Tenant: tenant, Class: class, Len: size}
}

func TestWDRRSingleTenantIsFIFO(t *testing.T) {
	w, err := NewWDRR(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := tpkt(0, 0, 100)
		p.VTime = timebase.VTime(i)
		w.Enqueue(p, 0)
	}
	if w.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", w.Pending())
	}
	dst := make([]*datapath.Packet, 3)
	if n := w.Dequeue(dst, 0); n != 3 {
		t.Fatalf("Dequeue = %d, want 3", n)
	}
	for i, p := range dst {
		if p.VTime != timebase.VTime(i) {
			t.Errorf("dst[%d].VTime = %v, want %d", i, p.VTime, i)
		}
	}
	rest := make([]*datapath.Packet, 8)
	if n := w.Dequeue(rest, 0); n != 2 {
		t.Fatalf("final Dequeue = %d, want 2", n)
	}
	if w.NextEvent(0) != 0 {
		t.Error("ungated WDRR NextEvent must be 0")
	}
}

// TestWDRRFairnessByWeight: two backlogged tenants with weights 1:3
// must share a drain in a ~1:3 packet ratio (equal packet sizes).
func TestWDRRFairnessByWeight(t *testing.T) {
	w, err := NewWDRR([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 400
	for i := 0; i < backlog; i++ {
		w.Enqueue(tpkt(0, 0, 1024), 0)
		w.Enqueue(tpkt(1, 0, 1024), 0)
	}
	dst := make([]*datapath.Packet, 64)
	counts := [2]int{}
	// Drain half the total backlog so both tenants stay backlogged the
	// whole time (fair share only holds while both compete).
	drained := 0
	for drained < backlog {
		n := w.Dequeue(dst, 0)
		if n == 0 {
			t.Fatal("backlogged scheduler released nothing")
		}
		for _, p := range dst[:n] {
			counts[p.Tenant]++
		}
		drained += n
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight-3 / weight-1 ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

// TestWDRRNoStarvationUnderFlood: a flooding tenant cannot keep a
// one-packet tenant out of a single burst.
func TestWDRRNoStarvationUnderFlood(t *testing.T) {
	w, _ := NewWDRR([]int{1, 1}, nil)
	for i := 0; i < 1000; i++ {
		w.Enqueue(tpkt(0, 0, 9000), 0)
	}
	w.Enqueue(tpkt(1, 0, 100), 0)
	dst := make([]*datapath.Packet, 8)
	n := w.Dequeue(dst, 0)
	found := false
	for _, p := range dst[:n] {
		if p.Tenant == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("tenant 1's lone packet did not make the first burst")
	}
}

// TestWDRRGateHold: with a GCL, best-effort packets are held during the
// protected window and the wait is charged to the packet's virtual time.
func TestWDRRGateHold(t *testing.T) {
	w, err := NewWDRR([]int{1, 1}, twoSliceGCL())
	if err != nil {
		t.Fatal(err)
	}
	emit := timebase.VTime(10 * time.Microsecond)
	p := tpkt(0, 0, 100)
	p.VTime = emit
	w.Enqueue(p, emit)
	dst := make([]*datapath.Packet, 4)

	// Protected window: class-0 gate closed, nothing leaves.
	if n := w.Dequeue(dst, timebase.VTime(20*time.Microsecond)); n != 0 {
		t.Fatalf("protected-window dequeue = %d, want 0", n)
	}
	// NextEvent points at the gate opening (100µs).
	if got, want := w.NextEvent(timebase.VTime(20*time.Microsecond)), timebase.VTime(100*time.Microsecond); got != want {
		t.Fatalf("NextEvent = %v, want %v", got, want)
	}
	// Open window: released, wait charged to VTime and the Send stage.
	now := timebase.VTime(120 * time.Microsecond)
	if n := w.Dequeue(dst, now); n != 1 {
		t.Fatal("packet not released in open window")
	}
	if dst[0].VTime != now {
		t.Errorf("vtime = %v, want %v (emit + gate wait)", dst[0].VTime, now)
	}
	if dst[0].Breakdown.Send != now.Sub(emit) {
		t.Errorf("Send stage = %v, want %v", dst[0].Breakdown.Send, now.Sub(emit))
	}
}

// TestWDRRGatedTenantDoesNotBlockOpenTenant: tenant 0's class-0 backlog
// is gated during the protected window, but tenant 1's class-7 packets
// still flow.
func TestWDRRGatedTenantDoesNotBlockOpenTenant(t *testing.T) {
	w, _ := NewWDRR([]int{1, 1}, twoSliceGCL())
	for i := 0; i < 10; i++ {
		w.Enqueue(tpkt(0, 0, 500), 0)
	}
	w.Enqueue(tpkt(1, 7, 500), 0)
	dst := make([]*datapath.Packet, 8)
	n := w.Dequeue(dst, timebase.VTime(10*time.Microsecond))
	if n != 1 || dst[0].Tenant != 1 {
		t.Fatalf("protected window released %d (first tenant %d), want exactly tenant 1's packet", n, dst[0].Tenant)
	}
	if w.Pending() != 10 {
		t.Errorf("Pending = %d, want 10 gated packets", w.Pending())
	}
}

func TestWDRRUnknownTenantFallsBack(t *testing.T) {
	w, _ := NewWDRR([]int{1, 1}, nil)
	w.Enqueue(tpkt(42, 0, 100), 0) // out-of-range tenant index → queue 0
	dst := make([]*datapath.Packet, 1)
	if n := w.Dequeue(dst, 0); n != 1 {
		t.Fatal("out-of-range tenant packet lost")
	}
	if w.PendingTenant(0) != 0 {
		t.Error("fallback queue not drained")
	}
}

func TestWDRRPendingTenant(t *testing.T) {
	w, _ := NewWDRR([]int{1, 2}, nil)
	w.Enqueue(tpkt(1, 0, 100), 0)
	w.Enqueue(tpkt(1, 0, 100), 0)
	if got := w.PendingTenant(1); got != 2 {
		t.Errorf("PendingTenant(1) = %d, want 2", got)
	}
	if got := w.PendingTenant(0); got != 0 {
		t.Errorf("PendingTenant(0) = %d, want 0", got)
	}
	if got := w.PendingTenant(99); got != 0 {
		t.Errorf("PendingTenant(99) = %d, want 0", got)
	}
}

func BenchmarkWDRREnqueueDequeue(b *testing.B) {
	w, _ := NewWDRR([]int{4, 1}, nil)
	dst := make([]*datapath.Packet, 32)
	p := tpkt(0, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Tenant = uint16(i & 1)
		w.Enqueue(p, 0)
		if i%32 == 31 {
			w.Dequeue(dst, 0)
		}
	}
}
