package sched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/timebase"
)

func pkt(class uint8, vt timebase.VTime) *datapath.Packet {
	return &datapath.Packet{Class: class, VTime: vt}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	for i := 0; i < 5; i++ {
		f.Enqueue(pkt(0, timebase.VTime(i)), 0)
	}
	if f.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", f.Pending())
	}
	dst := make([]*datapath.Packet, 3)
	if n := f.Dequeue(dst, 0); n != 3 {
		t.Fatalf("Dequeue = %d, want 3", n)
	}
	for i, p := range dst {
		if p.VTime != timebase.VTime(i) {
			t.Errorf("dst[%d].VTime = %v, want %d", i, p.VTime, i)
		}
	}
	if f.Pending() != 2 {
		t.Errorf("Pending after partial dequeue = %d, want 2", f.Pending())
	}
	rest := make([]*datapath.Packet, 8)
	if n := f.Dequeue(rest, 0); n != 2 {
		t.Fatalf("final Dequeue = %d, want 2", n)
	}
	if f.NextEvent(0) != 0 {
		t.Error("FIFO NextEvent must be 0")
	}
}

func TestFIFOQuickConservation(t *testing.T) {
	prop := func(sizes []uint8) bool {
		f := NewFIFO()
		total := 0
		for _, s := range sizes {
			n := int(s % 8)
			for i := 0; i < n; i++ {
				f.Enqueue(pkt(0, 0), 0)
				total++
			}
			dst := make([]*datapath.Packet, int(s%5))
			total -= f.Dequeue(dst, 0)
		}
		return f.Pending() == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGCLValidate(t *testing.T) {
	bad := []GCL{
		{},
		{{Duration: 0, Gates: 1}},
		{{Duration: -time.Microsecond, Gates: 1}},
		{{Duration: time.Microsecond, Gates: 0}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad[%d]: want error", i)
		}
	}
	if err := DefaultGCL().Validate(); err != nil {
		t.Errorf("DefaultGCL invalid: %v", err)
	}
	if DefaultGCL().Cycle() != 250*time.Microsecond {
		t.Errorf("DefaultGCL cycle = %v, want 250µs", DefaultGCL().Cycle())
	}
}

// twoSliceGCL: class 7 open for the first 100µs, classes 0-6 for the next
// 100µs.
func twoSliceGCL() GCL {
	return GCL{
		{Duration: 100 * time.Microsecond, Gates: 1 << 7},
		{Duration: 100 * time.Microsecond, Gates: 0x7F},
	}
}

func TestTASGatesByClass(t *testing.T) {
	tas, err := NewTAS(twoSliceGCL())
	if err != nil {
		t.Fatal(err)
	}
	tas.Enqueue(pkt(7, 0), 0)
	tas.Enqueue(pkt(0, 0), 0)
	dst := make([]*datapath.Packet, 4)

	// During the protected window only class 7 leaves.
	if n := tas.Dequeue(dst, timebase.VTime(10*time.Microsecond)); n != 1 {
		t.Fatalf("protected window dequeue = %d, want 1", n)
	}
	if dst[0].Class != 7 {
		t.Errorf("dequeued class %d, want 7", dst[0].Class)
	}
	if tas.Pending() != 1 {
		t.Errorf("pending = %d, want 1", tas.Pending())
	}
	// During the open window, class 0 leaves.
	if n := tas.Dequeue(dst, timebase.VTime(150*time.Microsecond)); n != 1 {
		t.Fatalf("open window dequeue = %d, want 1", n)
	}
	if dst[0].Class != 0 {
		t.Errorf("dequeued class %d, want 0", dst[0].Class)
	}
}

func TestTASGateWaitShowsInVTime(t *testing.T) {
	tas, err := NewTAS(twoSliceGCL())
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 packet emitted during the protected window at t=10µs.
	emit := timebase.VTime(10 * time.Microsecond)
	tas.Enqueue(pkt(0, emit), emit)
	dst := make([]*datapath.Packet, 1)
	now := timebase.VTime(120 * time.Microsecond)
	if n := tas.Dequeue(dst, now); n != 1 {
		t.Fatal("packet not released in open window")
	}
	if dst[0].VTime != now {
		t.Errorf("vtime = %v, want %v (emit + 110µs gate wait)", dst[0].VTime, now)
	}
}

func TestTASStrictPriorityAmongOpenGates(t *testing.T) {
	tas, err := NewTAS(GCL{{Duration: time.Millisecond, Gates: 0xFF}})
	if err != nil {
		t.Fatal(err)
	}
	tas.Enqueue(pkt(1, 0), 0)
	tas.Enqueue(pkt(5, 0), 0)
	tas.Enqueue(pkt(3, 0), 0)
	dst := make([]*datapath.Packet, 3)
	if n := tas.Dequeue(dst, 0); n != 3 {
		t.Fatalf("dequeue = %d, want 3", n)
	}
	if dst[0].Class != 5 || dst[1].Class != 3 || dst[2].Class != 1 {
		t.Errorf("priority order = %d,%d,%d, want 5,3,1", dst[0].Class, dst[1].Class, dst[2].Class)
	}
}

func TestTASClassClamping(t *testing.T) {
	tas, _ := NewTAS(GCL{{Duration: time.Millisecond, Gates: 0x80}})
	tas.Enqueue(pkt(200, 0), 0) // out of range → clamped to 7
	dst := make([]*datapath.Packet, 1)
	if n := tas.Dequeue(dst, 0); n != 1 {
		t.Fatal("clamped packet not dequeued under class-7 gate")
	}
}

func TestTASNextEvent(t *testing.T) {
	tas, err := NewTAS(twoSliceGCL())
	if err != nil {
		t.Fatal(err)
	}
	if tas.NextEvent(0) != 0 {
		t.Error("empty shaper: NextEvent must be 0")
	}
	// Class 0 queued during the protected window: the gate opens at 100µs.
	tas.Enqueue(pkt(0, 0), 0)
	now := timebase.VTime(30 * time.Microsecond)
	want := timebase.VTime(100 * time.Microsecond)
	if got := tas.NextEvent(now); got != want {
		t.Errorf("NextEvent = %v, want %v", got, want)
	}
	// Once inside the open window it is eligible now.
	if got := tas.NextEvent(timebase.VTime(150 * time.Microsecond)); got != 0 {
		t.Errorf("NextEvent in open window = %v, want 0", got)
	}
	// Class 7 queued during the open window: opens at next cycle start.
	tas2, _ := NewTAS(twoSliceGCL())
	tas2.Enqueue(pkt(7, 0), 0)
	got := tas2.NextEvent(timebase.VTime(150 * time.Microsecond))
	if want := timebase.VTime(200 * time.Microsecond); got != want {
		t.Errorf("NextEvent wrap = %v, want %v", got, want)
	}
}

func TestTASFIFOWithinClass(t *testing.T) {
	tas, _ := NewTAS(GCL{{Duration: time.Millisecond, Gates: 0xFF}})
	for i := 0; i < 4; i++ {
		p := pkt(2, timebase.VTime(i))
		tas.Enqueue(p, 0)
	}
	dst := make([]*datapath.Packet, 4)
	tas.Dequeue(dst, 0)
	for i, p := range dst {
		if p.VTime != timebase.VTime(i) {
			t.Errorf("within-class order broken at %d", i)
		}
	}
}

// TestTASJitterBound: with cross traffic on class 0, class-7 packets never
// wait longer than the open window (the 802.1Qbv guarantee the paper's TSN
// QoS is for).
func TestTASJitterBound(t *testing.T) {
	gcl := twoSliceGCL()
	tas, _ := NewTAS(gcl)
	dst := make([]*datapath.Packet, 1)
	for i := 0; i < 100; i++ {
		emit := timebase.VTime(i) * timebase.VTime(7*time.Microsecond)
		tas.Enqueue(pkt(7, emit), emit)
		// Cross traffic.
		tas.Enqueue(pkt(0, emit), emit)

		// Drain class 7 at the next protected window.
		next := tas.NextEvent(emit)
		now := emit
		if next != 0 {
			now = next
		}
		// Find a protected-window instant at or after now.
		for tas.gatesAt(now)&(1<<7) == 0 {
			now = tas.NextEvent(now)
		}
		if n := tas.Dequeue(dst[:1], now); n != 1 {
			t.Fatalf("iteration %d: class 7 packet not released", i)
		}
		if wait := dst[0].VTime.Sub(emit); wait > gcl.Cycle() {
			t.Fatalf("iteration %d: class-7 wait %v exceeds cycle %v", i, wait, gcl.Cycle())
		}
		// Drain cross traffic.
		for tas.Pending() > 0 {
			now = timebase.Max(now, tas.NextEvent(now))
			tas.Dequeue(dst[:1], now)
		}
	}
}

func BenchmarkFIFOEnqueueDequeue(b *testing.B) {
	f := NewFIFO()
	dst := make([]*datapath.Packet, 32)
	p := pkt(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Enqueue(p, 0)
		if i%32 == 31 {
			f.Dequeue(dst, 0)
		}
	}
}

func BenchmarkTASEnqueueDequeue(b *testing.B) {
	tas, _ := NewTAS(DefaultGCL())
	dst := make([]*datapath.Packet, 32)
	p := pkt(7, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tas.Enqueue(p, 0)
		if i%32 == 31 {
			tas.Dequeue(dst, 0)
		}
	}
}
