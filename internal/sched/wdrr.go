// Weighted deficit round-robin between tenants (DESIGN.md §12). The
// runtime's best-effort traffic used to share one FIFO per technology;
// under multi-tenant load that lets a single flooding tenant enqueue an
// arbitrarily long head-of-line backlog in front of everyone else. WDRR
// replaces the FIFO with one queue per tenant and serves the queues in a
// deficit round-robin (Shreedhar & Varghese), so each tenant's share of
// the egress is proportional to its configured weight regardless of how
// hard any other tenant pushes. Within one tenant, arrival order is
// preserved — a single-tenant runtime (the default) degenerates to the
// old FIFO behaviour exactly.
//
// The scheduler is optionally gate-aware: when constructed with a gate
// control list it holds a packet while its traffic class's 802.1Qbv gate
// is closed, extending the time-aware shaper's protected windows to
// best-effort traffic. That is the timing-isolation half of tenant
// isolation — during a protected window the egress is reserved for the
// time-critical classes, so a best-effort tenant flooding the node
// cannot put even one packet in front of a time-sensitive tenant's.

package sched

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/timebase"
)

// wdrrQuantumUnit is the per-weight-unit byte quantum added to a tenant
// queue's deficit at each round-robin visit. It is sized above the
// largest slot class (jumbo 9216B), which guarantees every visit to a
// non-empty, gate-open queue releases at least one packet — the property
// that bounds Dequeue's per-packet work (boundedcheck) and keeps DRR's
// O(1) amortized cost.
const wdrrQuantumUnit = 16384

// wdrrEntry is one queued packet with its enqueue time, so queue and
// gate waits can be charged to the packet's virtual clock on release.
type wdrrEntry struct {
	pkt *datapath.Packet
	at  timebase.VTime
}

// wdrrQueue is one tenant's FIFO plus its deficit counter state.
type wdrrQueue struct {
	q       []wdrrEntry
	deficit int64
	quantum int64
}

// WDRR is the weighted deficit round-robin tenant scheduler. Like the
// other schedulers it is driven by one polling thread at a time
// (techState.schedMu serializes multi-poller access).
type WDRR struct {
	queues []wdrrQueue
	count  int
	next   int // round-robin cursor

	// gcl/cycle enable 802.1Qbv gate enforcement; a nil gcl leaves every
	// gate permanently open (single-tenant compatibility mode).
	gcl   GCL
	cycle time.Duration
}

var _ Scheduler = (*WDRR)(nil)

// NewWDRR builds a scheduler with one queue per weight entry (weight
// i serves tenant index i; entries < 1 are clamped to 1). An empty
// weight list yields a single queue of weight 1 — plain FIFO. A non-nil
// gcl arms gate enforcement for every class.
func NewWDRR(weights []int, gcl GCL) (*WDRR, error) {
	if len(weights) == 0 {
		weights = []int{1}
	}
	w := &WDRR{queues: make([]wdrrQueue, len(weights))}
	for i, wt := range weights {
		if wt < 1 {
			wt = 1
		}
		w.queues[i].quantum = int64(wt) * wdrrQuantumUnit
	}
	if gcl != nil {
		if err := gcl.Validate(); err != nil {
			return nil, err
		}
		w.gcl = gcl
		w.cycle = gcl.Cycle()
	}
	return w, nil
}

// Tenants returns the number of tenant queues.
func (w *WDRR) Tenants() int { return len(w.queues) }

// Enqueue files the packet under its tenant's queue, recording when it
// arrived on the scheduler's clock. Unknown tenant indexes (a stale
// packet after a reconfiguration) fall back to queue 0. The packet —
// its slot and its pooled envelope — belongs to the scheduler until
// Dequeue hands it to dispatch.
//
//insane:hotpath
//insane:transfer resource=pooled-obj
//insane:transfer resource=mem-slot
func (w *WDRR) Enqueue(p *datapath.Packet, now timebase.VTime) {
	ti := int(p.Tenant)
	if ti >= len(w.queues) {
		ti = 0
	}
	//lint:ignore insanevet/hotpathcheck append growth is amortized; tenant queues reach steady-state capacity
	w.queues[ti].q = append(w.queues[ti].q, wdrrEntry{pkt: p, at: now})
	w.count++
}

// gatesAt returns the open-gate mask at virtual time now; with no gate
// control list every gate is open.
func (w *WDRR) gatesAt(now timebase.VTime) uint8 {
	if w.gcl == nil {
		return 0xFF
	}
	pos := time.Duration(now) % w.cycle
	//insane:bounded by=one entry per gate-control-list slot, fixed at scheduler construction
	for _, e := range w.gcl {
		if pos < e.Duration {
			return e.Gates
		}
		pos -= e.Duration
	}
	return 0 // unreachable: pos < cycle by construction
}

// cost is the deficit charge of releasing one packet: its byte length,
// floored at a minimum-frame cost so zero-length control packets still
// consume bandwidth share.
func cost(p *datapath.Packet) int64 {
	c := int64(p.Len)
	if c < 64 {
		c = 64
	}
	return c
}

// gateOpen reports whether a packet's class gate is open under mask.
//
//insane:hotpath
func gateOpen(mask uint8, class uint8) bool {
	if class >= NumClasses {
		class = NumClasses - 1
	}
	return mask&(1<<class) != 0
}

// Dequeue fills dst with eligible packets, visiting tenant queues round-
// robin and releasing up to one quantum's worth of bytes per visit. A
// released packet that waited (for its turn or its gate) carries the
// wait as added virtual latency, charged to the Send stage like the
// time-aware shaper does.
//
//insane:hotpath
func (w *WDRR) Dequeue(dst []*datapath.Packet, now timebase.VTime) int {
	if w.count == 0 || len(dst) == 0 {
		return 0
	}
	gates := w.gatesAt(now)
	n := 0
	idle := 0
	//insane:bounded by=each visit either releases a packet (n < len(dst), the caller's burst) or advances idle (reset on release, capped at the tenant count)
	for n < len(dst) && idle < len(w.queues) && w.count > 0 {
		qu := &w.queues[w.next]
		w.next++
		if w.next == len(w.queues) {
			w.next = 0
		}
		if len(qu.q) == 0 {
			// An empty queue carries no deficit into its next busy period
			// (DRR: credit only accumulates while backlogged).
			qu.deficit = 0
			idle++
			continue
		}
		if !gateOpen(gates, qu.q[0].pkt.Class) {
			// Head-of-line gate closed: the whole queue waits (releasing
			// later arrivals would break per-tenant FIFO). No quantum is
			// added, so a gated tenant banks no credit either.
			idle++
			continue
		}
		qu.deficit += qu.quantum
		released := 0
		//insane:bounded by=released bytes bounded by the visit's deficit (one quantum over previous remainder); at most len(dst)-n packets
		for len(qu.q) > 0 && n < len(dst) {
			e := qu.q[0]
			if !gateOpen(gates, e.pkt.Class) {
				break
			}
			c := cost(e.pkt)
			if c > qu.deficit {
				break
			}
			qu.deficit -= c
			if wait := now.Sub(e.at); wait > 0 {
				e.pkt.VTime = e.pkt.VTime.Add(wait)
				e.pkt.Breakdown.Send += wait
			}
			dst[n] = e.pkt
			n++
			released++
			remaining := copy(qu.q, qu.q[1:])
			qu.q[remaining] = wdrrEntry{}
			qu.q = qu.q[:remaining]
			w.count--
		}
		if len(qu.q) == 0 {
			qu.deficit = 0
		}
		if released > 0 {
			idle = 0
		} else {
			// Quantum >= max packet cost, so a zero-release visit means the
			// burst buffer filled or the head's gate closed mid-queue.
			idle++
		}
	}
	return n
}

// Pending returns the total queued packets across tenants.
func (w *WDRR) Pending() int { return w.count }

// PendingTenant returns one tenant queue's depth (exporter gauge).
func (w *WDRR) PendingTenant(tenant int) int {
	if tenant < 0 || tenant >= len(w.queues) {
		return 0
	}
	return len(w.queues[tenant].q)
}

// NextEvent returns the virtual time of the next gate change that could
// release queued packets, or zero when the queue is empty or some queued
// head is already eligible.
func (w *WDRR) NextEvent(now timebase.VTime) timebase.VTime {
	if w.count == 0 || w.gcl == nil {
		return 0
	}
	var queued uint8
	//insane:bounded by=one entry per declared tenant, fixed at construction
	for i := range w.queues {
		if len(w.queues[i].q) > 0 {
			cl := w.queues[i].q[0].pkt.Class
			if cl >= NumClasses {
				cl = NumClasses - 1
			}
			queued |= 1 << cl
		}
	}
	if w.gatesAt(now)&queued != 0 {
		return 0 // something is eligible right now
	}
	pos := time.Duration(now) % w.cycle
	idx, off := w.entryAt(pos)
	elapsed := w.gcl[idx].Duration - off
	//insane:bounded by=one pass over the gate-control list, fixed at construction by Validate
	for i := 1; i <= len(w.gcl); i++ {
		e := w.gcl[(idx+i)%len(w.gcl)]
		if e.Gates&queued != 0 {
			return now.Add(elapsed)
		}
		elapsed += e.Duration
	}
	return 0 // no gate ever opens for queued classes (prevented by Validate)
}

// entryAt locates the GCL entry covering cycle position pos.
func (w *WDRR) entryAt(pos time.Duration) (int, time.Duration) {
	//insane:bounded by=one pass over the gate-control list, fixed at construction by Validate
	for i, e := range w.gcl {
		if pos < e.Duration {
			return i, pos
		}
		pos -= e.Duration
	}
	return len(w.gcl) - 1, w.gcl[len(w.gcl)-1].Duration
}

// String identifies the scheduler in Inspect output.
func (w *WDRR) String() string {
	return fmt.Sprintf("wdrr(%d tenants, gated=%v)", len(w.queues), w.gcl != nil)
}
