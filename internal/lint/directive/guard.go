package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// The shared-state regime markers feed the guardcheck analyzer
// (DESIGN.md §14). A struct whose doc comment carries //insane:shared
// declares itself concurrently accessed; every one of its fields must
// then name its synchronization regime in the field's doc or line
// comment:
//
//	//insane:guardedby mu=<lockfield>          accessed only while the mutex is held
//	//insane:guardedby atomic                  accessed only through sync/atomic ops
//	//insane:guardedby rcu=<publisher>         published snapshot: stored only inside <publisher>
//	//insane:guardedby confined owner=<func>   touched only by the goroutine running <func>
//	//insane:guardedby immutable after=<func>  never written once <func> returns
//
// The mu= lock is a sibling field by default; <Type>.<field> names a
// lock living in another struct (the txLane fields guarded by their
// owning ClientConn's mu). Fields of sync primitive types (Mutex,
// RWMutex, WaitGroup, Once) are the regimes' own machinery and carry no
// marker.
//
// //insane:unguarded <reason> waives the regime proof for the access on
// its own or the following line. guardcheck verifies the waiver is
// needed — one that suppresses nothing is itself a finding.
const (
	sharedMarker    = "//insane:shared"
	guardedByMarker = "//insane:guardedby"
	unguardedMarker = "//insane:unguarded"
)

// RegimeKind is the synchronization regime class of one guarded field.
type RegimeKind int

// Regime classes.
const (
	// RegimeMutex: access only while the named mutex is held.
	RegimeMutex RegimeKind = iota
	// RegimeAtomic: access only through sync/atomic operations.
	RegimeAtomic
	// RegimeRCU: a published snapshot — stored only inside the named
	// publisher function, loaded anywhere, never mutated in place.
	RegimeRCU
	// RegimeConfined: touched only by the goroutine running the named
	// owner function (or its callees).
	RegimeConfined
	// RegimeImmutable: never written after the named init function
	// returns.
	RegimeImmutable
)

// String names the kind as written in the source marker.
func (k RegimeKind) String() string {
	switch k {
	case RegimeMutex:
		return "mu"
	case RegimeAtomic:
		return "atomic"
	case RegimeRCU:
		return "rcu"
	case RegimeConfined:
		return "confined"
	case RegimeImmutable:
		return "immutable"
	}
	return "regime"
}

// Regime is one parsed //insane:guardedby specification.
type Regime struct {
	Kind RegimeKind
	// Arg is the kind's parameter: the lock field for mu (bare name, or
	// "<Type>.<field>" for a lock in another struct), the publisher
	// function for rcu, the owner function for confined, the init
	// function for immutable. Empty for atomic.
	Arg string
}

// Spec renders the regime as it is written in source.
func (r Regime) Spec() string {
	switch r.Kind {
	case RegimeMutex:
		return "mu=" + r.Arg
	case RegimeAtomic:
		return "atomic"
	case RegimeRCU:
		return "rcu=" + r.Arg
	case RegimeConfined:
		return "confined owner=" + r.Arg
	case RegimeImmutable:
		return "immutable after=" + r.Arg
	}
	return ""
}

// HasShared reports whether the comment group carries //insane:shared.
func HasShared(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if matchesMarker(strings.TrimSpace(c.Text), sharedMarker) {
			return true
		}
	}
	return false
}

// ParseGuardedBy extracts the //insane:guardedby specification from a
// field's doc or line comment group. It returns the regime, whether a
// marker was present at all, and malformed markers as problems.
func ParseGuardedBy(groups ...*ast.CommentGroup) (Regime, bool, []Problem) {
	var probs []Problem
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !matchesMarker(text, guardedByMarker) {
				continue
			}
			r, msg := parseRegime(strings.TrimPrefix(text, guardedByMarker))
			if msg != "" {
				return r, true, append(probs, Problem{Pos: c.Pos(), Msg: guardedByMarker + ": " + msg})
			}
			return r, true, probs
		}
	}
	return Regime{}, false, probs
}

// parseRegime interprets the text after the //insane:guardedby marker.
func parseRegime(rest string) (Regime, string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Regime{}, "missing regime (mu=<lock>, atomic, rcu=<publisher>, confined owner=<func>, immutable after=<func>)"
	}
	head := fields[0]
	switch {
	case head == "atomic":
		if len(fields) > 1 {
			return Regime{Kind: RegimeAtomic}, "atomic takes no options"
		}
		return Regime{Kind: RegimeAtomic}, ""
	case strings.HasPrefix(head, "mu="):
		arg := strings.TrimPrefix(head, "mu=")
		if arg == "" {
			return Regime{Kind: RegimeMutex}, "empty value for mu="
		}
		if len(fields) > 1 {
			return Regime{Kind: RegimeMutex}, "mu= takes no further options"
		}
		return Regime{Kind: RegimeMutex, Arg: arg}, ""
	case strings.HasPrefix(head, "rcu="):
		arg := strings.TrimPrefix(head, "rcu=")
		if arg == "" {
			return Regime{Kind: RegimeRCU}, "empty value for rcu="
		}
		if len(fields) > 1 {
			return Regime{Kind: RegimeRCU}, "rcu= takes no further options"
		}
		return Regime{Kind: RegimeRCU, Arg: arg}, ""
	case head == "confined":
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "owner=") {
			return Regime{Kind: RegimeConfined}, "confined needs exactly owner=<func>"
		}
		arg := strings.TrimPrefix(fields[1], "owner=")
		if arg == "" {
			return Regime{Kind: RegimeConfined}, "empty value for owner="
		}
		return Regime{Kind: RegimeConfined, Arg: arg}, ""
	case head == "immutable":
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "after=") {
			return Regime{Kind: RegimeImmutable}, "immutable needs exactly after=<func>"
		}
		arg := strings.TrimPrefix(fields[1], "after=")
		if arg == "" {
			return Regime{Kind: RegimeImmutable}, "empty value for after="
		}
		return Regime{Kind: RegimeImmutable, Arg: arg}, ""
	}
	return Regime{}, "unknown regime " + head + " (mu=, atomic, rcu=, confined, immutable are recognized)"
}

// UnguardedWaiver is one //insane:unguarded waiver.
type UnguardedWaiver struct {
	Pos    token.Pos
	Line   int
	Reason string
}

// UnguardedIndex collects a file set's //insane:unguarded waivers by
// line, tracking which ones suppressed a finding so guardcheck can
// report the stale remainder.
type UnguardedIndex struct {
	byLine  map[string]map[int]*UnguardedWaiver
	claimed map[*UnguardedWaiver]bool
	probs   []Problem
}

// NewUnguardedIndex scans the files' comments for //insane:unguarded
// markers. A waiver covers its own line and the next one, exactly like
// //lint:ignore.
func NewUnguardedIndex(fset *token.FileSet, files []*ast.File) *UnguardedIndex {
	idx := &UnguardedIndex{
		byLine:  make(map[string]map[int]*UnguardedWaiver),
		claimed: make(map[*UnguardedWaiver]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !matchesMarker(text, unguardedMarker) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, unguardedMarker))
				if reason == "" {
					idx.probs = append(idx.probs, Problem{Pos: c.Pos(), Msg: unguardedMarker + ": missing reason"})
					continue
				}
				pos := fset.Position(c.Pos())
				w := &UnguardedWaiver{Pos: c.Pos(), Line: pos.Line, Reason: reason}
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]*UnguardedWaiver)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = w
			}
		}
	}
	return idx
}

// Waive reports whether a finding at pos is covered by a waiver on its
// line or the line above, claiming the waiver.
func (idx *UnguardedIndex) Waive(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := idx.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if w := m[line]; w != nil {
			idx.claimed[w] = true
			return true
		}
	}
	return false
}

// Stale returns the waivers that never suppressed a finding, plus the
// malformed ones, as problems.
func (idx *UnguardedIndex) Stale() []Problem {
	probs := append([]Problem(nil), idx.probs...)
	for _, m := range idx.byLine {
		for _, w := range m {
			if !idx.claimed[w] {
				probs = append(probs, Problem{Pos: w.Pos, Msg: "stale //insane:unguarded waiver: no regime finding on this or the next line (delete it or re-justify)"})
			}
		}
	}
	return probs
}
