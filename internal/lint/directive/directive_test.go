package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/insane-mw/insane/internal/lint/directive"
)

const src = `package x

func f() {
	//lint:ignore insanevet/bufownership the slot is quarantined by the test harness
	use()
	ok() //lint:ignore insanevet/lockorder trailing directive on its own line
	//lint:ignore bufownership missing the insanevet namespace
	//lint:ignore insanevet/timebase
	use()
}

func use() {}
func ok()  {}
`

func index(t *testing.T) (*token.FileSet, *directive.Index) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, directive.NewIndex(fset, []*ast.File{f})
}

func TestSuppressesNextLine(t *testing.T) {
	_, idx := index(t)
	at := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	// Comment-above style: directive on line 4 covers line 5.
	if !idx.Suppresses(at(5), "bufownership") {
		t.Error("directive above the statement should suppress it")
	}
	// Only the named rule is waived.
	if idx.Suppresses(at(5), "lockorder") {
		t.Error("directive must not suppress other rules")
	}
	// Trailing style: directive on line 6 covers line 6.
	if !idx.Suppresses(at(6), "lockorder") {
		t.Error("trailing directive should suppress its own line")
	}
	// Out of range.
	if idx.Suppresses(at(9), "bufownership") {
		t.Error("directives must not leak past the following line")
	}
}

func TestMalformedDirectives(t *testing.T) {
	_, idx := index(t)
	bad := idx.Malformed()
	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %+v", len(bad), bad)
	}
	// Neither malformed directive suppresses anything.
	if idx.Suppresses(token.Position{Filename: "x.go", Line: 8}, "bufownership") ||
		idx.Suppresses(token.Position{Filename: "x.go", Line: 9}, "timebase") {
		t.Error("malformed directives must not suppress")
	}
}

func TestCollectReasons(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	igs := directive.Collect(fset, []*ast.File{f})
	if len(igs) != 4 {
		t.Fatalf("got %d directives, want 4", len(igs))
	}
	if igs[0].Rule != "bufownership" || igs[0].Reason == "" {
		t.Errorf("first directive parsed wrong: %+v", igs[0])
	}
	if igs[3].Malformed == "" {
		t.Errorf("reason-less directive should be malformed: %+v", igs[3])
	}
}
