package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/directive"
)

const src = `package x

func f() {
	//lint:ignore insanevet/bufownership the slot is quarantined by the test harness
	use()
	ok() //lint:ignore insanevet/lockorder trailing directive on its own line
	//lint:ignore bufownership missing the insanevet namespace
	//lint:ignore insanevet/timebase
	use()
}

func use() {}
func ok()  {}
`

func index(t *testing.T) (*token.FileSet, *directive.Index) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, directive.NewIndex(fset, []*ast.File{f})
}

func TestSuppressesNextLine(t *testing.T) {
	_, idx := index(t)
	at := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	// Comment-above style: directive on line 4 covers line 5.
	if !idx.Suppresses(at(5), "bufownership") {
		t.Error("directive above the statement should suppress it")
	}
	// Only the named rule is waived.
	if idx.Suppresses(at(5), "lockorder") {
		t.Error("directive must not suppress other rules")
	}
	// Trailing style: directive on line 6 covers line 6.
	if !idx.Suppresses(at(6), "lockorder") {
		t.Error("trailing directive should suppress its own line")
	}
	// Out of range.
	if idx.Suppresses(at(9), "bufownership") {
		t.Error("directives must not leak past the following line")
	}
}

func TestMalformedDirectives(t *testing.T) {
	_, idx := index(t)
	bad := idx.Malformed()
	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %+v", len(bad), bad)
	}
	// Neither malformed directive suppresses anything.
	if idx.Suppresses(token.Position{Filename: "x.go", Line: 8}, "bufownership") ||
		idx.Suppresses(token.Position{Filename: "x.go", Line: 9}, "timebase") {
		t.Error("malformed directives must not suppress")
	}
}

func TestParseGoroutine(t *testing.T) {
	cases := []struct {
		text      string
		match     bool
		owner     string
		stop      string
		malformed string // substring of the expected Malformed text, "" for well-formed
	}{
		{"//insane:goroutine owner=Runtime stop=Close", true, "Runtime", "Close", ""},
		{"//insane:goroutine stop=Close owner=Sink", true, "Sink", "Close", ""},
		{"//insane:goroutine", true, "", "", "missing owner= and stop="},
		{"//insane:goroutine owner=Runtime", true, "Runtime", "", "missing stop="},
		{"//insane:goroutine stop=Close", true, "", "Close", "missing owner="},
		{"//insane:goroutine owner=Runtime stop=Close join=Wait", true, "", "", "unknown key join"},
		{"//insane:goroutine owner stop=Close", true, "", "", "not key=value"},
		{"//insane:goroutine owner= stop=Close", true, "", "", "empty value for owner="},
		{"//insane:goroutinepool owner=X stop=Y", false, "", "", ""},
		{"// insane:goroutine owner=X stop=Y", false, "", "", ""},
		{"//lint:ignore insanevet/goroutinecheck reason", false, "", "", ""},
	}
	for _, c := range cases {
		g, ok := directive.ParseGoroutine(c.text)
		if ok != c.match {
			t.Errorf("ParseGoroutine(%q) matched=%v, want %v", c.text, ok, c.match)
			continue
		}
		if !ok {
			continue
		}
		if c.malformed != "" {
			if !strings.Contains(g.Malformed, c.malformed) {
				t.Errorf("ParseGoroutine(%q).Malformed = %q, want substring %q", c.text, g.Malformed, c.malformed)
			}
			continue
		}
		if g.Malformed != "" {
			t.Errorf("ParseGoroutine(%q) unexpectedly malformed: %q", c.text, g.Malformed)
		}
		if g.Owner != c.owner || g.Stop != c.stop {
			t.Errorf("ParseGoroutine(%q) = owner %q stop %q, want %q %q", c.text, g.Owner, g.Stop, c.owner, c.stop)
		}
	}
}

const goSrc = `package x

func f() {
	//insane:goroutine owner=Runtime stop=Close
	go loop()
	go work() //insane:goroutine owner=Worker stop=Stop
	//insane:goroutine owner=Stray stop=Never
	x := 1
	_ = x
}

func loop() {}
func work() {}
`

func TestGoroutineIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", goSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := directive.NewGoroutineIndex(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	// Comment-above style: directive on line 4 covers the go statement
	// on line 5.
	g, ok := idx.At(at(5))
	if !ok || g.Owner != "Runtime" || g.Stop != "Close" {
		t.Errorf("At(5) = %+v, %v; want Runtime/Close", g, ok)
	}
	// Trailing style covers its own line.
	g, ok = idx.At(at(6))
	if !ok || g.Owner != "Worker" || g.Stop != "Stop" {
		t.Errorf("At(6) = %+v, %v; want Worker/Stop", g, ok)
	}
	if _, ok := idx.At(at(11)); ok {
		t.Error("annotations must not leak past the following line")
	}
	// The stray directive (line 7, covering lines 7-8) was never
	// claimed by a go statement.
	stray := idx.Unclaimed()
	if len(stray) != 1 || stray[0].Owner != "Stray" {
		t.Errorf("Unclaimed() = %+v, want the one Stray annotation", stray)
	}
}

func TestCollectReasons(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	igs := directive.Collect(fset, []*ast.File{f})
	if len(igs) != 4 {
		t.Fatalf("got %d directives, want 4", len(igs))
	}
	if igs[0].Rule != "bufownership" || igs[0].Reason == "" {
		t.Errorf("first directive parsed wrong: %+v", igs[0])
	}
	if igs[3].Malformed == "" {
		t.Errorf("reason-less directive should be malformed: %+v", igs[3])
	}
}
