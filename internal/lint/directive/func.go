package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //insane:* markers shared by the hot-path analyzers. hotpathcheck
// and boundedcheck both root their traversals at //insane:hotpath
// functions and stop at //insane:coldpath barriers, so the parsing
// lives here rather than in either analyzer.
const (
	// HotMarker declares a hot-path root (on a function declaration) or
	// a trusted boundary (on an interface method).
	HotMarker = "//insane:hotpath"
	// ColdMarker excludes a control-plane function from hot-path
	// traversal; a reason is mandatory.
	ColdMarker = "//insane:coldpath"
)

// FuncDirectives is the parse result of the //insane:hotpath and
// //insane:coldpath markers on one function declaration.
type FuncDirectives struct {
	// Hot marks an //insane:hotpath root.
	Hot bool
	// AllowBlock is the allow=block option: the root may block
	// (Consume-style waits) but must still not allocate.
	AllowBlock bool
	// Cold marks an //insane:coldpath traversal barrier.
	Cold bool
}

// Problem is one malformed directive found while parsing, for the
// analyzer that owns reporting it (hotpathcheck, so the same mistake is
// not reported once per analyzer that shares the parse).
type Problem struct {
	Pos token.Pos
	Msg string
}

// ParseFuncDecl extracts the insane: markers from a declaration's doc
// comment group, returning malformed ones as problems.
func ParseFuncDecl(doc *ast.CommentGroup) (FuncDirectives, []Problem) {
	var d FuncDirectives
	var probs []Problem
	if doc == nil {
		return d, nil
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case text == HotMarker:
			d.Hot = true
		case strings.HasPrefix(text, HotMarker+" "):
			d.Hot = true
			for _, opt := range strings.Fields(text[len(HotMarker):]) {
				if opt == "allow=block" {
					d.AllowBlock = true
				} else {
					probs = append(probs, Problem{
						Pos: c.Pos(),
						Msg: "unknown " + HotMarker + " option \"" + opt + "\" (only allow=block is recognized)",
					})
				}
			}
		case text == ColdMarker:
			probs = append(probs, Problem{Pos: c.Pos(), Msg: ColdMarker + " directive missing a reason"})
			d.Cold = true
		case strings.HasPrefix(text, ColdMarker+" "):
			d.Cold = true
		}
	}
	return d, probs
}

// HasMarker reports whether a comment group carries the directive,
// bare or with options.
func HasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// boundedMarker vouches for a loop the boundedcheck analyzer cannot
// prove work-bounded:
//
//	//insane:bounded by=<reason>
//
// placed on the line of a for/range statement or on the line above it.
// The reason is free text and mandatory: every waived loop documents
// what actually bounds it (a validated config list, a caller-sized
// batch buffer, a CAS retry that only loses to concurrent progress).
const boundedMarker = "//insane:bounded"

// Bounded is one parsed //insane:bounded annotation.
type Bounded struct {
	// By is the documented bound (the value of by=, the rest of the
	// line, spaces included).
	By string
	// File and Line locate the annotation.
	File string
	Line int
	// Pos is the annotation's position.
	Pos token.Pos
	// Malformed is set when the annotation was recognized but cannot
	// vouch for anything (missing by= or empty reason).
	Malformed string
}

// ParseBounded interprets one comment as a bounded annotation.
func ParseBounded(text string) (Bounded, bool) {
	text = strings.TrimSpace(text)
	if text != boundedMarker && !strings.HasPrefix(text, boundedMarker+" ") {
		return Bounded{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, boundedMarker))
	if rest == "" {
		return Bounded{Malformed: "missing by=<reason>"}, true
	}
	reason, ok := strings.CutPrefix(rest, "by=")
	switch {
	case !ok:
		return Bounded{Malformed: "option " + strings.Fields(rest)[0] + " is not by=<reason>"}, true
	case strings.TrimSpace(reason) == "":
		return Bounded{Malformed: "empty reason after by="}, true
	}
	return Bounded{By: strings.TrimSpace(reason)}, true
}

// BoundedAnnotations extracts every //insane:bounded annotation from
// the files, malformed ones included.
func BoundedAnnotations(fset *token.FileSet, files []*ast.File) []Bounded {
	var out []Bounded
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				b, ok := ParseBounded(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				b.File = pos.Filename
				b.Line = pos.Line
				b.Pos = c.Pos()
				out = append(out, b)
			}
		}
	}
	return out
}

// BoundedIndex answers per-line lookups of //insane:bounded annotations
// for one package.
type BoundedIndex struct {
	byLine map[string]map[int]Bounded
	all    []Bounded
	// claimed marks annotations a loop looked up, so the analyzer can
	// surface the stray ones that annotate nothing.
	claimed map[token.Pos]bool
}

// NewBoundedIndex builds a BoundedIndex from the package's files.
func NewBoundedIndex(fset *token.FileSet, files []*ast.File) *BoundedIndex {
	idx := &BoundedIndex{
		byLine:  make(map[string]map[int]Bounded),
		claimed: make(map[token.Pos]bool),
	}
	for _, b := range BoundedAnnotations(fset, files) {
		idx.all = append(idx.all, b)
		lines := idx.byLine[b.File]
		if lines == nil {
			lines = make(map[int]Bounded)
			idx.byLine[b.File] = lines
		}
		// An annotation covers its own line (trailing comment) and the
		// next line (comment-above style), like //lint:ignore.
		lines[b.Line] = b
		lines[b.Line+1] = b
	}
	return idx
}

// At returns the annotation covering pos, marking it claimed.
func (idx *BoundedIndex) At(pos token.Position) (Bounded, bool) {
	b, ok := idx.byLine[pos.Filename][pos.Line]
	if ok {
		idx.claimed[b.Pos] = true
	}
	return b, ok
}

// Unclaimed returns the annotations no loop looked up — an annotation
// that drifted away from its statement vouches for nothing and should
// be surfaced rather than silently ignored.
func (idx *BoundedIndex) Unclaimed() []Bounded {
	var out []Bounded
	for _, b := range idx.all {
		if !idx.claimed[b.Pos] {
			out = append(out, b)
		}
	}
	return out
}
