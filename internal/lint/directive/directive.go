// Package directive parses the `//lint:ignore` suppression comments
// understood by the insanevet drivers.
//
// The accepted form is:
//
//	//lint:ignore insanevet/<rule> <reason>
//
// A directive written on its own line suppresses matching diagnostics
// on the next source line; a directive trailing a statement suppresses
// diagnostics on its own line. The reason is mandatory: a directive
// without one does not suppress anything and is itself reported by the
// driver, so every waiver is documented in the tree.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker shared with staticcheck-style tooling.
const prefix = "//lint:ignore "

// namespace scopes rules to this suite: `insanevet/bufownership`.
const namespace = "insanevet/"

// Ignore is one parsed suppression directive.
type Ignore struct {
	// Rule is the analyzer name being waived (without the insanevet/
	// namespace), or "*" for all rules.
	Rule string
	// Reason is the justification text after the rule.
	Reason string
	// File and Line locate the directive.
	File string
	Line int
	// Pos is the directive's position (for malformed-directive
	// diagnostics).
	Pos token.Pos
	// Malformed is set when the directive was recognized but cannot
	// suppress anything (missing reason or missing insanevet/ scope).
	Malformed string
}

// Collect extracts every lint:ignore directive from the files.
func Collect(fset *token.FileSet, files []*ast.File) []Ignore {
	var out []Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ig.File = pos.Filename
				ig.Line = pos.Line
				ig.Pos = c.Pos()
				out = append(out, ig)
			}
		}
	}
	return out
}

// parse interprets one comment as a directive.
func parse(text string) (Ignore, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok {
		return Ignore{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Ignore{Malformed: "missing rule and reason"}, true
	}
	rule := fields[0]
	reason := strings.TrimSpace(strings.TrimPrefix(rest, rule))
	scoped, hasScope := strings.CutPrefix(rule, namespace)
	switch {
	case !hasScope:
		return Ignore{Rule: rule, Malformed: "rule must be namespaced as " + namespace + "<rule>"}, true
	case scoped == "":
		return Ignore{Malformed: "empty rule after " + namespace}, true
	case reason == "":
		return Ignore{Rule: scoped, Malformed: "missing reason"}, true
	}
	return Ignore{Rule: scoped, Reason: reason}, true
}

// Index answers suppression queries for one package.
type Index struct {
	byLine map[string]map[int][]Ignore
	all    []Ignore
}

// NewIndex builds an Index from the package's files.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{byLine: make(map[string]map[int][]Ignore)}
	for _, ig := range Collect(fset, files) {
		idx.all = append(idx.all, ig)
		if ig.Malformed != "" {
			continue
		}
		lines := idx.byLine[ig.File]
		if lines == nil {
			lines = make(map[int][]Ignore)
			idx.byLine[ig.File] = lines
		}
		// A directive covers its own line (trailing comment) and the
		// next line (comment-above style).
		lines[ig.Line] = append(lines[ig.Line], ig)
		lines[ig.Line+1] = append(lines[ig.Line+1], ig)
	}
	return idx
}

// Suppresses reports whether a diagnostic of the named rule at pos is
// waived by a directive.
func (idx *Index) Suppresses(pos token.Position, rule string) bool {
	for _, ig := range idx.byLine[pos.Filename][pos.Line] {
		if ig.Rule == rule || ig.Rule == "*" {
			return true
		}
	}
	return false
}

// Malformed returns the directives that were recognized but cannot
// suppress anything, so drivers can surface them.
func (idx *Index) Malformed() []Ignore {
	var out []Ignore
	for _, ig := range idx.all {
		if ig.Malformed != "" {
			out = append(out, ig)
		}
	}
	return out
}

// goroutineMarker introduces a goroutine-ownership annotation,
// mirroring the //insane:hotpath convention:
//
//	//insane:goroutine owner=<type> stop=<method>
//
// placed on the line of a `go` statement or on the line above it. The
// owner names a struct type in the same package and stop a method on
// it (or its pointer type) that joins the goroutine; the goroutinecheck
// analyzer verifies both and that the method signals the stop
// mechanism the goroutine actually waits on.
const goroutineMarker = "//insane:goroutine"

// Goroutine is one parsed //insane:goroutine annotation.
type Goroutine struct {
	// Owner is the declared owning type name (the value of owner=).
	Owner string
	// Stop is the declared shutdown method name (the value of stop=).
	Stop string
	// File and Line locate the directive.
	File string
	Line int
	// Pos is the directive's position.
	Pos token.Pos
	// Malformed is set when the directive was recognized but cannot be
	// verified (missing or unknown keys); such a directive annotates
	// nothing.
	Malformed string
}

// ParseGoroutine interprets one comment as a goroutine annotation.
func ParseGoroutine(text string) (Goroutine, bool) {
	text = strings.TrimSpace(text)
	if text != goroutineMarker && !strings.HasPrefix(text, goroutineMarker+" ") {
		return Goroutine{}, false
	}
	var g Goroutine
	fields := strings.Fields(strings.TrimPrefix(text, goroutineMarker))
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		switch {
		case !ok:
			g.Malformed = "option " + f + " is not key=value"
			return g, true
		case val == "":
			g.Malformed = "empty value for " + key + "="
			return g, true
		}
		switch key {
		case "owner":
			g.Owner = val
		case "stop":
			g.Stop = val
		default:
			g.Malformed = "unknown key " + key + " (only owner= and stop= are recognized)"
			return g, true
		}
	}
	switch {
	case g.Owner == "" && g.Stop == "":
		g.Malformed = "missing owner= and stop="
	case g.Owner == "":
		g.Malformed = "missing owner="
	case g.Stop == "":
		g.Malformed = "missing stop="
	}
	return g, true
}

// Goroutines extracts every //insane:goroutine annotation from the
// files, malformed ones included.
func Goroutines(fset *token.FileSet, files []*ast.File) []Goroutine {
	var out []Goroutine
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				g, ok := ParseGoroutine(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				g.File = pos.Filename
				g.Line = pos.Line
				g.Pos = c.Pos()
				out = append(out, g)
			}
		}
	}
	return out
}

// GoroutineIndex answers per-line lookups of //insane:goroutine
// annotations for one package.
type GoroutineIndex struct {
	byLine map[string]map[int]Goroutine
	all    []Goroutine
	// claimed marks annotations a `go` statement looked up, so drivers
	// can surface the stray ones that annotate nothing.
	claimed map[token.Pos]bool
}

// NewGoroutineIndex builds a GoroutineIndex from the package's files.
func NewGoroutineIndex(fset *token.FileSet, files []*ast.File) *GoroutineIndex {
	idx := &GoroutineIndex{
		byLine:  make(map[string]map[int]Goroutine),
		claimed: make(map[token.Pos]bool),
	}
	for _, g := range Goroutines(fset, files) {
		idx.all = append(idx.all, g)
		lines := idx.byLine[g.File]
		if lines == nil {
			lines = make(map[int]Goroutine)
			idx.byLine[g.File] = lines
		}
		// An annotation covers its own line (trailing comment) and the
		// next line (comment-above style), like //lint:ignore.
		lines[g.Line] = g
		lines[g.Line+1] = g
	}
	return idx
}

// At returns the annotation covering pos, marking it claimed.
func (idx *GoroutineIndex) At(pos token.Position) (Goroutine, bool) {
	g, ok := idx.byLine[pos.Filename][pos.Line]
	if ok {
		idx.claimed[g.Pos] = true
	}
	return g, ok
}

// Unclaimed returns the annotations no `go` statement looked up — a
// directive that drifted away from its statement annotates nothing and
// should be surfaced rather than silently ignored.
func (idx *GoroutineIndex) Unclaimed() []Goroutine {
	var out []Goroutine
	for _, g := range idx.all {
		if !idx.claimed[g.Pos] {
			out = append(out, g)
		}
	}
	return out
}
