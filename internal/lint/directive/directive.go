// Package directive parses the `//lint:ignore` suppression comments
// understood by the insanevet drivers.
//
// The accepted form is:
//
//	//lint:ignore insanevet/<rule> <reason>
//
// A directive written on its own line suppresses matching diagnostics
// on the next source line; a directive trailing a statement suppresses
// diagnostics on its own line. The reason is mandatory: a directive
// without one does not suppress anything and is itself reported by the
// driver, so every waiver is documented in the tree.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker shared with staticcheck-style tooling.
const prefix = "//lint:ignore "

// namespace scopes rules to this suite: `insanevet/bufownership`.
const namespace = "insanevet/"

// Ignore is one parsed suppression directive.
type Ignore struct {
	// Rule is the analyzer name being waived (without the insanevet/
	// namespace), or "*" for all rules.
	Rule string
	// Reason is the justification text after the rule.
	Reason string
	// File and Line locate the directive.
	File string
	Line int
	// Pos is the directive's position (for malformed-directive
	// diagnostics).
	Pos token.Pos
	// Malformed is set when the directive was recognized but cannot
	// suppress anything (missing reason or missing insanevet/ scope).
	Malformed string
}

// Collect extracts every lint:ignore directive from the files.
func Collect(fset *token.FileSet, files []*ast.File) []Ignore {
	var out []Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ig.File = pos.Filename
				ig.Line = pos.Line
				ig.Pos = c.Pos()
				out = append(out, ig)
			}
		}
	}
	return out
}

// parse interprets one comment as a directive.
func parse(text string) (Ignore, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok {
		return Ignore{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Ignore{Malformed: "missing rule and reason"}, true
	}
	rule := fields[0]
	reason := strings.TrimSpace(strings.TrimPrefix(rest, rule))
	scoped, hasScope := strings.CutPrefix(rule, namespace)
	switch {
	case !hasScope:
		return Ignore{Rule: rule, Malformed: "rule must be namespaced as " + namespace + "<rule>"}, true
	case scoped == "":
		return Ignore{Malformed: "empty rule after " + namespace}, true
	case reason == "":
		return Ignore{Rule: scoped, Malformed: "missing reason"}, true
	}
	return Ignore{Rule: scoped, Reason: reason}, true
}

// Index answers suppression queries for one package.
type Index struct {
	byLine map[string]map[int][]Ignore
	all    []Ignore
}

// NewIndex builds an Index from the package's files.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{byLine: make(map[string]map[int][]Ignore)}
	for _, ig := range Collect(fset, files) {
		idx.all = append(idx.all, ig)
		if ig.Malformed != "" {
			continue
		}
		lines := idx.byLine[ig.File]
		if lines == nil {
			lines = make(map[int][]Ignore)
			idx.byLine[ig.File] = lines
		}
		// A directive covers its own line (trailing comment) and the
		// next line (comment-above style).
		lines[ig.Line] = append(lines[ig.Line], ig)
		lines[ig.Line+1] = append(lines[ig.Line+1], ig)
	}
	return idx
}

// Suppresses reports whether a diagnostic of the named rule at pos is
// waived by a directive.
func (idx *Index) Suppresses(pos token.Position, rule string) bool {
	for _, ig := range idx.byLine[pos.Filename][pos.Line] {
		if ig.Rule == rule || ig.Rule == "*" {
			return true
		}
	}
	return false
}

// Malformed returns the directives that were recognized but cannot
// suppress anything, so drivers can surface them.
func (idx *Index) Malformed() []Ignore {
	var out []Ignore
	for _, ig := range idx.all {
		if ig.Malformed != "" {
			out = append(out, ig)
		}
	}
	return out
}
