package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParsePairDecl(t *testing.T) {
	const src = `package p

//insane:acquire resource=mem-slot on=nilerr
func Get() error { return nil }

//insane:acquire resource=tx on=true
func TryCharge() bool { return true }

//insane:acquire resource=tx
func Take() {}

//insane:release resource=tx
func Put() {}

//insane:transfer resource=tx on=true
func Push() bool { return true }

//insane:transfer resource=mem-slot on=nilerr
//insane:release resource=wrapper
func EmitLike() error { return nil }

//insane:unbalanced resource=tenant-mem by=charge stored in slot state, refunded by Release
func Waived() {}

//insane:acquire
func MissingResource() {}

//insane:acquire resource=tx on=maybe
func BadCond() bool { return true }

//insane:release resource=tx on=true
func CondRelease() {}

//insane:acquire resource=tx junk
func BadOption() {}

//insane:unbalanced by=reason without resource
func WaiverNoResource() {}

//insane:unbalanced resource=tx
func WaiverNoReason() {}

//insane:unbalanced resource=tx by=
func WaiverEmptyReason() {}

// Not pair markers at all.
//insane:released resource=tx
//insane:hotpath
func Plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		d     PairDirectives
		probs int
	}{
		"Get":       {PairDirectives{Effects: []PairEffect{{PairAcquire, "mem-slot", CondNilErr}}}, 0},
		"TryCharge": {PairDirectives{Effects: []PairEffect{{PairAcquire, "tx", CondTrue}}}, 0},
		"Take":      {PairDirectives{Effects: []PairEffect{{PairAcquire, "tx", CondAlways}}}, 0},
		"Put":       {PairDirectives{Effects: []PairEffect{{PairRelease, "tx", CondAlways}}}, 0},
		"Push":      {PairDirectives{Effects: []PairEffect{{PairTransfer, "tx", CondTrue}}}, 0},
		"EmitLike": {PairDirectives{Effects: []PairEffect{
			{PairTransfer, "mem-slot", CondNilErr},
			{PairRelease, "wrapper", CondAlways},
		}}, 0},
		"Waived": {PairDirectives{Waivers: []PairWaiver{
			{Resource: "tenant-mem", Reason: "charge stored in slot state, refunded by Release"},
		}}, 0},
		"MissingResource":   {PairDirectives{}, 1},
		"BadCond":           {PairDirectives{}, 1},
		"CondRelease":       {PairDirectives{}, 1},
		"BadOption":         {PairDirectives{}, 1},
		"WaiverNoResource":  {PairDirectives{}, 1},
		"WaiverNoReason":    {PairDirectives{}, 1},
		"WaiverEmptyReason": {PairDirectives{}, 1},
		"Plain":             {PairDirectives{}, 0},
	}
	seen := 0
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		seen++
		d, probs := ParsePairDecl(fd.Doc)
		w, ok := want[fd.Name.Name]
		if !ok {
			t.Fatalf("unexpected decl %s", fd.Name.Name)
		}
		if !reflect.DeepEqual(d, w.d) {
			t.Errorf("%s: directives %+v, want %+v", fd.Name.Name, d, w.d)
		}
		if len(probs) != w.probs {
			t.Errorf("%s: %d problems %v, want %d", fd.Name.Name, len(probs), probs, w.probs)
		}
	}
	if seen != len(want) {
		t.Fatalf("saw %d decls, want %d", seen, len(want))
	}
}

func TestPairKindString(t *testing.T) {
	if PairAcquire.String() != "acquire" || PairRelease.String() != "release" || PairTransfer.String() != "transfer" {
		t.Error("PairKind.String mismatch")
	}
	if CondAlways.String() != "" || CondTrue.String() != "true" || CondNilErr.String() != "nilerr" {
		t.Error("PairCond.String mismatch")
	}
}
