package directive

import (
	"go/ast"
	"strings"
)

// The //insane:acquire / //insane:release / //insane:transfer markers
// declare a function's resource-balance effect for the paircheck
// analyzer (DESIGN.md §13), placed in the function's doc comment:
//
//	//insane:acquire resource=<name> [on=true|on=nilerr]
//	//insane:release resource=<name>
//	//insane:transfer resource=<name> [on=true|on=nilerr]
//	//insane:unbalanced resource=<name> by=<reason>
//
// An acquire means calling the function obtains one unit of the named
// resource; a release returns one; a transfer consumes the caller's
// unit by handing it to another owner (a ring, a scheduler, a pool).
// The on= option makes the effect conditional: on=true ties it to the
// function returning true (its single bool result), on=nilerr to the
// function returning a nil error (its last error result). Without on=
// the effect is unconditional.
//
// //insane:unbalanced waives the balance proof for one resource in the
// annotated function; the mandatory by= reason documents who completes
// the pair (e.g. a charge stored in runtime state and refunded by a
// later release). paircheck verifies the waiver is actually needed —
// a waiver on a balanced function is itself a finding.
const (
	acquireMarker    = "//insane:acquire"
	releaseMarker    = "//insane:release"
	transferMarker   = "//insane:transfer"
	unbalancedMarker = "//insane:unbalanced"
)

// PairKind is the effect class of one pair annotation.
type PairKind int

// Effect classes.
const (
	PairAcquire PairKind = iota
	PairRelease
	PairTransfer
)

// String names the kind as written in the source marker.
func (k PairKind) String() string {
	switch k {
	case PairAcquire:
		return "acquire"
	case PairRelease:
		return "release"
	case PairTransfer:
		return "transfer"
	}
	return "pair"
}

// PairCond is the condition an effect is tied to.
type PairCond int

// Effect conditions.
const (
	// CondAlways: the effect happens on every call.
	CondAlways PairCond = iota
	// CondTrue: the effect happens iff the function returns true.
	CondTrue
	// CondNilErr: the effect happens iff the function returns a nil
	// error.
	CondNilErr
)

// String renders the condition as its on= value ("" for CondAlways).
func (c PairCond) String() string {
	switch c {
	case CondTrue:
		return "true"
	case CondNilErr:
		return "nilerr"
	}
	return ""
}

// PairEffect is one parsed acquire/release/transfer annotation.
type PairEffect struct {
	Kind     PairKind
	Resource string
	Cond     PairCond
}

// PairWaiver is one parsed //insane:unbalanced annotation.
type PairWaiver struct {
	Resource string
	Reason   string
}

// PairDirectives is the parse result of the pair markers on one
// function declaration.
type PairDirectives struct {
	Effects []PairEffect
	Waivers []PairWaiver
}

// ParsePairDecl extracts the pair annotations from a declaration's doc
// comment group, returning malformed ones as problems.
func ParsePairDecl(doc *ast.CommentGroup) (PairDirectives, []Problem) {
	var d PairDirectives
	var probs []Problem
	if doc == nil {
		return d, nil
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		var kind PairKind
		var marker string
		switch {
		case matchesMarker(text, acquireMarker):
			kind, marker = PairAcquire, acquireMarker
		case matchesMarker(text, releaseMarker):
			kind, marker = PairRelease, releaseMarker
		case matchesMarker(text, transferMarker):
			kind, marker = PairTransfer, transferMarker
		case matchesMarker(text, unbalancedMarker):
			w, msg := parseWaiver(strings.TrimPrefix(text, unbalancedMarker))
			if msg != "" {
				probs = append(probs, Problem{Pos: c.Pos(), Msg: unbalancedMarker + ": " + msg})
				continue
			}
			d.Waivers = append(d.Waivers, w)
			continue
		default:
			continue
		}
		e, msg := parseEffect(kind, strings.TrimPrefix(text, marker))
		if msg != "" {
			probs = append(probs, Problem{Pos: c.Pos(), Msg: marker + ": " + msg})
			continue
		}
		d.Effects = append(d.Effects, e)
	}
	return d, probs
}

// matchesMarker reports whether text is the marker, bare or with
// options. Prefix matching alone would let //insane:released shadow
// //insane:release.
func matchesMarker(text, marker string) bool {
	return text == marker || strings.HasPrefix(text, marker+" ")
}

// parseEffect interprets the options of one acquire/release/transfer
// marker; rest is the text after the marker.
func parseEffect(kind PairKind, rest string) (PairEffect, string) {
	e := PairEffect{Kind: kind}
	for _, f := range strings.Fields(rest) {
		key, val, ok := strings.Cut(f, "=")
		switch {
		case !ok:
			return e, "option " + f + " is not key=value"
		case val == "":
			return e, "empty value for " + key + "="
		}
		switch key {
		case "resource":
			e.Resource = val
		case "on":
			if kind == PairRelease {
				return e, "release effects are unconditional (drop on=)"
			}
			switch val {
			case "true":
				e.Cond = CondTrue
			case "nilerr":
				e.Cond = CondNilErr
			default:
				return e, "unknown on= value " + val + " (only true and nilerr are recognized)"
			}
		default:
			return e, "unknown key " + key + " (only resource= and on= are recognized)"
		}
	}
	if e.Resource == "" {
		return e, "missing resource=<name>"
	}
	return e, ""
}

// parseWaiver interprets the options of one //insane:unbalanced
// marker; rest is the text after the marker. The by= reason runs to
// the end of the line, so resource= must come first.
func parseWaiver(rest string) (PairWaiver, string) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return PairWaiver{}, "missing resource=<name> and by=<reason>"
	}
	res, ok := strings.CutPrefix(rest, "resource=")
	if !ok {
		return PairWaiver{}, "resource=<name> must come first (the by= reason runs to end of line)"
	}
	name, rest, _ := strings.Cut(res, " ")
	if name == "" {
		return PairWaiver{}, "empty value for resource="
	}
	rest = strings.TrimSpace(rest)
	reason, ok := strings.CutPrefix(rest, "by=")
	switch {
	case !ok:
		return PairWaiver{}, "missing by=<reason>"
	case strings.TrimSpace(reason) == "":
		return PairWaiver{}, "empty reason after by="
	}
	return PairWaiver{Resource: name, Reason: strings.TrimSpace(reason)}, ""
}
