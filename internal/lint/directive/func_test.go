package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseBounded(t *testing.T) {
	tests := []struct {
		text      string
		ok        bool
		by        string
		malformed bool
	}{
		{"//insane:bounded by=burst cap", true, "burst cap", false},
		{"//insane:bounded   by=NumClasses gate walk  ", true, "NumClasses gate walk", false},
		{"//insane:bounded", true, "", true},
		{"//insane:bounded cap=8", true, "", true},
		{"//insane:bounded by=", true, "", true},
		{"//insane:bounded by=   ", true, "", true},
		{"//insane:boundedly wrong", false, "", false},
		{"// plain comment", false, "", false},
		{"//insane:hotpath", false, "", false},
	}
	for _, tt := range tests {
		b, ok := ParseBounded(tt.text)
		if ok != tt.ok {
			t.Errorf("ParseBounded(%q) ok=%v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if (b.Malformed != "") != tt.malformed {
			t.Errorf("ParseBounded(%q) malformed=%q, want malformed=%v", tt.text, b.Malformed, tt.malformed)
		}
		if b.By != tt.by {
			t.Errorf("ParseBounded(%q) by=%q, want %q", tt.text, b.By, tt.by)
		}
	}
}

func TestParseFuncDecl(t *testing.T) {
	const src = `package p

//insane:hotpath
func Hot() {}

//insane:hotpath allow=block
func HotBlock() {}

//insane:hotpath allow=panic
func BadOption() {}

//insane:coldpath setup only
func Cold() {}

//insane:coldpath
func ColdNoReason() {}

func Plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		d     FuncDirectives
		probs int
	}{
		"Hot":          {FuncDirectives{Hot: true}, 0},
		"HotBlock":     {FuncDirectives{Hot: true, AllowBlock: true}, 0},
		"BadOption":    {FuncDirectives{Hot: true}, 1},
		"Cold":         {FuncDirectives{Cold: true}, 0},
		"ColdNoReason": {FuncDirectives{Cold: true}, 1},
		"Plain":        {FuncDirectives{}, 0},
	}
	for _, decl := range f.Decls {
		fd := decl.(*ast.FuncDecl)
		d, probs := ParseFuncDecl(fd.Doc)
		w, ok := want[fd.Name.Name]
		if !ok {
			t.Fatalf("unexpected decl %s", fd.Name.Name)
		}
		if d != w.d {
			t.Errorf("%s: directives %+v, want %+v", fd.Name.Name, d, w.d)
		}
		if len(probs) != w.probs {
			t.Errorf("%s: %d problems %v, want %d", fd.Name.Name, len(probs), probs, w.probs)
		}
	}
}

func TestHasMarker(t *testing.T) {
	const src = `package p

type I interface {
	//insane:hotpath
	M()
	N()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	it := f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.InterfaceType)
	if !HasMarker(it.Methods.List[0].Doc, HotMarker) {
		t.Error("M should carry the hotpath marker")
	}
	if HasMarker(it.Methods.List[1].Doc, HotMarker) {
		t.Error("N should not carry the hotpath marker")
	}
	if HasMarker(nil, HotMarker) {
		t.Error("nil comment group should not carry any marker")
	}
}

func TestBoundedIndex(t *testing.T) {
	const src = `package p

func f() {
	//insane:bounded by=claimed below
	_ = 1
	_ = 2 //insane:bounded by=trailing same line
}

//insane:bounded by=attached to nothing
var x int

//insane:bounded
var y int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewBoundedIndex(fset, []*ast.File{f})

	// Line 5 (the statement under the first annotation) is covered.
	if b, ok := idx.At(token.Position{Filename: "p.go", Line: 5}); !ok || b.By != "claimed below" {
		t.Errorf("line 5: got %+v ok=%v, want claimed below", b, ok)
	}
	// Line 6 carries a trailing annotation on its own line.
	if b, ok := idx.At(token.Position{Filename: "p.go", Line: 6}); !ok || b.By != "trailing same line" {
		t.Errorf("line 6: got %+v ok=%v, want trailing same line", b, ok)
	}
	if _, ok := idx.At(token.Position{Filename: "p.go", Line: 3}); ok {
		t.Error("line 3 should not be covered")
	}

	unclaimed := idx.Unclaimed()
	if len(unclaimed) != 2 {
		t.Fatalf("unclaimed = %d annotations %v, want 2", len(unclaimed), unclaimed)
	}
	if unclaimed[0].By != "attached to nothing" || unclaimed[0].Malformed != "" {
		t.Errorf("unclaimed[0] = %+v", unclaimed[0])
	}
	if unclaimed[1].Malformed == "" {
		t.Errorf("unclaimed[1] should be malformed: %+v", unclaimed[1])
	}
}
