// Package a seeds atomicfield violations: copies of sync/atomic value
// fields and mixed plain/atomic access to ordinary fields.
package a

import "sync/atomic"

// counters mirrors the runtime's counter blocks.
type counters struct {
	loops atomic.Uint64
	n     uint64
	plain int
}

// Seeded violation 1: copying an atomic value field detaches the copy
// from the shared counter.
func copyAtomic(c *counters) uint64 {
	snapshot := c.loops // want `copied by value`
	return snapshot.Load()
}

// Seeded violation 2: passing an atomic field by value.
func passAtomic(c *counters) {
	sink(c.loops) // want `copied by value`
}

func sink(v atomic.Uint64) { _ = v }

// Seeded violation 3: plain write to a field that is accessed
// atomically elsewhere in the package.
func plainWrite(c *counters) {
	atomic.AddUint64(&c.n, 1)
	c.n = 0 // want `accessed atomically elsewhere`
}

// Seeded violation 4: plain read of the same field, in a function with
// no atomic call of its own (the property is package-wide).
func plainRead(c *counters) uint64 {
	return c.n // want `accessed atomically elsewhere`
}

// Method calls, address-taking and the sync/atomic functions are the
// intended API; untouched plain fields stay unrestricted.
func ok(c *counters) uint64 {
	c.loops.Add(1)
	p := &c.loops
	p.Store(0)
	c.plain++
	return c.loops.Load() + atomic.LoadUint64(&c.n)
}

// Composite-literal construction of a not-yet-shared value is accepted.
func fresh() *counters {
	return &counters{}
}

// The suppression path: an explicit, reasoned directive waives the
// finding.
func suppressed(c *counters) uint64 {
	//lint:ignore insanevet/atomicfield fixture proving the suppression path
	return c.n
}
