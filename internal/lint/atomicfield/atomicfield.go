// Package atomicfield implements the insanevet rule keeping counter
// fields race-free on the runtime hot paths.
//
// The pollers, the client library and the stats snapshots touch the
// same counters concurrently, so the runtime declares them as
// sync/atomic value types (atomic.Uint64 &c.) or accesses plain fields
// exclusively through the sync/atomic functions. Two mistakes defeat
// that discipline silently:
//
//   - copying an atomic value field (`x := st.loops` or passing
//     `st.loops` by value): the copy detaches from the shared counter
//     and future Loads read a stale snapshot;
//   - accessing a field plainly (`s.n++`, `x := s.n`) when other code
//     accesses the same field through atomic.Load/Add/Store/...: the
//     mixed access is a data race the race detector only catches when
//     both sides happen to run in one test.
//
// Taking the address of an atomic field and calling its methods are,
// of course, fine; composite-literal initialization of a not-yet-shared
// struct is also accepted.
//
// The rule shares the //insane:shared regime registry with guardcheck
// (DESIGN.md §14): a field declared `//insane:guardedby atomic` is in
// the atomic family even when this package never passes its address to
// a sync/atomic function — the Regime facts travel the whole-program
// dependency closure, so one annotation drives both analyzers across
// package boundaries. Malformed annotations are guardcheck's findings;
// this pass consumes the registry silently.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/guardfacts"
)

// Analyzer is the atomicfield rule.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "flag copies of atomic value fields and plain accesses to fields used atomically elsewhere",
	Run:       run,
	FactTypes: []analysis.Fact{(*guardfacts.Regime)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Export this package's shared-struct regime declarations into the
	// fact store. guardcheck owns the annotation diagnostics, so the
	// problems are dropped here — reporting them twice would double
	// every malformed-spec finding in the suite.
	guardfacts.Export(pass)

	// Pass 1 (whole package): find fields whose address is passed to a
	// sync/atomic function, and remember where.
	atomicallyUsed := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			if fld := addressedField(pass, call.Args[0]); fld != nil {
				if _, seen := atomicallyUsed[fld]; !seen {
					atomicallyUsed[fld] = call.Pos()
				}
			}
			return true
		})
	}

	// Pass 2: flag misuses of both field families.
	for _, f := range pass.Files {
		walk(f, nil, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fld := fieldOf(pass, sel)
			if fld == nil {
				return
			}
			parent := parentOf(stack)
			if isAtomicValueType(fld.Type()) {
				if usedAsValue(parent, sel) {
					pass.Reportf(sel.Pos(), "%s field %s copied by value: use its methods (Load/Store/Add) or take its address", typeString(fld.Type()), sel.Sel.Name)
				}
				return
			}
			if at, shared := atomicallyUsed[fld]; shared && plainAccess(parent, sel) {
				line := pass.Fset.Position(at).Line
				pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed atomically elsewhere (line %d): mixed access is a data race", sel.Sel.Name, line)
				return
			}
			// The regime check only bites on plain scalars, where a bare
			// read/write races with the atomic ops used elsewhere. Fields
			// whose type is (an aggregate of) sync/atomic value types
			// enforce the discipline through their method set already —
			// indexing into [N]atomic.Uint64 is how it's used correctly.
			if r, ok := guardfacts.Lookup(pass, fld); ok && r.R.Kind == directive.RegimeAtomic &&
				plainScalar(fld.Type()) && plainAccess(parent, sel) {
				pass.Reportf(sel.Pos(), "plain access to field %s, declared //insane:guardedby atomic on %s.%s: mixed access is a data race", sel.Sel.Name, r.Struct, fld.Name())
			}
		})
	}
	return nil, nil
}

// walk traverses the file keeping an ancestor stack, skipping nothing:
// atomic misuse inside closures is just as racy.
func walk(n ast.Node, stack []ast.Node, fn func(ast.Node, []ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(m, stack)
		stack = append(stack, m)
		return true
	})
}

// parentOf returns the immediate ancestor, skipping parentheses.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// fieldOf resolves a selector to the struct field it denotes.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicValueType reports whether t is one of the sync/atomic value
// types (atomic.Bool, Int32, Int64, Uint32, Uint64, Uintptr, Pointer,
// Value).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// plainScalar reports whether t is a bare scalar (integer, pointer,
// unsafe.Pointer) — the shapes sync/atomic free functions operate on,
// and the only shapes where a plain access can race with them.
func plainScalar(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0 || u.Kind() == types.UnsafePointer
	case *types.Pointer:
		return true
	}
	return false
}

// isAtomicFuncCall reports whether the call invokes a sync/atomic
// package function (atomic.AddUint64, atomic.LoadInt32, ...).
func isAtomicFuncCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedField returns the struct field whose address the expression
// takes (&s.f), if any.
func addressedField(pass *analysis.Pass, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(pass, sel)
}

// usedAsValue reports whether an atomic-typed selector is used as a
// value (copied) rather than through a method call or its address.
func usedAsValue(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// st.loops.Load(): sel is the X of a method selector.
		return p.X != sel
	case *ast.UnaryExpr:
		return p.Op != token.AND
	case nil:
		return false
	}
	return true
}

// plainAccess reports whether a plain field selector is a read or write
// outside the atomic API (anything but &s.f).
func plainAccess(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		return p.Op != token.AND
	case nil:
		return false
	}
	return true
}

// typeString renders the field type compactly ("atomic.Uint64").
func typeString(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	return "atomic." + named.Obj().Name()
}
