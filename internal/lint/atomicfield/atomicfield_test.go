package atomicfield_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
