// Package analysis is an offline, API-compatible subset of
// golang.org/x/tools/go/analysis (pinned against v0.24.0).
//
// The insanevet suite is written against this package exactly as it
// would be written against the upstream module: an Analyzer bundles a
// name, a doc string and a Run function; Run receives a Pass with the
// type-checked syntax of one package and reports Diagnostics. The build
// environment of this repository is fully offline (no module proxy), so
// instead of requiring golang.org/x/tools we vendor the thin slice of
// its API the analyzers need. Swapping back to the upstream module is a
// one-line import change per file plus a go.mod require.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static-analysis rule: how to run it and what
// it is called in diagnostics and suppression directives.
type Analyzer struct {
	// Name identifies the rule. It is the <rule> part accepted by the
	// `//lint:ignore insanevet/<rule> reason` suppression directive and
	// is printed with every diagnostic.
	Name string

	// Doc is the rule's documentation: first line is a summary, the
	// rest explains the invariant being enforced.
	Doc string

	// Run applies the rule to one package. The returned value is
	// ignored by the insanevet driver (upstream uses it for
	// inter-analyzer facts); returning (nil, nil) is the norm.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the Fact types the analyzer exports and imports,
	// one zero value per type (upstream uses these to register gob
	// codecs). A non-empty list marks the analyzer as whole-program:
	// the driver runs it over the full in-module dependency closure of
	// the requested packages, dependencies first, with a shared
	// FactStore bound to every pass.
	FactTypes []Fact
}

// A Fact is a piece of information an analyzer attaches to a
// package-level object in one pass and retrieves in the passes of
// dependent packages. Facts must be pointer types and implement the
// marker method AFact, exactly as upstream requires.
type Fact interface{ AFact() }

// Pass provides one analyzer run with the type-checked syntax of a
// single package and a sink for diagnostics.
type Pass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files is the package's parsed syntax (non-test files).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches suppression
	// and output handling here; analyzers should use Reportf.
	Report func(Diagnostic)

	// ExportObjectFact associates a fact with a package-level object so
	// passes over dependent packages can retrieve it. Bound by the
	// driver (see FactStore.Bind); nil for analyzers without FactTypes.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportObjectFact copies the fact of fact's type previously
	// exported for obj into *fact and reports whether one was found.
	// Bound by the driver; nil for analyzers without FactTypes.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// AllObjectFacts returns every object fact exported so far in this
	// whole-program run, in export order (upstream returns the facts of
	// the current package and its dependencies; with the in-memory
	// store that is exactly the set accumulated by earlier passes).
	// Bound by the driver; nil for analyzers without FactTypes.
	AllObjectFacts func() []ObjectFact
}

// ObjectFact pairs an object with one fact attached to it, as returned
// by Pass.AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FactStore holds the object facts of one whole-program analysis run.
// The insanevet drivers are single-process, so unlike upstream (which
// serializes facts with gob between compilations) the store is a plain
// in-memory map shared by every pass of one lint.Run invocation.
type FactStore struct {
	m map[factKey]Fact
	// order preserves export order so AllObjectFacts iterates
	// deterministically (map iteration would make diagnostics flap).
	order []factKey
}

type factKey struct {
	obj types.Object
	t   reflect.Type
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// Bind wires the pass's ExportObjectFact/ImportObjectFact to the store.
func (s *FactStore) Bind(p *Pass) {
	p.ExportObjectFact = func(obj types.Object, fact Fact) {
		if obj == nil {
			panic("analysis: ExportObjectFact(nil, fact)")
		}
		t := reflect.TypeOf(fact)
		if t.Kind() != reflect.Ptr {
			panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
		}
		key := factKey{obj, t}
		if _, exists := s.m[key]; !exists {
			s.order = append(s.order, key)
		}
		s.m[key] = fact
	}
	p.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		if obj == nil {
			return false
		}
		got, ok := s.m[factKey{obj, reflect.TypeOf(fact)}]
		if !ok {
			return false
		}
		reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
		return true
	}
	p.AllObjectFacts = func() []ObjectFact {
		out := make([]ObjectFact, 0, len(s.order))
		for _, key := range s.order {
			out = append(out, ObjectFact{Object: key.obj, Fact: s.m[key]})
		}
		return out
	}
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	// Pos is where the problem was found.
	Pos token.Pos
	// Category optionally refines the rule name (unused by the
	// insanevet drivers, kept for upstream compatibility).
	Category string
	// Message states the problem, in the tone of `go vet`.
	Message string
}
