// Package analysis is an offline, API-compatible subset of
// golang.org/x/tools/go/analysis (pinned against v0.24.0).
//
// The insanevet suite is written against this package exactly as it
// would be written against the upstream module: an Analyzer bundles a
// name, a doc string and a Run function; Run receives a Pass with the
// type-checked syntax of one package and reports Diagnostics. The build
// environment of this repository is fully offline (no module proxy), so
// instead of requiring golang.org/x/tools we vendor the thin slice of
// its API the analyzers need. Swapping back to the upstream module is a
// one-line import change per file plus a go.mod require.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis rule: how to run it and what
// it is called in diagnostics and suppression directives.
type Analyzer struct {
	// Name identifies the rule. It is the <rule> part accepted by the
	// `//lint:ignore insanevet/<rule> reason` suppression directive and
	// is printed with every diagnostic.
	Name string

	// Doc is the rule's documentation: first line is a summary, the
	// rest explains the invariant being enforced.
	Doc string

	// Run applies the rule to one package. The returned value is
	// ignored by the insanevet driver (upstream uses it for
	// inter-analyzer facts); returning (nil, nil) is the norm.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzer run with the type-checked syntax of a
// single package and a sink for diagnostics.
type Pass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files is the package's parsed syntax (non-test files).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches suppression
	// and output handling here; analyzers should use Reportf.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	// Pos is where the problem was found.
	Pos token.Pos
	// Category optionally refines the rule name (unused by the
	// insanevet drivers, kept for upstream compatibility).
	Category string
	// Message states the problem, in the tone of `go vet`.
	Message string
}
