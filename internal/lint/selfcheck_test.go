package lint_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestRepositoryIsClean runs the full insanevet suite over the whole
// module, exactly as `make lint` does: the tree must stay free of
// ownership, lock-order, atomicity and timebase violations (or carry
// explicit //lint:ignore directives).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
