package lint_test

import (
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/hotpathcheck"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestRepositoryIsClean runs the full insanevet suite over the whole
// module, exactly as `make lint` does: the tree must stay free of
// ownership, lock-order, atomicity, timebase, hot-path,
// sentinel-comparison, goroutine-lifecycle, sync-misuse, layering and
// work-bound violations (or carry explicit //lint:ignore directives). It also asserts the
// whole-program analyzers really covered the module's dependency
// closure — a suite that silently analyzed nothing would pass
// otherwise.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, info, err := lint.RunWithInfo(ldr, pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}

	if info.ClosurePackages < 30 {
		t.Errorf("whole-program closure covered only %d packages (want >= 30)", info.ClosurePackages)
	}
	for _, name := range []string{"goroutinecheck", "lockorder", "hotpathcheck", "archcheck", "boundedcheck", "paircheck", "bufownership", "guardcheck", "atomicfield"} {
		if n := info.WholeProgram[name]; n < 30 {
			t.Errorf("whole-program analyzer %s ran over %d packages (want >= 30)", name, n)
		}
	}
}

// TestHotPathIsProven runs hotpathcheck alone over the module and
// additionally asserts that the //insane:hotpath annotation set has
// not silently shrunk: the zero-alloc proof is only as strong as its
// roots (Emit admission, scheduler push/pop, the poller loop, Consume,
// mempool and ringbuf ops, telemetry records).
func TestHotPathIsProven(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(ldr, pkgs, []*analysis.Analyzer{hotpathcheck.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}

	roots := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if text == "//insane:hotpath" || strings.HasPrefix(text, "//insane:hotpath ") {
						roots++
					}
				}
			}
		}
	}
	if roots < 20 {
		t.Errorf("only %d //insane:hotpath annotations in the tree; the proof's root set has shrunk (want >= 20)", roots)
	}
}

// TestWorkBoundWaiversAreAlive asserts the //insane:bounded waiver set
// has not silently shrunk: boundedcheck verifies each one (malformed,
// unattached or redundant annotations are findings), so a healthy count
// here means the runtime's unprovable loops all carry live, checked
// justifications rather than having been deleted along with their
// loops' proofs.
func TestWorkBoundWaiversAreAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("parses the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	waivers := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(strings.TrimSpace(c.Text), "//insane:bounded ") {
						waivers++
					}
				}
			}
		}
	}
	if waivers < 20 {
		t.Errorf("only %d //insane:bounded annotations in the tree; the work-bound waiver set has shrunk (want >= 20)", waivers)
	}
}

// TestGuardRegistryIsAlive asserts two invariants of the guardcheck
// shared-state registry (DESIGN.md §14). First, the annotation set has
// not silently shrunk: every //insane:shared struct and per-field
// //insane:guardedby spec is a root of the synchronization-regime
// proof, so a healthy count means the proof still covers the runtime's
// cross-goroutine state. Second, the //insane:unguarded waiver count
// stays at zero: a waiver is an unproven synchronization claim, and
// every regime in the tree is currently proven — any waiver appearing
// means a data-race hole is being waved through instead of fixed.
func TestGuardRegistryIsAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("parses the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	shared, specs, waivers := 0, 0, 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					switch {
					case text == "//insane:shared":
						shared++
					case strings.HasPrefix(text, "//insane:guardedby "):
						specs++
					case text == "//insane:unguarded" || strings.HasPrefix(text, "//insane:unguarded "):
						waivers++
					}
				}
			}
		}
	}
	if shared < 20 {
		t.Errorf("only %d //insane:shared structs in the tree; the shared-state registry has shrunk (want >= 20)", shared)
	}
	if specs < 100 {
		t.Errorf("only %d //insane:guardedby specs in the tree; the regime proof's root set has shrunk (want >= 100)", specs)
	}
	if waivers > 0 {
		t.Errorf("%d //insane:unguarded waivers in the tree (ceiling 0); prove the regime instead of waiving it", waivers)
	}
}

// TestResourceRegistryIsAlive asserts two invariants of the paircheck
// resource registry (DESIGN.md §13). First, the annotation set has not
// silently shrunk: every charge/refund and get/put pair the balance
// proof covers is rooted in an //insane:acquire, //insane:release or
// //insane:transfer comment, so a healthy count means the proof still
// has teeth. Second, the //insane:unbalanced waiver count stays at a
// hard ceiling: a waiver is an unproven ownership claim, and the tree
// currently needs none — any growth past the ceiling means balance
// holes are being waved through instead of fixed.
func TestResourceRegistryIsAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("parses the entire module")
	}
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	pairs, waivers := 0, 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					switch {
					case strings.HasPrefix(text, "//insane:acquire"),
						strings.HasPrefix(text, "//insane:release"),
						strings.HasPrefix(text, "//insane:transfer"):
						pairs++
					case strings.HasPrefix(text, "//insane:unbalanced"):
						waivers++
					}
				}
			}
		}
	}
	if pairs < 30 {
		t.Errorf("only %d //insane:{acquire,release,transfer} annotations in the tree; the resource registry has shrunk (want >= 30)", pairs)
	}
	if waivers > 3 {
		t.Errorf("%d //insane:unbalanced waivers in the tree (ceiling 3); prove the balance instead of waiving it", waivers)
	}
}
