// Package multichecker builds a command-line driver around a set of
// insanevet analyzers, mirroring the shape (and exit-code contract) of
// golang.org/x/tools/go/analysis/multichecker for the offline analysis
// subset under internal/lint/analysis.
package multichecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// Main loads the packages named by the command-line patterns, applies
// the analyzers and exits: 0 when the tree is clean, 1 when findings
// were reported, 2 on a load or usage error (including packages that
// had to be skipped because they failed to parse or type-check).
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr, analyzers...))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Run is Main without the process exit, for tests: it returns the exit
// code and writes findings to out and errors to errw.
func Run(args []string, out, errw io.Writer, analyzers ...*analysis.Analyzer) int {
	fs := flag.NewFlagSet("insanevet", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory of the module to analyze")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (for CI annotation)")
	runOnly := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: insanevet [-list] [-json] [-run names] [-C dir] [packages]\n\n")
		fmt.Fprintf(errw, "insanevet checks the INSANE tree for violations of the runtime's\nzero-copy ownership, locking, atomicity, timebase and hot-path\nconventions. Patterns default to ./...; suppress a finding with\n\t//lint:ignore insanevet/<rule> <reason>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *runOnly != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*runOnly, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(errw, "insanevet: no analyzer named %q (see -list)\n", name)
			}
			return 2
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ldr, err := loader.New(*dir)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	pkgs, skipped, err := ldr.LoadAll(patterns...)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	findings, err := lint.Run(ldr, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	if *asJSON {
		enc := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			enc = append(enc, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		data, err := json.MarshalIndent(enc, "", "  ")
		if err != nil {
			fmt.Fprintln(errw, "insanevet:", err)
			return 2
		}
		fmt.Fprintln(out, string(data))
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	// A package that failed to load was not analyzed: say so loudly
	// and fail, since a silent skip would let violations through.
	if len(skipped) > 0 {
		fmt.Fprintf(errw, "insanevet: %d package(s) skipped (failed to load):\n", len(skipped))
		for _, s := range skipped {
			fmt.Fprintf(errw, "\t%s: %v\n", s.Path, s.Err)
		}
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "insanevet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
