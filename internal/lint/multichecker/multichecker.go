// Package multichecker builds a command-line driver around a set of
// insanevet analyzers, mirroring the shape (and exit-code contract) of
// golang.org/x/tools/go/analysis/multichecker for the offline analysis
// subset under internal/lint/analysis.
package multichecker

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/insane-mw/insane/internal/lint"
	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// Main loads the packages named by the command-line patterns, applies
// the analyzers and exits: 0 when the tree is clean, 1 when findings
// were reported, 2 on a load or usage error.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr, analyzers...))
}

// Run is Main without the process exit, for tests: it returns the exit
// code and writes findings to out and errors to errw.
func Run(args []string, out, errw io.Writer, analyzers ...*analysis.Analyzer) int {
	fs := flag.NewFlagSet("insanevet", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory of the module to analyze")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: insanevet [-list] [-C dir] [packages]\n\n")
		fmt.Fprintf(errw, "insanevet checks the INSANE tree for violations of the runtime's\nzero-copy ownership, locking, atomicity and timebase conventions.\nPatterns default to ./...; suppress a finding with\n\t//lint:ignore insanevet/<rule> <reason>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ldr, err := loader.New(*dir)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	pkgs, err := ldr.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "insanevet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "insanevet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
