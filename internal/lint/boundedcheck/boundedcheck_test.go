package boundedcheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/boundedcheck"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestBoundedCheck covers every loop diagnostic class in package a and
// the cross-package fact flow (constant bound imported from dep,
// unproven loop in dep reported with the chain from b's root).
func TestBoundedCheck(t *testing.T) {
	analysistest.Run(t, "testdata", boundedcheck.Analyzer, "a", "b")
}

// TestAnnotationDiagnostics drives the analyzer by hand over the
// badannot fixture: the diagnostics land on the //insane:bounded
// comments themselves, where a trailing `// want` comment would be
// swallowed into the annotation text, so analysistest cannot express
// them.
func TestAnnotationDiagnostics(t *testing.T) {
	ldr := loader.NewAt(filepath.Join("testdata", "src"), "")
	pkg, err := ldr.LoadDir(filepath.Join("testdata", "src", "badannot"), "badannot")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	pass := &analysis.Pass{
		Analyzer:  boundedcheck.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d.Message) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := boundedcheck.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := []string{
		"//insane:bounded annotation is redundant: the loop is provably bounded",
		"//insane:bounded annotation is not attached to a for or range statement",
		"malformed //insane:bounded annotation: missing by=<reason>",
		"malformed //insane:bounded annotation: option cap=8 is not by=<reason>",
		"the slice length is not fence-checked against a constant cap [unbounded] in hot-path root missingBy",
		"the slice length is not fence-checked against a constant cap [unbounded] in hot-path root wrongOption",
	}
	for _, want := range wants {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %q", want, got)
		}
	}
	if len(got) != len(wants) {
		t.Errorf("got %d diagnostics, want %d: %q", len(got), len(wants), got)
	}
}
