// Package boundedcheck extends the hot-path proof from "no alloc, no
// block" (hotpathcheck) to "bounded work": every loop reachable from an
// //insane:hotpath root must be provably bounded, so per-packet
// processing cost is a compile-time constant and adversarial traffic
// cannot stretch it.
//
// A loop is provably bounded when the analyzer can see a constant cap:
//
//   - a range over a fixed-size array (or pointer to one), or over a
//     constant integer
//   - a counter loop `for i := C0; i < C1; i++` whose start, bound and
//     step are all provable constants — folding includes `len` of an
//     array, named constants, and calls to module functions that return
//     a single constant (proven via the exported WorkSummary fact of
//     the callee's package, so a bound can live in a dependency)
//   - a counter loop or slice range whose bound was fence-clamped
//     against a constant earlier in the function: `if n > C { n = C }`
//     or `if len(s) > C { s = s[:C] }`
//
// Everything else — `for {}`, data-dependent slice/map/string/channel
// ranges, bounds that flow from packet contents — is unproven. An
// unproven loop that a real invariant bounds is waived, with the
// invariant spelled out, by annotating the loop line (or the line
// above):
//
//	//insane:bounded by=<reason>
//
// The annotation is verified: one that is malformed, attached to no
// loop, or attached to a loop the analyzer can prove anyway is
// reported, so the waiver set cannot rot. Data-dependent recursion is
// reported too: any call cycle reachable from a root makes per-packet
// work unprovable. Individual findings are waived line by line with
// `//lint:ignore insanevet/boundedcheck <reason>`.
//
// Like hotpathcheck, the analysis is whole-program and bottom-up: each
// package pass summarizes every function (unproven loops, outgoing
// module-internal call edges, constant-return value) into a WorkSummary
// fact; traversal from the roots then walks the fact graph and reports
// each finding with its full call chain. Function literals are out of
// scope here — calls through func values are dynamic and hotpathcheck
// already flags them on hot paths. Malformed //insane:hotpath and
// //insane:coldpath directives are hotpathcheck's to report; this
// analyzer only consumes them.
package boundedcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// Loop is one unproven, unwaived loop of a function.
type Loop struct {
	// Pos locates the for or range statement.
	Pos token.Pos
	// Msg states why the loop could not be proven bounded.
	Msg string
}

// CallEdge is one resolved module-internal call.
type CallEdge struct {
	// Fn is the callee (generic origin).
	Fn *types.Func
	// Pos locates the first call site, where recursion is reported.
	Pos token.Pos
}

// WorkSummary is the per-function fact of the boundedcheck rule.
type WorkSummary struct {
	// Loops are the unproven loops that survived annotation waivers and
	// `//lint:ignore` suppression in the function's own package.
	Loops []Loop
	// Calls are the resolved module-internal callees.
	Calls []CallEdge
	// Cold marks an //insane:coldpath traversal barrier.
	Cold bool
	// Trusted marks an //insane:hotpath-annotated interface method.
	Trusted bool
	// ConstBound marks a function whose body is a single `return C`
	// with C a constant integer: calls to it fold to BoundVal when
	// proving loop bounds in dependent packages.
	ConstBound bool
	BoundVal   int64
}

// AFact marks WorkSummary as an analysis fact.
func (*WorkSummary) AFact() {}

// name is the rule name used in diagnostics and suppression lookups.
const name = "boundedcheck"

// Analyzer is the boundedcheck rule.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "loops reachable from //insane:hotpath roots must be provably bounded or carry a verified //insane:bounded annotation",
	Run:       run,
	FactTypes: []analysis.Fact{(*WorkSummary)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := directive.NewIndex(pass.Fset, pass.Files)
	bidx := directive.NewBoundedIndex(pass.Fset, pass.Files)

	// Phase 1a: interface methods carrying //insane:hotpath are trusted
	// boundaries, exactly as in hotpathcheck: implementations are
	// vetted where they are defined.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok || it.Methods == nil {
				return true
			}
			for _, field := range it.Methods.List {
				if len(field.Names) == 0 {
					continue
				}
				if !directive.HasMarker(field.Doc, directive.HotMarker) && !directive.HasMarker(field.Comment, directive.HotMarker) {
					continue
				}
				for _, mname := range field.Names {
					if m, ok := pass.TypesInfo.Defs[mname].(*types.Func); ok {
						pass.ExportObjectFact(m, &WorkSummary{Trusted: true})
					}
				}
			}
			return true
		})
	}

	// Phase 1b: collect declarations and pre-compute constant returns,
	// so a loop in one function can fold a bound through a call to a
	// function declared later in the same package.
	type decl struct {
		fd *ast.FuncDecl
		fn *types.Func
	}
	var decls []decl
	constRet := make(map[*types.Func]int64)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, decl{fd, fn})
			if v, ok := constReturn(pass, fd); ok {
				constRet[fn] = v
			}
		}
	}

	// Phase 1c: summarize every function, export the facts, collect
	// the hot-path roots declared in this package.
	var roots []*types.Func
	for _, d := range decls {
		dirs, _ := directive.ParseFuncDecl(d.fd.Doc) // problems are hotpathcheck's to report
		sum := &WorkSummary{Cold: dirs.Cold}
		if v, ok := constRet[d.fn]; ok {
			sum.ConstBound, sum.BoundVal = true, v
		}
		if !dirs.Cold && d.fd.Body != nil {
			scanBody(pass, idx, bidx, constRet, d.fd, sum)
		}
		pass.ExportObjectFact(d.fn, sum)
		if dirs.Hot {
			roots = append(roots, d.fn)
		}
	}

	// Phase 2: depth-first traversal from each root over the fact
	// graph. The DFS stack doubles as the recursion detector: a call
	// edge back into the stack is a cycle no constant can bound. Each
	// finding is reported once, with the chain of the first root that
	// reached it.
	qual := types.RelativeTo(pass.Pkg)
	reported := make(map[token.Pos]bool)
	for _, r := range roots {
		parent := make(map[*types.Func]*types.Func)
		done := make(map[*types.Func]bool)
		onstack := make(map[*types.Func]bool)
		var dfs func(fn *types.Func)
		dfs = func(fn *types.Func) {
			onstack[fn] = true
			defer func() { onstack[fn] = false; done[fn] = true }()
			var sum WorkSummary
			if !pass.ImportObjectFact(fn, &sum) {
				return // not module code; hotpathcheck governs the boundary
			}
			if sum.Cold || sum.Trusted {
				return
			}
			for _, lp := range sum.Loops {
				if reported[lp.Pos] {
					continue
				}
				reported[lp.Pos] = true
				pass.Report(analysis.Diagnostic{
					Pos:     lp.Pos,
					Message: lp.Msg + " [unbounded]" + chainSuffix(r, fn, parent, qual),
				})
			}
			for _, e := range sum.Calls {
				if onstack[e.Fn] {
					if !reported[e.Pos] {
						reported[e.Pos] = true
						pass.Report(analysis.Diagnostic{
							Pos:     e.Pos,
							Message: "recursive call to " + callutil.FuncName(e.Fn, qual) + " makes per-packet work unprovable [unbounded]" + chainSuffix(r, fn, parent, qual),
						})
					}
					continue
				}
				if done[e.Fn] {
					continue
				}
				parent[e.Fn] = fn
				dfs(e.Fn)
			}
		}
		dfs(r)
	}

	// Phase 3: annotations no loop claimed vouch for nothing.
	for _, b := range bidx.Unclaimed() {
		if idx.Suppresses(pass.Fset.Position(b.Pos), name) {
			continue
		}
		if b.Malformed != "" {
			pass.Reportf(b.Pos, "malformed //insane:bounded annotation: %s", b.Malformed)
		} else {
			pass.Reportf(b.Pos, "//insane:bounded annotation is not attached to a for or range statement")
		}
	}
	return nil, nil
}

// constReturn recognizes a function whose body is exactly `return C`
// for a constant integer C.
func constReturn(pass *analysis.Pass, fd *ast.FuncDecl) (int64, bool) {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return 0, false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return 0, false
	}
	return intConst(pass.TypesInfo, ret.Results[0])
}

// chainSuffix renders the call chain from root to the function holding
// the finding, for the diagnostic message.
func chainSuffix(rootFn, fn *types.Func, parent map[*types.Func]*types.Func, qual types.Qualifier) string {
	if fn == rootFn {
		return " in hot-path root " + callutil.FuncName(rootFn, qual)
	}
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, callutil.FuncName(f, qual))
		if f == rootFn {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return fmt.Sprintf(" reachable from hot-path root %s: %s", callutil.FuncName(rootFn, qual), strings.Join(chain, " -> "))
}
