package boundedcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// scanner walks one function body, proving each loop bounded or
// recording it, and collecting the outgoing module-internal call edges.
type scanner struct {
	pass     *analysis.Pass
	idx      *directive.Index
	bidx     *directive.BoundedIndex
	constRet map[*types.Func]int64
	sum      *WorkSummary
	seen     map[*types.Func]bool
	clamps   []clamp
}

// clamp records one fence `if x > C { x = C }` / `if len(s) > C
// { s = s[:C] }`: after pos, obj is capped by a constant.
type clamp struct {
	obj types.Object
	pos token.Pos
}

func scanBody(pass *analysis.Pass, idx *directive.Index, bidx *directive.BoundedIndex, constRet map[*types.Func]int64, fd *ast.FuncDecl, sum *WorkSummary) {
	s := &scanner{
		pass:     pass,
		idx:      idx,
		bidx:     bidx,
		constRet: constRet,
		sum:      sum,
		seen:     make(map[*types.Func]bool),
	}
	s.collectClamps(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // dynamic; hotpathcheck flags calls to it
		case *ast.ForStmt:
			s.checkLoop(n, s.proveFor(n))
		case *ast.RangeStmt:
			s.checkLoop(n, s.proveRange(n))
		case *ast.CallExpr:
			s.call(n)
		}
		return true
	})
}

// checkLoop reconciles the proof result (detail == "" means proven)
// with any //insane:bounded annotation on the loop line.
func (s *scanner) checkLoop(loop ast.Stmt, detail string) {
	pos := s.pass.Fset.Position(loop.Pos())
	b, annotated := s.bidx.At(pos)
	switch {
	case annotated && b.Malformed != "":
		s.flag(b.Pos, "malformed //insane:bounded annotation: "+b.Malformed)
		if detail != "" {
			s.loop(loop.Pos(), detail)
		}
	case annotated && detail == "":
		s.flag(b.Pos, "//insane:bounded annotation is redundant: the loop is provably bounded")
	case annotated:
		// Verified waiver: the reason documents the external invariant.
	case detail != "":
		s.loop(loop.Pos(), detail)
	}
}

// loop records one unproven loop, honoring scan-time suppression (the
// diagnostic may be reported from another package's pass, where this
// file's //lint:ignore directives are not visible).
func (s *scanner) loop(pos token.Pos, detail string) {
	if s.idx.Suppresses(s.pass.Fset.Position(pos), name) {
		return
	}
	s.sum.Loops = append(s.sum.Loops, Loop{Pos: pos, Msg: detail})
}

// flag reports a package-local annotation problem immediately.
func (s *scanner) flag(pos token.Pos, msg string) {
	if s.idx.Suppresses(s.pass.Fset.Position(pos), name) {
		return
	}
	s.pass.Reportf(pos, "%s", msg)
}

// call records a module-internal call edge for the traversal.
func (s *scanner) call(call *ast.CallExpr) {
	fn := callutil.StaticCallee(s.pass.TypesInfo, call)
	if fn == nil {
		return // dynamic; hotpathcheck flags it on hot paths
	}
	origin := fn.Origin()
	if origin.Pkg() == nil {
		return
	}
	if origin.Pkg() == s.pass.Pkg || s.hasSummary(origin) {
		if !s.seen[origin] {
			s.seen[origin] = true
			s.sum.Calls = append(s.sum.Calls, CallEdge{Fn: origin, Pos: call.Pos()})
		}
	}
}

// hasSummary reports whether a WorkSummary fact was exported for fn.
func (s *scanner) hasSummary(fn *types.Func) bool {
	var sum WorkSummary
	return s.pass.ImportObjectFact(fn, &sum)
}

// proveFor proves a for statement bounded, returning "" on success or
// the reason it could not.
func (s *scanner) proveFor(fs *ast.ForStmt) string {
	if fs.Cond == nil {
		return "for loop is not provably bounded: it has no termination condition"
	}
	if tv, ok := s.pass.TypesInfo.Types[fs.Cond]; ok && tv.Value != nil && constant.BoolVal(tv.Value) {
		return "for loop is not provably bounded: its condition is constant-true"
	}
	for _, c := range conjuncts(fs.Cond) {
		if s.boundingConjunct(c, fs) {
			return ""
		}
	}
	return "for loop is not provably bounded: no conjunct of its condition caps a constant-stepped counter at a provable constant"
}

// conjuncts splits a condition on &&: one provably-capping conjunct
// bounds the whole loop.
func conjuncts(e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.LAND {
		return append(conjuncts(be.X), conjuncts(be.Y)...)
	}
	return []ast.Expr{e}
}

// boundingConjunct reports whether one conjunct is a comparison that
// caps a constant-initialized, constant-stepped counter of this loop at
// a provable constant (or fence-clamped) bound.
func (s *scanner) boundingConjunct(c ast.Expr, fs *ast.ForStmt) bool {
	be, ok := ast.Unparen(c).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LSS, token.LEQ: // i < bound (counting up), or bound < i (counting down)
		return s.counterBound(be.X, be.Y, true, fs) || s.counterBound(be.Y, be.X, false, fs)
	case token.GTR, token.GEQ: // i > bound (counting down), or bound > i (counting up)
		return s.counterBound(be.X, be.Y, false, fs) || s.counterBound(be.Y, be.X, true, fs)
	}
	return false
}

// counterBound proves one orientation of a comparison conjunct: iter
// must be this loop's counter — constant start in Init, constant step
// in Post, stepping toward the bound (up when the comparison caps from
// above) — and bound must fold to a constant or be fence-clamped.
func (s *scanner) counterBound(iter, bound ast.Expr, up bool, fs *ast.ForStmt) bool {
	id, ok := ast.Unparen(iter).(*ast.Ident)
	if !ok {
		return false
	}
	obj := s.identObj(id)
	if obj == nil {
		return false
	}
	if !s.constInit(fs.Init, obj) {
		return false
	}
	dir, ok := s.postStep(fs.Post, obj)
	if !ok || up != (dir > 0) {
		return false
	}
	if _, ok := s.constFold(bound); ok {
		return true
	}
	if bid, ok := ast.Unparen(bound).(*ast.Ident); ok {
		if bobj := s.identObj(bid); bobj != nil && s.clampedBefore(bobj, fs.Pos()) {
			return true
		}
	}
	return false
}

// proveRange proves a range statement bounded, returning "" on success
// or the reason it could not.
func (s *scanner) proveRange(rs *ast.RangeStmt) string {
	const pre = "range loop is not provably bounded: "
	info := s.pass.TypesInfo
	if tv, ok := info.Types[rs.X]; ok && tv.Value != nil {
		return "" // range over a constant integer
	}
	t := info.TypeOf(rs.X)
	if t == nil {
		return pre + "the range operand has no type"
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return ""
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return ""
		}
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return pre + "the integer bound is not a provable constant"
		}
		if u.Info()&types.IsString != 0 {
			return pre + "the string length is data-dependent"
		}
	case *types.Slice:
		if id, ok := ast.Unparen(rs.X).(*ast.Ident); ok {
			if obj := s.identObj(id); obj != nil && s.clampedBefore(obj, rs.Pos()) {
				return ""
			}
		}
		return pre + "the slice length is not fence-checked against a constant cap"
	case *types.Map:
		return pre + "the map size is data-dependent"
	case *types.Chan:
		return pre + "the channel receive count is data-dependent"
	case *types.Signature:
		return pre + "the iterator's yield count is data-dependent"
	}
	return pre + "the range operand cannot be proven bounded"
}

// identObj resolves an identifier to its object, whether the site is a
// use or a definition.
func (s *scanner) identObj(id *ast.Ident) types.Object {
	if obj := s.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return s.pass.TypesInfo.Defs[id]
}

// constInit reports whether the loop's Init assigns obj a provable
// constant.
func (s *scanner) constInit(init ast.Stmt, obj types.Object) bool {
	as, ok := init.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || s.identObj(id) != obj {
			continue
		}
		_, ok = s.constFold(as.Rhs[i])
		return ok
	}
	return false
}

// postStep returns the direction of the loop's Post statement on obj:
// +1 for a constant positive increment, -1 for a decrement.
func (s *scanner) postStep(post ast.Stmt, obj types.Object) (int, bool) {
	switch post := post.(type) {
	case *ast.IncDecStmt:
		id, ok := ast.Unparen(post.X).(*ast.Ident)
		if !ok || s.identObj(id) != obj {
			return 0, false
		}
		if post.Tok == token.INC {
			return 1, true
		}
		return -1, true
	case *ast.AssignStmt:
		if len(post.Lhs) != 1 || len(post.Rhs) != 1 {
			return 0, false
		}
		id, ok := ast.Unparen(post.Lhs[0]).(*ast.Ident)
		if !ok || s.identObj(id) != obj {
			return 0, false
		}
		step, ok := s.constFold(post.Rhs[0])
		if !ok || step <= 0 {
			return 0, false
		}
		switch post.Tok {
		case token.ADD_ASSIGN:
			return 1, true
		case token.SUB_ASSIGN:
			return -1, true
		}
	}
	return 0, false
}

// constFold resolves an expression to a constant integer: a
// type-checker constant (literals, named constants, len of an array),
// or a call to a module function proven to return a single constant —
// locally, or through the WorkSummary fact its package exported.
func (s *scanner) constFold(e ast.Expr) (int64, bool) {
	if v, ok := intConst(s.pass.TypesInfo, e); ok {
		return v, true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	fn := callutil.StaticCallee(s.pass.TypesInfo, call)
	if fn == nil {
		return 0, false
	}
	origin := fn.Origin()
	if v, ok := s.constRet[origin]; ok {
		return v, true
	}
	var sum WorkSummary
	if s.pass.ImportObjectFact(origin, &sum) && sum.ConstBound {
		return sum.BoundVal, true
	}
	return 0, false
}

// intConst extracts a type-checker constant integer.
func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// clampedBefore reports whether obj was fence-clamped at a position
// before pos in this function.
func (s *scanner) clampedBefore(obj types.Object, pos token.Pos) bool {
	for _, c := range s.clamps {
		if c.obj == obj && c.pos < pos {
			return true
		}
	}
	return false
}

// collectClamps records the fence statements of the body:
//
//	if x > C  { x = C' }     — x capped
//	if len(s) > C { s = s[:C'] } — s capped
//
// with C and C' provable constants. The check is positional, not
// flow-sensitive: a reassignment between fence and loop is not seen.
// That unsound edge is accepted — the fence idiom puts the clamp
// directly before the loop, and the alternative (full SSA) is out of
// proportion for a lint.
func (s *scanner) collectClamps(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || (be.Op != token.GTR && be.Op != token.GEQ) {
			return true
		}
		if _, ok := s.constFold(be.Y); !ok {
			return true
		}
		switch x := ast.Unparen(be.X).(type) {
		case *ast.Ident: // if x > C { x = C' }
			obj := s.identObj(x)
			if obj != nil && s.blockCaps(ifs.Body, obj, false) {
				s.clamps = append(s.clamps, clamp{obj: obj, pos: ifs.End()})
			}
		case *ast.CallExpr: // if len(s) > C { s = s[:C'] }
			if obj := s.lenArg(x); obj != nil && s.blockCaps(ifs.Body, obj, true) {
				s.clamps = append(s.clamps, clamp{obj: obj, pos: ifs.End()})
			}
		}
		return true
	})
}

// lenArg resolves the object of a len(x) call on an identifier.
func (s *scanner) lenArg(call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if b, ok := s.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return s.identObj(arg)
}

// blockCaps reports whether the fence body assigns obj a constant
// (reslice == false: `x = C`) or reslices it to a constant cap
// (reslice == true: `s = s[:C]`).
func (s *scanner) blockCaps(body *ast.BlockStmt, obj types.Object, reslice bool) bool {
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || s.identObj(id) != obj {
			continue
		}
		if !reslice {
			if _, ok := s.constFold(as.Rhs[0]); ok {
				return true
			}
			continue
		}
		se, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
		if !ok || se.High == nil || se.Slice3 {
			continue
		}
		base, ok := ast.Unparen(se.X).(*ast.Ident)
		if !ok || s.identObj(base) != obj {
			continue
		}
		if _, ok := s.constFold(se.High); ok {
			return true
		}
	}
	return false
}
