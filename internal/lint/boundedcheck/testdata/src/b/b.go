// Package b exercises the cross-package fact flow in both directions:
// a loop here is proven through dep.Burst's ConstBound fact, and dep's
// own unproven loop is reported with the chain from the root here.
package b

import "b/dep"

// Root's loop folds dep.Burst() to 32 via the WorkSummary fact exported
// by dep's pass — the bound lives in a dependency. The call into
// dep.Flush drags dep's unproven loop into the report.
//
//insane:hotpath
func Root(pkts []int, m map[int]int) int {
	s := 0
	for i := 0; i < dep.Burst() && i < len(pkts); i++ {
		s += pkts[i]
	}
	dep.Flush(m)
	return s
}
