// Package dep provides the constant batch cap and one unproven loop;
// both cross the package boundary as WorkSummary facts.
package dep

// Burst is the batch cap, published as a constant-return function so
// dependents can use it as a provable loop bound.
func Burst() int { return 32 }

// Flush has a data-dependent loop; it is only reported once a hot-path
// root in a dependent package reaches it.
func Flush(m map[int]int) {
	for range m { // want `range loop is not provably bounded: the map size is data-dependent \[unbounded\] reachable from hot-path root Root: Root -> b/dep\.Flush`
	}
}
