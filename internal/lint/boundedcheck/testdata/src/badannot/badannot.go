// Package badannot carries the annotation-position diagnostics: the
// messages land on the //insane:bounded comments themselves, where a
// trailing `// want` comment would be swallowed into the annotation
// text, so this fixture is driven by hand rather than by analysistest.
package badannot

const cap4 = 4

// redundant annotates a loop the analyzer proves anyway.
//
//insane:hotpath
func redundant() {
	//insane:bounded by=not actually needed
	for i := 0; i < cap4; i++ {
		_ = i
	}
}

//insane:bounded by=this floats above a declaration, not a loop
var floating = 1

//insane:hotpath
func missingBy(pkts []int) {
	//insane:bounded
	for range pkts {
	}
}

//insane:hotpath
func wrongOption(pkts []int) {
	//insane:bounded cap=8
	for range pkts {
	}
}
