// Package a exercises every boundedcheck loop diagnostic class inside
// one package: unconditioned and constant-true for loops, data-dependent
// counters and ranges, recursion, and the full set of bounded-proof
// recognizers (constant counters, array ranges, fence clamps, constant
// calls) that must stay silent.
package a

const burst = 8

// ---- unproven loops --------------------------------------------------

//insane:hotpath
func spin() {
	for { // want `for loop is not provably bounded: it has no termination condition \[unbounded\] in hot-path root spin`
	}
}

const always = true

//insane:hotpath
func spinTrue() {
	for always { // want `for loop is not provably bounded: its condition is constant-true \[unbounded\]`
	}
}

//insane:hotpath
func dataCounter(n int) {
	for i := 0; i < n; i++ { // want `for loop is not provably bounded: no conjunct of its condition caps a constant-stepped counter at a provable constant \[unbounded\]`
		_ = i
	}
}

//insane:hotpath
func rangeSlice(pkts []int) int {
	s := 0
	for _, v := range pkts { // want `range loop is not provably bounded: the slice length is not fence-checked against a constant cap \[unbounded\]`
		s += v
	}
	return s
}

//insane:hotpath
func rangeMap(m map[int]int) {
	for range m { // want `range loop is not provably bounded: the map size is data-dependent \[unbounded\]`
	}
}

//insane:hotpath
func rangeChan(c chan int) {
	for range c { // want `range loop is not provably bounded: the channel receive count is data-dependent \[unbounded\]`
	}
}

//insane:hotpath
func rangeString(s string) {
	for range s { // want `range loop is not provably bounded: the string length is data-dependent \[unbounded\]`
	}
}

// ---- unproven loop in a callee: chain in the diagnostic --------------

//insane:hotpath
func chained(m map[int]int) {
	helper(m)
}

func helper(m map[int]int) {
	for range m { // want `range loop is not provably bounded: the map size is data-dependent \[unbounded\] reachable from hot-path root chained: chained -> helper`
	}
}

// ---- recursion -------------------------------------------------------

//insane:hotpath
func recurseRoot(n int) int {
	return fib(n)
}

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2) // want `recursive call to fib makes per-packet work unprovable \[unbounded\] reachable from hot-path root recurseRoot: recurseRoot -> fib`
}

// ---- proven loops: all of these must stay silent ---------------------

//insane:hotpath
func counterUp() int {
	s := 0
	for i := 0; i < burst; i++ {
		s += i
	}
	return s
}

//insane:hotpath
func counterDown() int {
	s := 0
	for i := burst - 1; i >= 0; i-- {
		s += i
	}
	return s
}

//insane:hotpath
func counterStep() int {
	s := 0
	for i := 0; i < burst; i += 2 {
		s += i
	}
	return s
}

// counterConjunct is bounded by its first conjunct even though the
// second is data-dependent.
//
//insane:hotpath
func counterConjunct(pkts []int) int {
	s := 0
	for i := 0; i < burst && i < len(pkts); i++ {
		s += pkts[i]
	}
	return s
}

var table [16]int

//insane:hotpath
func rangeArray() int {
	s := 0
	for _, v := range table {
		s += v
	}
	return s
}

//insane:hotpath
func rangePtrArray(t *[4]int) int {
	s := 0
	for _, v := range t {
		s += v
	}
	return s
}

//insane:hotpath
func rangeConstInt() int {
	s := 0
	for i := range burst {
		s += i
	}
	return s
}

// rangeClamped fences the slice against a constant cap before ranging.
//
//insane:hotpath
func rangeClamped(pkts []int) int {
	if len(pkts) > burst {
		pkts = pkts[:burst]
	}
	s := 0
	for _, v := range pkts {
		s += v
	}
	return s
}

// clampedCounter fences the bound variable itself.
//
//insane:hotpath
func clampedCounter(n int) int {
	s := 0
	if n > burst {
		n = burst
	}
	for i := 0; i < n; i++ {
		s++
	}
	return s
}

// batch is a constant-return function: calls to it fold when proving
// bounds in this package.
func batch() int { return 16 }

//insane:hotpath
func constCall() int {
	s := 0
	for i := 0; i < batch(); i++ {
		s++
	}
	return s
}

// ---- waivers and barriers --------------------------------------------

// waived carries a verified //insane:bounded annotation: the loop is
// unproven but vouched for, so it must stay silent.
//
//insane:hotpath
func waived(pkts []int) int {
	s := 0
	//insane:bounded by=the poller slices pkts to one burst before calling
	for _, v := range pkts {
		s += v
	}
	return s
}

// suppressed is waived finding-by-finding instead.
//
//insane:hotpath
func suppressed(m map[int]int) {
	//lint:ignore insanevet/boundedcheck fixture: demonstrates per-line waiver
	for range m {
	}
}

//insane:hotpath
func coldCaller() {
	slowRebuild()
}

// slowRebuild is a traversal barrier: its loop is never reported.
//
//insane:coldpath control-plane rebuild, off the packet path
func slowRebuild() {
	m := map[int]int{}
	for range m {
	}
}

// offPath is reachable from no root: its loop is summarized into the
// fact but never reported.
func offPath(m map[int]int) {
	for range m {
	}
}

// dynamic calls through func values are hotpathcheck's concern; the
// literal's body is out of scope here.
//
//insane:hotpath
func dynamic(fns []func()) {
	f := func(m map[int]int) {
		for range m {
		}
	}
	_ = f
}
