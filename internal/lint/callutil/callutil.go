// Package callutil holds the call-graph helpers shared by the
// whole-program analyzers (hotpathcheck, goroutinecheck, boundedcheck):
// resolving the static target of a call expression and rendering
// function names for diagnostics. Each analyzer used to carry its own
// copy; the archcheck layering fence forbids one rule importing a
// sibling rule, so the shared code lives here, in the lint base layer.
package callutil

import (
	"go/ast"
	"go/types"
)

// StaticCallee resolves the *types.Func a call statically targets, or
// nil for calls through func values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil // field of func type: dynamic
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// FuncName renders a function or method compactly: pkg.Fn, (T).M or
// (*pkg.T).M, with package qualifiers relative to the reporting pass.
func FuncName(fn *types.Func, qual types.Qualifier) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		if q := qual(fn.Pkg()); q != "" {
			return q + "." + fn.Name()
		}
	}
	return fn.Name()
}
