// Package callutil holds the call-graph helpers shared by the
// whole-program analyzers (hotpathcheck, goroutinecheck, boundedcheck):
// resolving the static target of a call expression and rendering
// function names for diagnostics. Each analyzer used to carry its own
// copy; the archcheck layering fence forbids one rule importing a
// sibling rule, so the shared code lives here, in the lint base layer.
package callutil

import (
	"go/ast"
	"go/types"
)

// StaticCallee resolves the *types.Func a call statically targets, or
// nil for calls through func values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil // field of func type: dynamic
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// Canon renders an identifier or dotted selector chain as a stable
// tracking key ("b", "b.inner", "env.pkt"), unwrapping parens, unary
// &/* and slice/index expressions down to their base; other shapes are
// untrackable and yield "".
func Canon(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return Canon(e.X)
	case *ast.UnaryExpr:
		return Canon(e.X)
	case *ast.StarExpr:
		return Canon(e.X)
	case *ast.SelectorExpr:
		base := Canon(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// NoReturn reports whether the call never returns to its caller:
// the panic builtin, os.Exit, runtime.Goexit, the log.Fatal family and
// testing's Fatal/Fatalf/FailNow/Skip helpers. Path-sensitive walkers
// treat such calls as path terminators.
func NoReturn(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := StaticCallee(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Exit":
		return fn.Pkg() != nil && fn.Pkg().Path() == "os"
	case "Goexit":
		return fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
	case "Fatal", "Fatalf", "Fatalln":
		return fn.Pkg() != nil && fn.Pkg().Path() == "log" || recvIsTesting(fn)
	case "FailNow", "SkipNow":
		return recvIsTesting(fn)
	}
	return false
}

// recvIsTesting reports whether fn is a method on a testing.T/B/F.
func recvIsTesting(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "testing"
}

// FuncName renders a function or method compactly: pkg.Fn, (T).M or
// (*pkg.T).M, with package qualifiers relative to the reporting pass.
func FuncName(fn *types.Func, qual types.Qualifier) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		if q := qual(fn.Pkg()); q != "" {
			return q + "." + fn.Name()
		}
	}
	return fn.Name()
}
