// Package a seeds bufownership violations against a stand-in of the
// INSANE client API: the analyzer recognizes consuming calls through
// the //insane:release and //insane:transfer resource registry, so the
// fixture annotates its stand-in methods the same way the real module
// does and needs nothing beyond this package.
package a

import "errors"

// Buffer mimics insane.Buffer: a zero-copy send buffer.
type Buffer struct {
	Payload []byte
}

// Message mimics insane.Message: a zero-copy delivery.
type Message struct {
	Payload []byte
}

// ErrBackpressure mimics the sanctioned retry error.
var ErrBackpressure = errors.New("backpressure")

// Source mimics insane.Source.
type Source struct{}

//insane:acquire resource=slot on=nilerr
func (s *Source) GetBuffer(n int) (*Buffer, error) {
	return &Buffer{Payload: make([]byte, n)}, nil
}

//insane:transfer resource=slot on=nilerr
func (s *Source) Emit(b *Buffer, n int) (uint32, error) { _ = b; return 0, nil }

//insane:release resource=slot
func (s *Source) Abort(b *Buffer) { _ = b }

// Sink mimics insane.Sink.
type Sink struct{}

//insane:acquire resource=slot on=nilerr
func (k *Sink) Consume() (*Message, error) { return &Message{}, nil }

//insane:release resource=slot
func (k *Sink) Release(m *Message) { _ = m }

// Seeded violation 1: write into the payload after Emit.
func useAfterEmit(s *Source) {
	b, _ := s.GetBuffer(8)
	s.Emit(b, 8)
	b.Payload[0] = 1 // want `b used after Emit`
}

// Seeded violation 2: read through the variable after Emit.
func readAfterEmit(s *Source) byte {
	b, _ := s.GetBuffer(8)
	_, _ = s.Emit(b, 8)
	return b.Payload[0] // want `b used after Emit`
}

// Seeded violation 3: emitting a buffer that was already aborted.
func emitAfterAbort(s *Source) {
	b, _ := s.GetBuffer(8)
	s.Abort(b)
	s.Emit(b, 8) // want `b used after Abort`
}

// Seeded violation 4: reading a released message.
func useAfterRelease(k *Sink) byte {
	m, _ := k.Consume()
	k.Release(m)
	return m.Payload[0] // want `m used after Release`
}

// Seeded violation 5: double release corrupts slot reference counts.
func doubleRelease(k *Sink) {
	m, _ := k.Consume()
	k.Release(m)
	k.Release(m) // want `m used after Release`
}

// The backpressure protocol: on error the caller keeps ownership, so
// uses guarded by the emit error are legal.
func retryOnBackpressure(s *Source) {
	b, _ := s.GetBuffer(8)
	_, err := s.Emit(b, 8)
	if errors.Is(err, ErrBackpressure) {
		s.Emit(b, 8) // ok: guarded by the killing call's error
	}
}

// Retry loops re-emit the same buffer; the analysis is forward-only
// within one iteration, mirroring how ownership really flows.
func retryLoop(s *Source) error {
	b, _ := s.GetBuffer(8)
	for {
		_, err := s.Emit(b, 8)
		if !errors.Is(err, ErrBackpressure) {
			return err
		}
	}
}

// Reassignment re-establishes ownership.
func reuseVariable(s *Source) {
	b, _ := s.GetBuffer(8)
	s.Emit(b, 8)
	b, _ = s.GetBuffer(16)
	b.Payload[0] = 2 // ok: fresh buffer under the same name
	s.Emit(b, 16)
}

// wrapper mimics the client library's owner-field idiom.
type wrapper struct{ inner *Buffer }

// Clearing the owner field after a successful transfer is the idiom the
// insane package itself uses (b.inner = nil); assignment is not a use.
func clearField(s *Source, w *wrapper) {
	_, err := s.Emit(w.inner, 4)
	if err == nil {
		w.inner = nil // ok: reassignment
	}
}

// Transfers inside one branch do not poison the sibling or the code
// after the conditional.
func branchLocal(s *Source, cond bool) {
	b, _ := s.GetBuffer(8)
	if cond {
		s.Emit(b, 8)
	} else {
		s.Abort(b)
	}
}

// The suppression path: an explicit, reasoned directive waives the
// finding (no `want` here — an unsuppressed diagnostic would fail the
// test as unexpected).
func suppressed(s *Source) {
	b, _ := s.GetBuffer(8)
	s.Emit(b, 8)
	//lint:ignore insanevet/bufownership fixture proving the suppression path
	b.Payload[0] = 1
}

// Packet mimics datapath.Packet: the runtime-internal descriptor that
// rides through the schedulers and free lists.
type Packet struct {
	Len int
	Ctx any
}

// pktEnv mimics the core package's pooled packet envelope.
type pktEnv struct {
	pkt Packet
}

// cache mimes the mempool per-poller free list for packet envelopes.
type cache struct{}

//insane:acquire resource=pooled-obj
func (c *cache) Get() *pktEnv { return &pktEnv{} }

//insane:release resource=pooled-obj
func (c *cache) Put(e *pktEnv) { _ = e }

//insane:release resource=pooled-obj
func (c *cache) Recycle(p *Packet) { _ = p }

// Seeded violation 6: touching a pooled envelope after it returned to
// the free list — the next Get may already have handed it out.
func useAfterPut(c *cache) int {
	e := c.Get()
	c.Put(e)
	return e.pkt.Len // want `e used after Put`
}

// Seeded violation 7: double recycle hands the same envelope to two
// owners.
func doublePut(c *cache) {
	e := c.Get()
	c.Put(e)
	c.Put(e) // want `e used after Put`
}

// Seeded violation 8: the Recycle spelling kills a *Packet the same way.
func useAfterRecycle(c *cache, p *Packet) {
	c.Recycle(p)
	p.Ctx = nil // want `p used after Recycle`
}

// Getting a fresh envelope under the same name re-establishes ownership.
func reuseEnvVariable(c *cache) {
	e := c.Get()
	c.Put(e)
	e = c.Get()
	e.pkt.Len = 1 // ok: fresh envelope under the same name
	c.Put(e)
}

// A Put on a pool with no //insane: annotation is outside the resource
// registry and must not start tracking, whatever it is named.
type otherPool struct{}

func (p *otherPool) Put(v any) { _ = v }

func unrelatedPut(p *otherPool, b *Buffer) {
	p.Put(b)
	_ = b.Payload // ok: Put of a non-packet type is not tracked
}
