package bufownership_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/bufownership"
)

func TestBufOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", bufownership.Analyzer, "a")
}
