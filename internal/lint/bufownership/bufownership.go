// Package bufownership implements the insanevet rule enforcing the
// zero-copy buffer ownership protocol of the INSANE client API (§5.1).
//
// A *Buffer handed to Emit (or Abort) belongs to the runtime: the slot
// it wraps is recycled concurrently by the polling threads, so any
// later read or write through the same variable is a data race on
// shared memory that no test reliably catches. The same applies to a
// *Message/*Delivery after Release. This analyzer flags, within one
// function body:
//
//   - any use of a buffer variable after it was passed to Emit/Abort;
//   - any use of a message variable after it was passed to Release,
//     including a second Release (double release corrupts the slot
//     reference counts);
//   - any use of a pooled object (a packet envelope, a cached timer)
//     after it was returned to a free list — the free lists recycle
//     objects concurrently, so a stale reference races with the
//     object's next owner exactly like a released slot.
//
// The set of consuming calls is not a hardcoded name list: it is the
// //insane:release and //insane:transfer resource registry (the same
// pairfacts facts paircheck proves balance over, DESIGN.md §13). Any
// function annotated as releasing or transferring a resource kills its
// pointer-to-named-type arguments; unannotated functions — even ones
// named Put or Release — kill nothing.
//
// The one sanctioned exception is the backpressure protocol: Emit
// returns ErrBackpressure *without* taking ownership, so uses guarded
// by a condition on the error returned by the killing call (for
// example `if errors.Is(err, insane.ErrBackpressure)`) are not flagged,
// and re-emitting the same buffer inside a retry loop is fine because
// the analysis is forward-only within each loop iteration.
//
// Reassigning the variable (`b, err = src.GetBuffer(n)` or
// `b.inner = nil`) re-establishes ownership and stops the tracking.
package bufownership

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/pairfacts"
)

// Analyzer is the bufownership rule. It declares the pairfacts Effects
// fact so the driver runs it whole-program: a consuming call is
// recognized across package boundaries wherever the callee carries an
// //insane:release or //insane:transfer annotation.
var Analyzer = &analysis.Analyzer{
	Name:      "bufownership",
	Doc:       "flag uses of zero-copy buffers after ownership passed to the runtime (any //insane:release or //insane:transfer callee)",
	Run:       run,
	FactTypes: []analysis.Fact{(*pairfacts.Effects)(nil)},
}

// kill records the statement that transferred ownership of a value.
type kill struct {
	verb   string       // "Emit", "Abort" or "Release"
	pos    token.Pos    // position of the killing call
	errVar types.Object // error assigned from the killing call, if any
}

// state maps canonical expressions ("b", "b.inner") to their kill.
type state map[string]kill

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Export this package's pair annotations as facts so downstream
	// packages see its consuming functions. Malformed directives are
	// dropped silently here — paircheck already diagnoses them, and a
	// second copy of each problem would be noise.
	pairfacts.Export(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanBlock(pass, fn.Body.List, make(state))
				}
			case *ast.FuncLit:
				scanBlock(pass, fn.Body.List, make(state))
			}
			return true
		})
	}
	return nil, nil
}

// scanBlock walks a statement list in order, tracking ownership
// transfers. Branches are analyzed with a copy of the state and their
// kills do not escape (conservative: no false positives after
// `if cond { Emit(b) } else { Abort(b) }`), while kills in straight-line
// code propagate to every following statement of the block.
func scanBlock(pass *analysis.Pass, stmts []ast.Stmt, st state) {
	for _, s := range stmts {
		scanStmt(pass, s, st)
	}
}

func scanStmt(pass *analysis.Pass, s ast.Stmt, st state) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkUses(pass, rhs, st)
		}
		kills := applyKills(pass, s.Rhs, st)
		// Bind the error result so guarded uses can be excused.
		if len(kills) > 0 && len(s.Rhs) == 1 {
			if errObj := errorLHS(pass, s.Lhs); errObj != nil {
				for _, k := range kills {
					kl := st[k]
					kl.errVar = errObj
					st[k] = kl
				}
			}
		}
		for _, lhs := range s.Lhs {
			if key := canon(lhs); key != "" {
				if _, dead := st[key]; dead {
					delete(st, key) // reassignment re-establishes ownership
					continue
				}
			}
			checkUses(pass, lhs, st) // e.g. b.Payload[0] = 1 after Emit
		}
	case *ast.ExprStmt:
		checkUses(pass, s.X, st)
		applyKills(pass, []ast.Expr{s.X}, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						checkUses(pass, v, st)
					}
					applyKills(pass, vs.Values, st)
					for _, name := range vs.Names {
						delete(st, name.Name)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkUses(pass, r, st)
		}
	case *ast.DeferStmt:
		checkUses(pass, s.Call, st)
	case *ast.GoStmt:
		checkUses(pass, s.Call, st)
	case *ast.SendStmt:
		checkUses(pass, s.Chan, st)
		checkUses(pass, s.Value, st)
	case *ast.IncDecStmt:
		checkUses(pass, s.X, st)
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		checkUses(pass, s.Cond, st)
		// The error-guard exception: inside a branch conditioned on the
		// killing call's error, the caller still owns the buffer
		// (ErrBackpressure keeps ownership with the caller).
		branch := st.clone()
		for key, k := range st {
			if k.errVar != nil && mentions(pass, s.Cond, k.errVar) {
				delete(branch, key)
			}
		}
		scanBlock(pass, s.Body.List, branch)
		if s.Else != nil {
			scanStmt(pass, s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		if s.Cond != nil {
			checkUses(pass, s.Cond, st)
		}
		body := st.clone()
		for key, k := range st {
			if s.Cond != nil && k.errVar != nil && mentions(pass, s.Cond, k.errVar) {
				delete(body, key)
			}
		}
		scanBlock(pass, s.Body.List, body)
	case *ast.RangeStmt:
		checkUses(pass, s.X, st)
		scanBlock(pass, s.Body.List, st.clone())
	case *ast.BlockStmt:
		scanBlock(pass, s.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		if s.Tag != nil {
			checkUses(pass, s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := st.clone()
				for _, e := range cc.List {
					checkUses(pass, e, branch)
				}
				scanBlock(pass, cc.Body, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.clone()
				if cc.Comm != nil {
					scanStmt(pass, cc.Comm, branch)
				}
				scanBlock(pass, cc.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, st)
	}
}

// applyKills records ownership transfers performed by calls within the
// expressions and returns the keys killed.
func applyKills(pass *analysis.Pass, exprs []ast.Expr, st state) []string {
	var killed []string
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures run later; analyzed separately
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			verb, keys := killerCall(pass, call)
			for _, key := range keys {
				st[key] = kill{verb: verb, pos: call.Pos()}
				killed = append(killed, key)
			}
			return true
		})
	}
	return killed
}

// killerCall recognizes consuming calls — any statically resolved
// callee that carries an //insane:release or //insane:transfer
// annotation in the resource registry — and returns the callee's name
// plus the canonical keys of the arguments whose ownership the call
// takes. Only pointer-to-named-type arguments with a trackable key are
// killed: value arguments (a txToken, a SlotID) carry no aliasable
// reference, and composite expressions (&x, f(y)) have no stable key.
func killerCall(pass *analysis.Pass, call *ast.CallExpr) (verb string, keys []string) {
	fn := callutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || len(call.Args) == 0 {
		return "", nil
	}
	consuming := false
	for _, e := range pairfacts.Lookup(pass, fn) {
		if e.Kind == directive.PairRelease || e.Kind == directive.PairTransfer {
			consuming = true
			break
		}
	}
	if !consuming {
		return "", nil
	}
	for _, arg := range call.Args {
		if pointeeName(pass, arg) == "" {
			continue
		}
		if key := canon(arg); key != "" {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		return "", nil
	}
	return fn.Name(), keys
}

// pointeeName returns the name of the named type an expression points
// to, or "" when the expression is not a pointer to a named type.
func pointeeName(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// checkUses reports every appearance of a killed expression within e,
// skipping the interiors of closures.
func checkUses(pass *analysis.Pass, e ast.Expr, st state) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var key string
		switch n := n.(type) {
		case *ast.Ident:
			key = n.Name
		case *ast.SelectorExpr:
			key = canon(n)
		default:
			return true
		}
		k, dead := st[key]
		if !dead {
			return true
		}
		line := pass.Fset.Position(k.pos).Line
		pass.Reportf(n.Pos(), "%s used after %s (ownership passed to the runtime at line %d)", key, k.verb, line)
		// One report per killed key per statement is enough.
		delete(st, key)
		return true
	})
}

// errorLHS returns the object of an LHS identifier with type error.
func errorLHS(pass *analysis.Pass, lhs []ast.Expr) types.Object {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || obj.Type() == nil {
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return obj
		}
	}
	return nil
}

// mentions reports whether the expression references the object.
func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// canon renders an identifier or dotted selector chain as a stable
// key ("b", "b.inner", "st.schedMu"); other shapes are untrackable.
func canon(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return canon(e.X)
	case *ast.SelectorExpr:
		base := canon(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
