package hotpathcheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/hotpathcheck"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestHotPathCheck covers every diagnostic class in package a and the
// cross-package chain (root in b, violation in b/dep) via the fact
// closure.
func TestHotPathCheck(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathcheck.Analyzer, "a", "b")
}

// TestMalformedDirectives drives the analyzer by hand over the
// baddirective fixture: the diagnostics land on the directive comments
// themselves, where a trailing `// want` comment would be swallowed
// into the directive text, so analysistest cannot express them.
func TestMalformedDirectives(t *testing.T) {
	ldr := loader.NewAt(filepath.Join("testdata", "src"), "")
	pkg, err := ldr.LoadDir(filepath.Join("testdata", "src", "baddirective"), "baddirective")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	pass := &analysis.Pass{
		Analyzer:  hotpathcheck.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d.Message) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := hotpathcheck.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := []string{
		`unknown //insane:hotpath option "allow=spin"`,
		"//insane:coldpath directive missing a reason",
	}
	for _, want := range wants {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %q", want, got)
		}
	}
	if len(got) != len(wants) {
		t.Errorf("got %d diagnostics, want %d: %q", len(got), len(wants), got)
	}
}
