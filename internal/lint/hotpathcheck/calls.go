package hotpathcheck

import (
	"go/ast"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/callutil"
)

// visitCall classifies one call expression: conversion, builtin,
// module-internal edge, trusted boundary, allowlisted stdlib, or a
// flagged op.
func (s *scanner) visitCall(call *ast.CallExpr) {
	info := s.pass.TypesInfo

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case boxes(dst, src):
			s.flag(call.Pos(), SevAlloc, "conversion "+exprText(call)+" boxes into an interface")
		case isString(dst) && src != nil && isSliceType(src):
			s.flag(call.Pos(), SevAlloc, "conversion "+exprText(call)+" copies to a new string")
		case isSliceType(dst) && isString(src):
			s.flag(call.Pos(), SevAlloc, "conversion "+exprText(call)+" copies to a new slice")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !s.hasCap {
					s.flag(call.Pos(), SevAlloc, exprText(call)+" without capacity evidence can grow the backing array")
				}
			case "make":
				s.flag(call.Pos(), SevAlloc, exprText(call)+" allocates")
			case "new":
				s.flag(call.Pos(), SevAlloc, exprText(call)+" allocates")
			}
			return
		}
	}

	callee := callutil.StaticCallee(info, call)
	if callee == nil {
		s.flag(call.Pos(), SevUnknown, "dynamic call "+exprText(call)+" cannot be proven allocation-free")
		return
	}

	// Interface method calls resolve at runtime; only annotated
	// (trusted) methods and context.Context are accepted.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		var sum Summary
		if s.pass.ImportObjectFact(callee.Origin(), &sum) && sum.Trusted {
			s.boxedArgs(call)
			return
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "context" {
			s.boxedArgs(call)
			return
		}
		s.flag(call.Pos(), SevUnknown, "call through unannotated interface method "+callee.Name()+" cannot be proven allocation-free")
		return
	}

	origin := callee.Origin()
	pkg := origin.Pkg()
	if pkg == nil {
		return // universe-scoped (error.Error is handled above)
	}

	// Module-internal: record a call edge; the traversal follows it
	// through the callee's exported fact.
	if pkg == s.pass.Pkg || s.hasSummary(origin) {
		s.calls[origin] = true
		s.boxedArgs(call)
		return
	}

	// Standard library.
	full := origin.FullName()
	path := pkg.Path()
	switch {
	case path == "fmt" || path == "reflect":
		s.flag(call.Pos(), SevAlloc, "call to "+full+" allocates (fmt/reflection)")
	case blockFuncs[full]:
		s.flag(call.Pos(), SevBlock, "call to "+full+" blocks")
	case allocFuncs[full]:
		s.flag(call.Pos(), SevAlloc, "call to "+full+" allocates")
	case allowFuncs[full] || allowPkgs[path]:
		s.boxedArgs(call)
	default:
		s.flag(call.Pos(), SevUnknown, "call to "+full+" is outside the hot-path allowlist")
	}
}

// hasSummary reports whether a Summary fact was exported for fn (true
// for every function of an already-analyzed module package).
func (s *scanner) hasSummary(fn *types.Func) bool {
	var sum Summary
	return s.pass.ImportObjectFact(fn, &sum)
}

// boxedArgs flags arguments boxed into interface parameters of an
// otherwise-clean call.
func (s *scanner) boxedArgs(call *ast.CallExpr) {
	sig, ok := s.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			dst = sl.Elem()
		case i < params.Len():
			dst = params.At(i).Type()
		default:
			continue
		}
		if boxes(dst, s.pass.TypesInfo.TypeOf(arg)) {
			s.flag(arg.Pos(), SevAlloc, "argument "+exprText(arg)+" is boxed into interface parameter "+typeText(dst))
		}
	}
}

// isSliceType reports whether t's underlying type is a slice.
func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// The hot-path stdlib contract. Packages listed in allowPkgs are clean
// wholesale; individual functions are classified by their FullName.
// Overrides (blockFuncs/allocFuncs) are consulted before allowPkgs, so
// reflection-based entry points of otherwise-clean packages stay
// flagged. Anything else in the standard library is an unknown-call:
// hot code has no business there, and a too-eager allowlist would
// quietly erode the proof.
var allowPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"unsafe":      true,
	// ByteOrder put/get helpers compile to direct loads and stores;
	// binary.Read/Write/Size are reflection-based and overridden below.
	"encoding/binary": true,
}

var allowFuncs = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
	"(*sync.RWMutex).TryLock": true,
	"(*sync.Pool).Get":        true,
	"(*sync.Pool).Put":        true,
	"(*sync.WaitGroup).Add":   true,
	"(*sync.WaitGroup).Done":  true,
	"(*sync.Cond).Signal":     true,
	"(*sync.Cond).Broadcast":  true,

	"time.Now":                     true, // timebasecheck governs who may call it
	"time.Since":                   true,
	"time.Until":                   true,
	"(time.Time).Sub":              true,
	"(time.Time).Add":              true,
	"(time.Time).Before":           true,
	"(time.Time).After":            true,
	"(time.Time).Compare":          true,
	"(time.Time).Equal":            true,
	"(time.Time).IsZero":           true,
	"(time.Time).Unix":             true,
	"(time.Time).UnixNano":         true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Microseconds": true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Seconds":      true,
	"(*time.Timer).Stop":           true,
	"(*time.Timer).Reset":          true,

	"errors.Is": true,
}

var blockFuncs = map[string]bool{
	"(*sync.Mutex).Lock":     true,
	"(*sync.RWMutex).Lock":   true,
	"(*sync.RWMutex).RLock":  true,
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
	"(*sync.Once).Do":        true,
	"time.Sleep":             true,
	"runtime.Gosched":        true,
}

var allocFuncs = map[string]bool{
	"time.NewTimer":          true,
	"time.NewTicker":         true,
	"time.After":             true,
	"time.Tick":              true,
	"time.AfterFunc":         true,
	"errors.New":             true,
	"errors.As":              true,
	"encoding/binary.Read":   true,
	"encoding/binary.Write":  true,
	"encoding/binary.Size":   true,
	"(time.Duration).String": true,
	"(time.Time).String":     true,
}
