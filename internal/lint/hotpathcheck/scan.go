package hotpathcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// scanBody summarizes one function body: the flagged operations that
// survive suppression, and the outgoing module-internal calls.
func scanBody(pass *analysis.Pass, idx *directive.Index, fd *ast.FuncDecl) ([]Op, []*types.Func) {
	s := &scanner{
		pass:    pass,
		idx:     idx,
		skip:    make(map[ast.Node]bool),
		calls:   make(map[*types.Func]bool),
		results: resultTypes(pass, fd),
	}
	// Capacity evidence: an explicit cap() read anywhere in the
	// function is taken as proof the author reasoned about growth, so
	// append is accepted (the Cache.Put batch-drain idiom).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := s.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
					s.hasCap = true
				}
			}
		}
		return true
	})
	s.walk(fd.Body)
	var order []*types.Func
	for fn := range s.calls {
		order = append(order, fn)
	}
	// Deterministic call order (map iteration is random).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].Pos() < order[j-1].Pos(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return s.ops, order
}

// resultTypes lists the declared result types, for return boxing.
func resultTypes(pass *analysis.Pass, fd *ast.FuncDecl) []types.Type {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Type
	for i := 0; i < sig.Results().Len(); i++ {
		out = append(out, sig.Results().At(i).Type())
	}
	return out
}

// scanner walks one function body collecting ops and call edges.
type scanner struct {
	pass    *analysis.Pass
	idx     *directive.Index
	ops     []Op
	calls   map[*types.Func]bool
	skip    map[ast.Node]bool // channel ops already accounted to a select
	results []types.Type
	hasCap  bool
	loop    int // enclosing for/range depth
}

// flag records one op unless a //lint:ignore directive waives it.
func (s *scanner) flag(pos token.Pos, sev Severity, msg string) {
	if s.idx.Suppresses(s.pass.Fset.Position(pos), name) {
		return
	}
	s.ops = append(s.ops, Op{Pos: pos, Sev: sev, Msg: msg})
}

// walk dispatches on one node and recurses; it is a hand-rolled
// ast.Inspect so loop depth and select membership stay accurate.
func (s *scanner) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		s.loop++
		ast.Inspect(n, s.dispatch(n))
		s.loop--
		return
	case *ast.FuncLit:
		// The literal's body belongs to a different function; only the
		// closure value itself concerns the enclosing hot path.
		s.flagFuncLit(n)
		return
	}
	ast.Inspect(n, s.dispatch(n))
}

// dispatch adapts walk's per-node handling to ast.Inspect, delegating
// loop and func-literal subtrees back to walk for depth tracking.
func (s *scanner) dispatch(top ast.Node) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n != top {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				s.walk(n)
				return false
			}
		}
		s.visit(n)
		return true
	}
}

// visit applies the hot-path rules to one node.
func (s *scanner) visit(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		s.visitCall(n)

	case *ast.CompositeLit:
		t := s.pass.TypesInfo.TypeOf(n)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			s.flag(n.Pos(), SevAlloc, "slice literal "+exprText(n)+" allocates")
		case *types.Map:
			s.flag(n.Pos(), SevAlloc, "map literal "+exprText(n)+" allocates")
		case *types.Struct:
			s.boxedFields(n, t)
		}

	case *ast.UnaryExpr:
		switch n.Op {
		case token.AND:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				if t := s.pass.TypesInfo.TypeOf(lit); t != nil {
					if _, isStruct := t.Underlying().(*types.Struct); isStruct {
						s.flag(n.Pos(), SevAlloc, "composite literal "+exprText(n)+" escapes to the heap")
					}
				}
			}
		case token.ARROW:
			if !s.skip[n] {
				s.flag(n.Pos(), SevBlock, "channel receive "+exprText(n)+" can block")
			}
		}

	case *ast.SendStmt:
		if !s.skip[n] {
			s.flag(n.Pos(), SevBlock, "channel send to "+exprText(n.Chan)+" can block")
		}

	case *ast.SelectStmt:
		s.visitSelect(n)

	case *ast.GoStmt:
		s.flag(n.Pos(), SevAlloc, "go statement spawns a goroutine")

	case *ast.DeferStmt:
		if s.loop > 0 {
			s.flag(n.Pos(), SevAlloc, "defer inside a loop allocates per iteration")
		}

	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(s.pass.TypesInfo.TypeOf(n)) {
			s.flag(n.Pos(), SevAlloc, "string concatenation "+exprText(n)+" allocates")
		}

	case *ast.AssignStmt:
		s.visitAssign(n)

	case *ast.ValueSpec:
		if n.Type == nil {
			return
		}
		dst := s.pass.TypesInfo.TypeOf(n.Type)
		for _, v := range n.Values {
			if boxes(dst, s.pass.TypesInfo.TypeOf(v)) {
				s.flag(v.Pos(), SevAlloc, exprText(v)+" is boxed into interface "+typeText(dst))
			}
		}

	case *ast.ReturnStmt:
		if len(n.Results) != len(s.results) {
			return // naked return or multi-value call
		}
		for i, res := range n.Results {
			if boxes(s.results[i], s.pass.TypesInfo.TypeOf(res)) {
				s.flag(res.Pos(), SevAlloc, "return value "+exprText(res)+" is boxed into interface "+typeText(s.results[i]))
			}
		}
	}
}

// visitAssign flags map writes, string +=, and interface boxing.
func (s *scanner) visitAssign(n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(s.pass.TypesInfo.TypeOf(n.Lhs[0])) {
		s.flag(n.Pos(), SevAlloc, "string concatenation "+exprText(n.Lhs[0])+" += ... allocates")
	}
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := s.pass.TypesInfo.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					s.flag(lhs.Pos(), SevAlloc, "map assignment "+exprText(lhs)+" can allocate")
				}
			}
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value unpacking: boxing happens in the callee
	}
	for i, lhs := range n.Lhs {
		dst := s.pass.TypesInfo.TypeOf(lhs)
		if boxes(dst, s.pass.TypesInfo.TypeOf(n.Rhs[i])) {
			s.flag(n.Rhs[i].Pos(), SevAlloc, exprText(n.Rhs[i])+" is boxed into interface "+typeText(dst))
		}
	}
}

// visitSelect accounts a select's communication ops to the select
// itself: with a default clause the select never blocks; without one
// it does, and is flagged once.
func (s *scanner) visitSelect(n *ast.SelectStmt) {
	hasDefault := false
	for _, stmt := range n.Body.List {
		clause, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			hasDefault = true
			continue
		}
		switch comm := clause.Comm.(type) {
		case *ast.SendStmt:
			s.skip[comm] = true
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				s.skip[u] = true
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					s.skip[u] = true
				}
			}
		}
	}
	if !hasDefault {
		s.flag(n.Pos(), SevBlock, "select without default can block")
	}
}

// flagFuncLit flags a func literal that captures enclosing variables
// by reference (a closure allocation); a capture-free literal is a
// static function value and stays clean.
func (s *scanner) flagFuncLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Free variable: declared outside the literal but not at
		// package scope.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if v.Parent() != nil && v.Parent().Parent() != types.Universe && !isPackageScoped(v) {
				captured = v.Name()
			}
		}
		return true
	})
	if captured != "" {
		s.flag(lit.Pos(), SevAlloc, "func literal captures "+captured+" by reference and allocates a closure")
	}
}

// isPackageScoped reports whether the var is declared at package scope.
func isPackageScoped(v *types.Var) bool {
	return v.Pkg() != nil && v.Pkg().Scope() == v.Parent()
}

// boxedFields flags struct-literal fields whose interface type forces
// boxing of a non-pointer-shaped value.
func (s *scanner) boxedFields(lit *ast.CompositeLit, t types.Type) {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := func(name string) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i)
			}
		}
		return nil
	}
	for i, elt := range lit.Elts {
		var dst types.Type
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			f := fieldByName(key.Name)
			if f == nil {
				continue
			}
			dst, val = f.Type(), kv.Value
		} else {
			if i >= st.NumFields() {
				continue
			}
			dst, val = st.Field(i).Type(), elt
		}
		if boxes(dst, s.pass.TypesInfo.TypeOf(val)) {
			s.flag(val.Pos(), SevAlloc, exprText(val)+" is boxed into interface field "+typeText(dst))
		}
	}
}

// boxes reports whether assigning src into dst heap-allocates: dst is
// an interface and src a concrete, non-pointer-shaped type. Pointer,
// channel, map, func and unsafe.Pointer values fit in an interface
// word without boxing.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		if b.Kind() == types.UntypedNil {
			return false
		}
		src = types.Default(src)
	}
	return !isPointerShaped(src)
}

// isPointerShaped reports whether values of t occupy exactly one
// pointer word (and so convert to interface without allocating).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exprText renders an expression compactly for diagnostics.
func exprText(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// typeText renders a type compactly for diagnostics.
func typeText(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}
