// Package baddirective carries malformed hot-path directives; the unit
// test asserts the analyzer reports both (the diagnostics land on the
// directive comment itself, where analysistest want comments cannot
// sit).
package baddirective

// badOption carries an unrecognized hotpath option.
//
//insane:hotpath allow=spin
func badOption() {}

// missingReason omits the mandatory coldpath reason.
//
//insane:coldpath
func missingReason() {}
