// Package a exercises every hotpathcheck diagnostic class inside one
// package: allocation ops, blocking ops, unknown calls, the allow=block
// root mode, //lint:ignore suppression, //insane:coldpath barriers and
// trusted interface methods.
package a

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// item carries an interface field to force boxing at literal sites.
type item struct {
	val any
}

// point has no interface fields: taking its literal's address is a pure
// escape.
type point struct {
	x, y int
}

// ---- allocating operations ------------------------------------------

//insane:hotpath
func sliceLit() {
	_ = []int{1, 2, 3} // want `slice literal \[\]int\{…\} allocates \[alloc\] in hot-path root sliceLit`
}

//insane:hotpath
func mapLit() {
	_ = map[string]int{} // want `map literal map\[string\]int\{\} allocates \[alloc\]`
}

//insane:hotpath
func escapes() *point {
	return &point{x: 1} // want `composite literal &point\{…\} escapes to the heap \[alloc\]`
}

//insane:hotpath
func makes() []byte {
	return make([]byte, 64) // want `make\(\[\]byte, 64\) allocates \[alloc\]`
}

//insane:hotpath
func news() *point {
	return new(point) // want `new\(point\) allocates \[alloc\]`
}

//insane:hotpath
func boxReturn(x int) any {
	return x // want `return value x is boxed into interface`
}

//insane:hotpath
func boxConvert(x int) {
	_ = any(x) // want `conversion any\(x\) boxes into an interface`
}

//insane:hotpath
func boxAssign(x int) {
	var v any
	v = x // want `x is boxed into interface`
	_ = v
}

//insane:hotpath
func boxDecl(x int) {
	var v any = x // want `x is boxed into interface`
	_ = v
}

//insane:hotpath
func boxField(x int) item {
	return item{val: x} // want `x is boxed into interface field`
}

//insane:hotpath
func stringCopy(bs []byte) string {
	return string(bs) // want `conversion string\(bs\) copies to a new string`
}

//insane:hotpath
func bytesCopy(s string) []byte {
	return []byte(s) // want `conversion \[\]byte\(s\) copies to a new slice`
}

//insane:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation a \+ b allocates`
}

//insane:hotpath
func concatAssign(a, b string) string {
	a += b // want `string concatenation a \+= ... allocates`
	return a
}

//insane:hotpath
func mapWrite(m map[string]int) {
	m["k"] = 1 // want `map assignment m\["k"\] can allocate`
}

//insane:hotpath
func grows(xs []int, x int) []int {
	return append(xs, x) // want `append\(xs, x\) without capacity evidence can grow the backing array`
}

// growsChecked reads cap() before appending: the capacity evidence
// makes the append acceptable (the batch-drain idiom).
//
//insane:hotpath
func growsChecked(xs []int, x int) []int {
	if len(xs) < cap(xs) {
		xs = append(xs, x)
	}
	return xs
}

//insane:hotpath
func closes() func() int {
	n := 0
	return func() int { return n } // want `func literal captures n by reference and allocates a closure`
}

// staticLit captures nothing: a capture-free literal is a static
// function value and stays clean.
//
//insane:hotpath
func staticLit() func() int {
	return func() int { return 42 }
}

//insane:hotpath
func deferLoop(mu *sync.Mutex) {
	for i := 0; i < 3; i++ {
		mu.Lock()         // want `call to \(\*sync.Mutex\).Lock blocks \[block\]`
		defer mu.Unlock() // want `defer inside a loop allocates per iteration`
	}
}

//insane:hotpath
func spawns() {
	go helper() // want `go statement spawns a goroutine`
}

func helper() {}

//insane:hotpath
func formats(x int) {
	fmt.Println(x) // want `call to fmt.Println allocates \(fmt/reflection\)`
}

//insane:hotpath
func timers() {
	_ = time.NewTimer(time.Second) // want `call to time.NewTimer allocates`
}

// ---- blocking operations --------------------------------------------

//insane:hotpath
func sends(ch chan int) {
	ch <- 1 // want `channel send to ch can block`
}

//insane:hotpath
func recvs(ch chan int) int {
	return <-ch // want `channel receive <-ch can block`
}

//insane:hotpath
func selNoDefault(a, b chan int) {
	select { // want `select without default can block`
	case <-a:
	case <-b:
	}
}

// selDefault never blocks: its communication ops are accounted to the
// select, and the default clause proves it completes immediately.
//
//insane:hotpath
func selDefault(ch chan int) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

//insane:hotpath
func sleeps() {
	time.Sleep(time.Millisecond) // want `call to time.Sleep blocks`
}

// blockingConsume may block (allow=block) but must still not allocate:
// the receive passes, the slice literal does not.
//
//insane:hotpath allow=block
func blockingConsume(ch chan int) []int {
	v := <-ch
	return []int{v} // want `slice literal \[\]int\{…\} allocates \[alloc\] in hot-path root blockingConsume`
}

// ---- unknown calls ---------------------------------------------------

//insane:hotpath
func dynamic(f func()) {
	f() // want `dynamic call f\(\) cannot be proven allocation-free`
}

//insane:hotpath
func sorts(xs []int) {
	sort.Ints(xs) // want `call to sort.Ints is outside the hot-path allowlist`
}

// Plugin mimics a datapath plugin boundary: Fast is a trusted hot-path
// method, Slow is not annotated.
type Plugin interface {
	//insane:hotpath
	Fast() int
	Slow() int
}

//insane:hotpath
func callsTrusted(p Plugin) int {
	return p.Fast()
}

//insane:hotpath
func callsUnknown(p Plugin) int {
	return p.Slow() // want `call through unannotated interface method Slow cannot be proven allocation-free`
}

// ---- suppression and cold barriers -----------------------------------

//insane:hotpath
func suppressed() *item {
	//lint:ignore insanevet/hotpathcheck documented cold init path
	return &item{}
}

//insane:hotpath
func usesCold() {
	coldInit()
}

// coldInit is control-plane setup: the barrier stops traversal, so its
// allocation is never reported.
//
//insane:coldpath one-time initialization, not reachable in steady state
func coldInit() {
	_ = make([]int, 8)
}

// unreachable is not annotated and not called from any root: its
// violations are summarized but never reported.
func unreachable() []int {
	return make([]int, 1)
}
