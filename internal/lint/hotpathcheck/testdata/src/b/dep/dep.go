// Package dep holds the callee side of the cross-package fixture. It
// declares no roots of its own: the diagnostic below is reported while
// analyzing package b, through dep's exported function summary.
package dep

// Helper allocates on behalf of package b's hot root.
func Helper() []byte {
	return make([]byte, 64) // want `make\(\[\]byte, 64\) allocates \[alloc\] reachable from hot-path root Root: Root -> b/dep\.Helper`
}
