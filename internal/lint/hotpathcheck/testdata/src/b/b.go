// Package b exercises the cross-package fact traversal: the hot-path
// root lives here, the violation in the dependency package, and the
// diagnostic carries the full call chain.
package b

import "b/dep"

// Root is a hot-path entry point whose call chain crosses into dep.
//
//insane:hotpath
func Root() []byte {
	return dep.Helper()
}
