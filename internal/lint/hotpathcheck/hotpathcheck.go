// Package hotpathcheck proves, at compile time, that the INSANE hot
// path is allocation- and blocking-free.
//
// The runtime's zero-alloc contract (DESIGN.md §7) was previously
// enforced only by sampled runtime gates (TestSteadyStateZeroAlloc),
// which cover one warm path and are skipped under -race. This analyzer
// turns the contract into a whole-program property: every function
// reachable from an annotated hot-path root must be free of heap
// allocation, blocking and calls into unproven code.
//
// Roots are declared with a directive on the function declaration:
//
//	//insane:hotpath              — allocation- and blocking-free root
//	//insane:hotpath allow=block  — root that is allowed to block
//	                                (Consume-style waits), but not to
//	                                allocate
//
// The same //insane:hotpath directive on an *interface method*
// declares a trusted boundary: implementations are vetted where they
// are defined (or deliberately exempt, like datapath plugins), so
// calls through the method are not flagged as unknown.
//
// A cold control-plane function reachable from a hot root is excluded
// wholesale with:
//
//	//insane:coldpath <reason>
//
// which stops traversal at its boundary (the call itself stays legal;
// the body is not scanned). Individual findings are waived line by
// line with the standard suppression directive:
//
//	//lint:ignore insanevet/hotpathcheck <reason>
//
// Findings carry one of three severities:
//
//	alloc        — the operation heap-allocates (composite literals
//	               that escape, make/new, interface boxing, closure
//	               captures, append without capacity evidence, map
//	               writes, string concatenation, defer in loops,
//	               fmt/reflection calls)
//	block        — the operation can block (lock acquisitions, channel
//	               operations, selects without default, known-blocking
//	               stdlib calls)
//	unknown-call — a call whose target cannot be proven clean (dynamic
//	               calls through func values, unannotated interface
//	               methods, stdlib outside the allowlist)
//
// The analysis is incremental: each package pass summarizes every
// function into a fact (ops surviving suppression + outgoing
// module-internal calls) and exports it; passes over dependent
// packages import the facts instead of re-scanning, exactly as
// analysis.Fact works upstream.
package hotpathcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// Severity classifies one hot-path violation.
type Severity string

// The three severity classes (see package doc).
const (
	SevAlloc   Severity = "alloc"
	SevBlock   Severity = "block"
	SevUnknown Severity = "unknown-call"
)

// Op is one flagged operation inside a function body.
type Op struct {
	// Pos locates the offending expression or statement.
	Pos token.Pos
	// Sev is the violation class.
	Sev Severity
	// Msg names the offending expression and why it is flagged.
	Msg string
}

// Summary is the per-function fact: everything a traversal needs to
// know about a function without re-reading its body.
type Summary struct {
	// Ops are the flagged operations that survived `//lint:ignore`
	// suppression in the function's own package.
	Ops []Op
	// Calls are the resolved module-internal callees (generic origins).
	Calls []*types.Func
	// Cold marks an //insane:coldpath traversal barrier.
	Cold bool
	// Trusted marks an //insane:hotpath-annotated interface method:
	// calls through it are accepted without traversal.
	Trusted bool
}

// AFact marks Summary as an analysis fact.
func (*Summary) AFact() {}

// name is the rule name used in diagnostics and suppression lookups.
const name = "hotpathcheck"

// Analyzer is the hotpathcheck rule.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "functions reachable from //insane:hotpath roots must not allocate, block or call unproven code",
	Run:       run,
	FactTypes: []analysis.Fact{(*Summary)(nil)},
}

// root is one //insane:hotpath entry point found in the package.
type root struct {
	fn         *types.Func
	allowBlock bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := directive.NewIndex(pass.Fset, pass.Files)
	var roots []root

	// Phase 1a: interface methods carrying //insane:hotpath are
	// trusted boundaries (datapath.Endpoint.Send, timebase.Clock.Now).
	// They are exported before any body is scanned, so a body in one
	// file can call a trusted method declared in another.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok || it.Methods == nil {
				return true
			}
			for _, field := range it.Methods.List {
				if len(field.Names) == 0 {
					continue // embedded interface
				}
				if !directive.HasMarker(field.Doc, directive.HotMarker) && !directive.HasMarker(field.Comment, directive.HotMarker) {
					continue
				}
				for _, name := range field.Names {
					if m, ok := pass.TypesInfo.Defs[name].(*types.Func); ok {
						pass.ExportObjectFact(m, &Summary{Trusted: true})
					}
				}
			}
			return true
		})
	}

	// Phase 1b: summarize every function declaration and export the
	// facts; collect the roots declared in this package.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			d, probs := directive.ParseFuncDecl(fd.Doc)
			for _, p := range probs {
				pass.Reportf(p.Pos, "%s", p.Msg)
			}
			sum := &Summary{Cold: d.Cold}
			if !d.Cold && fd.Body != nil {
				sum.Ops, sum.Calls = scanBody(pass, idx, fd)
			}
			pass.ExportObjectFact(fn, sum)
			if d.Hot {
				roots = append(roots, root{fn: fn, allowBlock: d.AllowBlock})
			}
		}
	}

	// Phase 2: breadth-first traversal from each root over the fact
	// graph. Every op is reported at most once per pass (the first
	// root to reach it wins, with the shortest call chain).
	qual := types.RelativeTo(pass.Pkg)
	reported := make(map[token.Pos]bool)
	for _, r := range roots {
		parent := map[*types.Func]*types.Func{}
		seen := map[*types.Func]bool{r.fn: true}
		queue := []*types.Func{r.fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			var sum Summary
			if !pass.ImportObjectFact(fn, &sum) {
				continue // classified at the call site during scanning
			}
			if sum.Cold || sum.Trusted {
				continue
			}
			for _, op := range sum.Ops {
				if r.allowBlock && op.Sev == SevBlock {
					continue
				}
				if reported[op.Pos] {
					continue
				}
				reported[op.Pos] = true
				pass.Report(analysis.Diagnostic{
					Pos:     op.Pos,
					Message: fmt.Sprintf("%s [%s]%s", op.Msg, op.Sev, chainSuffix(r.fn, fn, parent, qual)),
				})
			}
			for _, callee := range sum.Calls {
				if !seen[callee] {
					seen[callee] = true
					parent[callee] = fn
					queue = append(queue, callee)
				}
			}
		}
	}
	return nil, nil
}

// chainSuffix renders the call chain from root to the function holding
// the op, for the diagnostic message.
func chainSuffix(rootFn, fn *types.Func, parent map[*types.Func]*types.Func, qual types.Qualifier) string {
	if fn == rootFn {
		return " in hot-path root " + callutil.FuncName(rootFn, qual)
	}
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, callutil.FuncName(f, qual))
		if f == rootFn {
			break
		}
	}
	// Reverse into root→...→fn order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return fmt.Sprintf(" reachable from hot-path root %s: %s", callutil.FuncName(rootFn, qual), strings.Join(chain, " -> "))
}
