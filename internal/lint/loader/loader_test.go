package loader_test

import (
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/loader"
)

func TestLoadModulePackage(t *testing.T) {
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	if ldr.Module != "github.com/insane-mw/insane" {
		t.Fatalf("module path = %q", ldr.Module)
	}
	pkgs, err := ldr.Load("./internal/timebase")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Types.Name() != "timebase" {
		t.Fatalf("type-checked package missing or misnamed: %+v", pkg.Types)
	}
	if pkg.Types.Scope().Lookup("Wall") == nil {
		t.Error("timebase.Wall not found in the loaded package scope")
	}
	if len(pkg.Info.Uses) == 0 {
		t.Error("type info not populated")
	}
}

func TestLoadSubtreeResolvesInternalImports(t *testing.T) {
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	// internal/sched imports internal/datapath and internal/timebase;
	// loading it exercises the module-internal importer path.
	pkgs, err := ldr.Load("./internal/sched")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "github.com/insane-mw/insane/internal/sched" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

func TestWalkSkipsTestdata(t *testing.T) {
	ldr, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load("./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("testdata package loaded: %s", p.Path)
		}
	}
	if len(pkgs) < 8 {
		t.Errorf("expected the full lint subtree, got %d packages", len(pkgs))
	}
}
