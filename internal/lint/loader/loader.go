// Package loader loads and type-checks Go packages for the insanevet
// analyzers without any network or module-proxy access.
//
// It is a deliberately small replacement for golang.org/x/tools/go/packages:
// module-internal import paths are mapped onto directories below the
// module root, and standard-library imports are type-checked from
// GOROOT source via go/importer's "source" compiler. The repository has
// no third-party dependencies, so these two cases cover every import.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path (for file-system-rooted loads
	// it is the path the caller assigned).
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files is the parsed non-test syntax, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker results for Files.
	Info *types.Info
}

// Loader loads packages of one module (plus the standard library).
type Loader struct {
	// Root is the directory import paths are resolved under.
	Root string
	// Module is the module path mapped onto Root. When empty, import
	// paths are resolved as directories directly below Root (the
	// layout of analysistest testdata trees).
	Module string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*entry
}

type entry struct {
	pkg     *Package
	err     error
	loading bool
}

// New returns a Loader for the module containing dir: it walks up from
// dir to the nearest go.mod and reads the module path from it.
func New(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return nil, fmt.Errorf("loader: no module line in %s/go.mod", d)
			}
			return NewAt(d, mod), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("loader: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// NewAt returns a Loader resolving the given module path at root.
// An empty module path resolves import paths as plain directories below
// root (testdata layout).
func NewAt(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*entry),
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns to packages and type-checks them.
// Supported patterns: "./..." (whole module), "./dir/..." (subtree) and
// "./dir" (one package); a bare module-internal import path also works.
// The first package that fails to parse or type-check aborts the load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.resolve(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := l.LoadDir(dir, l.pathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadError records one package that could not be loaded during a
// lenient LoadAll.
type LoadError struct {
	// Path is the import path of the broken package.
	Path string
	// Err is the parse or type-check failure.
	Err error
}

func (e LoadError) Error() string { return e.Path + ": " + e.Err.Error() }

// LoadAll is Load with per-package error recovery: packages that fail
// to parse or type-check are skipped and reported in the second return
// value instead of aborting the whole load. Pattern-resolution errors
// (no such directory, unreadable tree) still fail hard, since they mean
// the caller asked for something that does not exist.
func (l *Loader) LoadAll(patterns ...string) ([]*Package, []LoadError, error) {
	dirs, err := l.resolve(patterns)
	if err != nil {
		return nil, nil, err
	}
	var out []*Package
	var failed []LoadError
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		path := l.pathFor(dir)
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			failed = append(failed, LoadError{Path: path, Err: err})
			continue
		}
		out = append(out, pkg)
	}
	return out, failed, nil
}

// ByPath returns the already-loaded package registered under the given
// import path, if any. Dependencies pulled in while type-checking a
// requested package are registered too, so after a Load the whole
// in-module import closure is reachable through ByPath.
func (l *Loader) ByPath(path string) (*Package, bool) {
	e, ok := l.pkgs[path]
	if !ok || e.loading || e.err != nil || e.pkg == nil {
		return nil, false
	}
	return e.pkg, true
}

// resolve maps patterns to the sorted list of candidate directories.
func (l *Loader) resolve(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			if err := l.walk(l.Root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.dirFor(strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, add); err != nil {
				return nil, err
			}
		default:
			dir := l.dirFor(pat)
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("loader: no Go package matches %q", pat)
			}
			add(dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirFor maps a pattern element to a directory.
func (l *Loader) dirFor(pat string) string {
	if strings.HasPrefix(pat, "./") || pat == "." {
		return filepath.Join(l.Root, strings.TrimPrefix(pat, "./"))
	}
	if l.Module != "" && (pat == l.Module || strings.HasPrefix(pat, l.Module+"/")) {
		return filepath.Join(l.Root, strings.TrimPrefix(strings.TrimPrefix(pat, l.Module), "/"))
	}
	return filepath.Join(l.Root, pat)
}

// pathFor maps a directory below Root to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	rel = filepath.ToSlash(rel)
	if l.Module == "" {
		return rel
	}
	return l.Module + "/" + rel
}

// walk collects package directories below base, skipping testdata,
// hidden and underscore-prefixed directories.
func (l *Loader) walk(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		add(path)
		return nil
	})
}

// hasGoFiles reports whether dir holds at least one non-test Go file.
func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists dir's buildable non-test Go files, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// MatchFile applies the //go:build constraints and GOOS/GOARCH
		// file-name conventions of the current build context.
		if ok, err := ctxt.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir, registering it
// under the given import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("loader: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &entry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadDir(dir, path)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []types.Error
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			return l.importPkg(ipath)
		}),
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				typeErrs = append(typeErrs, te)
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, 3)
		for i, te := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, fmt.Sprintf("%s: %s", l.fset.Position(te.Pos), te.Msg))
		}
		return nil, fmt.Errorf("loader: type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPkg resolves one import encountered while type-checking:
// module-internal paths load from the module tree, everything else is
// standard library and loads from GOROOT source.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	inModule := l.Module != "" && (path == l.Module || strings.HasPrefix(path, l.Module+"/"))
	if l.Module == "" {
		// Testdata layout: any path that exists as a directory below
		// Root is an in-tree package.
		if st, err := os.Stat(l.dirFor(path)); err == nil && st.IsDir() {
			inModule = true
		}
	}
	if inModule {
		pkg, err := l.LoadDir(l.dirFor(path), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
