// Package a exercises sentinelcompare: identity comparisons against
// Err* sentinels on values the function wrapped with %w.
package a

import (
	"errors"
	"fmt"
)

// Package-level sentinels, Err*-named as the rule requires.
var (
	ErrNotFound = errors.New("not found")
	ErrBusy     = errors.New("busy")
)

// wrapThenCompare is the motivating bug: once wrapped, identity
// comparison never matches.
func wrapThenCompare(id int) bool {
	err := fmt.Errorf("lookup %d: %w", id, ErrNotFound)
	return err == ErrNotFound // want `err was wrapped with fmt.Errorf\("%w", ...\); == ErrNotFound never matches — use errors.Is\(err, ErrNotFound\)`
}

// reversedOperands puts the sentinel on the left; the rule matches both
// orders and the != operator.
func reversedOperands() bool {
	err := fmt.Errorf("busy: %w", ErrBusy)
	return ErrBusy != err // want `err was wrapped with fmt.Errorf\("%w", ...\); != ErrBusy never matches — use errors.Is\(err, ErrBusy\)`
}

// reassignedClears: overwriting the variable with a non-wrapping value
// clears the mark, so the later comparison is legitimate.
func reassignedClears() bool {
	err := fmt.Errorf("wrap: %w", ErrNotFound)
	err = errors.New("fresh")
	return err == ErrNotFound
}

// noWrapVerb: fmt.Errorf without %w does not wrap, so == still works on
// whatever it returns (it just never equals the sentinel; not our bug).
func noWrapVerb() bool {
	err := fmt.Errorf("plain: %v", ErrNotFound)
	return err == ErrNotFound
}

// usesErrorsIs is the fix the diagnostic recommends.
func usesErrorsIs(id int) bool {
	err := fmt.Errorf("lookup %d: %w", id, ErrNotFound)
	return errors.Is(err, ErrNotFound)
}

// neverWrapped compares a plain error; untracked, so clean.
func neverWrapped(err error) bool {
	return err == ErrBusy
}
