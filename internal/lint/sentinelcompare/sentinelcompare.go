// Package sentinelcompare flags `==` / `!=` comparisons against Err*
// sentinel values on errors that were wrapped with fmt.Errorf("%w")
// in the same function.
//
// The insane package translates internal errors to its public
// sentinels *by value* at every API boundary (PR 3), so user code may
// legitimately compare `err == insane.ErrClosed` on values returned by
// the API. But the moment a function wraps an error itself —
//
//	err := fmt.Errorf("stream %d: %w", id, insane.ErrClosed)
//	if err == insane.ErrClosed { ... }   // never true
//
// — identity comparison silently stops matching, and only errors.Is
// unwraps the chain. This analyzer catches exactly that: a comparison
// against an Err*-named sentinel on a value that was produced by a
// %w-wrapping fmt.Errorf call earlier in the same function.
package sentinelcompare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// Analyzer is the sentinelcompare rule.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcompare",
	Doc:  "errors wrapped with fmt.Errorf(\"%w\", ...) must be matched with errors.Is, not ==",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkFunc walks one body in source order, tracking which variables
// currently hold a %w-wrapped error.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	wrapped := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := objOf(pass, id).(*types.Var)
				if !ok {
					continue
				}
				if isWrapCall(pass, n.Rhs[i]) {
					wrapped[v] = true
				} else {
					// Reassignment from anything else clears the mark.
					delete(wrapped, v)
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if v, sentinel := matchCompare(pass, wrapped, n.X, n.Y); v != nil {
				pass.Reportf(n.Pos(), "%s was wrapped with fmt.Errorf(\"%%w\", ...); %s %s never matches — use errors.Is(%s, %s)",
					v.Name(), n.Op, sentinel, v.Name(), sentinel)
			} else if v, sentinel := matchCompare(pass, wrapped, n.Y, n.X); v != nil {
				pass.Reportf(n.Pos(), "%s was wrapped with fmt.Errorf(\"%%w\", ...); %s %s never matches — use errors.Is(%s, %s)",
					v.Name(), n.Op, sentinel, v.Name(), sentinel)
			}
		}
		return true
	})
}

// matchCompare reports whether lhs is a tracked wrapped-error variable
// and rhs an Err* sentinel; it returns the variable and the sentinel's
// rendering.
func matchCompare(pass *analysis.Pass, wrapped map[*types.Var]bool, lhs, rhs ast.Expr) (*types.Var, string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	v, ok := objOf(pass, id).(*types.Var)
	if !ok || !wrapped[v] {
		return nil, ""
	}
	if !isSentinel(pass, rhs) {
		return nil, ""
	}
	return v, types.ExprString(rhs)
}

// isSentinel reports whether e names a package-level Err* variable.
func isSentinel(pass *analysis.Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := objOf(pass, id).(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isWrapCall reports whether e is fmt.Errorf with a %w verb in its
// (constant) format string.
func isWrapCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	format, err := strconv.Unquote(lit.Value)
	return err == nil && strings.Contains(format, "%w")
}

// objOf resolves an identifier's object through Uses or Defs.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
