package sentinelcompare_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/sentinelcompare"
)

func TestSentinelCompare(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelcompare.Analyzer, "a")
}
