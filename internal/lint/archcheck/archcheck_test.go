package archcheck_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/archcheck"
)

// TestFixtures drives every diagnostic class from one closure: the
// `top` package pulls in mid, leaf, leaf2, peer and unassigned, and the
// `// want` expectations across all of them must fire (same-layer,
// upward, not-allowed, unassigned package, unassigned import), while
// the //lint:ignore waiver in top must hold.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", archcheck.Analyzer, "top")
}

// TestCleanPackage runs a package with no findings alone.
func TestCleanPackage(t *testing.T) {
	analysistest.Run(t, "testdata", archcheck.Analyzer, "leaf")
}
