package archcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec materializes a spec file plus the package directories its
// entries reference (each with a single Go file), so Load's stale-entry
// validation passes unless a test withholds a directory.
func writeSpec(t *testing.T, spec string, pkgs ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, p := range pkgs {
		pdir := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			t.Fatal(err)
		}
		name := strings.ReplaceAll(filepath.Base(pdir), "-", "")
		src := "package " + name + "\n"
		if err := os.WriteFile(filepath.Join(pdir, "p.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SpecName)
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadValid(t *testing.T) {
	path := writeSpec(t, `
# comment
module example.com/m

layer base
package a
package b

layer top
allow base
package c/d
`, "a", "b", "c/d")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(s.Layers))
	}
	if got := s.Resolve("example.com/m/c/d"); got != "c/d" {
		t.Errorf("Resolve module path = %q, want c/d", got)
	}
	if got := s.Resolve("example.com/m"); got != "." {
		t.Errorf("Resolve module root = %q, want .", got)
	}
	if l := s.LayerOf("c/d"); l == nil || l.Name != "top" {
		t.Errorf("LayerOf(c/d) = %v, want top", l)
	}
	if l := s.LayerOf("a"); l == nil || l.Rank != 0 {
		t.Errorf("LayerOf(a) = %v, want rank 0", l)
	}
	if !s.Layers[1].Allow["base"] {
		t.Error("top should allow base")
	}
	if !s.InScope("example.com/m/anything") {
		t.Error("module-prefixed path should be in scope")
	}
	if !s.InScope("a") {
		t.Error("bare path with a package directory should be in scope")
	}
	if s.InScope("fmt") {
		t.Error("stdlib path should be out of scope")
	}
}

// TestLoadMalformed covers every validation failure: a stale or
// contradictory ARCH.layers must abort the lint run with an error
// naming the defect, never silently pass.
func TestLoadMalformed(t *testing.T) {
	tests := []struct {
		name string
		spec string
		pkgs []string
		want string
	}{
		{
			name: "unknown package (stale entry)",
			spec: "module m\nlayer base\npackage gone\n",
			pkgs: nil,
			want: "package gone (layer \"base\") is not a Go package",
		},
		{
			name: "two layers claim one package",
			spec: "module m\nlayer base\npackage a\nlayer top\npackage a\n",
			pkgs: []string{"a"},
			want: `package a is claimed by both layer "base" and layer "top"`,
		},
		{
			name: "allow of a layer that does not exist",
			spec: "module m\nlayer base\npackage a\nlayer top\nallow gone\npackage b\n",
			pkgs: []string{"a", "b"},
			want: `allows "gone", which is not declared above it`,
		},
		{
			name: "allow of a later layer",
			spec: "module m\nlayer base\nallow top\npackage a\nlayer top\npackage b\n",
			pkgs: []string{"a", "b"},
			want: `allows "top", which is not declared above it`,
		},
		{
			name: "allow self",
			spec: "module m\nlayer base\nallow base\npackage a\n",
			pkgs: []string{"a"},
			want: `layer "base" cannot allow itself`,
		},
		{
			name: "duplicate layer",
			spec: "module m\nlayer base\npackage a\nlayer base\n",
			pkgs: []string{"a"},
			want: `duplicate layer "base"`,
		},
		{
			name: "duplicate allow",
			spec: "module m\nlayer base\npackage a\nlayer top\nallow base\nallow base\npackage b\n",
			pkgs: []string{"a", "b"},
			want: `duplicate allow "base"`,
		},
		{
			name: "package before any layer",
			spec: "module m\npackage a\n",
			pkgs: []string{"a"},
			want: "package before any layer",
		},
		{
			name: "allow before any layer",
			spec: "module m\nallow base\n",
			pkgs: nil,
			want: "allow before any layer",
		},
		{
			name: "missing module",
			spec: "layer base\npackage a\n",
			pkgs: []string{"a"},
			want: "missing module line",
		},
		{
			name: "duplicate module",
			spec: "module m\nmodule n\nlayer base\npackage a\n",
			pkgs: []string{"a"},
			want: "duplicate module line",
		},
		{
			name: "module after layer",
			spec: "layer base\nmodule m\npackage a\n",
			pkgs: []string{"a"},
			want: "module must precede the first layer",
		},
		{
			name: "unknown keyword",
			spec: "module m\nlayers base\n",
			pkgs: nil,
			want: `unknown keyword "layers"`,
		},
		{
			name: "wrong arity",
			spec: "module m\nlayer base extra\n",
			pkgs: nil,
			want: "want `<keyword> <argument>`",
		},
		{
			name: "unclean package path",
			spec: "module m\nlayer base\npackage ../escape\n",
			pkgs: nil,
			want: "must be a clean module-relative path",
		},
		{
			name: "no layers",
			spec: "module m\n",
			pkgs: nil,
			want: "no layers declared",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeSpec(t, tt.spec, tt.pkgs...)
			_, err := Load(path)
			if err == nil {
				t.Fatalf("Load succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestFindWalksUp(t *testing.T) {
	path := writeSpec(t, "module m\nlayer base\npackage a\n", "a")
	root := filepath.Dir(path)
	s, err := Find(filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Path != path {
		t.Errorf("Find returned %s, want %s", s.Path, path)
	}
}

func TestFindMissing(t *testing.T) {
	// A directory tree with no spec anywhere up to the filesystem root
	// cannot be guaranteed in a test environment (an ancestor might
	// carry one), so probe from a temp dir only if no ancestor has it.
	dir := t.TempDir()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, SpecName)); err == nil {
			t.Skipf("ancestor %s carries %s", d, SpecName)
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if _, err := Find(dir); err == nil || !strings.Contains(err.Error(), "no ARCH.layers found") {
		t.Errorf("Find = %v, want no-spec error", err)
	}
}
