package peer

// P is exported so dependents have something to use.
const P = 7
