package top

import (
	_ "mid" // ok: top allows mid

	_ "leaf" // want `import of leaf: layer "top" does not allow imports from layer "base"`
	_ "peer" // want `import of peer: top and peer are both in layer "top"`

	_ "unassigned" // want `import of unassigned: package is not assigned to any layer`

	//lint:ignore insanevet/archcheck fixture: granted waiver, suppression must hold
	_ "leaf2"
)
