package leaf

// N is exported so dependents have something to use.
const N = 1
