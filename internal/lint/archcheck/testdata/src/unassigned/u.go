package unassigned // want `package unassigned is not assigned to any layer`

// U is exported so dependents have something to use.
const U = 3
