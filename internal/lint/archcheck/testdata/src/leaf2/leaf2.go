package leaf2

import (
	"leaf" // want `import of leaf: leaf2 and leaf are both in layer "base" \(same-layer imports are forbidden`
)

const M = leaf.N + 1
