package mid

import (
	"leaf" // ok: mid allows base

	_ "peer" // want `import of peer: layer "mid" must not import upward into layer "top"`
)

const M = leaf.N + 1
