package archcheck

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// SpecName is the file archcheck looks for, walking up from each
// analyzed package's directory. The spec closest to the package wins,
// so analysistest fixture trees carry their own spec without ever
// seeing the repository's.
const SpecName = "ARCH.layers"

// Layer is one declared layer of the spec.
type Layer struct {
	// Name is the layer's identifier in diagnostics and allow lines.
	Name string
	// Rank is the declaration position: 0 is the deepest layer. A layer
	// may only allow layers declared before it, so allowed ⊆ lower-rank
	// and the layer graph is acyclic by construction.
	Rank int
	// Allow names the layers this layer's packages may import.
	Allow map[string]bool
	// Packages lists the module-relative package paths assigned here.
	Packages []string
}

// Spec is a parsed, validated ARCH.layers file.
type Spec struct {
	// Path locates the spec file; Dir is its directory (the fence's
	// root: package paths are relative to it).
	Path string
	Dir  string
	// Module is the module path mapped onto Dir.
	Module string
	// Layers in declaration (rank) order.
	Layers []*Layer

	byPackage map[string]*Layer
	byName    map[string]*Layer
}

// Find walks up from dir to the nearest ARCH.layers and loads it.
func Find(dir string) (*Spec, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		p := filepath.Join(d, SpecName)
		if _, err := os.Stat(p); err == nil {
			return Load(p)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("archcheck: no %s found above %s", SpecName, abs)
		}
		d = parent
	}
}

// Load parses and validates one spec file. Any defect — unknown
// keyword, duplicate layer, allow of an undeclared (or later, or own)
// layer, a package claimed twice, or an entry whose directory no longer
// holds a Go package — is an error, not a diagnostic: a stale spec must
// stop the lint run loudly rather than fence against a world that no
// longer exists.
func Load(specPath string) (*Spec, error) {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, fmt.Errorf("archcheck: %w", err)
	}
	s := &Spec{
		Path:      specPath,
		Dir:       filepath.Dir(specPath),
		byPackage: make(map[string]*Layer),
		byName:    make(map[string]*Layer),
	}
	var cur *Layer
	for i, raw := range strings.Split(string(data), "\n") {
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("%s:%d: %s", specPath, i+1, fmt.Sprintf(format, args...))
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, errf("want `<keyword> <argument>`, got %q", line)
		}
		keyword, arg := fields[0], fields[1]
		switch keyword {
		case "module":
			if s.Module != "" {
				return nil, errf("duplicate module line")
			}
			if cur != nil {
				return nil, errf("module must precede the first layer")
			}
			s.Module = arg
		case "layer":
			if s.byName[arg] != nil {
				return nil, errf("duplicate layer %q", arg)
			}
			cur = &Layer{Name: arg, Rank: len(s.Layers), Allow: make(map[string]bool)}
			s.Layers = append(s.Layers, cur)
			s.byName[arg] = cur
		case "allow":
			if cur == nil {
				return nil, errf("allow before any layer")
			}
			target := s.byName[arg]
			if target == nil {
				return nil, errf("layer %q allows %q, which is not declared above it (a layer may only allow layers declared earlier)", cur.Name, arg)
			}
			if target == cur {
				return nil, errf("layer %q cannot allow itself", cur.Name)
			}
			if cur.Allow[arg] {
				return nil, errf("duplicate allow %q in layer %q", arg, cur.Name)
			}
			cur.Allow[arg] = true
		case "package":
			if cur == nil {
				return nil, errf("package before any layer")
			}
			if path.Clean(arg) != arg || path.IsAbs(arg) || arg == ".." || strings.HasPrefix(arg, "../") {
				return nil, errf("package path %q must be a clean module-relative path", arg)
			}
			if prev := s.byPackage[arg]; prev != nil {
				return nil, errf("package %s is claimed by both layer %q and layer %q", arg, prev.Name, cur.Name)
			}
			s.byPackage[arg] = cur
			cur.Packages = append(cur.Packages, arg)
		default:
			return nil, errf("unknown keyword %q (want module, layer, allow or package)", keyword)
		}
	}
	if s.Module == "" {
		return nil, fmt.Errorf("%s: missing module line", specPath)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("%s: no layers declared", specPath)
	}

	// Stale entries: every assigned package must still be a Go package
	// under the spec directory. (Whether it still type-checks is `go
	// build ./...`'s job; the fence only needs to notice removals and
	// renames that would silently shrink its coverage.)
	rels := make([]string, 0, len(s.byPackage))
	for rel := range s.byPackage {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if !hasGoPackage(filepath.Join(s.Dir, filepath.FromSlash(rel))) {
			return nil, fmt.Errorf("%s: package %s (layer %q) is not a Go package under %s — stale spec entry", specPath, rel, s.byPackage[rel].Name, s.Dir)
		}
	}
	return s, nil
}

// Resolve maps an import path to the spec's module-relative form.
func (s *Spec) Resolve(pkgPath string) string {
	switch {
	case pkgPath == s.Module:
		return "."
	case strings.HasPrefix(pkgPath, s.Module+"/"):
		return pkgPath[len(s.Module)+1:]
	}
	// Testdata trees use bare directory-relative import paths.
	return pkgPath
}

// LayerOf returns the layer a module-relative package is assigned to,
// or nil.
func (s *Spec) LayerOf(rel string) *Layer {
	return s.byPackage[rel]
}

// InScope reports whether an import path falls under the fence: it
// carries the module prefix, or it resolves to a Go package directory
// below the spec (the bare import paths of testdata trees). Everything
// else — the standard library — is out of scope.
func (s *Spec) InScope(pkgPath string) bool {
	if pkgPath == s.Module || strings.HasPrefix(pkgPath, s.Module+"/") {
		return true
	}
	rel := s.Resolve(pkgPath)
	if path.Clean(rel) != rel || path.IsAbs(rel) || strings.HasPrefix(rel, "../") {
		return false
	}
	return hasGoPackage(filepath.Join(s.Dir, filepath.FromSlash(rel)))
}

// hasGoPackage reports whether dir holds at least one non-test Go file.
func hasGoPackage(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
