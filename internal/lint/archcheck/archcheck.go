// Package archcheck is the module's layering fence: a declarative spec
// (ARCH.layers at the module root) assigns every package to a layer,
// and every module-internal import must point strictly downward, into a
// layer the importer's layer explicitly allows.
//
// The spec is line-oriented:
//
//	module github.com/insane-mw/insane
//
//	layer base
//	package internal/ringbuf
//
//	layer mem
//	allow base
//	package internal/mempool
//
// Declaration order is depth: a layer may only `allow` layers declared
// before it, and same-layer imports are forbidden, so the layer graph
// is a DAG by construction — an import that would create a package
// cycle necessarily points upward or sideways and is reported at its
// file:line. Four diagnostics cover the failure modes:
//
//   - the analyzed package is not assigned to any layer
//   - an import of a module package that is not assigned to any layer
//   - an import into the same layer
//   - an upward import, or a downward import the layer does not allow
//
// A deliberate, reviewed exception is waived at the import line with
// `//lint:ignore insanevet/archcheck <reason>`; the spec itself stays
// exception-free. Spec defects (unknown packages, double claims, stale
// entries) are load errors that abort the lint run — see Load.
//
// The analyzer declares a fact type so the driver runs it whole-program
// over the full dependency closure: the fence is only meaningful if
// every package is checked, and the selfcheck asserts the coverage
// count. The fact itself carries no information (layer membership comes
// from the spec, not from analysis).
package archcheck

import (
	"path/filepath"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// name is the rule name used in diagnostics and suppression lookups.
const name = "archcheck"

// coverage is the declare-only fact marking archcheck whole-program
// (see package doc).
type coverage struct{}

// AFact marks coverage as an analysis fact.
func (*coverage) AFact() {}

// Analyzer is the archcheck rule.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "module-internal imports must respect the layering declared in ARCH.layers",
	Run:       run,
	FactTypes: []analysis.Fact{(*coverage)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	if len(pass.Files) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Package).Filename)
	spec, err := Find(dir)
	if err != nil {
		return nil, err
	}

	rel := spec.Resolve(pass.Pkg.Path())
	self := spec.LayerOf(rel)
	if self == nil {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s is not assigned to any layer in %s", pass.Pkg.Path(), spec.Path)
		return nil, nil
	}

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			irel := spec.Resolve(ipath)
			target := spec.LayerOf(irel)
			switch {
			case target == nil:
				if spec.InScope(ipath) {
					pass.Reportf(imp.Path.Pos(), "import of %s: package is not assigned to any layer in %s", ipath, spec.Path)
				}
			case target == self:
				pass.Reportf(imp.Path.Pos(), "import of %s: %s and %s are both in layer %q (same-layer imports are forbidden; move one package or split the layer)", ipath, rel, irel, self.Name)
			case target.Rank > self.Rank:
				pass.Reportf(imp.Path.Pos(), "import of %s: layer %q must not import upward into layer %q", ipath, self.Name, target.Name)
			case !self.Allow[target.Name]:
				pass.Reportf(imp.Path.Pos(), "import of %s: layer %q does not allow imports from layer %q (no `allow %s` under `layer %s` in %s)", ipath, self.Name, target.Name, target.Name, self.Name, spec.Path)
			}
		}
	}
	return nil, nil
}
