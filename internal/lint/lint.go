// Package lint assembles the insanevet analyzer suite and runs it over
// loaded packages, applying the `//lint:ignore insanevet/<rule>`
// suppression directives.
//
// The suite enforces the conventions the compiler cannot check but the
// INSANE runtime depends on (see README, "Static analysis"):
//
//	bufownership    — no touching zero-copy buffers after Emit/Abort, no
//	                  Message use after Release (§5.1 slot pools)
//	lockorder       — mu→schedMu acquisition order, locks never escape
//	                  their function, whole-program lock graph is
//	                  cycle-free (§5.3 polling threads)
//	atomicfield     — no copies of atomic fields, no mixed plain/atomic
//	                  access to counters
//	timebase        — datapath packages read time via internal/timebase
//	hotpathcheck    — code reachable from //insane:hotpath roots is
//	                  allocation- and blocking-free (§7 zero-alloc proof)
//	sentinelcompare — errors wrapped with %w are matched with errors.Is
//	goroutinecheck  — every go statement is provably bounded or carries
//	                  a verified //insane:goroutine owner/stop annotation
//	syncmisuse      — no double close, send after close, or WaitGroup
//	                  paths that race or miss Done
//	archcheck       — imports respect the layering declared in
//	                  ARCH.layers: no upward, same-layer or unlisted
//	                  cross-layer edges (DESIGN.md §10)
//	boundedcheck    — every loop reachable from an //insane:hotpath root
//	                  is provably bounded or carries a verified
//	                  //insane:bounded annotation (§7 per-packet cost)
//	paircheck       — every //insane:acquire resource has a matching
//	                  release, transfer or verified waiver on every
//	                  control-flow path (§5.1/§6 charge-refund balance)
//	guardcheck      — every access to a field of an //insane:shared
//	                  struct uses its declared //insane:guardedby
//	                  regime: mutex-held, atomic, RCU-published,
//	                  goroutine-confined or immutable (DESIGN.md §14)
//
// Analyzers that declare FactTypes are whole-program: Run applies them
// over the full in-module dependency closure of the requested
// packages, dependencies first, with a shared analysis.FactStore, so
// per-function summaries computed for internal/ringbuf are available
// when internal/core is analyzed.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/archcheck"
	"github.com/insane-mw/insane/internal/lint/atomicfield"
	"github.com/insane-mw/insane/internal/lint/boundedcheck"
	"github.com/insane-mw/insane/internal/lint/bufownership"
	"github.com/insane-mw/insane/internal/lint/concurrencycheck"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/guardcheck"
	"github.com/insane-mw/insane/internal/lint/hotpathcheck"
	"github.com/insane-mw/insane/internal/lint/loader"
	"github.com/insane-mw/insane/internal/lint/lockorder"
	"github.com/insane-mw/insane/internal/lint/paircheck"
	"github.com/insane-mw/insane/internal/lint/sentinelcompare"
	"github.com/insane-mw/insane/internal/lint/timebasecheck"
)

// Analyzers returns the full insanevet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufownership.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		timebasecheck.Analyzer,
		hotpathcheck.Analyzer,
		sentinelcompare.Analyzer,
		concurrencycheck.Goroutine,
		concurrencycheck.Sync,
		archcheck.Analyzer,
		boundedcheck.Analyzer,
		paircheck.Analyzer,
		guardcheck.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer names the rule ("bufownership", ..., or "directive" for
	// malformed suppression comments).
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the problem.
	Message string
}

// String formats the finding in the file:line:col style of go vet.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (insanevet/%s)", f.Pos, f.Message, f.Analyzer)
}

// Info describes what a Run actually covered, so callers (the repo
// self-check in particular) can assert the suite really ran instead of
// silently analyzing nothing.
type Info struct {
	// Packages is the number of requested packages.
	Packages int
	// ClosurePackages is the size of the in-module dependency closure
	// the whole-program analyzers ran over (0 when none was needed).
	ClosurePackages int
	// WholeProgram maps each whole-program analyzer name to the number
	// of packages it analyzed.
	WholeProgram map[string]int
}

// Run applies the analyzers to every package and returns the findings
// that survive suppression, sorted by position.
//
// The loader must be the one that loaded pkgs: whole-program analyzers
// (non-empty FactTypes) reach the in-module dependency closure through
// it. It may be nil when no analyzer declares facts.
func Run(ldr *loader.Loader, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunWithInfo(ldr, pkgs, analyzers)
	return findings, err
}

// RunWithInfo is Run plus coverage accounting.
func RunWithInfo(ldr *loader.Loader, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, Info, error) {
	info := Info{Packages: len(pkgs), WholeProgram: make(map[string]int)}
	var plain, whole []*analysis.Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			whole = append(whole, a)
		} else {
			plain = append(plain, a)
		}
	}

	var out []Finding
	indexes := make(map[*loader.Package]*directive.Index)
	index := func(pkg *loader.Package) *directive.Index {
		idx := indexes[pkg]
		if idx == nil {
			idx = directive.NewIndex(pkg.Fset, pkg.Files)
			indexes[pkg] = idx
		}
		return idx
	}
	runOne := func(pkg *loader.Package, a *analysis.Analyzer, store *analysis.FactStore) error {
		idx := index(pkg)
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if store != nil {
			store.Bind(pass)
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if idx.Suppresses(pos, name) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		return nil
	}

	for _, pkg := range pkgs {
		for _, ig := range index(pkg).Malformed() {
			out = append(out, Finding{
				Analyzer: "directive",
				Pos:      pkg.Fset.Position(ig.Pos),
				Message:  "malformed //lint:ignore directive: " + ig.Malformed,
			})
		}
		for _, a := range plain {
			if err := runOne(pkg, a, nil); err != nil {
				return nil, info, err
			}
		}
	}

	if len(whole) > 0 {
		closure, err := dependencyClosure(ldr, pkgs)
		if err != nil {
			return nil, info, err
		}
		info.ClosurePackages = len(closure)
		for _, a := range whole {
			store := analysis.NewFactStore()
			for _, pkg := range closure {
				if err := runOne(pkg, a, store); err != nil {
					return nil, info, err
				}
				info.WholeProgram[a.Name]++
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out, info, nil
}

// dependencyClosure expands pkgs with their in-module imports (loaded
// through ldr while type-checking) and returns the closure sorted
// dependencies-first.
func dependencyClosure(ldr *loader.Loader, pkgs []*loader.Package) ([]*loader.Package, error) {
	if ldr == nil {
		return nil, fmt.Errorf("lint: a whole-program analyzer requires a loader")
	}
	byPath := make(map[string]*loader.Package)
	var visit func(pkg *loader.Package)
	visit = func(pkg *loader.Package) {
		if byPath[pkg.Path] != nil {
			return
		}
		byPath[pkg.Path] = pkg
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := ldr.ByPath(imp.Path()); ok {
				visit(dep)
			}
		}
	}
	for _, pkg := range pkgs {
		visit(pkg)
	}

	// Topological order via depth-first post-order over imports.
	var order []*loader.Package
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var topo func(pkg *loader.Package) error
	topo = func(pkg *loader.Package) error {
		switch state[pkg.Path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", pkg.Path)
		case 2:
			return nil
		}
		state[pkg.Path] = 1
		for _, imp := range pkg.Types.Imports() {
			if dep := byPath[imp.Path()]; dep != nil {
				if err := topo(dep); err != nil {
					return err
				}
			}
		}
		state[pkg.Path] = 2
		order = append(order, pkg)
		return nil
	}
	// Stable iteration: requested packages arrive sorted from the
	// loader; closure members are reached deterministically from them.
	for _, pkg := range pkgs {
		if err := topo(pkg); err != nil {
			return nil, err
		}
	}
	// Closure members not reachable via topo from pkgs cannot exist
	// (visit and topo walk the same edges), so order is complete.
	return order, nil
}
