// Package lint assembles the insanevet analyzer suite and runs it over
// loaded packages, applying the `//lint:ignore insanevet/<rule>`
// suppression directives.
//
// The suite enforces the conventions the compiler cannot check but the
// INSANE runtime depends on (see README, "Static analysis"):
//
//	bufownership — no touching zero-copy buffers after Emit/Abort, no
//	               Message use after Release (§5.1 slot pools)
//	lockorder    — mu→schedMu acquisition order, locks never escape
//	               their function (§5.3 polling threads)
//	atomicfield  — no copies of atomic fields, no mixed plain/atomic
//	               access to counters
//	timebase     — datapath packages read time via internal/timebase
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/atomicfield"
	"github.com/insane-mw/insane/internal/lint/bufownership"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/loader"
	"github.com/insane-mw/insane/internal/lint/lockorder"
	"github.com/insane-mw/insane/internal/lint/timebasecheck"
)

// Analyzers returns the full insanevet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufownership.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		timebasecheck.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	// Analyzer names the rule ("bufownership", ..., or "directive" for
	// malformed suppression comments).
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the problem.
	Message string
}

// String formats the finding in the file:line:col style of go vet.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (insanevet/%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies the analyzers to every package and returns the findings
// that survive suppression, sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		idx := directive.NewIndex(pkg.Fset, pkg.Files)
		for _, ig := range idx.Malformed() {
			out = append(out, Finding{
				Analyzer: "directive",
				Pos:      pkg.Fset.Position(ig.Pos),
				Message:  "malformed //lint:ignore directive: " + ig.Malformed,
			})
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if idx.Suppresses(pos, name) {
					return
				}
				out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out, nil
}
