// Package stray carries an //insane:goroutine annotation that no go
// statement claims: it drifted two lines away from its statement and
// vouches for nothing.
package stray

//insane:goroutine owner=Ghost stop=Close
// (an unrelated comment pushes the go statement out of range)

func launch() {
	go func() {}()
}
