// Package sm seeds every syncmisuse diagnostic class plus the clean
// shapes the rule must accept.
package sm

import "sync"

// doubleClose closes the same channel twice on one path.
func doubleClose(ch chan int) {
	close(ch)
	close(ch) // want `second close of ch \(closing a closed channel panics\)`
}

// deferredDouble closes a channel that a deferred close will close
// again at return.
func deferredDouble(ch chan int) {
	defer close(ch)
	close(ch) // want `close of ch with a deferred close\(ch\) pending`
}

// sendAfterClose sends on a channel already closed on this path.
func sendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want `send on ch after close\(ch\) \(send on a closed channel panics\)`
}

// fieldClose tracks dotted chains too.
type owner struct {
	done chan struct{}
}

func fieldClose(o *owner) {
	close(o.done)
	close(o.done) // want `second close of o\.done`
}

// branchClose is clean: the two closes are on exclusive paths.
func branchClose(ch chan int, cond bool) {
	if cond {
		close(ch)
	} else {
		close(ch)
	}
}

// reassigned is clean: the second close targets a fresh channel.
func reassigned(ch chan int) {
	close(ch)
	ch = make(chan int)
	close(ch)
}

// addInside counts the goroutine up from inside it: Wait can return
// before Add runs.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg\.Add inside the spawned goroutine races Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// missingDone counts a goroutine up that never counts itself down.
func missingDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine uses wg counted up at wg\.Add but never calls wg\.Done \(Wait would hang\)`
		_ = wg
	}()
	wg.Wait()
}

// earlyReturn skips the non-deferred Done on the error path.
func earlyReturn(fail func() bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if fail() {
			return
		}
		wg.Done() // want `wg\.Done is skipped when the goroutine returns early; defer it`
	}()
	wg.Wait()
}

// deferredDone is the clean shape: Done is deferred, so every path
// counts down.
func deferredDone(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// delegated passes the WaitGroup on: Done happens in the callee.
func delegated(work func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work(&wg)
	}()
	wg.Wait()
}
