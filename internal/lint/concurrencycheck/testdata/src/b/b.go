// Package b spawns a goroutine whose unstoppable loop lives two calls
// away in a dependency package: the diagnostic must carry the full
// call chain, resolved through the fact graph.
package b

import "b/dep"

func work() {
	dep.Helper()
}

func launch() {
	go work() // want `work reaches b/dep\.Spin, which loops forever with no exit: work -> b/dep\.Helper -> b/dep\.Spin`
}
