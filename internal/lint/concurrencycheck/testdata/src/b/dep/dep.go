// Package dep hides an unstoppable loop two calls deep, so the
// cross-package chain rendering of goroutinecheck can be asserted.
package dep

// Spin loops forever with no exit.
func Spin() {
	for {
	}
}

// Helper reaches Spin.
func Helper() {
	Spin()
}
