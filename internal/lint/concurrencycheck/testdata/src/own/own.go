// Package own seeds the annotation-verification failures of
// goroutinecheck: the owner type or stop method missing, a stop method
// that signals nothing, and a malformed directive.
package own

// Box owns a stoppable goroutine.
type Box struct {
	stop chan struct{}
}

func (b *Box) wait() {
	for {
		select {
		case <-b.stop:
			return
		}
	}
}

// Close signals the goroutine's stop channel.
func (b *Box) Close() {
	close(b.stop)
}

// Noop signals nothing.
func (b *Box) Noop() {}

// spawnGood is the verified-clean shape.
func spawnGood(b *Box) {
	//insane:goroutine owner=Box stop=Close
	go b.wait()
}

// spawnUnknownOwner names a type that does not exist.
func spawnUnknownOwner(b *Box) {
	//insane:goroutine owner=Missing stop=Close
	go b.wait() // want `owner type Missing not found in package own`
}

// spawnUnknownStop names a method the owner does not have.
func spawnUnknownStop(b *Box) {
	//insane:goroutine owner=Box stop=Vanish
	go b.wait() // want `owner type Box has no method Vanish`
}

// spawnBadStop names a method that exists but never signals the
// channel the goroutine waits on.
func spawnBadStop(b *Box) {
	//insane:goroutine owner=Box stop=Noop
	go b.wait() // want `stop method \(\*Box\)\.Noop does not signal the goroutine's stop mechanism \(<-own\.Box\.stop\)`
}

// spawnMalformed carries a directive missing its stop= option.
func spawnMalformed(b *Box) {
	//insane:goroutine owner=Box
	go b.wait() // want `malformed //insane:goroutine directive: missing stop=`
}
