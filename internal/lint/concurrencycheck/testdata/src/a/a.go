// Package a seeds every intra-package goroutinecheck diagnostic class
// plus the clean shapes the rule must accept.
package a

import (
	"context"
	"net/http"
	"sync/atomic"
)

// server owns three goroutines, one per recognized stop mechanism.
type server struct {
	cancel  context.CancelFunc
	stopped atomic.Bool
	quit    chan struct{}
}

// Stop signals all three mechanisms, so it verifies against any of the
// loops below.
func (s *server) Stop() {
	s.cancel()
	s.stopped.Store(true)
	close(s.quit)
}

// loopCtx waits on context cancellation.
func (s *server) loopCtx(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

// loopFlag polls an atomic stop flag.
func (s *server) loopFlag() {
	for {
		if s.stopped.Load() {
			return
		}
	}
}

// loopChan drains until the quit channel closes.
func (s *server) loopChan() {
	for range s.quit {
	}
}

// launch spawns the three stoppable loops (each needs — and carries —
// an ownership annotation) and one provably bounded worker.
func launch(s *server, ctx context.Context) {
	//insane:goroutine owner=server stop=Stop
	go s.loopCtx(ctx)
	//insane:goroutine owner=server stop=Stop
	go s.loopFlag()
	//insane:goroutine owner=server stop=Stop
	go s.loopChan()
	go bounded(3)
}

// bounded terminates on its own: no annotation needed.
func bounded(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

// pump is stoppable but its spawn below is unannotated.
type pump struct {
	stop chan struct{}
}

func (p *pump) run() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}

func startPump(p *pump) {
	go p.run() // want `unannotated goroutine \(\*pump\)\.run runs until <-a\.pump\.stop`
}

// spin loops with no exit at all.
func spin() {
	for {
	}
}

func startSpin() {
	go spin() // want `spin has an infinite loop with no exit`
}

// startUnguarded exits its loop, but nothing ties the exit to a stop
// signal — no annotation can vouch for it.
func startUnguarded(work func() bool) {
	go func() { // want `has an infinite loop whose exits are not guarded by a stop signal`
		for {
			if work() {
				break
			}
		}
	}()
}

// startUnstoppable calls a library entry point that can never be shut
// down (the implicit http.Server is unreachable).
func startUnstoppable() {
	go func() { // want `calls net/http\.ListenAndServe, which can never be stopped`
		_ = http.ListenAndServe("127.0.0.1:0", nil)
	}()
}

// metrics spawns a stoppable library server: the annotation's stop
// method shuts the same server down.
type metrics struct {
	srv *http.Server
}

func (m *metrics) Close() error {
	return m.srv.Close()
}

func (m *metrics) start() {
	//insane:goroutine owner=metrics stop=Close
	go func() {
		_ = m.srv.ListenAndServe()
	}()
}

// dynamic spawns through a func value: unanalyzable without a vouching
// annotation.
func dynamic(f func()) {
	go f() // want `go statement spawns a dynamic call that cannot be analyzed`
}

// vouchedDynamic shows the annotation escape hatch for func values.
type tracker struct {
	stop chan struct{}
}

func (t *tracker) Close() {
	close(t.stop)
}

func vouchedDynamic(t *tracker, f func()) {
	//insane:goroutine owner=tracker stop=Close
	go f()
}

// suppressed shows the //lint:ignore path for a hard finding.
func suppressed() {
	//lint:ignore insanevet/goroutinecheck fixture proving the suppression path
	go spin()
}
