package concurrencycheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
)

// summarize builds the GoSummary of one function body: its loops with
// their stop signals, run-forever calls, shutdown signals performed,
// and outgoing module-internal calls. Function literals and nested go
// statements are skipped — literals only run if called (dynamically),
// and a nested go statement is its own root.
func summarize(pass *analysis.Pass, body *ast.BlockStmt) *GoSummary {
	s := &goScanner{
		pass: pass,
		sum:  &GoSummary{},
		seen: make(map[*types.Func]bool),
	}
	// Labels are needed to decide whether a labeled break exits a loop.
	labels := make(map[ast.Node]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			labels[ls.Stmt] = ls.Label.Name
		}
		return true
	})
	s.labels = labels
	s.walk(body)
	return s.sum
}

type goScanner struct {
	pass   *analysis.Pass
	sum    *GoSummary
	seen   map[*types.Func]bool
	labels map[ast.Node]string
}

func (s *goScanner) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				s.sum.Loops = append(s.sum.Loops, s.analyzeLoop(n, n.Body))
			}
		case *ast.RangeStmt:
			if isChanType(s.pass.TypesInfo.TypeOf(n.X)) {
				// A range over a channel runs until the channel is
				// closed: infinite, with the close as its one exit.
				l := LoopSum{Infinite: true, HasExit: true}
				if m := chanMech(s.pass.TypesInfo, n.X); m.Kind != "" {
					l.Mechs = []Mech{m}
				}
				s.sum.Loops = append(s.sum.Loops, l)
			}
		case *ast.CallExpr:
			s.call(n)
		}
		return true
	})
}

// call classifies one call: shutdown signal, run-forever library call,
// or module-internal edge.
func (s *goScanner) call(call *ast.CallExpr) {
	info := s.pass.TypesInfo

	// Builtin close(ch) is the canonical stop signal.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" && len(call.Args) == 1 {
				s.sum.Stops = append(s.sum.Stops, chanMech(info, call.Args[0]))
			}
			return
		}
	}

	// Calling a context.CancelFunc value cancels the context.
	if t := info.TypeOf(call.Fun); t != nil && isCancelFunc(t) {
		s.sum.Stops = append(s.sum.Stops, Mech{Kind: "context", Short: "cancel()"})
		return
	}

	callee := callutil.StaticCallee(info, call)
	if callee == nil {
		return
	}

	// A closure handed to (*sync.Once).Do runs synchronously in the
	// caller — or an earlier call already ran it, in which case the
	// signal was already sent — so its signals count as the caller's
	// (the exactly-once channel-close idiom in shutdown paths).
	if callee.FullName() == "(*sync.Once).Do" && len(call.Args) == 1 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			s.walk(lit.Body)
		}
		return
	}

	// Storing an atomic field is a stop-flag signal.
	if callee.Name() == "Store" && isAtomicType(recvTypeOf(callee)) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			s.sum.Stops = append(s.sum.Stops, flagMech(info, sel.X))
		}
		return
	}

	origin := callee.Origin()
	pkg := origin.Pkg()
	if pkg == nil {
		return
	}
	if pkg == s.pass.Pkg || s.hasSummary(origin) {
		if !s.seen[origin] {
			s.seen[origin] = true
			s.sum.Calls = append(s.sum.Calls, origin)
		}
		return
	}
	full := origin.FullName()
	if m, ok := foreverFuncs[full]; ok {
		s.sum.Forever = append(s.sum.Forever, ForeverCall{Name: full, Mech: m})
	}
	if m, ok := serverStopFuncs[full]; ok {
		s.sum.Stops = append(s.sum.Stops, m)
	}
}

// hasSummary reports whether a GoSummary fact was exported for fn
// (true for every function of an already-analyzed module package).
func (s *goScanner) hasSummary(fn *types.Func) bool {
	var sum GoSummary
	return s.pass.ImportObjectFact(fn, &sum)
}

// analyzeLoop inspects an infinite loop: whether any statement exits
// it, and which recognized stop signals guard exits.
func (s *goScanner) analyzeLoop(loop ast.Stmt, body *ast.BlockStmt) LoopSum {
	l := LoopSum{Infinite: true}
	label := s.labels[loop]
	info := s.pass.TypesInfo

	// exits reports whether executing st can leave the loop: return,
	// panic, goto, or a break that targets this loop. depth counts the
	// break targets (for/switch/select) nested below the loop, so an
	// unlabeled break only counts at depth 0 — `break` inside a select
	// leaves the select, not the loop.
	var exits func(st ast.Stmt, depth int) bool
	exitsList := func(list []ast.Stmt, depth int) bool {
		any := false
		for _, st := range list {
			if exits(st, depth) {
				any = true
			}
		}
		return any
	}
	exits = func(st ast.Stmt, depth int) bool {
		switch st := st.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			switch st.Tok {
			case token.BREAK:
				if st.Label == nil {
					return depth == 0
				}
				return label != "" && st.Label.Name == label
			case token.GOTO:
				return true // may jump out; conservative
			}
			return false
		case *ast.ExprStmt:
			return isTerminalCall(info, st.X)
		case *ast.IfStmt:
			out := exitsList(st.Body.List, depth)
			if st.Else != nil && exits(st.Else, depth) {
				out = true
			}
			if out {
				if m, ok := condFlagMech(info, st.Cond); ok {
					l.Mechs = appendMechs(l.Mechs, []Mech{m})
				}
			}
			return out
		case *ast.SelectStmt:
			any := false
			for _, c := range st.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if exitsList(cc.Body, depth+1) {
					any = true
					if m, ok := commMech(info, cc.Comm); ok {
						l.Mechs = appendMechs(l.Mechs, []Mech{m})
					}
				}
			}
			return any
		case *ast.SwitchStmt:
			return s.clausesExit(st.Body, depth, exitsList)
		case *ast.TypeSwitchStmt:
			return s.clausesExit(st.Body, depth, exitsList)
		case *ast.ForStmt:
			return exitsList(st.Body.List, depth+1)
		case *ast.RangeStmt:
			return exitsList(st.Body.List, depth+1)
		case *ast.BlockStmt:
			return exitsList(st.List, depth)
		case *ast.LabeledStmt:
			return exits(st.Stmt, depth)
		}
		return false
	}
	l.HasExit = exitsList(body.List, 0)
	return l
}

func (s *goScanner) clausesExit(body *ast.BlockStmt, depth int, exitsList func([]ast.Stmt, int) bool) bool {
	any := false
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			if exitsList(cc.Body, depth+1) {
				any = true
			}
		}
	}
	return any
}

// commMech extracts the stop signal of a select comm clause: the
// channel received in `case <-x:` or `case v := <-x:`.
func commMech(info *types.Info, comm ast.Stmt) (Mech, bool) {
	var recv ast.Expr
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		recv = comm.X
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			recv = comm.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return Mech{}, false
	}
	m := chanMech(info, ue.X)
	return m, m.Kind != ""
}

// condFlagMech recognizes an atomic stop-flag read guarding an if
// condition, e.g. `if p.stopped.Load() { return }`.
func condFlagMech(info *types.Info, cond ast.Expr) (Mech, bool) {
	var out Mech
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return true
		}
		if !isAtomicType(info.TypeOf(sel.X)) {
			return true
		}
		out = flagMech(info, sel.X)
		found = true
		return false
	})
	return out, found
}

// chanMech builds the stop mechanism of a channel expression: a
// ctx.Done() call, a field of a named type, or a bare variable.
func chanMech(info *types.Info, e ast.Expr) Mech {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if isContext(info.TypeOf(sel.X)) {
				return Mech{Kind: "context", Short: "ctx.Done()"}
			}
		}
		return Mech{} // channel-returning call: not a recognized stop signal
	case *ast.SelectorExpr:
		if full, short := namedOwner(info, e.X); full != "" {
			return Mech{Kind: "chan", Type: full, Field: e.Sel.Name, Short: short + "." + e.Sel.Name}
		}
		return Mech{Kind: "chan", Field: e.Sel.Name, Short: e.Sel.Name}
	case *ast.Ident:
		return Mech{Kind: "chan", Field: e.Name, Short: e.Name}
	}
	return Mech{}
}

// flagMech builds the stop mechanism of an atomic flag expression
// (`x.stopped` in `x.stopped.Load()` / `.Store(...)`).
func flagMech(info *types.Info, e ast.Expr) Mech {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if full, short := namedOwner(info, e.X); full != "" {
			return Mech{Kind: "flag", Type: full, Field: e.Sel.Name, Short: short + "." + e.Sel.Name}
		}
		return Mech{Kind: "flag", Field: e.Sel.Name, Short: e.Sel.Name}
	case *ast.Ident:
		return Mech{Kind: "flag", Field: e.Name, Short: e.Name}
	}
	return Mech{Kind: "flag"}
}

// namedOwner resolves an expression to its named type: the full
// (package-path-qualified) identity and a short pkg.Type display form.
func namedOwner(info *types.Info, e ast.Expr) (full, short string) {
	t := info.TypeOf(e)
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	full = types.TypeString(named, nil)
	short = obj.Name()
	if obj.Pkg() != nil {
		short = obj.Pkg().Name() + "." + obj.Name()
	}
	return full, short
}

// recvTypeOf returns the receiver type of a method, or nil.
func recvTypeOf(fn *types.Func) types.Type {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isAtomicType reports whether t (possibly a pointer) is one of the
// sync/atomic value types.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCancelFunc reports whether t is context.CancelFunc.
func isCancelFunc(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isTerminalCall reports whether e is a call that never returns:
// panic, os.Exit, runtime.Goexit, or a log.Fatal variant.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	}
	if fn := callutil.StaticCallee(info, call); fn != nil {
		switch fn.FullName() {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// foreverFuncs are library functions that run until an associated
// shutdown. An empty Mech marks a call nothing can stop (the
// package-level net/http entry points build an unreachable Server).
var foreverFuncs = map[string]Mech{
	"(*net/http.Server).Serve":             {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
	"(*net/http.Server).ServeTLS":          {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
	"(*net/http.Server).ListenAndServe":    {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
	"(*net/http.Server).ListenAndServeTLS": {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
	"net/http.ListenAndServe":              {},
	"net/http.ListenAndServeTLS":           {},
	"net/http.Serve":                       {},
	"net/http.ServeTLS":                    {},
}

// serverStopFuncs are library calls that end a matching foreverFuncs
// call.
var serverStopFuncs = map[string]Mech{
	"(*net/http.Server).Close":    {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
	"(*net/http.Server).Shutdown": {Kind: "server", Type: "net/http.Server", Short: "net/http.Server"},
}
