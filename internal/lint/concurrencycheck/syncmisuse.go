package concurrencycheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// Sync is the sync-misuse rule: intra-function channel and WaitGroup
// mistakes that panic or hang at runtime.
//
//   - close of an already-closed channel (panics);
//   - send on a channel after close in the same function (panics);
//   - wg.Add inside the spawned goroutine (races Wait: Wait can return
//     before the goroutine has registered itself);
//   - a spawned goroutine that uses a WaitGroup counted up before the
//     go statement but never calls Done (Wait hangs);
//   - a non-deferred wg.Done below an early return (Wait hangs when
//     the return path is taken).
//
// The channel rules are branch-aware and sequential: state forks at
// branches and is not merged back, so a close on one path never taints
// the other. Deferred closes run at return and are tracked separately
// (two deferred closes of one channel still panic).
var Sync = &analysis.Analyzer{
	Name: "syncmisuse",
	Doc:  "flag double close, send after close, wg.Add inside the spawned goroutine, and WaitGroup paths missing Done",
	Run:  runSync,
}

func runSync(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkCloses(pass, body)
				checkWaitGroups(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// closeState maps a channel's canonical expression to the position of
// the close that retired it on the current path.
type closeState map[string]token.Pos

func (c closeState) clone() closeState {
	out := make(closeState, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// checkCloses scans one function body for double close and
// send-after-close, with branch-forked sequential state.
func checkCloses(pass *analysis.Pass, body *ast.BlockStmt) {
	closed := make(closeState)
	deferred := make(closeState)
	scanCloseBlock(pass, body.List, closed, deferred)
}

func scanCloseBlock(pass *analysis.Pass, stmts []ast.Stmt, closed, deferred closeState) {
	for _, s := range stmts {
		scanCloseStmt(pass, s, closed, deferred)
	}
}

func scanCloseStmt(pass *analysis.Pass, s ast.Stmt, closed, deferred closeState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		applyCloses(pass, s.X, closed, deferred, false)
	case *ast.DeferStmt:
		applyCloses(pass, s.Call, closed, deferred, true)
	case *ast.SendStmt:
		if key := chanKey(pass, s.Chan); key != "" {
			if _, ok := closed[key]; ok {
				pass.Reportf(s.Pos(), "send on %s after close(%s) (send on a closed channel panics)", key, key)
			}
		}
		applyCloses(pass, s.Value, closed, deferred, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			applyCloses(pass, e, closed, deferred, false)
		}
		// Reassigning the variable makes it a fresh channel.
		for _, l := range s.Lhs {
			if key := canonExpr(l); key != "" {
				delete(closed, key)
				delete(deferred, key)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			scanCloseStmt(pass, s.Init, closed, deferred)
		}
		scanCloseBlock(pass, s.Body.List, closed.clone(), deferred)
		if s.Else != nil {
			scanCloseStmt(pass, s.Else, closed.clone(), deferred)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanCloseStmt(pass, s.Init, closed, deferred)
		}
		scanCloseBlock(pass, s.Body.List, closed.clone(), deferred)
	case *ast.RangeStmt:
		scanCloseBlock(pass, s.Body.List, closed.clone(), deferred)
	case *ast.BlockStmt:
		scanCloseBlock(pass, s.List, closed, deferred)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanCloseBlock(pass, cc.Body, closed.clone(), deferred)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanCloseBlock(pass, cc.Body, closed.clone(), deferred)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanCloseBlock(pass, cc.Body, closed.clone(), deferred)
			}
		}
	case *ast.LabeledStmt:
		scanCloseStmt(pass, s.Stmt, closed, deferred)
	}
}

// applyCloses records close(ch) calls in the expression, reporting
// double closes. Deferred closes run at return: they do not retire the
// channel for the statements that follow, but a second deferred close
// of the same channel still panics.
func applyCloses(pass *analysis.Pass, e ast.Expr, closed, deferred closeState, isDefer bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
			if !ok || b.Name() != "close" || len(n.Args) != 1 {
				return true
			}
			key := chanKey(pass, n.Args[0])
			if key == "" {
				return true
			}
			if _, ok := closed[key]; ok {
				pass.Reportf(n.Pos(), "second close of %s (closing a closed channel panics)", key)
				return true
			}
			if _, ok := deferred[key]; ok {
				pass.Reportf(n.Pos(), "close of %s with a deferred close(%s) pending (closing a closed channel panics)", key, key)
				return true
			}
			if isDefer {
				deferred[key] = n.Pos()
			} else {
				closed[key] = n.Pos()
			}
		}
		return true
	})
}

// chanKey canonicalizes a channel expression for close tracking, or ""
// when the expression is not a trackable dotted chain.
func chanKey(pass *analysis.Pass, e ast.Expr) string {
	if !isChanType(pass.TypesInfo.TypeOf(e)) {
		return ""
	}
	return canonExpr(e)
}

// canonExpr renders a dotted identifier chain ("k.stop") or "".
func canonExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return canonExpr(e.X)
	case *ast.SelectorExpr:
		base := canonExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// addEvent is one wg.Add call in the spawning function.
type addEvent struct {
	key string
	pos token.Pos
}

// checkWaitGroups applies the WaitGroup rules to one function body:
// every `go func(){...}` literal is checked against the WaitGroups the
// enclosing function counted up before the statement.
func checkWaitGroups(pass *analysis.Pass, body *ast.BlockStmt) {
	// Adds performed by this function outside any literal, in order.
	var adds []addEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, method := wgCall(pass, n); key != "" && method == "Add" {
				adds = append(adds, addEvent{key: key, pos: n.Pos()})
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			// Nested literals get their own checkWaitGroups pass from
			// runSync; don't double-report their go statements.
			return false
		}
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			// A named callee owns its Done discipline (checked where it
			// is defined); only the Add placement matters here.
			return true
		}
		checkSpawnedLit(pass, gs, lit, adds)
		return false
	})
}

// checkSpawnedLit checks one `go func(){...}` literal.
func checkSpawnedLit(pass *analysis.Pass, gs *ast.GoStmt, lit *ast.FuncLit, adds []addEvent) {
	type usage struct {
		done         bool
		deferredDone bool
		donePos      token.Pos
		passed       bool // handed to another function: Done may happen there
	}
	uses := make(map[string]*usage)
	use := func(key string) *usage {
		u := uses[key]
		if u == nil {
			u = &usage{}
			uses[key] = u
		}
		return u
	}
	var returns []token.Pos

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != lit {
					return false
				}
			case *ast.GoStmt:
				return false
			case *ast.ReturnStmt:
				returns = append(returns, n.Pos())
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if key, method := wgCall(pass, n); key != "" {
					switch method {
					case "Add":
						pass.Reportf(n.Pos(), "%s.Add inside the spawned goroutine races Wait; call Add before the go statement", key)
					case "Done":
						u := use(key)
						u.done = true
						if inDefer {
							u.deferredDone = true
						} else if !u.donePos.IsValid() {
							u.donePos = n.Pos()
						}
					}
					return true
				}
				// A WaitGroup argument delegates Done elsewhere.
				for _, arg := range n.Args {
					if key := wgKey(pass, arg); key != "" {
						use(key).passed = true
					}
				}
			case *ast.Ident, *ast.SelectorExpr:
				// Any other mention of the WaitGroup counts as a use, so
				// an Add before the spawn is expected to be paired with a
				// Done in here.
				if key := wgKey(pass, n.(ast.Expr)); key != "" {
					use(key)
				}
			}
			return true
		})
	}
	walk(lit.Body, false)

	// Non-deferred Done below an early return: the return path skips it.
	for key, u := range uses {
		if u.done && !u.deferredDone && u.donePos.IsValid() {
			for _, r := range returns {
				if r < u.donePos {
					pass.Reportf(u.donePos, "%s.Done is skipped when the goroutine returns early; defer it", key)
					break
				}
			}
		}
	}

	// An Add before the spawn whose goroutine uses the WaitGroup but
	// never reaches Done leaves Wait hanging.
	for _, a := range adds {
		if a.pos > gs.Pos() {
			continue
		}
		u, ok := uses[a.key]
		if !ok {
			continue // the goroutine does not touch this WaitGroup
		}
		if !u.done && !u.passed {
			pass.Reportf(gs.Pos(), "goroutine uses %s counted up at %s.Add but never calls %s.Done (Wait would hang)", a.key, a.key, a.key)
		}
	}
}

// wgCall recognizes a WaitGroup method call, returning the receiver's
// canonical expression and the method name.
func wgCall(pass *analysis.Pass, call *ast.CallExpr) (key, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", ""
	}
	if key := wgKey(pass, sel.X); key != "" {
		return key, sel.Sel.Name
	}
	return "", ""
}

// wgKey canonicalizes a sync.WaitGroup expression (possibly through &
// or a pointer), or returns "".
func wgKey(pass *analysis.Pass, e ast.Expr) string {
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return ""
	}
	return canonExpr(e)
}
