// Package concurrencycheck holds the insanevet rules that prove the
// runtime's goroutine lifecycles at compile time.
//
// INSANE's runtime is a pool of polling threads plus per-technology
// datapath goroutines (§5.3); the microkernel framing only works if
// every one of them has a provable owner and shutdown path. The
// goroutinecheck rule turns that into a whole-program property, built
// on the same analysis.Fact mechanism as hotpathcheck: every package
// pass summarizes each function (infinite loops and the stop signals
// that bound them, calls to run-forever library functions, shutdown
// signals the function performs, outgoing module-internal calls) into
// a GoSummary fact; `go` statements are then judged against the fact
// graph:
//
//   - a goroutine whose call closure contains no infinite loop and no
//     run-forever call is provably bounded and needs nothing;
//
//   - a goroutine whose main loop waits on a recognized stop signal —
//     a `case <-x.stop:` select arm, a `ctx.Done()` receive, an atomic
//     flag `Load` guarding a return, a range over a channel, or a call
//     like (*net/http.Server).Serve that ends on server shutdown —
//     must carry an ownership annotation on the `go` statement:
//
//     //insane:goroutine owner=<type> stop=<method>
//
//     naming the struct that owns the goroutine and the shutdown
//     method that joins it. The analyzer verifies the type exists in
//     the package, the method exists on it, and the method's
//     transitive call closure actually signals the observed stop
//     mechanism (closes the channel, cancels the context, stores the
//     flag, or shuts the server down);
//
//   - an infinite loop with no exit at all, or whose exits are not
//     guarded by a stop signal, is reported outright — no annotation
//     can vouch for a loop that cannot be stopped. Only a reasoned
//     `//lint:ignore insanevet/goroutinecheck` waives it.
//
// Deeper in the call closure the rule is deliberately lenient: an
// infinite loop with recognized exits reached through a call (a
// bounded wait like core.ConsumeCancel) contributes its stop
// mechanisms to the match but is not itself flagged — by convention a
// goroutine's main loop lives in the function the `go` statement
// spawns. Loops with no exit and run-forever calls are flagged
// wherever they hide, with the full call chain like hotpathcheck.
//
// The package also provides the syncmisuse rule (see syncmisuse.go):
// intra-function double close, send after close, `wg.Add` inside the
// spawned goroutine, and WaitGroup paths that can miss Done.
package concurrencycheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// Mech identifies one stop signal: something a goroutine loop waits on,
// or something a shutdown method performs. Matching the two proves the
// annotated stop method really ends the goroutine.
type Mech struct {
	// Kind is "chan" (closed channel), "flag" (atomic stop flag),
	// "context" (context cancellation) or "server" (serve-until-shutdown
	// library object).
	Kind string
	// Type is the fully-qualified owner type of the channel/flag field
	// (or the library type for "server"); empty when the expression
	// does not resolve to a named type's field, which makes the
	// mechanism recognizable but unmatchable.
	Type string
	// Field is the channel or flag field name.
	Field string
	// Short is the display form used in diagnostics, e.g. "poller.stop".
	Short string
}

// String renders the mechanism the way the goroutine experiences it.
func (m Mech) String() string {
	switch m.Kind {
	case "chan":
		return "<-" + m.Short
	case "flag":
		return m.Short + ".Load"
	case "context":
		return "ctx.Done()"
	case "server":
		return "shutdown of " + m.Short
	}
	return m.Short
}

// matches reports whether a stop action signals this wait mechanism.
func (m Mech) matches(stop Mech) bool {
	if m.Kind != stop.Kind {
		return false
	}
	switch m.Kind {
	case "context":
		return true
	case "server":
		return m.Type == stop.Type
	default:
		return m.Type != "" && m.Type == stop.Type && m.Field == stop.Field
	}
}

// LoopSum summarizes one loop of a function.
type LoopSum struct {
	// Infinite marks a loop with no condition bounding it: `for {}` or
	// a range over a channel.
	Infinite bool
	// HasExit reports whether any statement can leave the loop
	// (return, effective break, panic) — or, for a channel range,
	// that closing the channel ends it.
	HasExit bool
	// Mechs lists the recognized stop signals guarding the exits.
	Mechs []Mech
}

// ForeverCall is a call to a library function that runs until an
// associated shutdown (or, with an empty Mech, until process exit).
type ForeverCall struct {
	// Name is the callee, e.g. "(*net/http.Server).Serve".
	Name string
	// Mech is the shutdown that ends the call; Kind "" means nothing
	// can end it.
	Mech Mech
}

// GoSummary is the per-function fact of the goroutinecheck rule.
type GoSummary struct {
	// Loops summarizes the function's own loops (nested function
	// literals excluded — a literal only runs if called, and calls
	// through func values are dynamic anyway).
	Loops []LoopSum
	// Forever lists calls to run-until-shutdown library functions.
	Forever []ForeverCall
	// Stops lists the shutdown signals this function performs: channel
	// closes, atomic flag stores, context cancels, server shutdowns.
	Stops []Mech
	// Calls are the resolved module-internal callees.
	Calls []*types.Func
}

// AFact marks GoSummary as an analysis fact.
func (*GoSummary) AFact() {}

// goroutineName is the rule name used in diagnostics and suppression.
const goroutineName = "goroutinecheck"

// Goroutine is the goroutine-ownership rule.
var Goroutine = &analysis.Analyzer{
	Name:      goroutineName,
	Doc:       "every go statement must be provably bounded or carry a verified //insane:goroutine owner/stop annotation",
	Run:       runGoroutine,
	FactTypes: []analysis.Fact{(*GoSummary)(nil)},
}

func runGoroutine(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: summarize and export every declared function, so the
	// `go` statements of this package (and of dependents) can follow
	// calls through the fact graph.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &GoSummary{}
			if fd.Body != nil {
				sum = summarize(pass, fd.Body)
			}
			pass.ExportObjectFact(fn, sum)
		}
	}

	// Phase 2: judge every go statement, wherever it appears
	// (declared functions and function literals alike).
	gidx := directive.NewGoroutineIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, gidx, gs)
			}
			return true
		})
	}

	// Phase 3: annotations no go statement claimed are dead weight —
	// a directive that drifted away from its statement vouches for
	// nothing and must not look like it does.
	for _, g := range gidx.Unclaimed() {
		if g.Malformed != "" {
			pass.Reportf(g.Pos, "malformed //insane:goroutine directive: %s", g.Malformed)
		} else {
			pass.Reportf(g.Pos, "//insane:goroutine annotation is not attached to a go statement")
		}
	}
	return nil, nil
}

// checkGo applies the ownership rule to one go statement.
func checkGo(pass *analysis.Pass, gidx *directive.GoroutineIndex, gs *ast.GoStmt) {
	qual := types.RelativeTo(pass.Pkg)
	dir, annotated := gidx.At(pass.Fset.Position(gs.Pos()))
	malformedDir := false
	if annotated && dir.Malformed != "" {
		pass.Reportf(gs.Pos(), "malformed //insane:goroutine directive: %s", dir.Malformed)
		annotated, malformedDir = false, true
	}

	// Resolve what the statement spawns.
	var direct *GoSummary
	directName := "the goroutine"
	resolved := false
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		direct = summarize(pass, lit.Body)
		resolved = true
	} else if callee := callutil.StaticCallee(pass.TypesInfo, gs.Call); callee != nil {
		origin := callee.Origin()
		var sum GoSummary
		switch {
		case pass.ImportObjectFact(origin, &sum):
			direct = &sum
			directName = callutil.FuncName(origin, qual)
			resolved = true
		default:
			if m, ok := foreverFuncs[origin.FullName()]; ok {
				// A run-forever library function spawned directly.
				direct = &GoSummary{Forever: []ForeverCall{{Name: origin.FullName(), Mech: m}}}
			} else {
				// Other library functions are assumed to terminate.
				direct = &GoSummary{}
			}
			directName = callutil.FuncName(origin, qual)
			resolved = true
		}
	}

	if !resolved {
		// A spawn through a func value cannot be followed. An
		// annotation with an existing owner and stop method vouches
		// for it; otherwise it is reported.
		if annotated {
			for _, p := range verifyDirective(pass, dir, nil, false) {
				pass.Reportf(gs.Pos(), "//insane:goroutine: %s", p)
			}
			return
		}
		pass.Reportf(gs.Pos(), "go statement spawns a dynamic call that cannot be analyzed; spawn a named function or annotate with //insane:goroutine owner=<type> stop=<method>")
		return
	}

	// Strict rule for the spawned function itself; lenient rule for
	// everything deeper in the call closure.
	var hard []string // problems no annotation can vouch for
	var mechs []Mech  // recognized stop mechanisms observed
	needOwner := false

	for _, l := range direct.Loops {
		if !l.Infinite {
			continue
		}
		switch {
		case len(l.Mechs) > 0:
			needOwner = true
			mechs = appendMechs(mechs, l.Mechs)
		case l.HasExit:
			hard = append(hard, fmt.Sprintf("%s has an infinite loop whose exits are not guarded by a stop signal (ctx.Done, stop channel, or atomic flag)", directName))
		default:
			hard = append(hard, fmt.Sprintf("%s has an infinite loop with no exit", directName))
		}
	}
	for _, fc := range direct.Forever {
		if fc.Mech.Kind == "" {
			hard = append(hard, fmt.Sprintf("%s calls %s, which can never be stopped", directName, fc.Name))
			continue
		}
		needOwner = true
		mechs = appendMechs(mechs, []Mech{fc.Mech})
	}

	parent := map[*types.Func]*types.Func{}
	seen := map[*types.Func]bool{}
	var queue []*types.Func
	for _, c := range direct.Calls {
		if !seen[c] {
			seen[c] = true
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		var sum GoSummary
		if !pass.ImportObjectFact(fn, &sum) {
			continue
		}
		for _, l := range sum.Loops {
			if !l.Infinite {
				continue
			}
			if len(l.Mechs) > 0 {
				// A stoppable loop reached through a call is a bounded
				// wait (ConsumeCancel-style); it contributes its stop
				// mechanisms to the ownership match but is not flagged.
				mechs = appendMechs(mechs, l.Mechs)
				continue
			}
			if !l.HasExit {
				hard = append(hard, fmt.Sprintf("%s reaches %s, which loops forever with no exit: %s", directName, callutil.FuncName(fn, qual), chainText(directName, fn, parent, qual)))
			}
		}
		for _, fc := range sum.Forever {
			if fc.Mech.Kind == "" {
				hard = append(hard, fmt.Sprintf("%s reaches a call to %s, which can never be stopped: %s", directName, fc.Name, chainText(directName, fn, parent, qual)))
				continue
			}
			needOwner = true
			mechs = appendMechs(mechs, []Mech{fc.Mech})
		}
		for _, c := range sum.Calls {
			if !seen[c] {
				seen[c] = true
				parent[c] = fn
				queue = append(queue, c)
			}
		}
	}

	if annotated {
		for _, p := range verifyDirective(pass, dir, mechs, needOwner) {
			pass.Reportf(gs.Pos(), "//insane:goroutine: %s", p)
		}
	} else if needOwner && !malformedDir {
		// A malformed directive was already reported; fixing it is the
		// remedy, not adding a second one.
		pass.Reportf(gs.Pos(), "unannotated goroutine %s runs until %s; annotate the go statement with //insane:goroutine owner=<type> stop=<method> naming who signals it", directName, mechList(mechs))
	}
	for _, h := range hard {
		pass.Reportf(gs.Pos(), "%s", h)
	}
}

// verifyDirective checks a well-formed annotation: the owner type and
// stop method must exist, and — when the goroutine runs until stopped —
// the stop method's call closure must perform one of the observed stop
// mechanisms. Returns the problems found.
func verifyDirective(pass *analysis.Pass, dir directive.Goroutine, mechs []Mech, needOwner bool) []string {
	obj := pass.Pkg.Scope().Lookup(dir.Owner)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return []string{fmt.Sprintf("owner type %s not found in package %s", dir.Owner, pass.Pkg.Name())}
	}
	m := lookupMethod(tn.Type(), dir.Stop, pass.Pkg)
	if m == nil {
		return []string{fmt.Sprintf("owner type %s has no method %s", dir.Owner, dir.Stop)}
	}
	if !needOwner || len(mechs) == 0 {
		return nil
	}
	for _, stop := range stopActions(pass, m) {
		for _, mech := range mechs {
			if mech.matches(stop) {
				return nil
			}
		}
	}
	return []string{fmt.Sprintf("stop method (*%s).%s does not signal the goroutine's stop mechanism (%s); it must close the channel, cancel the context, store the flag, or shut down the server the goroutine waits on", dir.Owner, dir.Stop, mechList(mechs))}
}

// lookupMethod finds a method on t or *t.
func lookupMethod(t types.Type, name string, pkg *types.Package) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pkg, name)
	fn, _ := obj.(*types.Func)
	return fn
}

// stopActions collects the stop signals performed by fn and its
// module-internal call closure, via the fact graph.
func stopActions(pass *analysis.Pass, fn *types.Func) []Mech {
	var out []Mech
	seen := map[*types.Func]bool{fn.Origin(): true}
	queue := []*types.Func{fn.Origin()}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		var sum GoSummary
		if !pass.ImportObjectFact(f, &sum) {
			continue
		}
		out = append(out, sum.Stops...)
		for _, c := range sum.Calls {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return out
}

// appendMechs appends the new mechanisms, deduplicated by identity.
func appendMechs(dst []Mech, add []Mech) []Mech {
	for _, m := range add {
		dup := false
		for _, d := range dst {
			if d.Kind == m.Kind && d.Type == m.Type && d.Field == m.Field {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	return dst
}

// mechList renders the observed mechanisms for a diagnostic.
func mechList(mechs []Mech) string {
	if len(mechs) == 0 {
		return "an unknown stop signal"
	}
	parts := make([]string, len(mechs))
	for i, m := range mechs {
		parts[i] = m.String()
	}
	return strings.Join(parts, " / ")
}

// chainText renders the call chain from the spawned function to fn.
func chainText(start string, fn *types.Func, parent map[*types.Func]*types.Func, qual types.Qualifier) string {
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, callutil.FuncName(f, qual))
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return start + " -> " + strings.Join(chain, " -> ")
}
