package concurrencycheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/concurrencycheck"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestGoroutineCheck covers the intra-package diagnostic classes (a),
// the annotation-verification failures (own), and the cross-package
// no-exit chain resolved through the fact graph (b -> b/dep).
func TestGoroutineCheck(t *testing.T) {
	analysistest.Run(t, "testdata", concurrencycheck.Goroutine, "a", "own", "b")
}

// TestSyncMisuse covers the channel and WaitGroup misuse classes.
func TestSyncMisuse(t *testing.T) {
	analysistest.Run(t, "testdata", concurrencycheck.Sync, "sm")
}

// TestStrayAnnotation drives the analyzer by hand over the stray
// fixture: the diagnostic lands on the annotation comment itself,
// where a trailing `// want` comment would be swallowed into the
// directive text, so analysistest cannot express it.
func TestStrayAnnotation(t *testing.T) {
	ldr := loader.NewAt(filepath.Join("testdata", "src"), "")
	pkg, err := ldr.LoadDir(filepath.Join("testdata", "src", "stray"), "stray")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	pass := &analysis.Pass{
		Analyzer:  concurrencycheck.Goroutine,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d.Message) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := concurrencycheck.Goroutine.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "not attached to a go statement") {
		t.Errorf("got %q, want one stray-annotation diagnostic", got)
	}
}
