// Package pairfacts is the shared resource-pair registry of the
// insanevet suite (DESIGN.md §13). Functions declare their effect on a
// named resource with //insane:acquire, //insane:release and
// //insane:transfer annotations (parsed by internal/lint/directive);
// this package turns those declarations into per-function facts that
// travel the whole-program dependency closure, so any analyzer that
// needs to know "does this call balance, create or consume a resource"
// — paircheck proving acquire/release balance, bufownership deriving
// its ownership-kill set — reads one registry instead of keeping a
// private list of runtime functions.
package pairfacts

import (
	"go/ast"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// Effects is the fact attached to every function with at least one
// pair annotation: its declared resource effects, in source order.
type Effects struct {
	List []directive.PairEffect
}

// AFact marks Effects as an analysis fact.
func (*Effects) AFact() {}

// Decl pairs one annotated declaration with its parse result, for the
// exporting pass's own verification walk.
type Decl struct {
	Fn   *ast.FuncDecl
	Obj  *types.Func
	Dirs directive.PairDirectives
}

// Export parses the pair annotations of every function declared in the
// pass's package, exports an Effects fact for each annotated function,
// and returns the annotated declarations plus any malformed
// annotations. Call it before walking bodies, so same-package calls
// resolve their effects exactly like cross-package ones.
func Export(pass *analysis.Pass) ([]Decl, []directive.Problem) {
	var decls []Decl
	var probs []directive.Problem
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			dirs, ps := directive.ParsePairDecl(fd.Doc)
			probs = append(probs, ps...)
			if len(dirs.Effects) == 0 && len(dirs.Waivers) == 0 {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, Decl{Fn: fd, Obj: obj, Dirs: dirs})
			if len(dirs.Effects) > 0 {
				pass.ExportObjectFact(obj, &Effects{List: dirs.Effects})
			}
		}
	}
	return decls, probs
}

// Lookup returns the declared effects of a function, resolving generic
// instantiations back to their origin declaration (facts are exported
// on the generic method, calls resolve to the instantiated one).
func Lookup(pass *analysis.Pass, fn *types.Func) []directive.PairEffect {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	var f Effects
	if pass.ImportObjectFact(fn, &f) {
		return f.List
	}
	return nil
}
