// Package lockorder implements the insanevet rule guarding the
// runtime's poller locking discipline.
//
// internal/core orders its techState locks strictly mu→schedMu: the
// endpoint mutex (mu) is never acquired while the scheduler mutex
// (schedMu) is held, because pollers take schedMu on every iteration
// and a cross-technology send takes mu — the inverse nesting deadlocks
// two pollers against each other (§5.3's multi-threaded datapath).
// This analyzer flags, within one function body:
//
//   - acquiring a mutex field named "mu" while a "schedMu" of the same
//     receiver (or the same struct type) is held — the inversion of the
//     established order;
//   - any Lock/RLock of a sync.Mutex/sync.RWMutex field with no
//     matching Unlock/RUnlock (direct or deferred) anywhere in the same
//     function — the runtime never hands locked state across function
//     boundaries.
//
// The analysis is intra-procedural and branch-aware: locks taken inside
// a branch are not considered held after it, and a deferred Unlock
// keeps the lock held for order-checking until the function returns
// (which is exactly how deadlocks happen).
package lockorder

import (
	"go/ast"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flag mu/schedMu lock-order inversions and Lock calls without a matching Unlock",
	Run:  run,
}

// lockEvent is one Lock/Unlock-family call on a mutex-typed selector.
type lockEvent struct {
	call  *ast.CallExpr
	verb  string // Lock, RLock, Unlock, RUnlock
	key   string // canonical mutex expression, e.g. "st.schedMu"
	field string // mutex field name, e.g. "schedMu"
	base  string // canonical owner expression, e.g. "st"
	typ   types.Type
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// held tracks the mutexes currently locked during the scan.
type held map[string]lockEvent

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Rule 2 first: every Lock needs a matching Unlock somewhere in the
	// function (same mutex expression, same read/write flavor).
	events := collect(pass, body)
	unlocked := make(map[string]bool)
	for _, ev := range events {
		if ev.verb == "Unlock" || ev.verb == "RUnlock" {
			unlocked[ev.key+"/"+ev.verb] = true
		}
	}
	for _, ev := range events {
		var want string
		switch ev.verb {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		if !unlocked[ev.key+"/"+want] {
			pass.Reportf(ev.call.Pos(), "%s.%s() has no matching %s in this function (runtime locks never escape their function)", ev.key, ev.verb, want)
		}
	}

	// Rule 1: branch-aware scan for schedMu→mu inversions.
	scanBlock(pass, body.List, make(held))
}

// collect gathers the lock events of a function body in source order,
// without descending into nested function literals.
func collect(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var out []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ev, ok := mutexCall(pass, call); ok {
				out = append(out, ev)
			}
		}
		return true
	})
	return out
}

// mutexCall recognizes a Lock/Unlock-family call on a selector whose
// receiver is a sync.Mutex or sync.RWMutex field.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	verb := sel.Sel.Name
	switch verb {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	recv, ok := sel.X.(*ast.SelectorExpr) // field access: owner.mutexField
	if !ok {
		return lockEvent{}, false
	}
	if !isSyncMutex(pass.TypesInfo.Types[sel.X].Type) {
		return lockEvent{}, false
	}
	key := canon(sel.X)
	if key == "" {
		return lockEvent{}, false
	}
	var ownerType types.Type
	if tv, ok := pass.TypesInfo.Types[recv.X]; ok {
		ownerType = tv.Type
	}
	return lockEvent{
		call:  call,
		verb:  verb,
		key:   key,
		field: recv.Sel.Name,
		base:  canon(recv.X),
		typ:   ownerType,
	}, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// scanBlock applies rule 1 over a statement list: sequential lock state
// within the block, copies for branches.
func scanBlock(pass *analysis.Pass, stmts []ast.Stmt, h held) {
	for _, s := range stmts {
		scanStmt(pass, s, h)
	}
}

func scanStmt(pass *analysis.Pass, s ast.Stmt, h held) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		applyExpr(pass, s.X, h, false)
	case *ast.DeferStmt:
		// A deferred Unlock releases only at return: the mutex stays
		// held for everything that follows in this function.
		applyExpr(pass, s.Call, h, true)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			applyExpr(pass, e, h, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, h)
		}
		scanBlock(pass, s.Body.List, h.clone())
		if s.Else != nil {
			scanStmt(pass, s.Else, h.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, h)
		}
		scanBlock(pass, s.Body.List, h.clone())
	case *ast.RangeStmt:
		scanBlock(pass, s.Body.List, h.clone())
	case *ast.BlockStmt:
		scanBlock(pass, s.List, h)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, cc.Body, h.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, cc.Body, h.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanBlock(pass, cc.Body, h.clone())
			}
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, h)
	}
}

// applyExpr updates the held set with every mutex call in the
// expression and reports order inversions as they happen.
func applyExpr(pass *analysis.Pass, e ast.Expr, h held, deferred bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, ok := mutexCall(pass, call)
		if !ok {
			return true
		}
		switch ev.verb {
		case "Lock", "RLock":
			if ev.field == "mu" {
				for _, prior := range h {
					if prior.field == "schedMu" && sameOwner(prior, ev) {
						pass.Reportf(call.Pos(), "%s.%s() while holding %s: lock order is mu→schedMu (inversion deadlocks the pollers)", ev.key, ev.verb, prior.key)
					}
				}
			}
			h[ev.key] = ev
		case "Unlock", "RUnlock":
			if !deferred {
				delete(h, ev.key)
			}
		}
		return true
	})
}

// sameOwner reports whether two mutex fields belong to the same
// receiver expression or the same struct type.
func sameOwner(a, b lockEvent) bool {
	if a.base != "" && a.base == b.base {
		return true
	}
	return a.typ != nil && b.typ != nil && types.Identical(a.typ, b.typ)
}

// canon renders a dotted identifier chain ("st.schedMu") or "" when the
// expression has another shape.
func canon(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return canon(e.X)
	case *ast.SelectorExpr:
		base := canon(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
