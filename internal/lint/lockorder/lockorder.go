// Package lockorder implements the insanevet rule guarding the
// runtime's locking discipline.
//
// internal/core orders its techState locks strictly mu→schedMu: the
// endpoint mutex (mu) is never acquired while the scheduler mutex
// (schedMu) is held, because pollers take schedMu on every iteration
// and a cross-technology send takes mu — the inverse nesting deadlocks
// two pollers against each other (§5.3's multi-threaded datapath).
//
// Within one function body the analyzer flags:
//
//   - acquiring a mutex field named "mu" while a "schedMu" of the same
//     receiver (or the same struct type) is held — the inversion of the
//     established order;
//   - any Lock/RLock of a sync.Mutex/sync.RWMutex field with no
//     matching Unlock/RUnlock (direct or deferred) anywhere in the same
//     function — the runtime never hands locked state across function
//     boundaries;
//   - an explicit return while a lock is still held and its Unlock is
//     not deferred — the early-exit path leaks the lock even though a
//     later Unlock satisfies the previous rule.
//
// Beyond the per-function rules the analyzer is whole-program: each
// function exports a LockSummary fact recording which locks it acquires
// while holding which others, plus its module-internal call edges with
// the lock set held at each call site. Over the dependency closure
// those summaries form a global acquired-after graph whose cycles are
// potential deadlocks; each cycle is reported once with the full
// acquisition chain, including the call path when an edge is closed
// transitively in a callee (mirroring hotpathcheck's chain rendering).
//
// Lock identity in the global graph is by declaring type and field
// ("core.techState.schedMu"), like lockdep classes: distinct instances
// of one type share an identity, so a cycle means "some pair of
// instances can deadlock". Same-class nesting (a.mu held while taking
// b.mu) is therefore excluded from the graph — it is not a cycle
// between classes. Function literals keep the per-function rules but
// export no summary: a goroutine body's acquisition order is analyzed
// where its named callees are defined.
//
// The per-function analysis is branch-aware and sequential: lock state
// forks at branches, and a branch that cannot terminate the function
// (no return/panic on its tail) merges the locks it still holds back
// into the fall-through state — a deferred Unlock keeps its lock held
// until the function returns, which is exactly how deadlocks happen.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "flag mu/schedMu inversions, lock leaks, and whole-program lock-order cycles",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockSummary)(nil)},
}

// LockRef identifies one lock class in the global graph.
type LockRef struct {
	// ID is the fully-qualified declaring type plus field, e.g.
	// "github.com/insane-mw/insane/internal/core.techState.schedMu".
	ID string
	// Disp is the short display form, e.g. "core.techState.schedMu".
	Disp string
}

// Acquire records one Lock/RLock and the lock classes held at it.
type Acquire struct {
	Lock LockRef
	Held []LockRef
	Pos  token.Pos
}

// LockCall records one module-internal call and the lock classes held
// at the call site, so the global graph can close edges through the
// callee's own acquisitions.
type LockCall struct {
	Callee *types.Func
	Held   []LockRef
	Pos    token.Pos
}

// LockSummary is the per-function fact exported for the global phase.
type LockSummary struct {
	Acquires []Acquire
	Calls    []LockCall
}

// AFact marks LockSummary as an analysis fact.
func (*LockSummary) AFact() {}

// lockEvent is one Lock/Unlock-family call on a mutex-typed selector.
type lockEvent struct {
	call  *ast.CallExpr
	verb  string // Lock, RLock, Unlock, RUnlock
	key   string // canonical mutex expression, e.g. "st.schedMu"
	field string // mutex field name, e.g. "schedMu"
	base  string // canonical owner expression, e.g. "st"
	typ   types.Type
	ref   LockRef // global identity, zero when the owner type is unnamed
	// deferredUnlock marks a lock whose Unlock is deferred: held until
	// return, but not leaked by an early return.
	deferredUnlock bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	// cycleSeen dedupes lock-cycle reports within this package by the
	// set of lock classes involved. The mu→schedMu heuristic (rule 1)
	// seeds it, so a cycle it already explains is not reported twice.
	cycleSeen := make(map[string]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				s := &scanner{pass: pass, cycleSeen: cycleSeen}
				if pass.ExportObjectFact != nil {
					s.sum = &LockSummary{}
				}
				s.checkFunc(fn.Body)
				if s.sum != nil && (len(s.sum.Acquires) > 0 || len(s.sum.Calls) > 0) {
					if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
						pass.ExportObjectFact(obj, s.sum)
					}
				}
			case *ast.FuncLit:
				// Literals keep the per-function rules but export no
				// summary (see the package doc).
				s := &scanner{pass: pass, cycleSeen: cycleSeen}
				s.checkFunc(fn.Body)
			}
			return true
		})
	}

	if pass.AllObjectFacts != nil {
		checkCycles(pass, cycleSeen)
	}
	return nil, nil
}

// scanner analyzes one function body.
type scanner struct {
	pass      *analysis.Pass
	sum       *LockSummary // nil: intra-function rules only
	cycleSeen map[string]bool
}

// held tracks the mutexes currently locked during the scan.
type held map[string]lockEvent

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// refs returns the distinct lock classes held, sorted by ID.
func (h held) refs() []LockRef {
	var out []LockRef
	seen := make(map[string]bool)
	for _, ev := range h {
		if ev.ref.ID != "" && !seen[ev.ref.ID] {
			seen[ev.ref.ID] = true
			out = append(out, ev.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *scanner) checkFunc(body *ast.BlockStmt) {
	// Rule 2 first: every Lock needs a matching Unlock somewhere in the
	// function (same mutex expression, same read/write flavor).
	events := collect(s.pass, body)
	unlocked := make(map[string]bool)
	for _, ev := range events {
		if ev.verb == "Unlock" || ev.verb == "RUnlock" {
			unlocked[ev.key+"/"+ev.verb] = true
		}
	}
	for _, ev := range events {
		var want string
		switch ev.verb {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		if !unlocked[ev.key+"/"+want] {
			s.pass.Reportf(ev.call.Pos(), "%s.%s() has no matching %s in this function (runtime locks never escape their function)", ev.key, ev.verb, want)
		}
	}

	// Rules 1 and 3 plus summary collection: branch-aware scan.
	s.scanBlock(body.List, make(held))
}

// collect gathers the lock events of a function body in source order,
// without descending into nested function literals.
func collect(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var out []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ev, ok := mutexCall(pass, call); ok {
				out = append(out, ev)
			}
		}
		return true
	})
	return out
}

// mutexCall recognizes a Lock/Unlock-family call on a selector whose
// receiver is a sync.Mutex or sync.RWMutex field.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	verb := sel.Sel.Name
	switch verb {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	recv, ok := sel.X.(*ast.SelectorExpr) // field access: owner.mutexField
	if !ok {
		return lockEvent{}, false
	}
	if !isSyncMutex(pass.TypesInfo.Types[sel.X].Type) {
		return lockEvent{}, false
	}
	key := canon(sel.X)
	if key == "" {
		return lockEvent{}, false
	}
	var ownerType types.Type
	if tv, ok := pass.TypesInfo.Types[recv.X]; ok {
		ownerType = tv.Type
	}
	return lockEvent{
		call:  call,
		verb:  verb,
		key:   key,
		field: recv.Sel.Name,
		base:  canon(recv.X),
		typ:   ownerType,
		ref:   lockRefOf(ownerType, recv.Sel.Name),
	}, true
}

// lockRefOf builds the global identity of a mutex field from its
// owner's type, or the zero LockRef for unnamed owners.
func lockRefOf(owner types.Type, field string) LockRef {
	if owner == nil {
		return LockRef{}
	}
	if p, ok := owner.Underlying().(*types.Pointer); ok {
		owner = p.Elem()
	}
	named, ok := owner.(*types.Named)
	if !ok {
		return LockRef{}
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return LockRef{}
	}
	return LockRef{
		ID:   obj.Pkg().Path() + "." + obj.Name() + "." + field,
		Disp: obj.Pkg().Name() + "." + obj.Name() + "." + field,
	}
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// scanBlock applies rules 1 and 3 over a statement list: sequential
// lock state within the block, copies for branches. It reports whether
// the block always terminates the function (return/panic on every
// path), so callers know not to merge its lock state back.
func (s *scanner) scanBlock(stmts []ast.Stmt, h held) bool {
	for _, st := range stmts {
		if s.scanStmt(st, h) {
			return true
		}
	}
	return false
}

// branch scans a branch body into a fork of h; locks a non-terminating
// branch still holds at its end (a Lock with a deferred or missing
// Unlock) stay held in the fall-through — taking the branch is always
// possible, so any order established inside it is established, period.
func (s *scanner) branch(stmts []ast.Stmt, h held) bool {
	hb := h.clone()
	terminated := s.scanBlock(stmts, hb)
	if !terminated {
		for k, ev := range hb {
			if _, ok := h[k]; !ok {
				h[k] = ev
			}
		}
	}
	return terminated
}

func (s *scanner) scanStmt(st ast.Stmt, h held) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.applyExpr(st.X, h, false)
		return isTerminalCall(s.pass, st.X)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.applyExpr(e, h, false)
		}
		// Rule 3: an explicit return leaks every held lock whose Unlock
		// is not deferred.
		keys := make([]string, 0, len(h))
		for k := range h {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !h[k].deferredUnlock {
				s.pass.Reportf(st.Pos(), "return while still holding %s (the Unlock below is skipped on this path; defer it at the Lock)", k)
			}
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the block; nothing after them on
		// this path.
		return true
	case *ast.DeferStmt:
		// A deferred Unlock releases only at return: the mutex stays
		// held for everything that follows in this function.
		s.applyExpr(st.Call, h, true)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.applyExpr(e, h, false)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, h)
		}
		s.applyExpr(st.Cond, h, false)
		bodyTerm := s.branch(st.Body.List, h)
		elseTerm := false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = s.branch(e.List, h)
			default:
				elseTerm = s.branch([]ast.Stmt{e}, h)
			}
		}
		return bodyTerm && elseTerm && st.Else != nil
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, h)
		}
		if st.Cond != nil {
			s.applyExpr(st.Cond, h, false)
		}
		s.branch(st.Body.List, h)
	case *ast.RangeStmt:
		s.applyExpr(st.X, h, false)
		s.branch(st.Body.List, h)
	case *ast.BlockStmt:
		return s.scanBlock(st.List, h)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.branch(cc.Body, h)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.branch(cc.Body, h)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.branch(cc.Body, h)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently: the spawner's held
		// set does not order its acquisitions (its named callees are
		// summarized on their own).
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, h)
	}
	return false
}

// applyExpr updates the held set with every mutex call in the
// expression, reports order inversions as they happen, and records
// acquisitions and module-internal call edges into the summary.
func (s *scanner) applyExpr(e ast.Expr, h held, deferred bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, ok := mutexCall(s.pass, call)
		if !ok {
			s.recordCall(call, h)
			return true
		}
		switch ev.verb {
		case "Lock", "RLock":
			if ev.field == "mu" {
				for _, prior := range h {
					if prior.field == "schedMu" && sameOwner(prior, ev) {
						s.pass.Reportf(call.Pos(), "%s.%s() while holding %s: lock order is mu→schedMu (inversion deadlocks the pollers)", ev.key, ev.verb, prior.key)
						if prior.ref.ID != "" && ev.ref.ID != "" {
							s.cycleSeen[cycleKey([]string{prior.ref.ID, ev.ref.ID})] = true
						}
					}
				}
			}
			if s.sum != nil && ev.ref.ID != "" {
				s.sum.Acquires = append(s.sum.Acquires, Acquire{
					Lock: ev.ref,
					Held: h.refs(),
					Pos:  call.Pos(),
				})
			}
			h[ev.key] = ev
		case "Unlock", "RUnlock":
			if deferred {
				if prior, ok := h[ev.key]; ok {
					prior.deferredUnlock = true
					h[ev.key] = prior
				}
			} else {
				delete(h, ev.key)
			}
		}
		return true
	})
}

// recordCall adds a module-internal static call edge to the summary.
func (s *scanner) recordCall(call *ast.CallExpr, h held) {
	if s.sum == nil {
		return
	}
	callee := staticCallee(s.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	origin := callee.Origin()
	if origin.Pkg() == nil {
		return
	}
	var sum LockSummary
	if origin.Pkg() != s.pass.Pkg && !s.pass.ImportObjectFact(origin, &sum) {
		return // outside the analyzed module closure
	}
	s.sum.Calls = append(s.sum.Calls, LockCall{
		Callee: origin,
		Held:   h.refs(),
		Pos:    call.Pos(),
	})
}

// isTerminalCall reports whether the expression statement never
// returns (panic, os.Exit, runtime.Goexit, log.Fatal*).
func isTerminalCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	switch fn.FullName() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}

// sameOwner reports whether two mutex fields belong to the same
// receiver expression or the same struct type.
func sameOwner(a, b lockEvent) bool {
	if a.base != "" && a.base == b.base {
		return true
	}
	return a.typ != nil && b.typ != nil && types.Identical(a.typ, b.typ)
}

// canon renders a dotted identifier chain ("st.schedMu") or "" when the
// expression has another shape.
func canon(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return canon(e.X)
	case *ast.SelectorExpr:
		base := canon(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// staticCallee resolves the *types.Func a call statically targets, or
// nil for calls through func values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil // field of func type: dynamic
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// cycleKey canonicalizes a set of lock IDs for deduplication.
func cycleKey(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			uniq = append(uniq, id)
		}
	}
	return strings.Join(uniq, "\x00")
}
