// Package dep is the downstream half of the cross-package lock-cycle
// fixture: it owns a Guard whose mutex upstream code acquires through
// LockAndPoke.
package dep

import "sync"

// Guard wraps a mutex that callers reach only through this package.
type Guard struct {
	Mu sync.Mutex
}

// LockAndPoke takes the guard's mutex; a caller holding one of its own
// locks therefore establishes an acquired-after edge into dep.Guard.Mu.
func LockAndPoke(g *Guard) {
	g.Mu.Lock()
	g.Mu.Unlock()
}
