// Package cyc closes a lock cycle across a package boundary: f holds
// S.a and calls dep.LockAndPoke (S.a -> dep.Guard.Mu, established
// transitively in the callee), while g holds dep.Guard.Mu and takes
// S.a directly (dep.Guard.Mu -> S.a). Neither function is wrong on its
// own; only the whole-program graph sees the deadlock.
package cyc

import (
	"cyc/dep"
	"sync"
)

// S owns the upstream lock of the cycle.
type S struct {
	a sync.Mutex
}

// f establishes cyc.S.a -> dep.Guard.Mu through the call.
func f(s *S, g *dep.Guard) {
	s.a.Lock()
	dep.LockAndPoke(g) // want `acquiring dep\.Guard\.Mu while holding cyc\.S\.a closes a lock cycle: cyc\.S\.a -> dep\.Guard\.Mu \(in cyc\.f -> dep\.LockAndPoke\) -> cyc\.S\.a \(in cyc\.g\)`
	s.a.Unlock()
}

// g establishes the reverse edge dep.Guard.Mu -> cyc.S.a directly.
func g(gd *dep.Guard, s *S) {
	gd.Mu.Lock()
	s.a.Lock()
	s.a.Unlock()
	gd.Mu.Unlock()
}
