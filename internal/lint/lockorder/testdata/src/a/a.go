// Package a seeds lockorder violations against a stand-in of the
// runtime's techState: the analyzer keys on mutex fields named mu and
// schedMu, matching internal/core's locking discipline.
package a

import "sync"

// techState mirrors the shape of core.techState.
type techState struct {
	mu      sync.Mutex
	schedMu sync.Mutex
	rw      sync.RWMutex
}

// Seeded violation 1: the inversion — mu while holding schedMu.
func inversion(st *techState) {
	st.schedMu.Lock()
	st.mu.Lock() // want `lock order is mu→schedMu`
	st.mu.Unlock()
	st.schedMu.Unlock()
}

// Seeded violation 2: a deferred unlock keeps schedMu held until
// return, so taking mu afterwards still inverts the order.
func inversionDeferred(st *techState) {
	st.schedMu.Lock()
	defer st.schedMu.Unlock()
	st.mu.Lock() // want `lock order is mu→schedMu`
	st.mu.Unlock()
}

// Seeded violation 3: a Lock that never unlocks.
func leak(st *techState) {
	st.mu.Lock() // want `no matching Unlock`
}

// Seeded violation 4: a read lock paired only with a write unlock.
func mismatchedRW(st *techState) {
	st.rw.RLock() // want `no matching RUnlock`
	st.rw.Unlock()
}

// Seeded violation 5: two owners of the same type still violate the
// global order (pollers deadlock pairwise).
func crossOwner(a, b *techState) {
	a.schedMu.Lock()
	b.mu.Lock() // want `lock order is mu→schedMu`
	b.mu.Unlock()
	a.schedMu.Unlock()
}

// The established order: mu first, then schedMu.
func correctOrder(st *techState) {
	st.mu.Lock()
	st.schedMu.Lock()
	st.schedMu.Unlock()
	st.mu.Unlock()
}

// Sequential acquisition is not nesting.
func sequential(st *techState) {
	st.schedMu.Lock()
	st.schedMu.Unlock()
	st.mu.Lock()
	st.mu.Unlock()
}

// Locks taken in one branch are not held in the sibling.
func branches(st *techState, cond bool) {
	if cond {
		st.schedMu.Lock()
		st.schedMu.Unlock()
	} else {
		st.mu.Lock()
		st.mu.Unlock()
	}
}

// Deferred unlocks satisfy the pairing rule.
func deferred(st *techState) {
	st.mu.Lock()
	defer st.mu.Unlock()
}

// Read locks pair with read unlocks.
func readLock(st *techState) {
	st.rw.RLock()
	defer st.rw.RUnlock()
}

// Seeded violation 6 (branch-merge regression): schedMu is locked in a
// branch with a deferred unlock, so it is still held when the branch
// falls through — the mu acquisition after the if inverts the order.
// The old scanner dropped branch-local locks at the brace and missed
// this.
func branchFallthrough(st *techState, cond bool) {
	if cond {
		st.schedMu.Lock()
		defer st.schedMu.Unlock()
	}
	st.mu.Lock() // want `lock order is mu→schedMu`
	st.mu.Unlock()
}

// A branch that always returns does not leak its locks into the
// fall-through: the deferred unlock runs before control could reach
// the statements after the if.
func branchReturns(st *techState, cond bool) {
	if cond {
		st.schedMu.Lock()
		defer st.schedMu.Unlock()
		return
	}
	st.mu.Lock()
	st.mu.Unlock()
}

// Seeded violation 7: an early return between Lock and Unlock leaks
// the lock on that path even though the pairing rule is satisfied.
func returnWhileHolding(st *techState, cond bool) {
	st.mu.Lock()
	if cond {
		return // want `return while still holding st\.mu`
	}
	st.mu.Unlock()
}

// Unlocking before the early return is clean.
func returnAfterUnlock(st *techState, cond bool) {
	st.mu.Lock()
	if cond {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
}

// The suppression path: an explicit, reasoned directive waives the
// finding.
func suppressed(st *techState) {
	st.schedMu.Lock()
	//lint:ignore insanevet/lockorder fixture proving the suppression path
	st.mu.Lock()
	st.mu.Unlock()
	st.schedMu.Unlock()
}
