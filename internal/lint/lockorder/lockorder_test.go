package lockorder_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a", "cyc")
}
