package lockorder

import (
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// edge is one acquired-after relation in the global lock graph: while
// holding from, some function acquires to.
type edge struct {
	from, to LockRef
	pos      token.Pos // where the relation is established
	where    string    // "core.send" or "core.send -> ringbuf.Push"
	fn       *types.Func
}

// checkCycles builds the acquired-after graph from every LockSummary
// exported so far and reports the cycles closed by this package's
// functions. Dependencies run first, so by the time a package is
// analyzed the graph holds its entire downward closure; reporting only
// edges owned by the current package keeps each cycle at one
// diagnostic, at the source position that closes it.
func checkCycles(pass *analysis.Pass, cycleSeen map[string]bool) {
	sums := make(map[*types.Func]*LockSummary)
	var fns []*types.Func
	for _, of := range pass.AllObjectFacts() {
		fn, ok := of.Object.(*types.Func)
		if !ok {
			continue
		}
		sum, ok := of.Fact.(*LockSummary)
		if !ok {
			continue
		}
		sums[fn] = sum
		fns = append(fns, fn)
	}

	// trans computes the lock classes a function's call tree acquires,
	// with the call chain that reaches each (for diagnostics). Memoized;
	// recursion through the call graph is cut at in-progress nodes.
	type transAcq struct {
		lock LockRef
		via  []*types.Func
	}
	memo := make(map[*types.Func][]transAcq)
	visiting := make(map[*types.Func]bool)
	var trans func(fn *types.Func) []transAcq
	trans = func(fn *types.Func) []transAcq {
		if got, ok := memo[fn]; ok {
			return got
		}
		if visiting[fn] {
			return nil
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		sum := sums[fn]
		if sum == nil {
			return nil
		}
		var out []transAcq
		seen := make(map[string]bool)
		for _, a := range sum.Acquires {
			if !seen[a.Lock.ID] {
				seen[a.Lock.ID] = true
				out = append(out, transAcq{lock: a.Lock})
			}
		}
		for _, c := range sum.Calls {
			for _, t := range trans(c.Callee) {
				if !seen[t.lock.ID] {
					seen[t.lock.ID] = true
					via := append([]*types.Func{c.Callee}, t.via...)
					out = append(out, transAcq{lock: t.lock, via: via})
				}
			}
		}
		memo[fn] = out
		return out
	}

	// Build the adjacency lists. AllObjectFacts returns facts in export
	// order, so the graph (and every traversal below) is deterministic.
	adj := make(map[string][]edge)
	var local []edge // edges established by this package's functions
	add := func(e edge) {
		if e.from.ID == e.to.ID {
			return // same-class nesting, not an inter-class order
		}
		adj[e.from.ID] = append(adj[e.from.ID], e)
		if e.fn.Pkg() == pass.Pkg {
			local = append(local, e)
		}
	}
	for _, fn := range fns {
		sum := sums[fn]
		for _, a := range sum.Acquires {
			for _, held := range a.Held {
				add(edge{from: held, to: a.Lock, pos: a.Pos, where: funcDisp(fn), fn: fn})
			}
		}
		for _, c := range sum.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, t := range trans(c.Callee) {
				if len(t.via) == 0 {
					// Direct acquire in the callee's own body.
					t.via = []*types.Func{c.Callee}
				} else {
					t.via = append([]*types.Func{c.Callee}, t.via...)
				}
				parts := make([]string, 0, len(t.via)+1)
				parts = append(parts, funcDisp(fn))
				for _, v := range t.via {
					parts = append(parts, funcDisp(v))
				}
				for _, held := range c.Held {
					add(edge{from: held, to: t.lock, pos: c.Pos, where: strings.Join(parts, " -> "), fn: fn})
				}
			}
		}
	}

	// Report each cycle once, at the first local edge (in source order)
	// that closes it.
	sort.Slice(local, func(i, j int) bool { return local[i].pos < local[j].pos })
	for _, e := range local {
		path := findPath(adj, e.to.ID, e.from.ID)
		if path == nil {
			continue
		}
		ids := []string{e.from.ID, e.to.ID}
		for _, p := range path {
			ids = append(ids, p.to.ID)
		}
		key := cycleKey(ids)
		if cycleSeen[key] {
			continue
		}
		cycleSeen[key] = true
		var b strings.Builder
		b.WriteString(e.from.Disp)
		b.WriteString(" -> " + e.to.Disp + " (in " + e.where + ")")
		for _, p := range path {
			b.WriteString(" -> " + p.to.Disp + " (in " + p.where + ")")
		}
		pass.Reportf(e.pos, "acquiring %s while holding %s closes a lock cycle: %s", e.to.Disp, e.from.Disp, b.String())
	}
}

// findPath returns the edges of a shortest path from lock class `from`
// to `to` in the acquired-after graph, or nil when unreachable.
func findPath(adj map[string][]edge, from, to string) []edge {
	if from == to {
		return []edge{}
	}
	parent := make(map[string]edge)
	visited := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if visited[e.to.ID] {
				continue
			}
			visited[e.to.ID] = true
			parent[e.to.ID] = e
			if e.to.ID == to {
				var path []edge
				for at := to; at != from; {
					p := parent[at]
					path = append([]edge{p}, path...)
					at = p.from.ID
				}
				return path
			}
			queue = append(queue, e.to.ID)
		}
	}
	return nil
}

// funcDisp renders a function for chain text: "core.send" or
// "(*core.Runtime).Close".
func funcDisp(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		if named, okn := t.(*types.Named); okn {
			obj := named.Obj()
			if obj.Pkg() != nil {
				recv := obj.Pkg().Name() + "." + obj.Name()
				if ptr != "" {
					return "(*" + recv + ")." + fn.Name()
				}
				return recv + "." + fn.Name()
			}
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
