// Package guardfacts is the shared-state regime registry of the
// insanevet suite (DESIGN.md §14). A struct marked //insane:shared
// declares that its instances are accessed by more than one goroutine;
// every field then names its synchronization regime with an
// //insane:guardedby spec (parsed by internal/lint/directive). This
// package turns those declarations into per-field facts that travel the
// whole-program dependency closure, so any analyzer that needs to know
// "how is this field synchronized" — guardcheck proving every access
// uses the declared regime, atomicfield folding declared-atomic fields
// into its consistency proof — reads one registry instead of keeping a
// private field list.
package guardfacts

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
)

// Regime is the fact attached to every field of an //insane:shared
// struct: its declared synchronization regime.
type Regime struct {
	R directive.Regime
	// Struct is the declaring struct's name, for diagnostics.
	Struct string
}

// AFact marks Regime as an analysis fact.
func (*Regime) AFact() {}

// Field is one field of a shared struct, as seen by the exporting pass.
type Field struct {
	// Var is the field object (nil for embedded fields, which are
	// reported as problems instead).
	Var *types.Var
	// Name is the field name.
	Name string
	// Pos locates the field declaration.
	Pos token.Pos
	// Regime is the parsed spec; only meaningful when HasSpec.
	Regime directive.Regime
	// HasSpec reports whether an //insane:guardedby marker was present.
	HasSpec bool
	// Exempt reports a sync-primitive field (Mutex, RWMutex, WaitGroup,
	// Once), which needs no spec: it is the regimes' own machinery.
	Exempt bool
}

// Struct is one //insane:shared struct declared in the pass's package.
type Struct struct {
	// Name is the type name.
	Name string
	// Obj is the type-name object.
	Obj types.Object
	// Spec is the declaring TypeSpec.
	Spec *ast.TypeSpec
	// Fields lists the struct's fields in declaration order.
	Fields []Field
}

// Export parses the shared-struct annotations of every type declared in
// the pass's package, exports a Regime fact for each annotated field,
// and returns the shared structs plus any malformed annotations
// (missing specs, specs on sync primitives, markers outside shared
// structs). Call it before walking bodies, so same-package accesses
// resolve their regimes exactly like cross-package ones.
func Export(pass *analysis.Pass) ([]Struct, []directive.Problem) {
	var structs []Struct
	var probs []directive.Problem
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					if directive.HasShared(doc) {
						probs = append(probs, directive.Problem{Pos: ts.Pos(), Msg: "//insane:shared: " + ts.Name.Name + " is not a struct type"})
					}
					continue
				}
				if !directive.HasShared(doc) {
					// Stray field markers outside a shared struct are
					// dead annotations: report them so the registry
					// cannot silently rot.
					for _, f := range st.Fields.List {
						if _, has, _ := directive.ParseGuardedBy(f.Doc, f.Comment); has {
							probs = append(probs, directive.Problem{Pos: f.Pos(), Msg: "//insane:guardedby on a field of " + ts.Name.Name + ", which is not marked //insane:shared"})
						}
					}
					continue
				}
				s := Struct{Name: ts.Name.Name, Obj: pass.TypesInfo.Defs[ts.Name], Spec: ts}
				for _, f := range st.Fields.List {
					if len(f.Names) == 0 {
						probs = append(probs, directive.Problem{Pos: f.Pos(), Msg: "embedded field in //insane:shared struct " + s.Name + ": name it and declare its regime"})
						continue
					}
					regime, has, ps := directive.ParseGuardedBy(f.Doc, f.Comment)
					probs = append(probs, ps...)
					malformed := len(ps) > 0
					for _, name := range f.Names {
						v, _ := pass.TypesInfo.Defs[name].(*types.Var)
						fld := Field{Var: v, Name: name.Name, Pos: name.Pos(), Regime: regime, HasSpec: has && !malformed}
						if v != nil && exemptType(v.Type()) {
							fld.Exempt = true
							if has {
								probs = append(probs, directive.Problem{Pos: name.Pos(), Msg: "field " + s.Name + "." + name.Name + " is a sync primitive and needs no //insane:guardedby"})
							}
						} else if !has && !malformed {
							probs = append(probs, directive.Problem{Pos: name.Pos(), Msg: "field " + s.Name + "." + name.Name + " of //insane:shared struct has no //insane:guardedby spec"})
						}
						if fld.HasSpec && !fld.Exempt && v != nil {
							pass.ExportObjectFact(v, &Regime{R: regime, Struct: s.Name})
						}
						s.Fields = append(s.Fields, fld)
					}
				}
				structs = append(structs, s)
			}
		}
	}
	return structs, probs
}

// Lookup returns the declared regime of a field, whether declared in
// this package (exported earlier in the same pass) or imported through
// the fact store.
func Lookup(pass *analysis.Pass, v *types.Var) (Regime, bool) {
	if v == nil {
		return Regime{}, false
	}
	var r Regime
	if pass.ImportObjectFact(v, &r) {
		return r, true
	}
	return Regime{}, false
}

// exemptType reports a sync primitive: the machinery a regime is built
// from rather than data needing one.
func exemptType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			return exemptType(ptr.Elem())
		}
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once":
		return true
	}
	return false
}
