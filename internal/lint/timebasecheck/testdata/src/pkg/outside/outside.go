// Package outside is not on the datapath: the timebase rule must
// ignore it entirely.
package outside

import "time"

func now() time.Time { return time.Now() }

func since(t time.Time) time.Duration { return time.Since(t) }
