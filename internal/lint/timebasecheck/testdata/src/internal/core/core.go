// Package core is a testdata stand-in for the real runtime package:
// its import path ends in internal/core, so the timebase rule applies
// to it.
package core

import "time"

var epoch time.Time

// Seeded violation 1: sampling the wall clock on the datapath.
func pollOnce() time.Time {
	return time.Now() // want `time.Now in internal/core`
}

// Seeded violation 2: measuring elapsed wall time directly.
func elapsed() time.Duration {
	return time.Since(epoch) // want `time.Since in internal/core`
}

// Seeded violation 3: deadline arithmetic through time.Until.
func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until in internal/core`
}

// Timers and duration arithmetic are fine: only clock sampling is
// restricted.
func pace(d time.Duration) <-chan time.Time {
	return time.After(d)
}

// The suppression path: an explicit, reasoned directive waives the
// finding.
func sanctioned() time.Time {
	//lint:ignore insanevet/timebase fixture proving the suppression path
	return time.Now()
}
