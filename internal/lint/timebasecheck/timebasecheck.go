// Package timebasecheck implements the insanevet rule routing all time
// reads through internal/timebase.
//
// The reproduction reports the paper's µs-scale latencies in virtual
// time: hot-path components annotate packets with timebase.VTime and
// add calibrated model costs instead of sampling the wall clock, so
// experiments are deterministic (see internal/timebase). A stray
// time.Now() or time.Since() inside the runtime either perturbs the
// measurements or — under the simulated clock — silently compares
// virtual and wall time. The rule flags direct time.Now/time.Since/
// time.Until calls in the packages that sit on the datapath
// (internal/core, internal/sched, internal/datapath); they must use the
// configured timebase.Clock for virtual time or timebase.Wall for the
// few genuine wall-clock deadlines (session flush, poller-pass waits).
//
// Test files are exempt (the loader never feeds them to analyzers), and
// internal/timebase itself is where the sanctioned time.Now calls live.
package timebasecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
)

// Analyzer is the timebase rule. Its published name is "timebase"
// (matching the suppression directive `insanevet/timebase`); the
// package is named timebasecheck only to avoid colliding with
// internal/timebase in driver imports.
var Analyzer = &analysis.Analyzer{
	Name: "timebase",
	Doc:  "flag direct time.Now/time.Since in datapath packages; read time via internal/timebase",
	Run:  run,
}

// LintedPaths are the import-path fragments (complete path segments)
// whose packages must not read the clock directly.
var LintedPaths = []string{
	"internal/core",
	"internal/sched",
	"internal/datapath",
}

// banned is the set of clock-sampling functions of package time.
var banned = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !linted(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isPkgName(pass, id, "time") {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s in %s: read time via internal/timebase (Clock.Now for virtual time, timebase.Wall for wall-clock deadlines)", sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

// isPkgName reports whether id resolves to the imported package with
// the given path.
func isPkgName(pass *analysis.Pass, id *ast.Ident, path string) bool {
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// linted reports whether the package path contains one of LintedPaths
// as a run of complete segments.
func linted(path string) bool {
	padded := "/" + path + "/"
	for _, p := range LintedPaths {
		if strings.Contains(padded, "/"+p+"/") {
			return true
		}
	}
	return false
}
