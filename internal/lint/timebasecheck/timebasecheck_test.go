package timebasecheck_test

import (
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/timebasecheck"
)

func TestTimebase(t *testing.T) {
	analysistest.Run(t, "testdata", timebasecheck.Analyzer, "internal/core", "pkg/outside")
}
