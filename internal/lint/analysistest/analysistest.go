// Package analysistest runs one analyzer over a testdata source tree
// and checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for the offline analysis
// subset under internal/lint/analysis.
//
// Expectations are written on the offending line:
//
//	s.Emit(b, 1)
//	_ = b.Payload // want `used after Emit`
//
// Each `// want` comment carries one or more quoted or backquoted
// regular expressions; every expectation must be matched by a
// diagnostic on its line and every diagnostic must be matched by an
// expectation. Suppression directives are honored exactly as in the
// insanevet driver, so a `//lint:ignore insanevet/<rule> reason` line
// with no `want` proves the suppression path works.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// wantRe extracts the quoted expectations of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run applies the analyzer to each package under testdata/src and
// reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	ldr := loader.NewAt(src, "")
	for _, path := range pkgPaths {
		pkg, err := ldr.LoadDir(filepath.Join(src, filepath.FromSlash(path)), path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		check(t, pkg, a)
	}
}

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, pkg *loader.Package, a *analysis.Analyzer) {
	t.Helper()
	expects := collectWants(t, pkg)
	idx := directive.NewIndex(pkg.Fset, pkg.Files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if idx.Suppresses(pos, a.Name) {
				return
			}
			diags = append(diags, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.file == pos.Filename && e.line == pos.Line && !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// collectWants parses the `// want` comments of the package.
func collectWants(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, m := range ms {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}
