// Package analysistest runs one analyzer over a testdata source tree
// and checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for the offline analysis
// subset under internal/lint/analysis.
//
// Expectations are written on the offending line:
//
//	s.Emit(b, 1)
//	_ = b.Payload // want `used after Emit`
//
// Each `// want` comment carries one or more quoted or backquoted
// regular expressions; every expectation must be matched by a
// diagnostic on its line and every diagnostic must be matched by an
// expectation. Suppression directives are honored exactly as in the
// insanevet driver, so a `//lint:ignore insanevet/<rule> reason` line
// with no `want` proves the suppression path works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// wantRe extracts the quoted expectations of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run applies the analyzer to each package under testdata/src and
// reports mismatches through t.
//
// For a whole-program analyzer (non-empty FactTypes) each named
// package is analyzed together with its in-tree dependency closure,
// dependencies first, sharing one fact store — and `// want`
// expectations are honored in the dependency files too, so fixtures
// can assert on diagnostics whose call chain crosses packages.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	ldr := loader.NewAt(src, "")
	for _, path := range pkgPaths {
		pkg, err := ldr.LoadDir(filepath.Join(src, filepath.FromSlash(path)), path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		if len(a.FactTypes) == 0 {
			check(t, []*loader.Package{pkg}, a, nil)
			continue
		}
		closure, err := dependencyClosure(ldr, pkg)
		if err != nil {
			t.Fatalf("closure of %s: %v", path, err)
		}
		check(t, closure, a, analysis.NewFactStore())
	}
}

// dependencyClosure returns pkg plus its in-tree imports, sorted
// dependencies-first.
func dependencyClosure(ldr *loader.Loader, pkg *loader.Package) ([]*loader.Package, error) {
	var order []*loader.Package
	state := make(map[string]int)
	var topo func(p *loader.Package) error
	topo = func(p *loader.Package) error {
		switch state[p.Path] {
		case 1:
			return fmt.Errorf("import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p.Path] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := ldr.ByPath(imp.Path()); ok {
				if err := topo(dep); err != nil {
					return err
				}
			}
		}
		state[p.Path] = 2
		order = append(order, p)
		return nil
	}
	if err := topo(pkg); err != nil {
		return nil, err
	}
	return order, nil
}

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check runs the analyzer over the packages (dependencies first for
// whole-program analyzers) and matches diagnostics against the `want`
// expectations collected from every file involved.
func check(t *testing.T, pkgs []*loader.Package, a *analysis.Analyzer, store *analysis.FactStore) {
	t.Helper()
	var expects []*expectation
	var diags []analysis.Diagnostic
	var fset = pkgs[0].Fset
	for _, pkg := range pkgs {
		expects = append(expects, collectWants(t, pkg)...)
	}
	for _, pkg := range pkgs {
		idx := directive.NewIndex(pkg.Fset, pkg.Files)
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if idx.Suppresses(pos, a.Name) {
					return
				}
				diags = append(diags, d)
			},
		}
		if store != nil {
			store.Bind(pass)
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.file == pos.Filename && e.line == pos.Line && !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// collectWants parses the `// want` comments of the package.
func collectWants(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, m := range ms {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}
