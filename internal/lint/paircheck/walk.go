package paircheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/pairfacts"
)

// frameKind distinguishes the statements an unlabeled break can target.
type frameKind int

const (
	frameLoop frameKind = iota
	frameSwitch
	frameSelect
)

// frame is one enclosing breakable statement on the walker's stack.
type frame struct {
	kind   frameKind
	label  string
	depth  int       // loop depth of the frame body (loops only)
	pos    token.Pos // the statement's position (loop-scope checks)
	breaks []*state
}

// walker verifies one function body against the pair convention.
type walker struct {
	pass      *analysis.Pass
	fname     string
	sig       *types.Signature
	isLit     bool
	declared  map[string]directive.PairCond // declared acquire resources
	skip      map[string]bool               // declared release/transfer resources
	waived    map[string]bool
	waiverHit map[string]bool
	hasEffect map[string]bool // resource -> body calls an annotated function for it
	nonLocal  map[types.Object]bool
	bodyEnd   token.Pos
	depth     int
	frames    []*frame
	label     string // pending label for the next loop/switch
	reported  map[string]bool
}

// line is shorthand for the source line of a position.
func (w *walker) line(pos token.Pos) int { return w.pass.Fset.Position(pos).Line }

func (w *walker) funcName(fn *types.Func) string {
	return callutil.FuncName(fn, types.RelativeTo(w.pass.Pkg))
}

// flag emits one deduplicated diagnostic unless the resource is waived
// in this function, in which case the waiver is recorded as needed.
func (w *walker) flag(resource string, pos token.Pos, format string, args ...interface{}) {
	if w.waived[resource] {
		w.waiverHit[resource] = true
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, "%s", msg)
}

// walkStmts walks a statement list, threading the path state; nil
// means every path through the list terminated (return/panic/branch).
func (w *walker) walkStmts(stmts []ast.Stmt, st *state) *state {
	for _, s := range stmts {
		if st == nil {
			return nil
		}
		st = w.walkStmt(s, st)
	}
	return st
}

func (w *walker) walkStmt(s ast.Stmt, st *state) *state {
	switch s := s.(type) {
	case *ast.AssignStmt:
		var topCall *ast.CallExpr
		if len(s.Rhs) == 1 {
			topCall, _ = ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		}
		for _, r := range s.Rhs {
			w.applyNested(st, r, topCall)
		}
		w.escapeStores(st, s.Lhs, s.Rhs)
		w.propagateAliases(st, s.Lhs, s.Rhs)
		for _, l := range s.Lhs {
			if key := callutil.Canon(l); key != "" {
				for _, t := range st.toks {
					if t.live() && t.key == key {
						t.key = key + "#stale"
					}
				}
			}
		}
		if topCall != nil {
			w.applyCall(st, topCall, s.Lhs)
		}
		return st

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return st
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var topCall *ast.CallExpr
			if len(vs.Values) == 1 {
				topCall, _ = ast.Unparen(vs.Values[0]).(*ast.CallExpr)
			}
			for _, v := range vs.Values {
				w.applyNested(st, v, topCall)
			}
			if topCall != nil {
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.applyCall(st, topCall, lhs)
			}
		}
		return st

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if callutil.NoReturn(w.pass.TypesInfo, call) {
				return nil
			}
			w.applyNested(st, call, call)
			w.applyCall(st, call, nil)
			return st
		}
		w.applyNested(st, s.X, nil)
		return st

	case *ast.ReturnStmt:
		w.doExit(st, s)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		thenSt, elseSt := w.splitCond(s.Cond, st)
		cond := types.ExprString(s.Cond)
		thenSt.note(cond)
		elseSt.note("!(" + cond + ")")
		thenOut := w.walkStmts(s.Body.List, thenSt)
		elseOut := elseSt
		if s.Else != nil {
			elseOut = w.walkStmt(s.Else, elseSt)
		}
		return merge(thenOut, elseOut)

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		bodySt, exitSt := st.clone(), (*state)(nil)
		if s.Cond != nil {
			bodySt, exitSt = w.splitCond(s.Cond, st)
			w.applyNested(bodySt, s.Cond, nil)
		}
		fr := w.pushFrame(frameLoop, s.Pos())
		w.depth++
		out := w.walkStmts(s.Body.List, bodySt)
		if out != nil {
			w.iterEndAt(out, s.Body.Rbrace, fr.depth, fr.pos)
		}
		w.depth--
		w.popFrame()
		return mergeAll(append(fr.breaks, exitSt)...)

	case *ast.RangeStmt:
		w.applyNested(st, s.X, nil)
		fr := w.pushFrame(frameLoop, s.Pos())
		w.depth++
		out := w.walkStmts(s.Body.List, st.clone())
		if out != nil {
			w.iterEndAt(out, s.Body.Rbrace, fr.depth, fr.pos)
		}
		w.depth--
		w.popFrame()
		return mergeAll(append(fr.breaks, st)...)

	case *ast.SwitchStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		if s.Tag != nil {
			w.applyNested(st, s.Tag, nil)
		}
		fr := w.pushFrame(frameSwitch, s.Pos())
		cur := st
		var outs []*state
		hasDefault := false
		var defaultBody []ast.Stmt
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if len(cc.List) == 0 {
				hasDefault = true
				defaultBody = cc.Body
				continue
			}
			var branch *state
			if s.Tag == nil && len(cc.List) == 1 {
				// Untagged switch: the cases are boolean conditions,
				// split exactly like an if/else-if chain.
				var t, f *state
				t, f = w.splitCond(cc.List[0], cur)
				t.note(types.ExprString(cc.List[0]))
				branch, cur = t, f
			} else {
				for _, e := range cc.List {
					w.applyNested(cur, e, nil)
				}
				branch = cur.clone()
			}
			outs = append(outs, w.walkStmts(cc.Body, branch))
		}
		if hasDefault {
			outs = append(outs, w.walkStmts(defaultBody, cur))
		} else {
			outs = append(outs, cur)
		}
		w.popFrame()
		return mergeAll(append(outs, fr.breaks...)...)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if st = w.walkStmt(s.Init, st); st == nil {
				return nil
			}
		}
		fr := w.pushFrame(frameSwitch, s.Pos())
		var outs []*state
		hasDefault := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if len(cc.List) == 0 {
				hasDefault = true
			}
			outs = append(outs, w.walkStmts(cc.Body, st.clone()))
		}
		if !hasDefault {
			outs = append(outs, st)
		}
		w.popFrame()
		return mergeAll(append(outs, fr.breaks...)...)

	case *ast.SelectStmt:
		fr := w.pushFrame(frameSelect, s.Pos())
		var outs []*state
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := st.clone()
			if cc.Comm != nil {
				branch = w.walkStmt(cc.Comm, branch)
			}
			if branch != nil {
				branch = w.walkStmts(cc.Body, branch)
			}
			outs = append(outs, branch)
		}
		w.popFrame()
		return mergeAll(append(outs, fr.breaks...)...)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if fr := w.findFrame(label, false); fr != nil {
				fr.breaks = append(fr.breaks, st)
			}
		case token.CONTINUE:
			if fr := w.findFrame(label, true); fr != nil {
				w.iterEndAt(st, s.Pos(), fr.depth, fr.pos)
			}
		}
		return nil // break/continue/goto/fallthrough all end this path

	case *ast.LabeledStmt:
		w.label = s.Label.Name
		return w.walkStmt(s.Stmt, st)

	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			w.applyNested(st, a, nil)
		}
		st.defers = append(st.defers, deferEntry{pos: s.Pos(), call: s.Call})
		return st

	case *ast.GoStmt:
		// Ownership of anything the goroutine can reach moves with it.
		w.dischargeMentioned(st, s.Call, s.Pos())
		return st

	case *ast.SendStmt:
		w.applyNested(st, s.Value, nil)
		w.dischargeMentioned(st, s.Value, s.Pos())
		return st

	case *ast.IncDecStmt, *ast.EmptyStmt:
		return st
	}
	return st
}

// pushFrame enters a breakable statement, consuming any pending label.
func (w *walker) pushFrame(kind frameKind, pos token.Pos) *frame {
	fr := &frame{kind: kind, label: w.label, depth: w.depth + 1, pos: pos}
	w.label = ""
	w.frames = append(w.frames, fr)
	return fr
}

func (w *walker) popFrame() { w.frames = w.frames[:len(w.frames)-1] }

// findFrame resolves the target of a break (any frame) or continue
// (loops only), innermost first, honoring labels.
func (w *walker) findFrame(label string, loopOnly bool) *frame {
	for i := len(w.frames) - 1; i >= 0; i-- {
		fr := w.frames[i]
		if loopOnly && fr.kind != frameLoop {
			continue
		}
		if label == "" || fr.label == label {
			return fr
		}
	}
	return nil
}

// iterEndAt flags tokens acquired inside the current loop iteration
// that are still provably live when the iteration ends: the next
// iteration re-acquires, so each lap leaks one unit. Tokens held by a
// variable declared before the loop are exempt — the next lap still
// sees the holder (the retry-same-buffer emit pattern), so holding one
// across laps is ordinary flow control, not a leak.
func (w *walker) iterEndAt(st *state, pos token.Pos, depth int, loopPos token.Pos) {
	dk := deferredKeys(st)
	for _, t := range st.toks {
		if !t.firm() || t.depth < depth || t.guard != nil {
			continue
		}
		if t.holderPos.IsValid() && t.holderPos < loopPos {
			continue // holder outlives the loop; exits still checked
		}
		if dk[baseKey(t.key)] {
			continue // a registered defer cleans it up at function exit
		}
		w.flag(t.resource, pos, "resource %s acquired via %s at line %d is still held at the end of the loop iteration; it leaks once per lap%s",
			t.resource, t.via, w.line(t.pos), st.path())
	}
}

// deferredKeys collects the base keys a registered defer might
// release, to keep iteration-end checks from second-guessing them.
func deferredKeys(st *state) map[string]bool {
	out := make(map[string]bool)
	for _, d := range st.defers {
		call, ok := d.call.(*ast.CallExpr)
		if !ok {
			continue
		}
		if lit, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
			for name := range identNames(lit.Body) {
				out[name] = true
			}
			continue
		}
		for _, k := range candidateKeys(call) {
			out[baseKey(k)] = true
		}
	}
	return out
}

func baseKey(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

// identNames collects every identifier mentioned under a node,
// including inside closures (captures carry ownership).
func identNames(n ast.Node) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names[id.Name] = true
		}
		return true
	})
	return names
}

// dischargeMentioned transfers every live token whose holder is
// reachable from the expression (go statement, channel send): another
// owner can now release it, so this function's obligation ends.
func (w *walker) dischargeMentioned(st *state, n ast.Node, pos token.Pos) {
	names := identNames(n)
	for _, t := range st.toks {
		if t.live() && t.key != "" && anyBaseIn(names, t) {
			t.status = stReleased
			t.relPos = pos
			t.relVia = "handoff"
		}
	}
}

// anyBaseIn reports whether any of the token's holder base names is in
// the mentioned-identifier set.
func anyBaseIn(names map[string]bool, t *tok) bool {
	for _, b := range holderBases(t) {
		if names[b] {
			return true
		}
	}
	return false
}

// propagateAliases records holder flow through local wrappers: when an
// assigned RHS mentions a live token's holder (`m := wrapDelivery(d)`),
// the LHS becomes another name the unit answers to, so a later
// `Release(m)` still matches the token acquired into `d`.
func (w *walker) propagateAliases(st *state, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		key := callutil.Canon(lhs[i])
		if key == "" {
			continue
		}
		names := identNames(r)
		for _, t := range st.toks {
			if !t.live() || t.key == "" || t.key == key {
				continue
			}
			if names[strings.TrimSuffix(baseKey(t.key), "#stale")] && !containsKey(t.aliases, key) {
				t.aliases = append(t.aliases, key)
			}
		}
	}
}

// escapeStores discharges tokens stored into memory that outlives the
// call frame: a field of the receiver or a parameter, or a package
// variable. Storing into a local struct keeps the obligation here.
func (w *walker) escapeStores(st *state, lhs, rhs []ast.Expr) {
	var names map[string]bool
	for _, l := range lhs {
		if !w.lhsEscapes(l) {
			continue
		}
		if names == nil {
			names = make(map[string]bool)
			for _, r := range rhs {
				for n := range identNames(r) {
					names[n] = true
				}
			}
		}
		for _, t := range st.toks {
			if t.live() && t.key != "" && anyBaseIn(names, t) {
				t.status = stReleased
				t.relPos = l.Pos()
				t.relVia = "store"
			}
		}
	}
}

// lhsEscapes reports whether assigning through this LHS stores outside
// the current frame.
func (w *walker) lhsEscapes(l ast.Expr) bool {
	switch ast.Unparen(l).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	key := callutil.Canon(l)
	if key == "" {
		return true // unrecognized store shape: assume it escapes
	}
	if w.isLit {
		return true // closures capture freely; be lenient
	}
	// Resolve the base identifier.
	name := baseKey(key)
	var obj types.Object
	ast.Inspect(l, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		return true
	})
	if obj == nil {
		return true
	}
	if w.nonLocal[obj] {
		return true
	}
	return obj.Parent() == w.pass.Pkg.Scope()
}

// applyNested applies the release/transfer effects of calls nested in
// an expression (excluding skipTop, which the caller handles with its
// assignment context). Nested acquires hand their result to the
// surrounding expression and are not tracked.
func (w *walker) applyNested(st *state, e ast.Expr, skipTop *ast.CallExpr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call == skipTop {
			return true
		}
		fn := callutil.StaticCallee(w.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		for _, eff := range pairfacts.Lookup(w.pass, fn) {
			if w.skip[eff.Resource] {
				continue
			}
			switch eff.Kind {
			case directive.PairRelease:
				w.releaseAt(st, eff.Resource, candidateKeys(call), call.Pos(), fn, false)
			case directive.PairTransfer:
				for _, t := range transferTargets(st, eff.Resource, call) {
					w.discharge(t, call.Pos(), fn)
				}
			}
		}
		return true
	})
}

// applyCall applies every declared effect of a statement-level call,
// with the assignment left-hand side providing the token key and the
// gating variable for conditional effects.
func (w *walker) applyCall(st *state, call *ast.CallExpr, lhs []ast.Expr) {
	fn := callutil.StaticCallee(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for _, e := range pairfacts.Lookup(w.pass, fn) {
		if w.skip[e.Resource] {
			continue
		}
		switch e.Kind {
		case directive.PairAcquire:
			w.acquire(st, call, fn, e, lhs)
		case directive.PairRelease:
			w.releaseAt(st, e.Resource, candidateKeys(call), call.Pos(), fn, false)
		case directive.PairTransfer:
			w.transfer(st, call, fn, e, lhs)
		}
	}
}

// newTok creates a live token for an acquire call.
func (w *walker) newTok(st *state, call *ast.CallExpr, fn *types.Func, e directive.PairEffect, lhs []ast.Expr) *tok {
	key, holder := keyFromLHS(w.pass.TypesInfo, lhs)
	if key == "" {
		key = recvCanon(call)
	}
	t := &tok{pos: call.Pos(), resource: e.Resource, key: key, via: w.funcName(fn), depth: w.depth, holderPos: holder}
	st.toks = append(st.toks, t)
	return t
}

func (w *walker) acquire(st *state, call *ast.CallExpr, fn *types.Func, e directive.PairEffect, lhs []ast.Expr) {
	t := w.newTok(st, call, fn, e, lhs)
	switch e.Cond {
	case directive.CondNilErr:
		if obj := errorObjLHS(w.pass.TypesInfo, lhs); obj != nil {
			t.pendAcq = &pending{obj: obj, cond: e.Cond, pos: call.Pos(), via: t.via}
		}
		// Error discarded with _: the caller asserts success; the
		// token is firm and must still be balanced.
	case directive.CondTrue:
		if obj := boolObjLHS(w.pass.TypesInfo, lhs); obj != nil {
			t.pendAcq = &pending{obj: obj, cond: e.Cond, pos: call.Pos(), via: t.via}
		} else {
			st.drop(t)
			w.flag(e.Resource, call.Pos(), "result of conditional acquire %s (resource %s) is ignored; whether a unit was obtained cannot be proven", t.via, e.Resource)
		}
	}
}

func (w *walker) transfer(st *state, call *ast.CallExpr, fn *types.Func, e directive.PairEffect, lhs []ast.Expr) {
	live := transferTargets(st, e.Resource, call)
	if len(live) == 0 {
		return // consuming a unit this function never tracked is fine
	}
	var obj types.Object
	switch e.Cond {
	case directive.CondNilErr:
		obj = errorObjLHS(w.pass.TypesInfo, lhs)
	case directive.CondTrue:
		obj = boolObjLHS(w.pass.TypesInfo, lhs)
	}
	if e.Cond == directive.CondAlways || obj == nil {
		// Unconditional, or the result is discarded: treat as done.
		for _, t := range live {
			w.discharge(t, call.Pos(), fn)
		}
		return
	}
	p := &pending{obj: obj, cond: e.Cond, pos: call.Pos(), via: w.funcName(fn)}
	for _, t := range live {
		t.pendXfer = p
	}
}

// transferTargets narrows a transfer's effect to the units the call can
// actually see: when any live token's holder appears as the receiver or
// an argument of the call, only those tokens move; otherwise (synthetic
// keys, holder passed through a struct) every live unit is a candidate.
func transferTargets(st *state, resource string, call *ast.CallExpr) []*tok {
	live := st.liveOf(resource)
	if len(live) <= 1 {
		return live
	}
	keys := candidateKeys(call)
	var matched []*tok
	for _, t := range live {
		if tokMatchesKeys(t, keys) {
			matched = append(matched, t)
		}
	}
	if len(matched) > 0 {
		return matched
	}
	return live
}

func (w *walker) discharge(t *tok, pos token.Pos, fn *types.Func) {
	t.status = stReleased
	t.relPos = pos
	if fn != nil {
		t.relVia = w.funcName(fn)
	}
	t.pendAcq = nil
	t.pendXfer = nil
}

// releaseAt resolves one release effect against the path state:
// exact-key match first, then the sole live unit of the resource, then
// the double-release and failed-conditional-acquire findings; a
// release with no tracked unit and no failed acquire acts on a
// caller-owned unit and is fine.
func (w *walker) releaseAt(st *state, resource string, keys []string, pos token.Pos, fn *types.Func, lenient bool) {
	live := st.liveOf(resource)
	for _, t := range live {
		if tokMatchesKeys(t, keys) {
			w.discharge(t, pos, fn)
			return
		}
	}
	for _, t := range st.toks {
		if t.resource == resource && t.status == stReleased && !t.maybe && tokMatchesKeys(t, keys) {
			if !lenient {
				w.flag(resource, pos, "resource %s already %s at line %d is released again via %s (double release)",
					resource, releasedVerb(t), w.line(t.relPos), w.funcName(fn))
			}
			return
		}
	}
	if len(live) > 0 && !keyEvidenceAgainst(keys, live[0]) {
		w.discharge(live[0], pos, fn)
		return
	}
	if acqPos, ok := st.dropped[resource]; ok && !lenient {
		w.flag(resource, pos, "release of resource %s via %s on a path where the conditional acquire at line %d did not succeed%s",
			resource, w.funcName(fn), w.line(acqPos), st.path())
	}
}

func releasedVerb(t *tok) string {
	if t.relVia == "handoff" || t.relVia == "store" {
		return "handed off"
	}
	return "released via " + t.relVia
}

// tokMatchesKeys reports whether any candidate key names the token's
// holder or one of its aliases exactly.
func tokMatchesKeys(t *tok, keys []string) bool {
	if t.key != "" && containsKey(keys, t.key) {
		return true
	}
	for _, a := range t.aliases {
		if containsKey(keys, a) {
			return true
		}
	}
	return false
}

// holderBases returns the base identifiers the token's unit is known
// by: its key (stale marker stripped) and every alias.
func holderBases(t *tok) []string {
	out := []string{strings.TrimSuffix(baseKey(t.key), "#stale")}
	for _, a := range t.aliases {
		out = append(out, baseKey(a))
	}
	return out
}

// keyEvidenceAgainst reports whether a release call's candidate keys
// positively name holders other than the token's: `mm.Release(req.Slot)`
// should not discharge a sole live unit held by `echo`. No keys, or a
// synthetic token key, is no evidence either way.
func keyEvidenceAgainst(keys []string, t *tok) bool {
	if t.key == "" || len(keys) == 0 {
		return false
	}
	bases := holderBases(t)
	for _, k := range keys {
		kb := baseKey(k)
		for _, b := range bases {
			if kb == b {
				return false
			}
		}
	}
	return true
}

func containsKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// candidateKeys renders the receiver and arguments of a call as
// tracking keys a release may be matched against.
func candidateKeys(call *ast.CallExpr) []string {
	var keys []string
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if k := callutil.Canon(sel.X); k != "" {
			keys = append(keys, k)
		}
	}
	for _, a := range call.Args {
		if k := callutil.Canon(a); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

func recvCanon(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return callutil.Canon(sel.X)
	}
	return ""
}

func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func errorObjLHS(info *types.Info, lhs []ast.Expr) types.Object {
	for _, e := range lhs {
		if o := lhsObj(info, e); o != nil && o.Type() != nil && isErrorType(o.Type()) {
			return o
		}
	}
	return nil
}

func boolObjLHS(info *types.Info, lhs []ast.Expr) types.Object {
	for _, e := range lhs {
		if o := lhsObj(info, e); o != nil && o.Type() != nil && isBoolType(o.Type()) {
			return o
		}
	}
	return nil
}

// keyFromLHS picks the assigned variable that holds the acquired
// resource — the first name that is not the error/bool gate — and
// reports the declaration position of that holder, so loop checks can
// tell a holder declared outside the loop from a per-lap one.
func keyFromLHS(info *types.Info, lhs []ast.Expr) (string, token.Pos) {
	for _, e := range lhs {
		o := lhsObj(info, e)
		if o == nil || o.Type() == nil || isErrorType(o.Type()) || isBoolType(o.Type()) {
			continue
		}
		if key := callutil.Canon(e); key != "" {
			return key, o.Pos()
		}
	}
	return "", token.NoPos
}
