// Package paircheck implements the insanevet rule proving resource
// balance: every acquisition of a named resource — a tenant TX token,
// a mempool slot, a pooled envelope, a reusable timer — is matched by
// a release or a transfer to another owner on every control-flow path
// out of the function, including error returns, panics and defers
// (DESIGN.md §13).
//
// Functions declare their effect in the doc comment:
//
//	//insane:acquire resource=<name> [on=true|on=nilerr]
//	//insane:release resource=<name>
//	//insane:transfer resource=<name> [on=true|on=nilerr]
//	//insane:unbalanced resource=<name> by=<reason>
//
// The declarations travel the whole-program dependency closure as
// facts (internal/lint/pairfacts), so a call into another package
// resolves its effect exactly like a local one. Within each body the
// analyzer runs a path-sensitive walk: conditional acquires
// (TryCharge returning false, GetBuffer returning an error) stay
// pending until a branch on the gating variable resolves them, a
// conditional transfer (a failed lane push) reverts ownership to the
// caller on the failure side, short-circuit conjuncts attach nil-check
// guards, and defers apply at every subsequent exit. The diagnostics
// cover six classes: a leak on a return path, a release on a path
// whose conditional acquire failed, a double release, an acquire
// returned from an undeclared function, a stale or malformed
// annotation, and a stale waiver.
//
// Trust boundaries keep the proof compositional: a function declared
// //insane:release or //insane:transfer for a resource is the trusted
// boundary for the caller-owned unit it consumes, so its body is not
// re-verified for that resource; a declared acquirer whose body calls
// no annotated function for the resource is its trusted primitive
// (the atomics inside chargeTX). Everything else is proven.
package paircheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/pairfacts"
)

// Analyzer is the paircheck rule. Its fact type makes it
// whole-program: the driver runs it over the full in-module dependency
// closure, dependencies first.
var Analyzer = &analysis.Analyzer{
	Name:      "paircheck",
	Doc:       "prove every declared resource acquisition is balanced by a release or transfer on every control-flow path",
	Run:       run,
	FactTypes: []analysis.Fact{(*pairfacts.Effects)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	decls, probs := pairfacts.Export(pass)
	for _, p := range probs {
		pass.Reportf(p.Pos, "%s", p.Msg)
	}
	byFn := make(map[*ast.FuncDecl]*pairfacts.Decl, len(decls))
	for i := range decls {
		byFn[decls[i].Fn] = &decls[i]
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					verifyFunc(pass, n, byFn[n])
				}
			case *ast.FuncLit:
				verifyLit(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// verifyFunc walks one declared function body.
func verifyFunc(pass *analysis.Pass, fd *ast.FuncDecl, decl *pairfacts.Decl) {
	w := &walker{
		pass:      pass,
		fname:     fd.Name.Name,
		declared:  make(map[string]directive.PairCond),
		skip:      make(map[string]bool),
		waived:    make(map[string]bool),
		waiverHit: make(map[string]bool),
		nonLocal:  make(map[types.Object]bool),
		reported:  make(map[string]bool),
	}
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		w.sig, _ = obj.Type().(*types.Signature)
	}
	if w.sig != nil {
		if r := w.sig.Recv(); r != nil {
			w.nonLocal[r] = true
		}
		for i := 0; i < w.sig.Params().Len(); i++ {
			w.nonLocal[w.sig.Params().At(i)] = true
		}
	}
	if decl != nil {
		for _, e := range decl.Dirs.Effects {
			if e.Kind == directive.PairAcquire {
				w.declared[e.Resource] = e.Cond
			} else {
				w.skip[e.Resource] = true
			}
		}
		for _, wv := range decl.Dirs.Waivers {
			w.waived[wv.Resource] = true
		}
	}
	w.hasEffect = effectCallsIn(pass, fd.Body)
	w.bodyEnd = fd.Body.Rbrace
	out := w.walkStmts(fd.Body.List, newState())
	if out != nil {
		w.doExit(out, nil)
	}
	if decl != nil {
		for _, wv := range decl.Dirs.Waivers {
			if !w.waiverHit[wv.Resource] {
				pass.Reportf(fd.Name.Pos(), "//insane:unbalanced resource=%s: every path of %s is balanced; remove the stale waiver", wv.Resource, fd.Name.Name)
			}
		}
	}
}

// verifyLit walks a function literal with lenient closure semantics:
// no declarations apply, and an acquire in return position forwards
// the unit to whoever calls the closure.
func verifyLit(pass *analysis.Pass, lit *ast.FuncLit) {
	w := &walker{
		pass:      pass,
		fname:     "func literal",
		isLit:     true,
		declared:  make(map[string]directive.PairCond),
		skip:      make(map[string]bool),
		waived:    make(map[string]bool),
		waiverHit: make(map[string]bool),
		nonLocal:  make(map[types.Object]bool),
		reported:  make(map[string]bool),
	}
	if tv, ok := pass.TypesInfo.Types[lit]; ok {
		w.sig, _ = tv.Type.(*types.Signature)
	}
	w.hasEffect = effectCallsIn(pass, lit.Body)
	w.bodyEnd = lit.Body.Rbrace
	out := w.walkStmts(lit.Body.List, newState())
	if out != nil {
		w.doExit(out, nil)
	}
}

// effectCallsIn records which resources the body touches through
// annotated calls; a declared acquirer with no such call for its
// resource is that resource's trusted primitive.
func effectCallsIn(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callutil.StaticCallee(pass.TypesInfo, call); fn != nil {
			for _, e := range pairfacts.Lookup(pass, fn) {
				out[e.Resource] = true
			}
		}
		return true
	})
	return out
}

// exitClass is what a return statement tells us about a conditional
// acquirer's result.
type exitClass int

const (
	exitUnknown exitClass = iota
	exitSuccess
	exitFailure
)

// doExit processes one path leaving the function: apply nested result
// effects and the registered defers, honor acquire-forwarding in
// return position, then check every resource's balance.
func (w *walker) doExit(st *state, ret *ast.ReturnStmt) {
	forwarded := make(map[string]bool)
	if ret != nil {
		for _, r := range ret.Results {
			w.applyNested(st, r, nil)
		}
		w.scanReturnAcquires(st, ret.Results, forwarded)
	}
	ex := st.clone()
	for i := len(ex.defers) - 1; i >= 0; i-- {
		w.applyDefer(ex, ex.defers[i])
	}
	w.checkExit(ex, ret, forwarded)
}

// scanReturnAcquires handles effect calls in return position: a
// declared acquirer (or a closure) may forward a fresh unit straight
// to its caller; anything else acquires a resource its caller cannot
// see.
func (w *walker) scanReturnAcquires(st *state, results []ast.Expr, forwarded map[string]bool) {
	for _, r := range results {
		ast.Inspect(r, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callutil.StaticCallee(w.pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			for _, e := range pairfacts.Lookup(w.pass, fn) {
				if e.Kind != directive.PairAcquire || w.skip[e.Resource] {
					continue
				}
				if _, ok := w.declared[e.Resource]; ok || w.isLit {
					forwarded[e.Resource] = true
					continue
				}
				w.flag(e.Resource, call.Pos(), "resource %s acquired via %s in return position of a function not declared //insane:acquire resource=%s; the caller cannot see the obligation",
					e.Resource, w.funcName(fn), e.Resource)
			}
			return true
		})
	}
}

// applyDefer applies the release effects of one deferred call to the
// exit state.
func (w *walker) applyDefer(ex *state, d deferEntry) {
	call, ok := d.call.(*ast.CallExpr)
	if !ok {
		return
	}
	if lit, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
		// A deferred closure: trust it with every token it captures.
		w.dischargeMentioned(ex, lit.Body, d.pos)
		return
	}
	fn := callutil.StaticCallee(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for _, e := range pairfacts.Lookup(w.pass, fn) {
		if w.skip[e.Resource] {
			continue
		}
		switch e.Kind {
		case directive.PairRelease:
			w.releaseAt(ex, e.Resource, candidateKeys(call), call.Pos(), fn, false)
		case directive.PairTransfer:
			for _, t := range transferTargets(ex, e.Resource, call) {
				w.discharge(t, call.Pos(), fn)
			}
		}
	}
}

// checkExit verifies the balance of every resource at one exit.
func (w *walker) checkExit(ex *state, ret *ast.ReturnStmt, forwarded map[string]bool) {
	resources := make(map[string]bool)
	for _, t := range ex.toks {
		resources[t.resource] = true
	}
	for r := range w.declared {
		resources[r] = true
	}
	for resource := range resources {
		if w.skip[resource] || forwarded[resource] {
			continue
		}
		live := ex.liveOf(resource)
		var firm []*tok
		for _, t := range live {
			if t.firm() && t.guard == nil {
				firm = append(firm, t)
			}
		}
		cond, isDeclared := w.declared[resource]
		if isDeclared {
			if !w.hasEffect[resource] {
				continue // trusted primitive for this resource
			}
			switch w.classifyExit(ret, cond) {
			case exitSuccess:
				if len(live) == 0 {
					w.flag(resource, exitPos(ret, w), "declared //insane:acquire resource=%s, but no unit is held at this success return%s; the annotation is stale or an acquire is missing",
						resource, ex.path())
				} else if len(firm) > 1 {
					w.flag(resource, exitPos(ret, w), "holds %d units of resource %s at a success return%s; //insane:acquire hands exactly one to the caller",
						len(firm), resource, ex.path())
				}
			case exitFailure:
				for _, t := range firm {
					w.flag(resource, exitPos(ret, w), "resource %s acquired via %s at line %d leaks on this failure return%s",
						resource, t.via, w.line(t.pos), ex.path())
				}
			default:
				if len(firm) > 1 {
					w.flag(resource, exitPos(ret, w), "holds %d units of resource %s at this return%s; //insane:acquire hands exactly one to the caller",
						len(firm), resource, ex.path())
				}
			}
			continue
		}
		for _, t := range live {
			if t.maybe || t.guard != nil {
				continue // merged across branches: give the benefit of the doubt
			}
			if t.pendXfer != nil {
				w.flag(resource, exitPos(ret, w), "resource %s handed to conditional transfer %s at line %d may not have moved: resolve the gate (release on failure) before this return, or declare this function //insane:transfer%s",
					resource, t.pendXfer.via, w.line(t.pendXfer.pos), ex.path())
				continue
			}
			if t.pendAcq != nil {
				w.flag(resource, exitPos(ret, w), "resource %s conditionally acquired via %s at line %d may leak: its gate is never checked before this return%s",
					resource, t.via, w.line(t.pos), ex.path())
				continue
			}
			w.flag(resource, exitPos(ret, w), "resource %s acquired via %s at line %d is not released on this return path%s; release it, hand it to a //insane:transfer callee, or declare/waive the imbalance",
				resource, t.via, w.line(t.pos), ex.path())
		}
	}
}

// exitPos anchors an exit diagnostic: the return statement, or the
// closing brace for an implicit fall-off-the-end exit.
func exitPos(ret *ast.ReturnStmt, w *walker) token.Pos {
	if ret != nil {
		return ret.Pos()
	}
	return w.bodyEnd
}

// classifyExit inspects the returned gate value of a conditional
// acquirer: `return b, nil` is a success, `return nil, ErrTimeout` (a
// package sentinel) or a fresh fmt.Errorf a failure, a plain variable
// unknown.
func (w *walker) classifyExit(ret *ast.ReturnStmt, cond directive.PairCond) exitClass {
	if cond == directive.CondAlways {
		return exitSuccess
	}
	if ret == nil || len(ret.Results) == 0 || w.sig == nil {
		return exitUnknown
	}
	if len(ret.Results) != w.sig.Results().Len() {
		return exitUnknown // return f() forwarding or mismatch
	}
	switch cond {
	case directive.CondNilErr:
		idx := -1
		for i := w.sig.Results().Len() - 1; i >= 0; i-- {
			if isErrorType(w.sig.Results().At(i).Type()) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return exitUnknown
		}
		return w.classifyErrExpr(ret.Results[idx])
	case directive.CondTrue:
		if id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident); ok {
			switch id.Name {
			case "true":
				return exitSuccess
			case "false":
				return exitFailure
			}
		}
	}
	return exitUnknown
}

func (w *walker) classifyErrExpr(e ast.Expr) exitClass {
	e = ast.Unparen(e)
	if isNilIdent(w.pass.TypesInfo, e) {
		return exitSuccess
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn := callutil.StaticCallee(w.pass.TypesInfo, e); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "fmt.Errorf", "errors.New":
				return exitFailure // these never return nil
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		switch e := e.(type) {
		case *ast.Ident:
			obj = w.pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			obj = w.pass.TypesInfo.Uses[e.Sel]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && isErrorType(v.Type()) {
			return exitFailure // package-level error sentinels are non-nil
		}
	}
	return exitUnknown
}
