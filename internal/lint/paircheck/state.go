package paircheck

import (
	"go/token"
	"go/types"
	"strings"

	"github.com/insane-mw/insane/internal/lint/directive"
)

// tokStatus is the lifecycle position of one tracked resource unit.
type tokStatus int

const (
	stLive     tokStatus = iota // held by this function on this path
	stReleased                  // released or transferred on this path
)

// pending ties a token's existence (conditional acquire) or its
// discharge (conditional transfer) to a gating variable: the token's
// effect happened iff the predicate holds, where the predicate is
// "obj == nil" for CondNilErr gates and "obj is true" for CondTrue.
type pending struct {
	obj  types.Object
	cond directive.PairCond
	pos  token.Pos // the gated effect call site
	via  string    // rendered callee of that call
}

// holdsWhen reports whether the pending predicate is satisfied by the
// branch knowledge "obj is nil/true" (truth) for its condition kind.
// For CondNilErr truth means the error is nil; for CondTrue it means
// the bool is true — in both encodings the effect happened iff truth.
func (p *pending) matches(obj types.Object) bool {
	return p != nil && p.obj != nil && p.obj == obj
}

// guardDesc describes a condition a token's existence depends on:
// "key != nil" (nonNil) or "key is true" (bool sense), attached when a
// short-circuit conjunct hid the acquire behind another test
// (`ten != nil && !ten.chargeTX()`).
type guardDesc struct {
	key    string
	isBool bool
	sense  bool // true: token exists when key != nil / key is true
}

func (g *guardDesc) String() string {
	if g == nil {
		return ""
	}
	op := " != nil"
	if g.isBool {
		op = ""
	}
	if !g.sense {
		if g.isBool {
			return "!" + g.key
		}
		op = " == nil"
	}
	return g.key + op
}

// tok is one tracked unit of a resource on one path.
type tok struct {
	pos      token.Pos // acquire call site (diagnostic anchor + identity)
	resource string
	key      string   // canonical holder expression, "" when synthetic
	aliases  []string // other holders the unit flowed into (m := wrap(d))
	via      string   // rendered acquire callee, for messages
	status   tokStatus
	maybe    bool      // status merged from diverging paths: be lenient
	pendAcq  *pending  // unresolved conditional acquire
	pendXfer *pending  // unresolved conditional transfer
	guard    *guardDesc
	depth    int       // loop depth at the acquire
	// holderPos is the declaration position of the variable holding the
	// unit (NoPos when the holder is synthetic): a holder declared
	// before a loop survives its iterations, so holding at an
	// iteration's end is not a per-lap leak.
	holderPos token.Pos
	relPos   token.Pos // release site, for double-release messages
	relVia   string
}

func (t *tok) id() [2]interface{} { return [2]interface{}{t.pos, t.resource} }

// live reports whether the token still demands a release on this path.
func (t *tok) live() bool { return t.status == stLive }

// firm reports whether the token provably exists and is unreleased:
// no unresolved acquire/transfer condition and no merge ambiguity.
func (t *tok) firm() bool {
	return t.status == stLive && !t.maybe && t.pendAcq == nil && t.pendXfer == nil
}

// deferEntry is one deferred call whose release effects apply at every
// subsequent exit of the function.
type deferEntry struct {
	pos  token.Pos
	call interface{} // *ast.CallExpr (direct) or *ast.FuncLit body scan
}

// state is the walker's per-path knowledge: the tracked tokens, the
// resources whose conditional acquire failed on this path, the pending
// defers and the branch trail for diagnostics.
type state struct {
	toks    []*tok
	dropped map[string]token.Pos // resource -> failed-acquire site
	defers  []deferEntry
	trail   []string
}

func newState() *state {
	return &state{dropped: make(map[string]token.Pos)}
}

func (s *state) clone() *state {
	c := &state{
		toks:    make([]*tok, len(s.toks)),
		dropped: make(map[string]token.Pos, len(s.dropped)),
		defers:  append([]deferEntry(nil), s.defers...),
		trail:   append([]string(nil), s.trail...),
	}
	for i, t := range s.toks {
		tc := *t
		tc.aliases = append([]string(nil), t.aliases...)
		c.toks[i] = &tc
	}
	for k, v := range s.dropped {
		c.dropped[k] = v
	}
	return c
}

// note appends a branch condition to the path trail (capped: only the
// most recent conditions matter to a reader).
func (s *state) note(cond string) {
	if len(s.trail) >= 6 {
		s.trail = append(s.trail[1:6:6], cond)
		return
	}
	s.trail = append(s.trail, cond)
}

// path renders the branch trail for a diagnostic.
func (s *state) path() string {
	if len(s.trail) == 0 {
		return ""
	}
	return " (path: " + strings.Join(s.trail, "; ") + ")"
}

// find returns the token with the given identity, or nil.
func (s *state) find(id [2]interface{}) *tok {
	for _, t := range s.toks {
		if t.id() == id {
			return t
		}
	}
	return nil
}

// liveOf returns the live tokens of one resource.
func (s *state) liveOf(resource string) []*tok {
	var out []*tok
	for _, t := range s.toks {
		if t.resource == resource && t.live() {
			out = append(out, t)
		}
	}
	return out
}

// drop removes a token from the state entirely (its acquire did not
// happen on this path).
func (s *state) drop(t *tok) {
	for i, x := range s.toks {
		if x == t {
			s.toks = append(s.toks[:i:i], s.toks[i+1:]...)
			return
		}
	}
}

// merge joins the fall-through states of two branches. Tokens present
// on both sides merge status (diverging live/released goes lenient via
// maybe); one-sided tokens are kept as-is — the leak checks still see
// them, and the && / || splitters attach guards where the one-sidedness
// is a provable short-circuit. Returns nil iff both inputs are nil
// (both branches terminated).
func merge(a, b *state) *state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for _, bt := range b.toks {
		at := out.find(bt.id())
		if at == nil {
			tc := *bt
			out.toks = append(out.toks, &tc)
			continue
		}
		if at.status != bt.status {
			at.status = stLive
			at.maybe = true
		}
		for _, a := range bt.aliases {
			dup := false
			for _, x := range at.aliases {
				if x == a {
					dup = true
					break
				}
			}
			if !dup {
				at.aliases = append(at.aliases, a)
			}
		}
		if at.pendAcq == nil && bt.pendAcq != nil {
			at.pendAcq = bt.pendAcq
		}
		if at.pendXfer == nil && bt.pendXfer != nil {
			at.pendXfer = bt.pendXfer
		}
		if at.guard != nil && (bt.guard == nil || *bt.guard != *at.guard) {
			// Guard knowledge diverged; keep the stronger claim only
			// when both sides agree.
			if bt.guard == nil {
				at.guard = nil
			}
		}
	}
	for r, pos := range b.dropped {
		if _, ok := out.dropped[r]; !ok {
			out.dropped[r] = pos
		}
	}
	for _, bd := range b.defers {
		dup := false
		for _, ad := range out.defers {
			if ad.pos == bd.pos {
				dup = true
				break
			}
		}
		if !dup {
			out.defers = append(out.defers, bd)
		}
	}
	return out
}

// mergeAll folds a set of branch outcomes, tolerating nils.
func mergeAll(states ...*state) *state {
	var out *state
	for _, s := range states {
		out = merge(out, s)
	}
	return out
}
