package paircheck

import (
	"go/ast"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/pairfacts"
)

// splitCond evaluates a branch condition against the incoming state
// and returns the states of the true and false sides. Effect calls
// inside the condition (`if !ten.chargeTX()`, `if !lane.push(tok)`)
// are applied per side; comparisons against nil and bare bool reads
// resolve pending conditional acquires/transfers gated on the tested
// variable; && and || are split short-circuit-accurately, attaching
// nil-check guards to tokens whose existence one conjunct hides.
func (w *walker) splitCond(cond ast.Expr, st *state) (thenSt, elseSt *state) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op.String() == "!" {
			t, e := w.splitCond(c.X, st)
			return e, t
		}
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			aT, aF := w.splitCond(c.X, st)
			bT, bF := w.splitCond(c.Y, aT)
			attachGuards(bF, aF, posDesc(w.pass.TypesInfo, c.X))
			return bT, merge(aF, bF)
		case "||":
			aT, aF := w.splitCond(c.X, st)
			bT, bF := w.splitCond(c.Y, aF)
			attachGuards(aT, bT, posDesc(w.pass.TypesInfo, c.X))
			attachGuards(bT, aT, posDesc(w.pass.TypesInfo, c.Y))
			return merge(aT, bT), bF
		case "==", "!=":
			if obj, isNilCmp := nilComparand(w.pass.TypesInfo, c); isNilCmp {
				thenSt, elseSt = st.clone(), st.clone()
				eq := c.Op.String() == "=="
				// Branch where the comparand IS nil:
				w.resolveNil(pick(eq, thenSt, elseSt), obj, true)
				w.resolveNil(pick(eq, elseSt, thenSt), obj, false)
				w.resolveGuards(thenSt, elseSt, posDesc(w.pass.TypesInfo, c))
				return thenSt, elseSt
			}
		}
	case *ast.CallExpr:
		// errors.Is(err, X): the true side proves err non-nil; the
		// false side proves nothing (err may be nil or another error).
		if obj := errorsIsTarget(w.pass.TypesInfo, c); obj != nil {
			thenSt, elseSt = st.clone(), st.clone()
			w.resolveNil(thenSt, obj, false)
			return thenSt, elseSt
		}
		// A conditional effect call evaluated directly as the branch
		// condition: the true side saw the effect succeed.
		if fn := callutil.StaticCallee(w.pass.TypesInfo, c); fn != nil {
			for _, e := range pairfacts.Lookup(w.pass, fn) {
				if e.Cond != directive.CondTrue || w.skip[e.Resource] {
					continue
				}
				thenSt, elseSt = st.clone(), st.clone()
				switch e.Kind {
				case directive.PairAcquire:
					t := w.newTok(thenSt, c, fn, e, nil)
					t.pendAcq = nil // proven on the true side
					elseSt.dropped[e.Resource] = c.Pos()
				case directive.PairTransfer:
					for _, t := range transferTargets(thenSt, e.Resource, c) {
						w.discharge(t, c.Pos(), fn)
					}
				}
				return thenSt, elseSt
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if obj := boolObj(w.pass.TypesInfo, ast.Unparen(cond)); obj != nil {
			thenSt, elseSt = st.clone(), st.clone()
			w.resolveBool(thenSt, obj, true)
			w.resolveBool(elseSt, obj, false)
			w.resolveGuards(thenSt, elseSt, posDesc(w.pass.TypesInfo, cond))
			return thenSt, elseSt
		}
	}
	// Opaque condition: apply any release/transfer effects buried in it
	// leniently, then fork.
	w.applyNested(st, cond, nil)
	return st.clone(), st.clone()
}

// pick returns a when cond, else b.
func pick(cond bool, a, b *state) *state {
	if cond {
		return a
	}
	return b
}

// resolveNil applies the branch knowledge "obj is nil" (isNil) to the
// pending tokens gated on obj: a CondNilErr acquire materialized iff
// the error is nil; a CondNilErr transfer discharged iff it is nil.
func (w *walker) resolveNil(st *state, obj types.Object, isNil bool) {
	for _, t := range append([]*tok(nil), st.toks...) {
		if t.pendAcq.matches(obj) && t.pendAcq.cond == directive.CondNilErr {
			if isNil {
				t.pendAcq = nil
			} else {
				st.drop(t)
				st.dropped[t.resource] = t.pos
				continue
			}
		}
		if t.pendXfer.matches(obj) && t.pendXfer.cond == directive.CondNilErr {
			if isNil {
				t.status = stReleased
				t.relPos = t.pendXfer.pos
				t.relVia = t.pendXfer.via
			}
			t.pendXfer = nil
		}
	}
}

// resolveBool applies "obj is truth" to CondTrue-gated pendings.
func (w *walker) resolveBool(st *state, obj types.Object, truth bool) {
	for _, t := range append([]*tok(nil), st.toks...) {
		if t.pendAcq.matches(obj) && t.pendAcq.cond == directive.CondTrue {
			if truth {
				t.pendAcq = nil
			} else {
				st.drop(t)
				st.dropped[t.resource] = t.pos
				continue
			}
		}
		if t.pendXfer.matches(obj) && t.pendXfer.cond == directive.CondTrue {
			if truth {
				t.status = stReleased
				t.relPos = t.pendXfer.pos
				t.relVia = t.pendXfer.via
			}
			t.pendXfer = nil
		}
	}
}

// resolveGuards resolves tokens whose guard matches the branch
// descriptor: on the side where the guard holds the token is confirmed
// (guard cleared); on the other side it never existed.
func (w *walker) resolveGuards(thenSt, elseSt *state, desc *guardDesc) {
	if desc == nil {
		return
	}
	resolve := func(s *state, holds bool) {
		for _, t := range append([]*tok(nil), s.toks...) {
			if t.guard == nil || t.guard.key != desc.key || t.guard.isBool != desc.isBool {
				continue
			}
			if t.guard.sense == (desc.sense == holds) {
				t.guard = nil
			} else {
				s.drop(t)
			}
		}
	}
	resolve(thenSt, true)
	resolve(elseSt, false)
}

// attachGuards marks tokens present in st but absent from other as
// guarded by desc: their existence is conditional on the short-circuit
// conjunct that other represents having gone the desc way.
func attachGuards(st, other *state, desc *guardDesc) {
	if st == nil || other == nil || desc == nil {
		return
	}
	for _, t := range st.toks {
		if t.guard == nil && other.find(t.id()) == nil {
			d := *desc
			t.guard = &d
		}
	}
}

// posDesc extracts the condition descriptor that holds on the true
// branch: "x != nil", "x == nil", a bool read or its negation.
func posDesc(info *types.Info, cond ast.Expr) *guardDesc {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op.String() == "!" {
			if d := posDesc(info, c.X); d != nil {
				n := *d
				n.sense = !n.sense
				return &n
			}
		}
	case *ast.BinaryExpr:
		if op := c.Op.String(); op == "==" || op == "!=" {
			if _, isNilCmp := nilComparand(info, c); isNilCmp {
				e := c.X
				if isNilIdent(info, e) {
					e = c.Y
				}
				if key := callutil.Canon(e); key != "" {
					return &guardDesc{key: key, sense: op == "!="}
				}
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if boolObj(info, ast.Unparen(cond)) != nil {
			if key := callutil.Canon(cond); key != "" {
				return &guardDesc{key: key, isBool: true, sense: true}
			}
		}
	}
	return nil
}

// nilComparand matches `x == nil` / `x != nil` and returns the typed
// object of x when x is a plain identifier (nil otherwise; the
// comparison is still recognized for guard descriptors).
func nilComparand(info *types.Info, c *ast.BinaryExpr) (types.Object, bool) {
	var e ast.Expr
	switch {
	case isNilIdent(info, c.Y):
		e = c.X
	case isNilIdent(info, c.X):
		e = c.Y
	default:
		return nil, false
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id], true
	}
	return nil, true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// boolObj returns the object of a bool-typed identifier or selector.
func boolObj(info *types.Info, e ast.Expr) types.Object {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	if obj == nil || obj.Type() == nil {
		return nil
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
		return obj
	}
	return nil
}

// errorsIsTarget matches errors.Is(err, sentinel) and returns err's
// object when err is an identifier.
func errorsIsTarget(info *types.Info, call *ast.CallExpr) types.Object {
	fn := callutil.StaticCallee(info, call)
	if fn == nil || fn.Name() != "Is" || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || len(call.Args) < 1 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}
