// Package pairdep declares the annotated primitives consumed by the
// pairuse fixture: the pair effects must travel as exported facts so a
// cross-package caller is verified exactly like a local one.
package pairdep

// Thing is the resource unit handed across the package boundary.
type Thing struct{ n int }

//insane:acquire resource=dslot on=nilerr
func Get() (*Thing, error) { return &Thing{}, nil }

//insane:release resource=dslot
func Put(t *Thing) { _ = t }

//insane:transfer resource=dslot
func Emit(t *Thing) { _ = t }

//insane:acquire resource=dtok on=true
func TryReserve() bool { return true }

//insane:release resource=dtok
func Unreserve() {}
