// Package a exercises every paircheck diagnostic class inside one
// package: leak on an error path, a release on a failed-conditional-
// acquire path, a double release, an iteration-end leak, an acquire in
// return position of an undeclared function, an ignored conditional
// result, stale declarations and waivers — plus the clean patterns
// (defer, guard conjuncts, conditional transfer, forwarding) that must
// stay silent.
package a

import "errors"

// Slot is the tracked resource unit.
type Slot struct{ n int }

var errFull = errors.New("full")

// ---- annotated primitives (trusted: no annotated calls inside) ------

//insane:acquire resource=slot on=nilerr
func getSlot() (*Slot, error) { return &Slot{}, nil }

//insane:release resource=slot
func putSlot(s *Slot) { _ = s }

//insane:acquire resource=tok on=true
func tryCharge() bool { return true }

//insane:release resource=tok
func uncharge() {}

//insane:transfer resource=tok on=true
func push(s *Slot) bool { return s != nil }

// tenant carries the method forms used by the guard tests.
type tenant struct{ used int }

//insane:acquire resource=tok on=true
func (t *tenant) charge() bool { return true }

//insane:release resource=tok
func (t *tenant) uncharge() {}

// bad is an opaque, unannotated predicate.
func bad() bool { return false }

// use is an opaque, unannotated consumer that takes no ownership.
func use(s *Slot) { _ = s }

// ---- leak on an error path ------------------------------------------

func leakOnError() error {
	s, err := getSlot()
	if err != nil {
		return err
	}
	if bad() {
		return errors.New("mid") // want `resource slot acquired via getSlot at line \d+ is not released on this return path`
	}
	putSlot(s)
	return nil
}

// ---- release on a path where the conditional acquire failed ---------

func releaseAfterFailedCharge() {
	ok := tryCharge()
	if !ok {
		uncharge() // want `release of resource tok via uncharge on a path where the conditional acquire at line \d+ did not succeed`
		return
	}
	uncharge()
}

// ---- double release --------------------------------------------------

func doubleRelease() {
	s, err := getSlot()
	if err != nil {
		return
	}
	putSlot(s)
	putSlot(s) // want `resource slot already released via putSlot at line \d+ is released again via putSlot \(double release\)`
}

// ---- iteration-end leak ---------------------------------------------

func leakPerLap() {
	for i := 0; i < 4; i++ {
		s, err := getSlot()
		if err != nil {
			continue
		}
		use(s)
	} // want `resource slot acquired via getSlot at line \d+ is still held at the end of the loop iteration; it leaks once per lap`
}

// releasedPerLap is the clean twin: each lap returns its unit before
// the iteration ends.
func releasedPerLap() {
	for i := 0; i < 4; i++ {
		s, err := getSlot()
		if err != nil {
			continue
		}
		putSlot(s)
	}
}

// ---- acquire in return position of an undeclared function -----------

func wrapGet() (*Slot, error) {
	return getSlot() // want `resource slot acquired via getSlot in return position of a function not declared //insane:acquire resource=slot`
}

// wrapGetDeclared forwards legally: the declaration moves the
// obligation to its callers.
//
//insane:acquire resource=slot on=nilerr
func wrapGetDeclared() (*Slot, error) {
	return getSlot()
}

// ---- ignored conditional-acquire result -----------------------------

func ignoredGate() {
	tryCharge() // want `result of conditional acquire tryCharge \(resource tok\) is ignored`
}

// ---- conditional acquire whose gate is never checked ----------------

func gateNeverChecked() {
	s, err := getSlot()
	use(s)
	_ = err
} // want `resource slot conditionally acquired via getSlot at line \d+ may leak: its gate is never checked`

// ---- stale declaration: no unit held at a success return ------------

//insane:acquire resource=slot on=nilerr
func staleAcquire() (*Slot, error) {
	s, err := getSlot()
	if err != nil {
		return nil, err
	}
	putSlot(s)
	return nil, nil // want `declared //insane:acquire resource=slot, but no unit is held at this success return`
}

// ---- declared acquirer leaking on a recognizable failure return -----

//insane:acquire resource=slot on=nilerr
func acquireThenFail() (*Slot, error) {
	s, err := getSlot()
	if err != nil {
		return nil, err
	}
	if bad() {
		return nil, errFull // want `resource slot acquired via getSlot at line \d+ leaks on this failure return`
	}
	return s, nil
}

// ---- stale waiver ----------------------------------------------------

//insane:unbalanced resource=slot by=kept for the stale-waiver fixture
func waivedClean() { // want `//insane:unbalanced resource=slot: every path of waivedClean is balanced; remove the stale waiver`
	s, err := getSlot()
	if err != nil {
		return
	}
	putSlot(s)
}

// waivedLeak holds a unit past its exit on purpose; the verified
// waiver silences the leak finding and is itself not flagged.
//
//insane:unbalanced resource=slot by=unit parked in the package registry for tests
func waivedLeak() {
	s, _ := getSlot()
	use(s)
}

// ---- clean patterns that must stay silent ---------------------------

// deferRelease releases through a defer on every path.
func deferRelease() error {
	s, err := getSlot()
	if err != nil {
		return err
	}
	defer putSlot(s)
	if bad() {
		return errFull
	}
	return nil
}

// chargeAndPush is the TX-token shape: conditional acquire, transfer
// into a lane, explicit refund when the push fails.
func chargeAndPush(s *Slot) error {
	if !tryCharge() {
		return errFull
	}
	if !push(s) {
		uncharge()
		return errFull
	}
	return nil
}

// guarded hides the acquire behind a nil check and refunds behind the
// same check — the short-circuit guard machinery must connect the two.
func guarded(t *tenant, s *Slot) error {
	if t != nil && !t.charge() {
		return errFull
	}
	if !push(s) {
		if t != nil {
			t.uncharge()
		}
		return errFull
	}
	return nil
}

// retryPush loops on backpressure without re-acquiring: the token was
// acquired outside the loop, so the iteration-end check stays quiet.
func retryPush(s *Slot) error {
	if !tryCharge() {
		return errFull
	}
	for i := 0; i < 8; i++ {
		if push(s) {
			return nil
		}
	}
	uncharge()
	return errFull
}

// storedAway parks the unit in the receiver: the obligation moves to
// whoever owns the struct.
type holder struct{ s *Slot }

func (h *holder) storedAway() error {
	s, err := getSlot()
	if err != nil {
		return err
	}
	h.s = s
	return nil
}

// panicPath terminates without returning; paths into panic are not
// exits that demand balance.
func panicPath() {
	s, err := getSlot()
	if err != nil {
		panic(err)
	}
	putSlot(s)
}

// ---- the three refinement regressions -------------------------------

// emit is a conditional transfer primitive gated on its error result,
// like Source.Emit: the unit moved iff the error is nil.
//
//insane:transfer resource=slot on=nilerr
func emit(s *Slot) error {
	if s == nil {
		return errRetry
	}
	return nil
}

var errRetry = errors.New("retry")

// heldAcrossLaps holds one unit in a variable declared before the loop
// and retries emitting it: the holder survives iterations, so the
// iteration-end check must stay silent; the exits still balance.
func heldAcrossLaps() error {
	s, err := getSlot()
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if err := emit(s); err == nil {
			return nil
		}
	}
	putSlot(s)
	return errFull
}

// twoUnits holds two units and hands only one to the transfer call: the
// key match must keep the other unit tracked, and releasing it after
// the transfer is not a double release.
func twoUnits() error {
	a, err := getSlot()
	if err != nil {
		return err
	}
	b, err := getSlot()
	if err != nil {
		putSlot(a)
		return err
	}
	if err := emit(b); err != nil {
		putSlot(b)
		putSlot(a)
		return err
	}
	putSlot(a)
	return nil
}

// publishLike retries a conditional transfer and returns any other
// error without resolving the transfer gate: on that path the unit may
// still be held.
func publishLike() error {
	s, err := getSlot()
	if err != nil {
		return err
	}
	for {
		err := emit(s)
		if !errors.Is(err, errRetry) {
			return err // want `resource slot handed to conditional transfer emit at line \d+ may not have moved`
		}
	}
}

// ---- alias propagation ----------------------------------------------

// box wraps a unit in a local carrier, like a delivery wrapped into a
// pooled message.
type box struct{ s *Slot }

func wrap(s *Slot) *box { return &box{s: s} }

//insane:release resource=slot
func putBox(b *box) { _ = b }

// pumpLike acquires, wraps, and releases through the wrapper: alias
// propagation must connect putBox(b) back to the unit acquired into s,
// keeping both the iteration-end and the exit checks silent.
func pumpLike() {
	for {
		s, err := getSlot()
		if err != nil {
			return
		}
		b := wrap(s)
		use(b.s)
		putBox(b)
	}
}
