// Package baddirective carries malformed pair annotations for the
// hand-driven malformed-directive test: the diagnostics land on the
// directive comment lines themselves, where a trailing // want comment
// cannot be written.
package baddirective

//insane:acquire
func missingResource() {}

//insane:acquire resource=x on=maybe
func badCondValue() {}

//insane:release resource=x on=true
func conditionalRelease() {}

//insane:transfer resource
func notKeyValue() {}

//insane:acquire resource= on=true
func emptyResource() {}

//insane:acquire resource=x scope=fn
func unknownKey() {}

//insane:unbalanced resource=x
func waiverMissingReason() {}

//insane:unbalanced by=late resource=x
func waiverWrongOrder() {}

//insane:unbalanced resource=x by=
func waiverEmptyReason() {}
