// Package pairuse calls pairdep's annotated primitives across the
// package boundary: the acquire/release/transfer facts arrive through
// the fact store, so the leaks here are found without any local
// annotation.
package pairuse

import (
	"errors"

	"pairdep"
)

var errBusy = errors.New("busy")

func maybe() bool { return false }

// leakAcrossPackages drops the imported unit on its middle error path.
func leakAcrossPackages() error {
	th, err := pairdep.Get()
	if err != nil {
		return err
	}
	if maybe() {
		return errBusy // want `resource dslot acquired via pairdep\.Get at line \d+ is not released on this return path`
	}
	pairdep.Emit(th)
	return nil
}

// refundAfterFailedReserve releases a unit the failed conditional
// acquire never produced.
func refundAfterFailedReserve() {
	if !pairdep.TryReserve() {
		pairdep.Unreserve() // want `release of resource dtok via pairdep\.Unreserve on a path where the conditional acquire at line \d+ did not succeed`
		return
	}
	pairdep.Unreserve()
}

// balanced is the clean cross-package shape.
func balanced() error {
	th, err := pairdep.Get()
	if err != nil {
		return err
	}
	if maybe() {
		pairdep.Put(th)
		return errBusy
	}
	pairdep.Emit(th)
	return nil
}
