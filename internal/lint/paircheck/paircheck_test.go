package paircheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/loader"
	"github.com/insane-mw/insane/internal/lint/paircheck"
)

// TestPairCheck covers every path-sensitive diagnostic class in
// package a and the cross-package fact transfer in pairuse (whose
// annotated primitives live in pairdep).
func TestPairCheck(t *testing.T) {
	analysistest.Run(t, "testdata", paircheck.Analyzer, "a", "pairuse")
}

// TestMalformedDirectives drives the analyzer by hand over the
// baddirective fixture: the diagnostics land on the directive comments
// themselves, where a trailing `// want` comment would be swallowed
// into the directive text, so analysistest cannot express them.
func TestMalformedDirectives(t *testing.T) {
	ldr := loader.NewAt(filepath.Join("testdata", "src"), "")
	pkg, err := ldr.LoadDir(filepath.Join("testdata", "src", "baddirective"), "baddirective")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	pass := &analysis.Pass{
		Analyzer:  paircheck.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d.Message) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := paircheck.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := []string{
		"//insane:acquire: missing resource=<name>",
		"//insane:acquire: unknown on= value maybe (only true and nilerr are recognized)",
		"//insane:release: release effects are unconditional (drop on=)",
		"//insane:transfer: option resource is not key=value",
		"//insane:acquire: empty value for resource=",
		"//insane:acquire: unknown key scope (only resource= and on= are recognized)",
		"//insane:unbalanced: missing by=<reason>",
		"//insane:unbalanced: resource=<name> must come first (the by= reason runs to end of line)",
		"//insane:unbalanced: empty reason after by=",
	}
	for _, want := range wants {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %q", want, got)
		}
	}
	if len(got) != len(wants) {
		t.Errorf("got %d diagnostics, want %d: %q", len(got), len(wants), got)
	}
}
