package guardcheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/analysistest"
	"github.com/insane-mw/insane/internal/lint/guardcheck"
	"github.com/insane-mw/insane/internal/lint/loader"
)

// TestGuardCheck covers every regime's violation and clean shape in
// package a, and the cross-package fact transfer in guse (whose
// annotated struct and *Locked method live in gdecl).
func TestGuardCheck(t *testing.T) {
	analysistest.Run(t, "testdata", guardcheck.Analyzer, "a", "guse")
}

// TestMalformedDirectives drives the analyzer by hand over the
// baddirective fixture: the diagnostics land on the directive comments
// themselves, where a trailing `// want` comment would be swallowed
// into the directive text, so analysistest cannot express them.
func TestMalformedDirectives(t *testing.T) {
	ldr := loader.NewAt(filepath.Join("testdata", "src"), "")
	pkg, err := ldr.LoadDir(filepath.Join("testdata", "src", "baddirective"), "baddirective")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	pass := &analysis.Pass{
		Analyzer:  guardcheck.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d.Message) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := guardcheck.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := []string{
		"embedded field in //insane:shared struct B: name it and declare its regime",
		"field B.mu is a sync primitive and needs no //insane:guardedby",
		"//insane:guardedby: missing regime",
		"//insane:guardedby: empty value for mu=",
		"//insane:guardedby: unknown regime banana",
		"field B.e of //insane:shared struct has no //insane:guardedby spec",
		"//insane:guardedby: atomic takes no options",
		"//insane:guardedby: confined needs exactly owner=<func>",
		"//insane:shared: NotAStruct is not a struct type",
		"//insane:guardedby on a field of Plain, which is not marked //insane:shared",
		"//insane:guardedby mu=nosuch on B.d: B has no field nosuch",
		"//insane:guardedby confined owner=nobody on B.f: nobody names no function in this package",
		"//insane:guardedby immutable after=ghost on B.g: ghost names no function in this package",
		"//insane:guardedby rcu=phantom on B.h: phantom names no function in this package",
		"//insane:guardedby mu=a on B.i: B.a is not a sync.Mutex or sync.RWMutex",
		"//insane:guardedby confined owner=helper on B.j: helper is never spawned with a go statement",
		"//insane:unguarded: missing reason",
		"stale //insane:unguarded waiver: no regime finding on this or the next line",
	}
	for _, want := range wants {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %q", want, got)
		}
	}
	if len(got) != len(wants) {
		t.Errorf("got %d diagnostics, want %d: %q", len(got), len(wants), got)
	}
}
