// Package gdecl declares the shared struct consumed by the guse
// fixture: the per-field Regime facts and the *Locked method's Needs
// must travel through the fact store so a cross-package caller is
// verified exactly like a local one.
package gdecl

import "sync"

//insane:shared
type Box struct {
	Mu sync.Mutex

	N   int    //insane:guardedby mu=Mu
	Tag string //insane:guardedby immutable after=NewBox
}

// NewBox is the one place Tag may be written.
func NewBox(tag string) *Box { return &Box{Tag: tag} }

// BumpLocked requires Mu; callers in any package inherit the need.
func (b *Box) BumpLocked() { b.N++ }
