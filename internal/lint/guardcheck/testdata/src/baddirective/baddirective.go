// Package baddirective holds every malformed-annotation shape; the
// diagnostics land on the directive comments themselves, so the test
// drives the analyzer by hand (a trailing `// want` comment would be
// swallowed into the directive text).
package baddirective

import "sync"

//insane:shared
type B struct {
	sync.WaitGroup

	mu sync.Mutex //insane:guardedby mu=mu

	a int //insane:guardedby
	b int //insane:guardedby mu=
	c int //insane:guardedby banana
	d int //insane:guardedby mu=nosuch
	e int
	f int //insane:guardedby confined owner=nobody
	g int //insane:guardedby immutable after=ghost
	h int //insane:guardedby rcu=phantom
	i int //insane:guardedby mu=a
	j int //insane:guardedby confined owner=helper
	k int //insane:guardedby atomic extra
	l int //insane:guardedby confined
}

//insane:shared
type NotAStruct int

type Plain struct {
	x int //insane:guardedby atomic
}

// helper exists but is never go-spawned, so it cannot own a confined
// field.
func helper() {}

// stale carries a waiver that suppresses nothing.
func stale() int {
	//insane:unguarded justified nothing
	return 1
}

// noReason carries a waiver without a reason.
func noReason() {
	//insane:unguarded
}
