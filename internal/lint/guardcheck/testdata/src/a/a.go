// Package a exercises every guardcheck regime in one package: held,
// missing and read-mode locks, TryLock branches, deferred unlocks,
// *Locked need propagation, atomics, RCU publication, goroutine
// confinement, post-init immutability, and a live waiver.
package a

import (
	"sync"
	"sync/atomic"
)

//insane:shared
type S struct {
	mu sync.RWMutex

	count int    //insane:guardedby mu=mu
	hits  int64  //insane:guardedby atomic
	snap  []int  //insane:guardedby rcu=publish
	buf   []byte //insane:guardedby confined owner=loop
	name  string //insane:guardedby immutable after=NewS
}

// NewS builds a fresh S; writes to every field are legal on the fresh
// local, including the confined and immutable ones.
func NewS(name string) *S {
	s := &S{name: name}
	s.count = 1
	s.snap = []int{}
	go s.loop()
	return s
}

// loop is the confined owner of buf.
func (s *S) loop() {
	s.buf = append(s.buf, 0)
	s.fill()
}

// fill is reachable from loop through a plain call: still the owner
// goroutine.
func (s *S) fill() {
	s.buf = append(s.buf, 1)
}

// --- mutex regime ---

func (s *S) IncGood() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *S) GetGood() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

func (s *S) IncBad() {
	s.count++ // want `write to a\.S\.count \(//insane:guardedby mu=mu\) without holding s\.mu for writing`
}

// IncUnderReadLock holds only the read lock for a write. (Its name
// must not end in "Locked", or the unmet write need would defer to
// callers instead of reporting here.)
func (s *S) IncUnderReadLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.count++ // want `write to a\.S\.count \(//insane:guardedby mu=mu\) without holding s\.mu for writing`
}

// IncTry only touches the field in the branch that observed TryLock
// succeed.
func (s *S) IncTry() {
	if s.mu.TryLock() {
		s.count++
		s.mu.Unlock()
	}
}

func (s *S) IncAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.count++ // want `write to a\.S\.count \(//insane:guardedby mu=mu\) without holding s\.mu for writing`
}

// countLocked defers the lock burden to its callers (the *Locked
// convention); the unsatisfied access becomes a Need, not a finding
// here.
func (s *S) countLocked() int { return s.count }

func (s *S) ViaLockedGood() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.countLocked()
}

func (s *S) ViaLockedBad() int {
	return s.countLocked() // want `call to .*countLocked without holding s\.mu: a\.S\.count \(//insane:guardedby mu=mu\) is accessed via countLocked \(a\.go:\d+\) <- ViaLockedBad \(a\.go:\d+\)`
}

// --- atomic regime ---

func (s *S) HitGood()        { atomic.AddInt64(&s.hits, 1) }
func (s *S) HitsGood() int64 { return atomic.LoadInt64(&s.hits) }

func (s *S) HitBad() {
	s.hits++ // want `plain write to a\.S\.hits \(//insane:guardedby atomic\): use sync/atomic operations`
}

func (s *S) HitsBad() int64 {
	return s.hits // want `plain read of a\.S\.hits \(//insane:guardedby atomic\): use sync/atomic operations`
}

// --- rcu regime ---

// publish is the sole publisher of snap.
func (s *S) publish(v []int) {
	s.snap = v
}

// Snap reads without coordination: legal under rcu.
func (s *S) Snap() []int { return s.snap }

func (s *S) Reset() {
	s.snap = nil // want `write to a\.S\.snap \(//insane:guardedby rcu=publish\) outside its publisher: snapshots are rebuilt and published only by publish`
}

// --- confined regime ---

func (s *S) Touch() {
	s.buf = nil // want `write to a\.S\.buf \(//insane:guardedby confined owner=loop\) in Touch, which is not reachable from its owner loop`
}

func (s *S) Spawn() {
	go func() {
		s.buf = nil // want `write to a\.S\.buf \(//insane:guardedby confined owner=loop\) inside a spawned goroutine: the field is confined to the goroutine running loop`
	}()
}

// --- immutable regime ---

func (s *S) Rename(n string) {
	s.name = n // want `write to a\.S\.name \(//insane:guardedby immutable after=NewS\) after init: writes are legal only inside NewS`
}

func (s *S) Name() string { return s.name }

// --- waiver ---

// seedSnap violates the rcu regime on purpose; the waiver suppresses
// the finding (and, being used, is not reported stale).
func (s *S) seedSnap() {
	//insane:unguarded test fixture: pre-publication seeding before any reader exists
	s.snap = []int{1}
}
