// Package guse accesses gdecl's guarded fields across the package
// boundary: every finding here is proven from imported facts, with no
// local annotation.
package guse

import "gdecl"

// Poke writes the mu-guarded field without the lock.
func Poke(b *gdecl.Box) {
	b.N++ // want `write to gdecl\.Box\.N \(//insane:guardedby mu=Mu\) without holding b\.Mu for writing`
}

// PokeGood is the clean shape.
func PokeGood(b *gdecl.Box) {
	b.Mu.Lock()
	b.N++
	b.Mu.Unlock()
}

// Bump calls the *Locked method without the lock; the need crossed the
// package boundary as a Needs fact and surfaces here with the chain.
func Bump(b *gdecl.Box) {
	b.BumpLocked() // want `call to .*BumpLocked without holding b\.Mu: gdecl\.Box\.N \(//insane:guardedby mu=Mu\) is accessed via BumpLocked \(gdecl\.go:\d+\) <- Bump \(guse\.go:\d+\)`
}

// BumpGood holds the lock across the *Locked call.
func BumpGood(b *gdecl.Box) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.BumpLocked()
}

// Retag writes the immutable field after init, cross-package.
func Retag(b *gdecl.Box) {
	b.Tag = "x" // want `write to gdecl\.Box\.Tag \(//insane:guardedby immutable after=NewBox\) after init: writes are legal only inside NewBox`
}
