// Package guardcheck proves that every access to a field of an
// //insane:shared struct uses the field's declared synchronization
// regime (DESIGN.md §14) — the static complement to the dynamic race
// detector: -race observes the executions a test happens to take,
// guardcheck proves the regime for all of them.
//
// A shared struct names one regime per field with //insane:guardedby:
//
//   - mu=<lockfield>: the field is touched only while the named mutex
//     is held — a sibling field by default, <Type>.<field> for a lock
//     living in another struct. Lock/RLock/Unlock flows are tracked
//     path-sensitively, including deferred unlocks and TryLock
//     branches; a write through an RWMutex needs the write lock, a
//     read is satisfied by either.
//   - atomic: the field is touched only through sync/atomic operations
//     — method calls on atomic.* values (including indexed elements,
//     as in shard counter arrays) or &field handed to an atomic
//     function or wrapper. Plain reads, writes and copies are
//     violations. The atomicfield analyzer consumes the same registry,
//     so one annotation drives both rules.
//   - rcu=<publisher>: an RCU-style published snapshot. Readers load it
//     anywhere; it is stored (Store/Swap/CompareAndSwap, or a plain
//     write for non-atomic publication fields) only inside the named
//     publisher function, which the mu= needs of whatever it rebuilds
//     from keep under the paired lock.
//   - confined owner=<func>: the field belongs to the goroutine running
//     the named function (a //insane:goroutine-annotated spawn target,
//     e.g. the poller loop). Accesses are legal only in functions
//     reachable from the owner through same-package static calls, and
//     never from inside a spawned function literal.
//   - immutable after=<init-func>: the field is never written once the
//     named constructor returns.
//
// Accesses on provably fresh objects — locals initialized from a
// composite literal or new() in the same function, not yet shared — are
// exempt, which is what lets constructors initialize without locks.
//
// The whole-program half follows the repo's *Locked convention: a
// function whose name ends in "Locked" asserts its callers hold the
// locks for whatever it touches. guardcheck turns each such function's
// unsatisfied accesses into Needs facts exported bottom-up through the
// dependency closure, verifies every call site (same-package or
// cross-package) holds the needed locks, and reports the ones that do
// not with the full access chain. In any other function an unguarded
// access is reported at the access itself.
//
// //insane:unguarded <reason> waives one access (its own line or the
// next); a waiver that suppresses nothing is itself a finding.
package guardcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/insane-mw/insane/internal/lint/analysis"
	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/directive"
	"github.com/insane-mw/insane/internal/lint/guardfacts"
)

// Analyzer is the shared-state regime rule.
var Analyzer = &analysis.Analyzer{
	Name:      "guardcheck",
	Doc:       "prove every access to an //insane:shared struct field uses its declared //insane:guardedby regime",
	Run:       run,
	FactTypes: []analysis.Fact{(*guardfacts.Regime)(nil), (*Needs)(nil)},
}

// Need is one lock a function requires its callers to hold (the
// *Locked convention): some access inside it — or inside a *Locked
// callee — touches a mu-guarded field without acquiring the lock
// locally.
type Need struct {
	// LockKey identifies the lock field: "pkgpath.Struct.field".
	LockKey string
	// LockName renders the lock for diagnostics, e.g. "mu" or
	// "ClientConn.mu".
	LockName string
	// Qualified marks a <Type>.<field> lock, satisfied by holding it on
	// any instance; an unqualified need is satisfied only on the
	// receiver the method is called on.
	Qualified bool
	// Write requires the write lock (an RWMutex read lock satisfies
	// only reads).
	Write bool
	// FieldDesc names the guarded field for diagnostics.
	FieldDesc string
	// Chain is the access path, innermost first: "fn (file:line)".
	Chain []string
}

// Needs is the fact exported for every function with caller-held lock
// requirements.
type Needs struct {
	List []Need
}

// AFact marks Needs as an analysis fact.
func (*Needs) AFact() {}

func (n Need) key() string {
	return fmt.Sprintf("%s|%v|%s", n.LockKey, n.Write, n.FieldDesc)
}

// accessKind classifies how an expression touches a field.
type accessKind int

const (
	akRead accessKind = iota
	akWrite
	akAddr     // &field outside a call argument
	akAddrCall // &field as a call argument (handed to an atomic op or wrapper)
	akMethod   // field is the receiver of a method call
)

func (k accessKind) verb() string {
	switch k {
	case akWrite:
		return "write to"
	case akAddr, akAddrCall:
		return "address-taken access of"
	case akMethod:
		return "method call on"
	}
	return "read of"
}

// writeLike reports whether the access can mutate the field (or leak a
// mutable reference) for the mu/immutable regimes.
func (k accessKind) writeLike() bool {
	return k == akWrite || k == akAddr || k == akAddrCall
}

// heldLock is one lock known held at a program point.
type heldLock struct {
	lockKey string
	base    string // canonical receiver expression, "" for non-field locks
	write   bool
}

// lockSet is the set of locks held at a program point, keyed by
// lockKey+base.
type lockSet map[string]heldLock

func (s lockSet) add(h heldLock) { s[h.lockKey+"|"+h.base] = h }

func (s lockSet) remove(lockKey, base string) { delete(s, lockKey+"|"+base) }

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockSet) replace(with lockSet) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range with {
		s[k] = v
	}
}

// intersect keeps the locks held in every out-state, demoting mode to
// read when any branch held only the read lock.
func intersect(sets []lockSet) lockSet {
	if len(sets) == 0 {
		return lockSet{}
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for k, v := range out {
			o, ok := s[k]
			if !ok {
				delete(out, k)
				continue
			}
			if !o.write {
				v.write = false
				out[k] = v
			}
		}
	}
	return out
}

// satisfied reports whether held covers a lock requirement.
func satisfied(held lockSet, lockKey string, qualified bool, base string, write bool) bool {
	for _, h := range held {
		if h.lockKey != lockKey {
			continue
		}
		if !qualified && h.base != base {
			continue
		}
		if write && !h.write {
			continue
		}
		return true
	}
	return false
}

// accessRec is one recorded touch of a guarded field.
type accessRec struct {
	fn     *fnInfo
	field  *types.Var
	fact   guardfacts.Regime
	kind   accessKind
	method string // method name for akMethod
	pos    token.Pos
	held   lockSet
	base   string // canonical base expression
	fresh  bool   // base is a function-local fresh object
	inGo   bool   // inside a spawned function literal
}

// callRec is one recorded static call site.
type callRec struct {
	fn        *fnInfo
	callee    *types.Func
	pos       token.Pos
	held      lockSet
	recvCanon string
	recvFresh bool
	isGo      bool
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	decl   *ast.FuncDecl
	obj    *types.Func
	name   string
	recv   string // receiver identifier, "" for functions
	locked bool   // name ends in "Locked": callers hold its needs
	needs  []Need
	nkeys  map[string]bool
}

func (f *fnInfo) addNeed(n Need) bool {
	if f.nkeys == nil {
		f.nkeys = make(map[string]bool)
	}
	k := n.key()
	if f.nkeys[k] {
		return false
	}
	f.nkeys[k] = true
	f.needs = append(f.needs, n)
	return true
}

// state is the per-package analysis state.
type state struct {
	pass      *analysis.Pass
	idx       *directive.UnguardedIndex
	fns       []*fnInfo
	byObj     map[*types.Func]*fnInfo
	accesses  []accessRec
	calls     []callRec
	funcNames map[string]bool
	goTargets map[string]bool
	reported  map[string]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	st := &state{
		pass:      pass,
		idx:       directive.NewUnguardedIndex(pass.Fset, pass.Files),
		byObj:     make(map[*types.Func]*fnInfo),
		funcNames: make(map[string]bool),
		goTargets: make(map[string]bool),
		reported:  make(map[string]bool),
	}

	structs, probs := guardfacts.Export(pass)
	for _, p := range probs {
		pass.Reportf(p.Pos, "%s", p.Msg)
	}

	// Index the package's functions and goroutine spawn targets, then
	// validate every spec against them.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				st.funcNames[fd.Name.Name] = true
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if callee := callutil.StaticCallee(pass.TypesInfo, g.Call); callee != nil {
					st.goTargets[callee.Name()] = true
				}
			}
			return true
		})
	}
	st.validate(structs)

	// Phase 1: walk every function body, recording accesses and calls
	// with the lock set live at each.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fi := &fnInfo{
				decl:   fd,
				obj:    obj,
				name:   fd.Name.Name,
				locked: strings.HasSuffix(fd.Name.Name, "Locked"),
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				fi.recv = fd.Recv.List[0].Names[0].Name
			}
			st.fns = append(st.fns, fi)
			if obj != nil {
				st.byObj[obj] = fi
			}
			w := &walker{st: st, fn: fi, fresh: make(map[types.Object]bool)}
			w.stmts(fd.Body.List, lockSet{})
		}
	}

	// Reachability per confined owner, over same-goroutine static calls.
	reach := st.confinedReach()

	// Phase 2: classify every access against its declared regime.
	for _, a := range st.accesses {
		st.checkAccess(a, reach)
	}

	// Phase 3: verify call sites of functions with caller-held needs,
	// propagating through *Locked callers to a fixed point.
	st.resolveCalls()

	// Export the surviving needs for dependent packages.
	for _, fi := range st.fns {
		if fi.obj != nil && len(fi.needs) > 0 {
			pass.ExportObjectFact(fi.obj, &Needs{List: fi.needs})
		}
	}

	for _, p := range st.idx.Stale() {
		pass.Reportf(p.Pos, "%s", p.Msg)
	}
	return nil, nil
}

// validate checks every spec of the package's shared structs against
// the declaring package: mu= locks must exist and be mutexes, rcu=,
// confined owner= and immutable after= must name package functions, and
// confined owners must actually be spawned as goroutines.
func (st *state) validate(structs []guardfacts.Struct) {
	for _, s := range structs {
		for _, f := range s.Fields {
			if !f.HasSpec || f.Exempt || f.Var == nil {
				continue
			}
			r := f.Regime
			switch r.Kind {
			case directive.RegimeMutex:
				if _, _, msg := st.resolveLockSpec(f.Var, s, r.Arg); msg != "" {
					st.pass.Reportf(f.Pos, "//insane:guardedby mu=%s on %s.%s: %s", r.Arg, s.Name, f.Name, msg)
				}
			case directive.RegimeRCU:
				if !st.funcNames[r.Arg] {
					st.pass.Reportf(f.Pos, "//insane:guardedby rcu=%s on %s.%s: %s names no function in this package", r.Arg, s.Name, f.Name, r.Arg)
				}
			case directive.RegimeImmutable:
				if !st.funcNames[r.Arg] {
					st.pass.Reportf(f.Pos, "//insane:guardedby immutable after=%s on %s.%s: %s names no function in this package", r.Arg, s.Name, f.Name, r.Arg)
				}
			case directive.RegimeConfined:
				switch {
				case !st.funcNames[r.Arg]:
					st.pass.Reportf(f.Pos, "//insane:guardedby confined owner=%s on %s.%s: %s names no function in this package", r.Arg, s.Name, f.Name, r.Arg)
				case !st.goTargets[r.Arg]:
					st.pass.Reportf(f.Pos, "//insane:guardedby confined owner=%s on %s.%s: %s is never spawned with a go statement (see //insane:goroutine)", r.Arg, s.Name, f.Name, r.Arg)
				}
			}
		}
	}
}

// resolveLockSpec maps a mu= spec of a field to the lock's identity
// key and display name. The empty msg means success.
func (st *state) resolveLockSpec(field *types.Var, owner guardfacts.Struct, arg string) (lockKey, lockName string, msg string) {
	pkg := field.Pkg()
	typeName, fieldName := owner.Name, arg
	qualified := false
	if t, f, ok := strings.Cut(arg, "."); ok {
		typeName, fieldName, qualified = t, f, true
	}
	_ = qualified
	if pkg == nil {
		return "", "", "field has no package"
	}
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return "", "", typeName + " names no type in this package"
	}
	strct, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return "", "", typeName + " is not a struct"
	}
	for i := 0; i < strct.NumFields(); i++ {
		fv := strct.Field(i)
		if fv.Name() != fieldName {
			continue
		}
		if !isMutexType(fv.Type()) {
			return "", "", typeName + "." + fieldName + " is not a sync.Mutex or sync.RWMutex"
		}
		return pkg.Path() + "." + typeName + "." + fieldName, arg, ""
	}
	return "", "", typeName + " has no field " + fieldName
}

// lockFor resolves the mu= lock of a guarded field at an access site,
// in whichever package the field was declared.
func lockFor(field *types.Var, fact guardfacts.Regime) (lockKey, lockName string, qualified bool) {
	typeName, fieldName := fact.Struct, fact.R.Arg
	if t, f, ok := strings.Cut(fact.R.Arg, "."); ok {
		typeName, fieldName, qualified = t, f, true
	}
	if field.Pkg() == nil {
		return "", fact.R.Arg, qualified
	}
	return field.Pkg().Path() + "." + typeName + "." + fieldName, fact.R.Arg, qualified
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// confinedReach computes, for every confined owner function named in
// this package's specs, the set of functions reachable from it through
// same-package static calls — excluding go statements, which start a
// different goroutine.
func (st *state) confinedReach() map[string]map[*fnInfo]bool {
	owners := make(map[string]bool)
	for _, a := range st.accesses {
		if a.fact.R.Kind == directive.RegimeConfined && a.field.Pkg() == st.pass.Pkg {
			owners[a.fact.R.Arg] = true
		}
	}
	if len(owners) == 0 {
		return nil
	}
	edges := make(map[*fnInfo][]*fnInfo)
	for _, c := range st.calls {
		if c.isGo {
			continue
		}
		if callee := st.byObj[c.callee]; callee != nil {
			edges[c.fn] = append(edges[c.fn], callee)
		}
	}
	out := make(map[string]map[*fnInfo]bool, len(owners))
	for owner := range owners {
		seen := make(map[*fnInfo]bool)
		var queue []*fnInfo
		for _, fi := range st.fns {
			if fi.name == owner {
				seen[fi] = true
				queue = append(queue, fi)
			}
		}
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			for _, next := range edges[fi] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		out[owner] = seen
	}
	return out
}

// checkAccess classifies one access against its field's regime.
func (st *state) checkAccess(a accessRec, reach map[string]map[*fnInfo]bool) {
	desc := fieldDesc(a.field, a.fact)
	switch a.fact.R.Kind {
	case directive.RegimeImmutable:
		if a.kind.writeLike() && !a.fresh && a.fn.name != a.fact.R.Arg {
			st.report(a.pos, "%s %s after init: writes are legal only inside %s",
				a.kind.verb(), desc, a.fact.R.Arg)
		}
	case directive.RegimeAtomic:
		if a.kind == akMethod || a.kind == akAddrCall || a.fresh {
			return
		}
		st.report(a.pos, "plain %s %s: use sync/atomic operations", a.kind.verb(), desc)
	case directive.RegimeRCU:
		mutates := a.kind.writeLike() ||
			(a.kind == akMethod && (a.method == "Store" || a.method == "Swap" || a.method == "CompareAndSwap"))
		if mutates && !a.fresh && a.fn.name != a.fact.R.Arg {
			st.report(a.pos, "%s %s outside its publisher: snapshots are rebuilt and published only by %s",
				a.kind.verb(), desc, a.fact.R.Arg)
		}
	case directive.RegimeConfined:
		if a.fresh {
			return
		}
		if a.field.Pkg() != st.pass.Pkg {
			st.report(a.pos, "%s %s outside its declaring package: confined fields never escape their owner goroutine",
				a.kind.verb(), desc)
			return
		}
		if a.inGo {
			st.report(a.pos, "%s %s inside a spawned goroutine: the field is confined to the goroutine running %s",
				a.kind.verb(), desc, a.fact.R.Arg)
			return
		}
		if r := reach[a.fact.R.Arg]; r == nil || !r[a.fn] {
			st.report(a.pos, "%s %s in %s, which is not reachable from its owner %s",
				a.kind.verb(), desc, a.fn.name, a.fact.R.Arg)
		}
	case directive.RegimeMutex:
		if a.fresh {
			return
		}
		lockKey, lockName, qualified := lockFor(a.field, a.fact)
		write := a.kind.writeLike()
		if satisfied(a.held, lockKey, qualified, a.base, write) {
			return
		}
		// The *Locked convention: the function may pass the burden to
		// its callers when the lock is expressible there — it lives on
		// the receiver the caller invokes the method on, or is
		// instance-independent (qualified).
		if a.fn.locked && (qualified || (a.fn.recv != "" && a.base == a.fn.recv)) {
			a.fn.addNeed(Need{
				LockKey:   lockKey,
				LockName:  lockName,
				Qualified: qualified,
				Write:     write,
				FieldDesc: desc,
				Chain:     []string{st.chainLink(a.fn.name, a.pos)},
			})
			return
		}
		mode := ""
		if write {
			mode = " for writing"
		}
		st.report(a.pos, "%s %s without holding %s%s", a.kind.verb(), desc, lockDisplay(a.base, lockName, qualified), mode)
	}
}

// resolveCalls verifies the needs of every called function at every
// call site, propagating unsatisfied needs into *Locked callers until
// the package reaches a fixed point.
func (st *state) resolveCalls() {
	imported := make(map[*types.Func][]Need)
	needsOf := func(callee *types.Func) []Need {
		if fi := st.byObj[callee]; fi != nil {
			return fi.needs
		}
		if cached, ok := imported[callee]; ok {
			return cached
		}
		target := callee
		if o := callee.Origin(); o != nil {
			target = o
		}
		var f Needs
		var list []Need
		if st.pass.ImportObjectFact(target, &f) {
			list = f.List
		}
		imported[callee] = list
		return list
	}

	done := make([]map[string]bool, len(st.calls))
	for i := range done {
		done[i] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for i := range st.calls {
			c := &st.calls[i]
			for _, n := range needsOf(c.callee) {
				k := n.key()
				if done[i][k] {
					continue
				}
				done[i][k] = true
				changed = true
				if c.recvFresh {
					continue
				}
				held := c.held
				if c.isGo {
					held = lockSet{} // a spawned goroutine inherits no locks
				}
				if satisfied(held, n.LockKey, n.Qualified, c.recvCanon, n.Write) {
					continue
				}
				chain := append(append([]string(nil), n.Chain...), st.chainLink(c.fn.name, c.pos))
				if c.fn.locked && !c.isGo && (n.Qualified || (c.fn.recv != "" && c.recvCanon == c.fn.recv)) {
					c.fn.addNeed(Need{
						LockKey:   n.LockKey,
						LockName:  n.LockName,
						Qualified: n.Qualified,
						Write:     n.Write,
						FieldDesc: n.FieldDesc,
						Chain:     chain,
					})
					continue
				}
				st.report(c.pos, "call to %s without holding %s: %s is accessed via %s",
					callutil.FuncName(c.callee, st.qual), lockDisplay(c.recvCanon, n.LockName, n.Qualified),
					n.FieldDesc, strings.Join(chain, " <- "))
			}
		}
	}
}

// report emits one finding unless an //insane:unguarded waiver covers
// its line, deduplicating repeated messages at one position.
func (st *state) report(pos token.Pos, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v|%s", pos, msg)
	if st.reported[key] {
		return
	}
	st.reported[key] = true
	if st.idx.Waive(st.pass.Fset, pos) {
		return
	}
	st.pass.Reportf(pos, "%s", msg)
}

func (st *state) qual(p *types.Package) string {
	if p == st.pass.Pkg {
		return ""
	}
	return p.Name()
}

func (st *state) chainLink(fn string, pos token.Pos) string {
	p := st.pass.Fset.Position(pos)
	return fmt.Sprintf("%s (%s:%d)", fn, filepath.Base(p.Filename), p.Line)
}

func fieldDesc(field *types.Var, fact guardfacts.Regime) string {
	pkg := ""
	if field.Pkg() != nil {
		pkg = field.Pkg().Name() + "."
	}
	return fmt.Sprintf("%s%s.%s (//insane:guardedby %s)", pkg, fact.Struct, field.Name(), fact.R.Spec())
}

func lockDisplay(base, lockName string, qualified bool) string {
	if qualified || base == "" {
		return lockName
	}
	return base + "." + lockName
}
