package guardcheck

// The walker is guardcheck's flow-sensitive half: it traverses one
// function body tracking the set of locks held at every program point
// (Lock/RLock, Unlock/RUnlock, deferred unlocks held to function end,
// TryLock conditioned on its branch), which locals are provably fresh
// (initialized from a composite literal or new() and not yet shared),
// and whether execution is inside a spawned function literal. Every
// touch of a guarded field and every static call is recorded with that
// context for the resolution phases in guardcheck.go.
//
// Accepted approximations, all on the conservative side for the access
// proof (a lock is dropped from the set rather than invented): branch
// merges intersect the held sets and demote to read mode when any arm
// held only the read lock; a loop body starts from the loop-entry set;
// a function literal that is not go-spawned inherits the current set
// (closures stored and invoked later are not modeled); deferred calls
// run with the set live at the defer statement.

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/insane-mw/insane/internal/lint/callutil"
	"github.com/insane-mw/insane/internal/lint/guardfacts"
)

type walker struct {
	st      *state
	fn      *fnInfo
	fresh   map[types.Object]bool
	goDepth int
}

func (w *walker) info() *types.Info { return w.st.pass.TypesInfo }

// stmts walks a statement list, returning true when the tail is
// unreachable (every path returned, panicked or branched away).
func (w *walker) stmts(list []ast.Stmt, held lockSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held lockSet) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.ExprStmt:
		w.expr(s.X, akRead, held)
		if call, ok := s.X.(*ast.CallExpr); ok && callutil.NoReturn(w.info(), call) {
			return true
		}
	case *ast.SendStmt:
		w.expr(s.Chan, akRead, held)
		w.expr(s.Value, akRead, held)
	case *ast.IncDecStmt:
		w.expr(s.X, akWrite, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, akRead, held)
		}
		if s.Tok == token.DEFINE {
			w.markFresh(s.Lhs, s.Rhs)
			break // := left-hand sides are new locals, never field accesses
		}
		for _, l := range s.Lhs {
			w.expr(l, akWrite, held)
		}
	case *ast.DeclStmt:
		w.declStmt(s, held)
	case *ast.GoStmt:
		w.goStmt(s, held)
	case *ast.DeferStmt:
		w.deferStmt(s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, akRead, held)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		return w.ifStmt(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, akRead, held)
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		// A for{} with no way out never reaches the code after it.
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.RangeStmt:
		// Index-only range over an array reads no memory at all — len is
		// a compile-time constant — so a bare selector there is not an
		// access (the telemetry merge loops range atomic arrays this way).
		if !(s.Value == nil && w.lenOnlyRange(s.X)) {
			w.expr(s.X, akRead, held)
		}
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				w.expr(s.Key, akWrite, held)
			}
			if s.Value != nil {
				w.expr(s.Value, akWrite, held)
			}
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		return w.switchStmt(s.Init, s.Tag, nil, s.Body, held)
	case *ast.TypeSwitchStmt:
		return w.switchStmt(s.Init, nil, s.Assign, s.Body, held)
	case *ast.SelectStmt:
		var outs []lockSet
		for _, cc := range s.Body.List {
			c, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := held.clone()
			if c.Comm != nil {
				w.stmt(c.Comm, arm)
			}
			if !w.stmts(c.Body, arm) {
				outs = append(outs, arm)
			}
		}
		if len(outs) == 0 {
			return true
		}
		held.replace(intersect(outs))
	}
	return false
}

func (w *walker) ifStmt(s *ast.IfStmt, held lockSet) bool {
	if s.Init != nil {
		w.stmt(s.Init, held)
	}
	thenHeld := held.clone()
	elseHeld := held.clone()
	w.cond(s.Cond, held, thenHeld, elseHeld)
	bterm := w.stmts(s.Body.List, thenHeld)
	eterm := false
	if s.Else != nil {
		eterm = w.stmt(s.Else, elseHeld)
	}
	var outs []lockSet
	if !bterm {
		outs = append(outs, thenHeld)
	}
	if s.Else == nil || !eterm {
		outs = append(outs, elseHeld)
	}
	if len(outs) == 0 {
		return true
	}
	held.replace(intersect(outs))
	return false
}

// cond walks a branch condition, threading TryLock/TryRLock results
// into the arm that observes them true: `if mu.TryLock() { ... }` holds
// the lock in the then-arm, `if !mu.TryLock() { return }` holds it in
// the code after. Inside && / || only the arm the operator makes
// definite receives the lock.
func (w *walker) cond(e ast.Expr, held, thenHeld, elseHeld lockSet) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.cond(x.X, held, elseHeld, thenHeld)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			// then-arm means both operands were true.
			scratch := held.clone()
			w.cond(x.X, held, thenHeld, scratch)
			w.cond(x.Y, held, thenHeld, scratch)
			return
		case token.LOR:
			// else-arm means both operands were false.
			scratch := held.clone()
			w.cond(x.X, held, scratch, elseHeld)
			w.cond(x.Y, held, scratch, elseHeld)
			return
		}
	case *ast.CallExpr:
		if op, lk, base, ok := w.mutexOp(x); ok {
			switch op {
			case "TryLock":
				thenHeld.add(heldLock{lockKey: lk, base: base, write: true})
			case "TryRLock":
				thenHeld.add(heldLock{lockKey: lk, base: base, write: false})
			}
			return
		}
	}
	w.expr(e, akRead, held)
}

func (w *walker) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, held lockSet) bool {
	if init != nil {
		w.stmt(init, held)
	}
	if tag != nil {
		w.expr(tag, akRead, held)
	}
	if assign != nil {
		w.stmt(assign, held)
	}
	var outs []lockSet
	hasDefault := false
	for _, cc := range body.List {
		c, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		for _, e := range c.List {
			w.expr(e, akRead, held)
		}
		arm := held.clone()
		if !w.stmts(c.Body, arm) {
			outs = append(outs, arm)
		}
	}
	if !hasDefault {
		outs = append(outs, held.clone())
	}
	if len(outs) == 0 {
		return true
	}
	held.replace(intersect(outs))
	return false
}

func (w *walker) declStmt(s *ast.DeclStmt, held lockSet) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.expr(v, akRead, held)
		}
		for i, name := range vs.Names {
			// `var x T` (a fresh zero local) or `var x = &T{}`.
			if len(vs.Values) == 0 || (i < len(vs.Values) && freshInit(vs.Values[i])) {
				if obj := w.info().Defs[name]; obj != nil {
					w.fresh[obj] = true
				}
			}
		}
	}
}

func (w *walker) goStmt(s *ast.GoStmt, held lockSet) {
	for _, a := range s.Call.Args {
		w.expr(a, akRead, held)
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.goDepth++
		w.stmts(lit.Body.List, lockSet{})
		w.goDepth--
		return
	}
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, akRead, held)
	}
	if callee := callutil.StaticCallee(w.info(), s.Call); callee != nil && callee.Pkg() != nil {
		recvCanon, recvFresh := w.callReceiver(s.Call)
		w.st.calls = append(w.st.calls, callRec{
			fn: w.fn, callee: callee, pos: s.Call.Pos(),
			held: lockSet{}, recvCanon: recvCanon, recvFresh: recvFresh, isGo: true,
		})
	}
}

func (w *walker) deferStmt(s *ast.DeferStmt, held lockSet) {
	if op, _, _, ok := w.mutexOp(s.Call); ok {
		// defer mu.Unlock(): the lock stays held to function end; other
		// deferred lock ops have no modeled effect.
		_ = op
		return
	}
	w.expr(s.Call, akRead, held)
}

// expr walks an expression, recording guarded-field touches with the
// access kind the surrounding syntax implies.
func (w *walker) expr(e ast.Expr, kind accessKind, held lockSet) {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit,
		*ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StructType,
		*ast.InterfaceType, *ast.FuncType, *ast.Ellipsis:
	case *ast.ParenExpr:
		w.expr(e.X, kind, held)
	case *ast.SelectorExpr:
		w.recordSel(e, kind, "", held)
		w.expr(e.X, w.baseKind(kind, e.X), held)
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.expr(e.X, akAddr, held)
			return
		}
		w.expr(e.X, akRead, held)
	case *ast.StarExpr:
		// Writing through *p mutates the pointee, not the pointer-typed
		// field, which is only read here.
		w.expr(e.X, akRead, held)
	case *ast.IndexExpr:
		// &s[i] on a slice reads the header and aliases element memory;
		// the field itself cannot be written through the result, and the
		// element's own type carries its own regimes. Arrays keep the
		// address kind: their elements ARE the field's memory.
		if (kind == akAddr || kind == akAddrCall) && isSliceExpr(w.st.pass.TypesInfo, e.X) {
			kind = akRead
		}
		w.expr(e.X, kind, held)
		w.expr(e.Index, akRead, held)
	case *ast.IndexListExpr:
		w.expr(e.X, akRead, held)
		for _, i := range e.Indices {
			w.expr(i, akRead, held)
		}
	case *ast.SliceExpr:
		w.expr(e.X, akRead, held)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				w.expr(b, akRead, held)
			}
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X, akRead, held)
	case *ast.BinaryExpr:
		w.expr(e.X, akRead, held)
		w.expr(e.Y, akRead, held)
	case *ast.CompositeLit:
		structLit := false
		if t := w.info().TypeOf(e); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			_, structLit = t.Underlying().(*types.Struct)
		}
		for _, elt := range e.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				w.expr(elt, akRead, held)
				continue
			}
			if _, isIdent := kv.Key.(*ast.Ident); !isIdent || !structLit {
				w.expr(kv.Key, akRead, held)
			}
			w.expr(kv.Value, akRead, held)
		}
	case *ast.FuncLit:
		w.stmts(e.Body.List, held.clone())
	}
}

// call handles a call expression: mutex operations mutate the held set,
// builtin delete writes its map, &arg is an atomic-compatible address
// hand-off, method receivers record akMethod accesses, and the static
// callee is recorded for need resolution.
func (w *walker) call(e *ast.CallExpr, held lockSet) {
	if op, lk, base, ok := w.mutexOp(e); ok {
		switch op {
		case "Lock":
			held.add(heldLock{lockKey: lk, base: base, write: true})
		case "RLock":
			held.add(heldLock{lockKey: lk, base: base, write: false})
		case "Unlock", "RUnlock":
			held.remove(lk, base)
			// TryLock outside an if-condition has no modeled effect.
		}
		return
	}
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		if b, ok := w.info().Uses[id].(*types.Builtin); ok {
			for i, a := range e.Args {
				if b.Name() == "delete" && i == 0 {
					w.expr(a, akWrite, held)
					continue
				}
				w.expr(a, akRead, held)
			}
			return
		}
	}
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := w.info().Selections[fun]; ok && s.Kind() == types.MethodVal {
			w.methodRecv(fun.X, fun.Sel.Name, held)
		} else {
			w.expr(fun.X, akRead, held)
		}
	case *ast.FuncLit:
		// Immediately invoked literal: runs here, under the current set.
		w.stmts(fun.Body.List, held.clone())
	default:
		w.expr(e.Fun, akRead, held)
	}
	for _, a := range e.Args {
		if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
			w.expr(u.X, akAddrCall, held)
			continue
		}
		w.expr(a, akRead, held)
	}
	if callee := callutil.StaticCallee(w.info(), e); callee != nil && callee.Pkg() != nil {
		recvCanon, recvFresh := w.callReceiver(e)
		w.st.calls = append(w.st.calls, callRec{
			fn: w.fn, callee: callee, pos: e.Pos(),
			held: held.clone(), recvCanon: recvCanon, recvFresh: recvFresh,
		})
	}
}

// methodRecv records the receiver of a method call: a guarded field used
// as receiver (s.closed.Load(), sh.counters[c].Add(1)) is an akMethod
// access, the legal shape for the atomic regime.
func (w *walker) methodRecv(x ast.Expr, method string, held lockSet) {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		w.recordSel(x, akMethod, method, held)
		w.expr(x.X, akRead, held)
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
			w.recordSel(sel, akMethod, method, held)
			w.expr(sel.X, akRead, held)
			w.expr(x.Index, akRead, held)
			return
		}
		w.expr(x, akRead, held)
	default:
		w.expr(x, akRead, held)
	}
}

func (w *walker) callReceiver(e *ast.CallExpr) (canon string, fresh bool) {
	sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := w.info().Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), w.isFresh(sel.X)
}

// recordSel records one touch of a guarded field.
func (w *walker) recordSel(sel *ast.SelectorExpr, kind accessKind, method string, held lockSet) {
	obj, _ := w.info().Uses[sel.Sel].(*types.Var)
	if obj == nil || !obj.IsField() {
		return
	}
	fact, ok := guardfacts.Lookup(w.st.pass, obj)
	if !ok {
		return
	}
	w.st.accesses = append(w.st.accesses, accessRec{
		fn: w.fn, field: obj, fact: fact, kind: kind, method: method,
		pos: sel.Sel.Pos(), held: held.clone(),
		base:  types.ExprString(ast.Unparen(sel.X)),
		fresh: w.isFresh(sel.X), inGo: w.goDepth > 0,
	})
}

// baseKind propagates a write or address-taking through the base of a
// selector: writing a.b.c also writes b when b is a value struct, but
// only reads it when the chain crosses a pointer.
func (w *walker) baseKind(kind accessKind, base ast.Expr) accessKind {
	if kind == akRead || kind == akMethod {
		return akRead
	}
	if t := w.info().TypeOf(base); t != nil {
		if _, ok := t.Underlying().(*types.Pointer); ok {
			return akRead
		}
	}
	return kind
}

// mutexOp recognizes a sync.Mutex/RWMutex method call, returning the
// operation name and the lock's identity key plus canonical base.
func (w *walker) mutexOp(call *ast.CallExpr) (op, lockKey, base string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	tv, hasType := w.info().Types[sel.X]
	if !hasType || !isMutexType(tv.Type) {
		return "", "", "", false
	}
	lockKey, base = w.lockIdent(sel.X)
	if lockKey == "" {
		return "", "", "", false
	}
	return sel.Sel.Name, lockKey, base, true
}

// lockIdent names a lock operand: a struct field lock keys as
// "pkgpath.Type.field" with the receiver expression as base, a plain
// variable (package-level or local mutex) keys by its object.
func (w *walker) lockIdent(e ast.Expr) (lockKey, base string) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		s, ok := w.info().Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return "", ""
		}
		t := s.Recv()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil {
			return "", ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name,
			types.ExprString(ast.Unparen(x.X))
	case *ast.Ident:
		obj := w.info().Uses[x]
		if obj == nil {
			return "", ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + ".var." + obj.Name(), ""
		}
		return "local." + obj.Name(), ""
	}
	return "", ""
}

// markFresh records locals born from a composite literal or new():
// accesses through them are exempt from every regime until the object
// can have been shared, which is what lets constructors initialize
// without locks.
func (w *walker) markFresh(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || !freshInit(rhs[i]) {
			continue
		}
		if obj := w.info().Defs[id]; obj != nil {
			w.fresh[obj] = true
		}
	}
}

func (w *walker) isFresh(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.info().Uses[id]
	return obj != nil && w.fresh[obj]
}

// freshInit reports an initializer producing a provably unshared
// object: &T{...}, T{...} or new(T).
func freshInit(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// hasBreak reports a break belonging to this loop (not to a nested
// loop, switch or select, where break targets the inner statement).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	// A labeled break inside a nested statement can still target this
	// loop; treat any labeled break as an exit.
	if !found {
		ast.Inspect(body, func(n ast.Node) bool {
			if s, ok := n.(*ast.BranchStmt); ok && s.Tok == token.BREAK && s.Label != nil {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// lenOnlyRange reports whether ranging x with no value variable touches
// no memory: true when x is a plain ident/selector chain of array type
// (possibly behind one pointer), where len is a compile-time constant.
func (w *walker) lenOnlyRange(x ast.Expr) bool {
	for e := ast.Unparen(x); ; {
		switch v := e.(type) {
		case *ast.Ident:
		case *ast.SelectorExpr:
			e = ast.Unparen(v.X)
			continue
		default:
			return false
		}
		break
	}
	t := w.st.pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, isArr := t.Underlying().(*types.Array)
	return isArr
}

// isSliceExpr reports whether e has slice type.
func isSliceExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
