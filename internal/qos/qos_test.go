package qos

import (
	"testing"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
)

func TestDefaultMapSlowAlwaysKernel(t *testing.T) {
	full := datapath.Caps{DPDK: true, XDP: true, RDMA: true}
	tech, fb := DefaultMap(Options{Datapath: DatapathSlow}, full)
	if tech != model.TechKernelUDP || fb {
		t.Errorf("slow on full caps = %v,%v, want kernel,false", tech, fb)
	}
}

func TestDefaultMapPreferenceOrder(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		caps datapath.Caps
		want model.Tech
		fb   bool
	}{
		{"rdma wins when present", Options{Datapath: DatapathFast},
			datapath.Caps{DPDK: true, XDP: true, RDMA: true}, model.TechRDMA, false},
		{"dpdk when no rdma, resources free", Options{Datapath: DatapathFast},
			datapath.Caps{DPDK: true, XDP: true}, model.TechDPDK, false},
		{"xdp when resources constrained", Options{Datapath: DatapathFast, Resources: ResourcesConstrained},
			datapath.Caps{DPDK: true, XDP: true}, model.TechXDP, false},
		{"rdma beats xdp even constrained", Options{Datapath: DatapathFast, Resources: ResourcesConstrained},
			datapath.Caps{XDP: true, RDMA: true}, model.TechRDMA, false},
		{"constrained skips dpdk-only host", Options{Datapath: DatapathFast, Resources: ResourcesConstrained},
			datapath.Caps{DPDK: true}, model.TechKernelUDP, true},
		{"xdp as last accelerated resort", Options{Datapath: DatapathFast},
			datapath.Caps{XDP: true}, model.TechXDP, false},
		{"fallback with warning on bare host", Options{Datapath: DatapathFast},
			datapath.Caps{}, model.TechKernelUDP, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tech, fb := DefaultMap(c.opts, c.caps)
			if tech != c.want || fb != c.fb {
				t.Errorf("DefaultMap = %v,%v, want %v,%v", tech, fb, c.want, c.fb)
			}
		})
	}
}

func TestMapUsesCustomMapper(t *testing.T) {
	called := false
	opts := Options{
		Datapath: DatapathFast,
		Mapper: func(o Options, c datapath.Caps) (model.Tech, bool) {
			called = true
			return model.TechXDP, false
		},
	}
	tech, fb := Map(opts, datapath.Caps{RDMA: true})
	if !called || tech != model.TechXDP || fb {
		t.Errorf("custom mapper not honored: %v,%v called=%v", tech, fb, called)
	}
}

func TestMapDefaultsZeroValue(t *testing.T) {
	tech, fb := Map(Options{}, datapath.Caps{DPDK: true})
	if tech != model.TechKernelUDP || fb {
		t.Errorf("zero options = %v,%v, want kernel,false", tech, fb)
	}
}

func TestValidate(t *testing.T) {
	good := []Options{
		{},
		{Datapath: DatapathFast, Resources: ResourcesConstrained, Timing: TimingSensitive, Class: 7},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Options{
		{Datapath: 99},
		{Resources: 99},
		{Timing: 99},
		{Class: 8},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad[%d]: want error", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if DatapathFast.String() != "fast" || Datapath(0).String() != "unknown" {
		t.Error("Datapath.String")
	}
	if ResourcesConstrained.String() != "constrained" || Resources(9).String() != "unknown" {
		t.Error("Resources.String")
	}
	if TimingSensitive.String() != "time-sensitive" || Timing(9).String() != "unknown" {
		t.Error("Timing.String")
	}
	got := Options{Datapath: DatapathFast, Timing: TimingSensitive, Class: 3}.String()
	want := "datapath=fast resources=unconstrained timing=time-sensitive class=3"
	if got != want {
		t.Errorf("Options.String = %q, want %q", got, want)
	}
}
