// Package qos defines INSANE's Quality-of-Service policies (§5.2) and the
// mapping strategy that turns them into a concrete network technology at
// stream-creation time.
//
// The paper defines exactly three stream options — the degree of datapath
// acceleration, the level of tolerable resource consumption, and the
// time-sensitiveness of the flow — plus a user-configurable mapping
// strategy. Policies are hints: the mapper makes a best-effort choice among
// the technologies actually available on the host and falls back to the
// kernel stack (with a warning surfaced to the caller) when acceleration is
// requested but unavailable.
package qos

import (
	"fmt"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
)

// Datapath is the acceleration policy: whether the flow needs an
// accelerated datapath or regular kernel networking suffices.
type Datapath int

// Acceleration levels.
const (
	// DatapathSlow requests regular kernel-based networking.
	DatapathSlow Datapath = iota + 1
	// DatapathFast requests network acceleration.
	DatapathFast
)

// String names the policy value as in the paper ("slow"/"fast").
func (d Datapath) String() string {
	switch d {
	case DatapathSlow:
		return "slow"
	case DatapathFast:
		return "fast"
	default:
		return "unknown"
	}
}

// Resources is the resource-consumption policy: whether CPU usage matters
// when picking a technology (e.g. DPDK's spinning cores "may be
// unacceptable in some contexts").
type Resources int

// Resource-consumption levels.
const (
	// ResourcesUnconstrained permits resource-hungry technologies.
	ResourcesUnconstrained Resources = iota + 1
	// ResourcesConstrained asks the mapper to avoid busy-polling cores.
	ResourcesConstrained
)

// String names the policy value.
func (r Resources) String() string {
	switch r {
	case ResourcesUnconstrained:
		return "unconstrained"
	case ResourcesConstrained:
		return "constrained"
	default:
		return "unknown"
	}
}

// Timing is the time-sensitiveness policy selecting the packet scheduling
// strategy for the stream's packets.
type Timing int

// Time-sensitiveness levels.
const (
	// TimingBestEffort uses the default FIFO scheduler.
	TimingBestEffort Timing = iota + 1
	// TimingSensitive uses the IEEE 802.1Qbv time-aware scheduler.
	TimingSensitive
)

// String names the policy value.
func (t Timing) String() string {
	switch t {
	case TimingBestEffort:
		return "best-effort"
	case TimingSensitive:
		return "time-sensitive"
	default:
		return "unknown"
	}
}

// Mapper is a custom mapping strategy. It returns the chosen technology
// and whether the choice is a fallback that disregards the acceleration
// hint (INSANE then warns the user, §5.2).
type Mapper func(opts Options, caps datapath.Caps) (model.Tech, bool)

// Options is the quality requirement set associated with a stream.
// The zero value means slow/unconstrained/best-effort.
type Options struct {
	Datapath  Datapath
	Resources Resources
	Timing    Timing
	// Class is the 802.1Qbv traffic class (0-7) for time-sensitive
	// streams; ignored for best-effort ones.
	Class uint8
	// Mapper overrides the default mapping strategy when non-nil
	// ("according to a user-configured mapping strategy", §5.2).
	Mapper Mapper
	// NoTelemetry opts this stream's messages out of the per-stage
	// latency histograms (counters still run); see DESIGN.md §8.
	NoTelemetry bool
	// RunToCompletion opts the stream's sources into the run-to-completion
	// fast path (DESIGN.md §11): an Emit whose fanout is purely local, small
	// enough, and (for time-sensitive streams) inside its 802.1Qbv gate
	// window is delivered synchronously on the emitting goroutine, skipping
	// the TX ring, the scheduler, and the poller wakeup. Emits that fail the
	// preconditions silently take the queued path. Opting in commits each
	// source to the documented single-goroutine emit contract.
	RunToCompletion bool
}

// normalized fills zero values with the defaults.
func (o Options) normalized() Options {
	if o.Datapath == 0 {
		o.Datapath = DatapathSlow
	}
	if o.Resources == 0 {
		o.Resources = ResourcesUnconstrained
	}
	if o.Timing == 0 {
		o.Timing = TimingBestEffort
	}
	return o
}

// Validate checks the option values.
func (o Options) Validate() error {
	o = o.normalized()
	if o.Datapath != DatapathSlow && o.Datapath != DatapathFast {
		return fmt.Errorf("qos: invalid datapath policy %d", o.Datapath)
	}
	if o.Resources != ResourcesUnconstrained && o.Resources != ResourcesConstrained {
		return fmt.Errorf("qos: invalid resource policy %d", o.Resources)
	}
	if o.Timing != TimingBestEffort && o.Timing != TimingSensitive {
		return fmt.Errorf("qos: invalid timing policy %d", o.Timing)
	}
	if o.Class > 7 {
		return fmt.Errorf("qos: traffic class %d out of range 0-7", o.Class)
	}
	return nil
}

// String renders the options compactly for logs and warnings.
func (o Options) String() string {
	o = o.normalized()
	return fmt.Sprintf("datapath=%s resources=%s timing=%s class=%d",
		o.Datapath, o.Resources, o.Timing, o.Class)
}

// Map applies the stream's mapping strategy (custom or default) to the
// host capabilities. The boolean result reports a fallback: acceleration
// was requested but no accelerated technology is available.
func Map(opts Options, caps datapath.Caps) (model.Tech, bool) {
	opts = opts.normalized()
	if opts.Mapper != nil {
		return opts.Mapper(opts, caps)
	}
	return DefaultMap(opts, caps)
}

// DefaultMap is the paper's default strategy (§5.2): kernel UDP when no
// acceleration is required; otherwise RDMA is the best alternative (best
// performance at low resource usage); otherwise DPDK if resource usage is
// not a concern, XDP if it is; and if no acceleration technology is
// available, fall back to the kernel stack and report it so the runtime
// can warn the user.
func DefaultMap(opts Options, caps datapath.Caps) (model.Tech, bool) {
	opts = opts.normalized()
	if opts.Datapath == DatapathSlow {
		return model.TechKernelUDP, false
	}
	var prefs []model.Tech
	if opts.Resources == ResourcesConstrained {
		// Avoid DPDK's dedicated spinning cores entirely: the policy
		// says CPU consumption is unacceptable for this flow.
		prefs = []model.Tech{model.TechRDMA, model.TechXDP}
	} else {
		prefs = []model.Tech{model.TechRDMA, model.TechDPDK, model.TechXDP}
	}
	for _, tech := range prefs {
		if caps.Has(tech) {
			return tech, false
		}
	}
	return model.TechKernelUDP, true
}
