package apps

// The UDP-socket version of the benchmarking application (Table 3 row
// "UDP socket"): everything below is what a developer writes against a
// plain socket API — explicit socket setup on both ends, a send path, a
// receive loop with optional blocking, buffer management by hand.

import (
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/kernel"
	"github.com/insane-mw/insane/internal/mempool"
)

// UDPPingPong measures rounds round trips of payload bytes over plain
// UDP sockets, blocking or busy-polling the receive side.
func UDPPingPong(env *Env, payload, rounds int, blocking bool) []time.Duration {
	// Socket setup, client side.
	client, err := kernel.Plugin{}.Open(datapath.Config{
		Port:     env.PortA,
		Resolver: env.Net.Resolver(),
		Local:    env.AddrA,
		Alloc:    env.AllocA,
		Testbed:  env.Testbed,
		Blocking: blocking,
	})
	check(err, "client socket")
	defer client.Close()

	// Socket setup, server side.
	server, err := kernel.Plugin{}.Open(datapath.Config{
		Port:     env.PortB,
		Resolver: env.Net.Resolver(),
		Local:    env.AddrB,
		Alloc:    env.AllocB,
		Testbed:  env.Testbed,
		Blocking: blocking,
	})
	check(err, "server socket")
	defer server.Close()

	// The echo server: receive a datagram, send it straight back,
	// preserving the virtual clock for RTT accounting.
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		for i := 0; i < rounds; i++ {
			req := udpReceiveOne(server, blocking)
			if req == nil {
				return
			}
			echo := udpNewPacket(env.MemB, req.Bytes())

			echo.VTime, echo.Breakdown = req.VTime, req.Breakdown
			_, err := server.Send([]*datapath.Packet{echo}, env.AddrA)
			env.MemB.Release(echo.Slot)
			env.MemB.Release(req.Slot)
			if err != nil {
				return
			}
		}
	}()

	// The client: send, wait for the echo, record the round trip.
	rtts := make([]time.Duration, 0, rounds)
	buf := make([]byte, payload)
	for i := 0; i < rounds; i++ {
		msg := udpNewPacket(env.MemA, buf)
		_, err := client.Send([]*datapath.Packet{msg}, env.AddrB)
		env.MemA.Release(msg.Slot)
		if err != nil {
			break
		}
		pong := udpReceiveOne(client, blocking)
		if pong == nil {
			break
		}
		rtts = append(rtts, pong.VTime.Duration())
		env.MemA.Release(pong.Slot)
	}
	<-serverDone
	return rtts
}

// udpNewPacket copies payload into a fresh datagram buffer. The
// returned packet carries the slot; allocation failure panics (check),
// so the acquire is unconditional.
//
//insane:acquire resource=mem-slot
func udpNewPacket(mm *mempool.Manager, payload []byte) *datapath.Packet {
	slot, buf, err := mm.Get(datapath.Headroom+len(payload), mempool.NoOwner)
	check(err, "datagram buffer")
	copy(buf[datapath.Headroom:], payload)
	return &datapath.Packet{Slot: slot, Buf: buf, Off: datapath.Headroom, Len: len(payload)}
}

// udpReceiveOne spins (or blocks) until one datagram arrives.
func udpReceiveOne(sock datapath.Endpoint, blocking bool) *datapath.Packet {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if blocking {
			if err := sock.WaitRecv(time.Until(deadline)); err != nil {
				return nil
			}
		}
		pkts, err := sock.Poll(1)
		if err != nil {
			return nil
		}
		if len(pkts) == 1 {
			return pkts[0]
		}
	}
	return nil
}
