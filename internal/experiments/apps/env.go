// Package apps contains the three versions of the paper's benchmarking
// application (§6.2, Table 3): one against the INSANE API, one against
// UDP sockets, and one against native DPDK. The INSANE version needs the
// least networking code — that comparison *is* Table 3, so each version
// lives in its own file and the harness counts their lines.
//
// This file provides the shared test environment (the testbed hardware,
// which Table 3 does not count as application code).
package apps

import (
	"fmt"

	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// Env is a two-host testbed: the "hardware" each benchmark app runs on.
type Env struct {
	Net     *fabric.Network
	PortA   *fabric.Port
	PortB   *fabric.Port
	AddrA   netstack.Endpoint
	AddrB   netstack.Endpoint
	Testbed model.Testbed
	MemA    *mempool.Manager
	MemB    *mempool.Manager
}

// NewEnv wires two hosts for a testbed: a direct cable locally, through a
// switch in the cloud profile (Table 2).
func NewEnv(tb model.Testbed) (*Env, error) {
	net := fabric.New(7)
	ipA, ipB := netstack.IPv4{10, 1, 0, 1}, netstack.IPv4{10, 1, 0, 2}
	pa, err := net.AddHost("bench-a", ipA)
	if err != nil {
		return nil, err
	}
	pb, err := net.AddHost("bench-b", ipB)
	if err != nil {
		return nil, err
	}
	link := fabric.LinkParams{Rate: tb.LinkRate, PropDelay: tb.PropDelay, MTU: netstack.JumboMTU}
	if tb.SwitchLatency > 0 {
		sw := net.AddSwitch("tor", fabric.SwitchParams{Latency: tb.SwitchLatency})
		if err := net.ConnectToSwitch(pa, sw, link); err != nil {
			return nil, err
		}
		if err := net.ConnectToSwitch(pb, sw, link); err != nil {
			return nil, err
		}
	} else if err := net.ConnectDirect(pa, pb, link); err != nil {
		return nil, err
	}
	ma, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		return nil, err
	}
	mb, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		return nil, err
	}
	return &Env{
		Net: net, PortA: pa, PortB: pb,
		AddrA:   netstack.Endpoint{IP: ipA, Port: 9000},
		AddrB:   netstack.Endpoint{IP: ipB, Port: 9000},
		Testbed: tb, MemA: ma, MemB: mb,
	}, nil
}

// AllocA and AllocB adapt the memory managers to the datapath allocator
// signature.
//
//insane:acquire resource=mem-slot on=nilerr
func (e *Env) AllocA(size int) (mempool.SlotID, []byte, error) {
	return e.MemA.Get(size, mempool.NoOwner)
}

// AllocB allocates from host B's pool.
//
//insane:acquire resource=mem-slot on=nilerr
func (e *Env) AllocB(size int) (mempool.SlotID, []byte, error) {
	return e.MemB.Get(size, mempool.NoOwner)
}

// check panics on setup errors: benchmark apps treat environment failures
// as fatal, like the C originals exiting on rte_eal_init failure.
func check(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("bench app: %s: %v", what, err))
	}
}
