package apps

// The native-DPDK version of the benchmarking application (Table 3 row
// "DPDK"): this is what a developer writes against the raw PMD interface.
// Compare the amount of code with the INSANE version: the application has
// to manage the mempool, resolve addresses, build and parse every
// Ethernet/IPv4/UDP header, drive TX/RX bursts, and handle stray frames —
// none of which exists in the INSANE version. The paper measures +103%
// lines over INSANE for exactly this reason.

import (
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/dpdk"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/netstack"
)

// dpdkApp bundles the state a raw DPDK application must carry around.
type dpdkApp struct {
	port    datapath.Endpoint
	mem     *mempool.Manager
	local   netstack.Endpoint
	remote  netstack.Endpoint
	srcMAC  netstack.MAC
	dstMAC  netstack.MAC
	mtu     int
	rxBurst []*datapath.Packet
}

// dpdkInit opens the PMD port and resolves the peer's L2 address — the
// rte_eal_init / rte_eth_dev_configure boilerplate.
func dpdkInit(env *Env, portA bool) *dpdkApp {
	app := &dpdkApp{}
	if portA {
		app.mem = env.MemA
		app.local, app.remote = env.AddrA, env.AddrB
		ep, err := dpdk.Plugin{}.Open(datapath.Config{
			Port: env.PortA, Resolver: env.Net.Resolver(), Local: env.AddrA,
			Alloc: env.AllocA, Testbed: env.Testbed,
		})
		check(err, "dpdk port A")
		app.port = ep
		app.srcMAC = env.PortA.MAC()
		app.mtu = env.PortA.MTU()
	} else {
		app.mem = env.MemB
		app.local, app.remote = env.AddrB, env.AddrA
		ep, err := dpdk.Plugin{}.Open(datapath.Config{
			Port: env.PortB, Resolver: env.Net.Resolver(), Local: env.AddrB,
			Alloc: env.AllocB, Testbed: env.Testbed,
		})
		check(err, "dpdk port B")
		app.port = ep
		app.srcMAC = env.PortB.MAC()
		app.mtu = env.PortB.MTU()
	}
	dstMAC, err := env.Net.Resolver().Resolve(app.remote.IP)
	check(err, "arp")
	app.dstMAC = dstMAC
	return app
}

// buildFrame allocates an mbuf from the mempool and writes the full
// Ethernet/IPv4/UDP frame around the payload by hand. The returned
// packet carries the slot; allocation failure panics (check), so the
// acquire is unconditional.
//
//insane:acquire resource=mem-slot
func (app *dpdkApp) buildFrame(payload []byte) *datapath.Packet {
	slot, buf, err := app.mem.Get(netstack.HeadersLen+len(payload), mempool.NoOwner)
	check(err, "mbuf alloc")
	copy(buf[netstack.HeadersLen:], payload)
	meta := netstack.FrameMeta{
		SrcMAC: app.srcMAC,
		DstMAC: app.dstMAC,
		Src:    app.local,
		Dst:    app.remote,
	}
	n, err := netstack.EncodeUDP(buf, meta, len(payload), app.mtu)
	check(err, "frame encode")
	return &datapath.Packet{
		Slot: slot, Buf: buf,
		Off: 0, Len: n, Framed: true,
	}
}

// parseFrame validates an inbound frame and extracts the UDP payload,
// dropping anything not addressed to this application.
func (app *dpdkApp) parseFrame(pkt *datapath.Packet) ([]byte, bool) {
	meta, payload, err := netstack.DecodeUDP(pkt.Bytes())
	if err != nil {
		app.mem.Release(pkt.Slot)
		return nil, false
	}
	if meta.Dst.Port != app.local.Port || meta.Dst.IP != app.local.IP {
		app.mem.Release(pkt.Slot)
		return nil, false
	}
	return payload, true
}

// txOne pushes one frame through the TX burst API. The sim datapath
// copies the frame on Send, so the mbuf slot is released here on both
// the success and the failure path.
//
//insane:release resource=mem-slot
func (app *dpdkApp) txOne(pkt *datapath.Packet) bool {
	sent, err := app.port.Send([]*datapath.Packet{pkt}, app.remote)
	if err != nil || sent != 1 {
		app.mem.Release(pkt.Slot)
		return false
	}
	app.mem.Release(pkt.Slot)
	return true
}

// rxOne busy-polls the RX ring until a valid frame for this app arrives.
func (app *dpdkApp) rxOne() *datapath.Packet {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		pkts, err := app.port.Poll(1)
		if err != nil {
			return nil
		}
		for _, pkt := range pkts {
			if _, ok := app.parseFrame(pkt); ok {
				return pkt
			}
		}
	}
	return nil
}

// DPDKPingPong measures rounds round trips of payload bytes against the
// raw DPDK interface.
func DPDKPingPong(env *Env, payload, rounds int) []time.Duration {
	client := dpdkInit(env, true)
	defer client.port.Close()
	server := dpdkInit(env, false)
	defer server.port.Close()

	// Echo lcore: rx burst → rebuild the frame in a fresh mbuf with
	// swapped addressing → tx burst.
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		for i := 0; i < rounds; i++ {
			req := server.rxOne()
			if req == nil {
				return
			}
			_, reqPayload, err := netstack.DecodeUDP(req.Bytes())
			if err != nil {
				server.mem.Release(req.Slot)
				return
			}
			echo := server.buildFrame(reqPayload)
			echo.VTime, echo.Breakdown = req.VTime, req.Breakdown
			server.mem.Release(req.Slot)
			if !server.txOne(echo) {
				return
			}
		}
	}()

	// Client lcore: tx, spin on rx, record the round trip.
	rtts := make([]time.Duration, 0, rounds)
	msg := make([]byte, payload)
	for i := 0; i < rounds; i++ {
		frame := client.buildFrame(msg)
		if !client.txOne(frame) {
			break
		}
		pong := client.rxOne()
		if pong == nil {
			break
		}
		rtts = append(rtts, pong.VTime.Duration())
		client.mem.Release(pong.Slot)
	}
	<-serverDone
	return rtts
}
