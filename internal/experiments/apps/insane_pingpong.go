package apps

// The INSANE version of the benchmarking application (Table 3 row
// "INSANE"): the whole networking logic is a stream with a QoS hint, a
// source/sink pair per direction, and borrow/emit/consume/release calls.
// No sockets, no frames, no mempools, no polling loops.

import (
	"context"
	"time"

	"github.com/insane-mw/insane/insane"
)

// InsanePingPong measures rounds round trips of payload bytes through the
// INSANE API; fast selects the accelerated datapath QoS.
func InsanePingPong(cluster *insane.Cluster, payload, rounds int, fast bool) []time.Duration {
	opts := insane.Options{Datapath: insane.Slow}
	if fast {
		opts.Datapath = insane.Fast
	}
	const pingCh, pongCh = 1001, 1002

	sessA, err := cluster.Nodes()[0].InitSession()
	check(err, "session A")
	defer sessA.Close()
	sessB, err := cluster.Nodes()[1].InitSession()
	check(err, "session B")
	defer sessB.Close()

	streamA, err := sessA.CreateStreamOpts(insane.WithOptions(opts))
	check(err, "stream A")
	streamB, err := sessB.CreateStreamOpts(insane.WithOptions(opts))
	check(err, "stream B")

	pingSink, err := streamB.CreateSink(pingCh, nil)
	check(err, "ping sink")
	pongSink, err := streamA.CreateSink(pongCh, nil)
	check(err, "pong sink")
	waitSubscribed(cluster.Nodes()[0], pingCh)
	waitSubscribed(cluster.Nodes()[1], pongCh)
	pingSrc, err := streamA.CreateSource(pingCh)
	check(err, "ping source")
	pongSrc, err := streamB.CreateSource(pongCh)
	check(err, "pong source")

	// Echo server: consume the ping, emit it back on the pong channel.
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		// One reusable deadline context keeps the echo loop on the
		// pooled-timer (allocation-free) consume path.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		for i := 0; i < rounds; i++ {
			req, err := pingSink.ConsumeContext(ctx)
			if err != nil {
				return
			}
			resp, err := pongSrc.GetBuffer(len(req.Payload))
			if err != nil {
				pingSink.Release(req)
				return
			}
			copy(resp.Payload, req.Payload)
			resp.ContinueFrom(req)
			if _, err := pongSrc.Emit(resp, len(req.Payload)); err != nil {
				pongSrc.Abort(resp)
				pingSink.Release(req)
				return
			}
			pingSink.Release(req)
		}
	}()

	// Client: emit the ping, consume the pong, record the round trip.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rtts := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		buf, err := pingSrc.GetBuffer(payload)
		if err != nil {
			break
		}
		if _, err := pingSrc.Emit(buf, payload); err != nil {
			break
		}
		pong, err := pongSink.ConsumeContext(ctx)
		if err != nil {
			break
		}
		rtts = append(rtts, pong.Latency)
		pongSink.Release(pong)
	}
	<-serverDone
	return rtts
}

// waitSubscribed spins until the node learned one remote subscriber.
func waitSubscribed(n *insane.Node, channel int) {
	deadline := time.Now().Add(2 * time.Second)
	for n.SubscriberCount(channel) == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
}
