package experiments

import (
	"fmt"

	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/model"
)

// Table1 reproduces the technology comparison matrix.
func Table1(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Main options for end-host networking in the edge cloud",
		Header: []string{"Technology", "Kernel integration", "API", "Zero-copy", "CPU consumption", "Dedicated HW"},
	}
	names := map[model.Tech]string{
		model.TechKernelUDP: "Kernel TCP/IP",
		model.TechXDP:       "XDP",
		model.TechDPDK:      "DPDK",
		model.TechRDMA:      "RDMA",
	}
	yesNo := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	for _, info := range model.Table1() {
		t.AddRow(names[info.Tech], info.KernelIntegration, info.API,
			yesNo(info.ZeroCopy), info.CPU.String(), yesNo(info.DedicatedHW))
	}
	return Report{
		ID: "table1", Title: "Table 1 — technology comparison",
		Tables: []bench.Table{t},
		Notes:  []string{"static capability matrix; matches the paper's Table 1 by construction"},
	}, nil
}

// Table2 reproduces the testbed setup table.
func Table2(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Setup of the local and public testbed",
		Header: []string{"Testbed", "OS", "CPU", "RAM", "NIC", "Switch"},
	}
	for _, tb := range model.Testbeds() {
		t.AddRow(tb.Name, tb.OS, tb.CPU, tb.RAM, tb.NIC, tb.Switch)
	}
	t2 := bench.Table{
		Title:  "Calibrated fabric parameters derived from Table 2",
		Header: []string{"Testbed", "Link rate", "Propagation", "Switch latency", "Kernel CPU scale", "Runtime CPU scale"},
	}
	for _, tb := range model.Testbeds() {
		t2.AddRow(tb.Name, tb.LinkRate.String(), tb.PropDelay.String(),
			tb.SwitchLatency.String(),
			fmt.Sprintf("%.2fx", tb.KernelScale), fmt.Sprintf("%.2fx", tb.RuntimeScale))
	}
	return Report{
		ID: "table2", Title: "Table 2 — testbed setup",
		Tables: []bench.Table{t, t2},
		Notes:  []string{"the second table lists the simulation parameters standing in for the physical hardware"},
	}, nil
}

// Table4 reproduces the streaming image size table.
func Table4(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Size of the images sent in the streaming benchmark",
		Header: []string{"Resolution", "Size (MB)"},
	}
	for _, r := range imageResolutions {
		t.AddRow(r.name, fmt.Sprintf("%.2f", float64(r.bytes)/1e6))
	}
	return Report{
		ID: "table4", Title: "Table 4 — streaming image sizes",
		Tables: []bench.Table{t},
		Notes:  []string{"raw RGB frames: width x height x 3 bytes, as the paper streams uncompressed images"},
	}, nil
}

// imageResolutions lists Table 4 of the paper (raw RGB sizes).
var imageResolutions = []struct {
	name  string
	bytes int
}{
	{"HD", 2_760_000},
	{"Full HD", 6_220_000},
	{"2K", 11_600_000},
	{"4K", 24_880_000},
	{"8K", 99_530_000},
}
