package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/refsys"
	"github.com/insane-mw/insane/lunar/streaming"
)

// streamFragPayload is the INSANE message size of one Lunar Streaming
// fragment (fragment header + chunk).
const streamFragPayload = streaming.MaxFragPayload + 16

// reassemblyCopyNsPerByte is the receiver-side cost of copying fragment
// payloads into the frame buffer — the copy the paper identifies as
// unavoidable for non-RDMA technologies (§8).
const reassemblyCopyNsPerByte = 0.058

// streamModel computes the modeled per-frame latency and sustainable FPS
// of Lunar Streaming over one INSANE configuration.
type streamModel struct {
	sys model.System
	tb  model.Testbed
}

// perFragment returns the pipeline bottleneck for one fragment.
func (m streamModel) perFragment() time.Duration {
	burst := 1
	if m.sys.Batching() {
		burst = model.DefaultBurst
	}
	return model.Build(m.sys).Bottleneck(streamFragPayload, burst, m.tb)
}

// fragments returns the fragment count of a frame.
func fragments(size int) int {
	n := (size + streaming.MaxFragPayload - 1) / streaming.MaxFragPayload
	if n == 0 {
		n = 1
	}
	return n
}

// FrameLatency models the end-to-end frame time: pipeline fill for the
// first fragment, one bottleneck period per further fragment, plus the
// receiver's reassembly copy.
func (m streamModel) FrameLatency(size int) time.Duration {
	n := fragments(size)
	oneWay := model.Build(m.sys).OneWayLatency(streamFragPayload, m.tb)
	copyCost := time.Duration(reassemblyCopyNsPerByte * float64(size))
	return oneWay + time.Duration(n-1)*m.perFragment() + copyCost
}

// FPS models the sustainable frame rate.
func (m streamModel) FPS(size int) float64 {
	perFrame := time.Duration(fragments(size)) * m.perFragment()
	if c := time.Duration(reassemblyCopyNsPerByte * float64(size)); c > perFrame {
		perFrame = c // reassembly-bound regime
	}
	if perFrame <= 0 {
		return 0
	}
	return float64(time.Second) / float64(perFrame)
}

// Fig11a reproduces the FPS-vs-resolution comparison.
func Fig11a(RunConfig) (Report, error) {
	fast := streamModel{sys: model.SysInsaneFast, tb: model.Local}
	slow := streamModel{sys: model.SysInsaneSlow, tb: model.Local}
	sf := refsys.NewSendfile(model.Local)

	t := bench.Table{
		Title:  "Streaming frames per second for increasing image resolution",
		Header: []string{"Resolution", "Lunar fast", "Lunar slow", "sendfile"},
	}
	for _, r := range imageResolutions {
		t.AddRow(r.name,
			fmt.Sprintf("%.0f", fast.FPS(r.bytes)),
			fmt.Sprintf("%.0f", slow.FPS(r.bytes)),
			fmt.Sprintf("%.0f", sf.FPS(r.bytes)))
	}
	notes := []string{
		"paper anchors: >1000 FPS at HD and >100 FPS up to 4K for Lunar fast, consistently above sendfile",
	}
	if fast.FPS(imageResolutions[0].bytes) < 1000 {
		notes = append(notes, "WARNING: Lunar fast below 1000 FPS at HD")
	}
	if fast.FPS(imageResolutions[3].bytes) < 100 {
		notes = append(notes, "WARNING: Lunar fast below 100 FPS at 4K")
	}
	return Report{
		ID: "fig11a", Title: "Fig. 11a — FPS for increasing image resolution",
		Tables: []bench.Table{t},
		Notes:  notes,
	}, nil
}

// Fig11b reproduces the per-frame latency comparison.
func Fig11b(RunConfig) (Report, error) {
	fast := streamModel{sys: model.SysInsaneFast, tb: model.Local}
	slow := streamModel{sys: model.SysInsaneSlow, tb: model.Local}
	sf := refsys.NewSendfile(model.Local)

	t := bench.Table{
		Title:  "Per-frame latency (ms) for increasing image resolution",
		Header: []string{"Resolution", "Lunar fast", "Lunar slow", "sendfile"},
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
	}
	for _, r := range imageResolutions {
		t.AddRow(r.name,
			ms(fast.FrameLatency(r.bytes)),
			ms(slow.FrameLatency(r.bytes)),
			ms(sf.FrameLatency(r.bytes)))
	}
	notes := []string{
		"paper anchor: Lunar fast latency never exceeds 10 ms up to 4K resolution",
	}
	if fast.FrameLatency(imageResolutions[3].bytes) > 10*time.Millisecond {
		notes = append(notes, "WARNING: Lunar fast above 10ms at 4K")
	}
	return Report{
		ID: "fig11b", Title: "Fig. 11b — latency per frame for increasing image resolution",
		Tables: []bench.Table{t},
		Notes:  notes,
	}, nil
}
