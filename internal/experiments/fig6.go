package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/model"
)

// Fig6 reproduces the INSANE fast latency breakdown at 64 B: where the
// round-trip time goes on each testbed (send / receive / data processing
// / network). The paper uses it to explain why the slower cloud CPU
// inflates INSANE's send/receive stages more than the network share.
func Fig6(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "INSANE fast latency breakdown, 64B payload (one way, µs)",
		Header: []string{"Testbed", "Send", "Receive", "Data processing", "Network", "Total"},
	}
	type share struct{ send, recv, proc, net, total time.Duration }
	shares := make(map[string]share, 2)
	for _, tb := range model.Testbeds() {
		p := model.Build(model.SysInsaneFast)
		bd := p.Breakdown(64, tb)
		s := share{
			send:  bd[model.CatSend],
			recv:  bd[model.CatRecv],
			proc:  bd[model.CatProcessing],
			net:   bd[model.CatNetwork],
			total: p.OneWayLatency(64, tb),
		}
		shares[tb.Name] = s
		t.AddRow(tb.Name,
			bench.Micros(s.send), bench.Micros(s.recv),
			bench.Micros(s.proc), bench.Micros(s.net),
			bench.Micros(s.total))
	}

	local, cloud := shares[model.Local.Name], shares[model.Cloud.Name]
	notes := []string{
		"the cloud network share grows by the 1.7µs switch traversal, as the paper measures",
		fmt.Sprintf("cloud send+receive inflate %.1fx over local (paper: 'significantly higher time spent by INSANE in the send and receive operations')",
			float64(cloud.send+cloud.recv)/float64(local.send+local.recv)),
	}
	if cloud.net-local.net != 1700*time.Nanosecond {
		notes = append(notes, "WARNING: switch latency share does not match 1.7µs")
	}
	return Report{
		ID: "fig6", Title: "Fig. 6 — INSANE fast latency breakdown (64B)",
		Tables: []bench.Table{t},
		Notes:  notes,
	}, nil
}
