package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/demikernel"
	"github.com/insane-mw/insane/internal/experiments/apps"
	"github.com/insane-mw/insane/internal/model"
)

// demikernelPingPong runs the echo benchmark over a Demikernel variant
// and returns the accumulated virtual RTTs.
func demikernelPingPong(v demikernel.Variant, tb model.Testbed, payload, rounds int) ([]time.Duration, error) {
	env, err := apps.NewEnv(tb)
	if err != nil {
		return nil, err
	}
	mk := func(portA bool) (*demikernel.LibOS, demikernel.QD, error) {
		port, local, remote := env.PortA, env.AddrA, env.AddrB
		if !portA {
			port, local, remote = env.PortB, env.AddrB, env.AddrA
		}
		l, err := demikernel.New(v, demikernel.Config{
			Port: port, Resolver: env.Net.Resolver(), Testbed: tb,
		})
		if err != nil {
			return nil, 0, err
		}
		qd, err := l.Socket()
		if err != nil {
			return nil, 0, err
		}
		if err := l.Bind(qd, local); err != nil {
			return nil, 0, err
		}
		if err := l.Connect(qd, remote); err != nil {
			return nil, 0, err
		}
		return l, qd, nil
	}
	client, cqd, err := mk(true)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	server, sqd, err := mk(false)
	if err != nil {
		return nil, err
	}
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			req, err := server.Pop(sqd, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			if err := server.PushAt(sqd, req.Payload, req.VTime, req.Breakdown); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	msg := make([]byte, payload)
	rtts := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		if err := client.Push(cqd, msg); err != nil {
			return nil, err
		}
		pong, err := client.Pop(cqd, 5*time.Second)
		if err != nil {
			return nil, err
		}
		rtts = append(rtts, pong.VTime.Duration())
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return rtts, nil
}

// fig7Paper holds the paper's average RTT anchors (64B) where stated.
var fig7Paper = map[string]map[string]string{
	model.Local.Name: {
		"Blocking UDP Socket":     "13.34",
		"Non-Blocking UDP Socket": "12.58",
		"Catnap":                  "13.66",
		"INSANE slow":             "~13.6",
		"Catnip":                  "4.26",
		"INSANE fast":             "4.95",
		"Raw DPDK":                "3.44",
	},
	model.Cloud.Name: {
		"Blocking UDP Socket":     "23.27",
		"Non-Blocking UDP Socket": "21.33",
		"Catnap":                  "~23.9",
		"INSANE slow":             "~25.7",
		"Catnip":                  "~7.4",
		"INSANE fast":             "10.43",
		"Raw DPDK":                "6.55",
	},
}

// runFig7 measures the full system comparison at 64 B on one testbed.
func runFig7(id, title string, tb model.Testbed, cfg RunConfig) (Report, error) {
	rounds := cfg.rounds()
	const payload = 64

	cluster, err := latencyCluster(tb)
	if err != nil {
		return Report{}, err
	}
	defer cluster.Close()

	measure := map[string]func() ([]time.Duration, error){
		"Blocking UDP Socket": func() ([]time.Duration, error) {
			env, err := apps.NewEnv(tb)
			if err != nil {
				return nil, err
			}
			return apps.UDPPingPong(env, payload, rounds, true), nil
		},
		"Non-Blocking UDP Socket": func() ([]time.Duration, error) {
			env, err := apps.NewEnv(tb)
			if err != nil {
				return nil, err
			}
			return apps.UDPPingPong(env, payload, rounds, false), nil
		},
		"Catnap": func() ([]time.Duration, error) {
			return demikernelPingPong(demikernel.Catnap, tb, payload, rounds)
		},
		"INSANE slow": func() ([]time.Duration, error) {
			return apps.InsanePingPong(cluster, payload, rounds, false), nil
		},
		"Catnip": func() ([]time.Duration, error) {
			return demikernelPingPong(demikernel.Catnip, tb, payload, rounds)
		},
		"INSANE fast": func() ([]time.Duration, error) {
			return apps.InsanePingPong(cluster, payload, rounds, true), nil
		},
		"Raw DPDK": func() ([]time.Duration, error) {
			env, err := apps.NewEnv(tb)
			if err != nil {
				return nil, err
			}
			return apps.DPDKPingPong(env, payload, rounds), nil
		},
	}

	order := []string{
		"Blocking UDP Socket", "Non-Blocking UDP Socket", "Catnap",
		"INSANE slow", "Catnip", "INSANE fast", "Raw DPDK",
	}
	t := bench.Table{
		Title:  fmt.Sprintf("Average RTT, 64B payload — %s testbed (µs)", tb.Name),
		Header: []string{"System", "Avg RTT", "Paper"},
	}
	chart := bench.Chart{Title: "as bars", Unit: "µs"}
	for _, name := range order {
		samples, err := measure[name]()
		if err != nil {
			return Report{}, fmt.Errorf("%s: %s: %w", id, name, err)
		}
		if len(samples) == 0 {
			return Report{}, fmt.Errorf("%s: %s produced no samples", id, name)
		}
		s := bench.Summarize(samples)
		t.AddRow(name, bench.Micros(s.Mean), fig7Paper[tb.Name][name])
		chart.Add(name, float64(s.Mean.Nanoseconds())/1000)
	}
	return Report{
		ID: id, Title: title,
		Tables: []bench.Table{t},
		Notes: []string{
			chart.String(),
			fmt.Sprintf("%d rounds per system; the paper reports averages over 1M messages", rounds),
		},
	}, nil
}

// Fig7a reproduces Fig. 7a: all seven systems on the local testbed.
func Fig7a(cfg RunConfig) (Report, error) {
	return runFig7("fig7a", "Fig. 7a — average RTT of all systems (local, 64B)", model.Local, cfg)
}

// Fig7b reproduces Fig. 7b: all seven systems on the cloud testbed.
func Fig7b(cfg RunConfig) (Report, error) {
	return runFig7("fig7b", "Fig. 7b — average RTT of all systems (cloud, 64B)", model.Cloud, cfg)
}
