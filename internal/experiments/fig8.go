package experiments

import (
	"fmt"

	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/sim"
	"github.com/insane-mw/insane/internal/timebase"
)

// fig8Payloads are the Fig. 8a message sizes (jumbo frames enabled above
// 1.5 KB, as in the evaluation).
var fig8Payloads = []int{64, 256, 1024, 4096, 8192}

// fig8Systems are the Fig. 8a series.
var fig8Systems = []model.System{
	model.SysCatnap,
	model.SysCatnip,
	model.SysUDPNonBlocking,
	model.SysRawDPDK,
	model.SysInsaneSlow,
	model.SysInsaneFast,
}

// Fig8a reproduces the throughput-vs-payload comparison: the paper's
// stress test sends one million messages at full speed; here the
// discrete-event simulator pushes cfg.Jobs messages through each system's
// calibrated pipeline.
func Fig8a(cfg RunConfig) (Report, error) {
	jobs := cfg.jobs()
	t := bench.Table{
		Title:  "Throughput (Gbps goodput) for increasing payload size",
		Header: append([]string{"System"}, payloadHeaders(fig8Payloads)...),
	}
	for _, sys := range fig8Systems {
		cells := []string{sys.String()}
		for _, p := range fig8Payloads {
			res := sim.SystemGoodput(sys, p, jobs, model.Local)
			cells = append(cells, gbps(float64(res.Goodput(p))))
		}
		t.AddRow(cells...)
	}
	return Report{
		ID: "fig8a", Title: "Fig. 8a — throughput for increasing payload size (local)",
		Tables: []bench.Table{t},
		Notes: []string{
			fmt.Sprintf("discrete-event simulation, %d back-to-back messages per cell (paper: 1M, 10 runs)", jobs),
			"paper anchors: raw DPDK saturates the 100G NIC; INSANE fast peaks ≈90 Gbps at 8KB via opportunistic batching; Catnip markedly lower (one packet per send); Catnap ≈ INSANE slow ≈ kernel UDP",
		},
	}, nil
}

// fig8bSinks are the receiver counts of Fig. 8b.
var fig8bSinks = []int{1, 2, 4, 6, 8}

// Fig8b reproduces the multi-application experiment: per-sink goodput at
// 1 KB when several separate applications subscribe to the same channel
// on the receiving runtime.
func Fig8b(cfg RunConfig) (Report, error) {
	const payload = 1024
	t := bench.Table{
		Title:  "Per-sink throughput for increasing number of sinks (1KB)",
		Header: []string{"Sinks", "Gbps per sink", "Drop vs 1 sink", "Paper"},
	}
	paper := map[int]string{1: "—", 6: "-8%", 8: "-39%"}
	base := model.MultiSinkPerSinkThroughput(model.SysInsaneFast, 1, payload, model.Local)
	chart := bench.Chart{Title: "as bars", Unit: "Gbps"}
	for _, n := range fig8bSinks {
		got := model.MultiSinkPerSinkThroughput(model.SysInsaneFast, n, payload, model.Local)
		drop := 1 - float64(got)/float64(base)
		t.AddRow(fmt.Sprint(n), gbps(float64(got)), fmt.Sprintf("-%.0f%%", drop*100), paper[n])
		chart.Add(fmt.Sprintf("%d sinks", n), float64(got)/1e9)
	}
	return Report{
		ID: "fig8b", Title: "Fig. 8b — throughput for increasing number of sinks (1KB)",
		Tables: []bench.Table{t},
		Notes: []string{
			chart.String(),
			"single receive polling thread serves all sinks; the cliff past 6 sinks models its working set spilling the cache (§8: 'a single sender easily overflows a single-core sink')",
		},
	}, nil
}

// payloadHeaders renders the payload column names.
func payloadHeaders(payloads []int) []string {
	out := make([]string, len(payloads))
	for i, p := range payloads {
		out[i] = fmt.Sprintf("%dB", p)
	}
	return out
}

// ensure timebase stays referenced for Goodput types in docs.
var _ = timebase.Gbps
