package experiments

import (
	_ "embed"
	"fmt"
	"strings"

	"github.com/insane-mw/insane/internal/bench"
)

// The three versions of the benchmarking application, embedded so the
// harness counts exactly the code a developer writes against each
// interface (Table 3 of the paper).
var (
	//go:embed apps/insane_pingpong.go
	insaneAppSrc string
	//go:embed apps/udp_pingpong.go
	udpAppSrc string
	//go:embed apps/dpdk_pingpong.go
	dpdkAppSrc string
)

// countLoC counts non-blank, non-comment-only lines, the convention LoC
// tools apply to C and Go alike.
func countLoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if strings.Contains(s, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case s == "":
		case strings.HasPrefix(s, "//"):
		case strings.HasPrefix(s, "/*"):
			if !strings.Contains(s, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n
}

// Table3 reproduces the lines-of-code comparison: how much code the same
// ping-pong benchmark takes against each interface.
func Table3(RunConfig) (Report, error) {
	insaneLoC := countLoC(insaneAppSrc)
	udpLoC := countLoC(udpAppSrc)
	dpdkLoC := countLoC(dpdkAppSrc)
	if insaneLoC == 0 {
		return Report{}, fmt.Errorf("table3: embedded sources missing")
	}
	pct := func(n int) string {
		return fmt.Sprintf("%+.0f%%", 100*float64(n-insaneLoC)/float64(insaneLoC))
	}
	t := bench.Table{
		Title:  "LoC to implement the benchmarking application",
		Header: []string{"Interface", "LoC (measured)", "Increase", "Paper LoC", "Paper increase"},
	}
	t.AddRow("INSANE", fmt.Sprint(insaneLoC), "—", "189", "—")
	t.AddRow("UDP socket", fmt.Sprint(udpLoC), pct(udpLoC), "227", "+20%")
	t.AddRow("DPDK", fmt.Sprint(dpdkLoC), pct(dpdkLoC), "384", "+103%")

	notes := []string{
		"measured over internal/experiments/apps/*.go: the code a developer writes against each interface",
	}
	if !(insaneLoC < udpLoC && udpLoC < dpdkLoC) {
		notes = append(notes, "WARNING: expected ordering INSANE < UDP < DPDK violated")
	}
	return Report{
		ID: "table3", Title: "Table 3 — benchmark application size per interface",
		Tables: []bench.Table{t},
		Notes:  notes,
	}, nil
}
