package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/experiments/apps"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/sched"
	"github.com/insane-mw/insane/internal/timebase"
)

// AblationIPC quantifies the design decision the microkernel architecture
// pays for (§4): the client↔runtime IPC hop versus a library-OS design
// (Demikernel) versus the raw technology, at 64B.
func AblationIPC(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Cost of the runtime IPC hop (RTT, 64B, local, µs)",
		Header: []string{"Design", "System", "RTT", "Delta vs raw"},
	}
	raw := model.Build(model.SysRawDPDK).RTT(64, model.Local)
	rows := []struct {
		design string
		sys    model.System
	}{
		{"raw technology", model.SysRawDPDK},
		{"library OS (no IPC)", model.SysCatnip},
		{"microkernel runtime (IPC)", model.SysInsaneFast},
	}
	for _, r := range rows {
		rtt := model.Build(r.sys).RTT(64, model.Local)
		t.AddRow(r.design, r.sys.String(), bench.Micros(rtt), bench.Micros(rtt-raw))
	}
	return Report{
		ID: "ablation-ipc", Title: "Ablation — IPC hop vs library OS",
		Tables: []bench.Table{t},
		Notes: []string{
			"the IPC hop buys Network Acceleration as a Service: multiple isolated applications share one datapath instance (§4, §8)",
		},
	}, nil
}

// AblationBatching toggles INSANE's opportunistic batching and shows its
// effect on throughput — without it, INSANE degrades to Catnip-like rates
// (the paper: 'when we do not adopt this technique ... Demikernel and
// INSANE perform in the same way').
func AblationBatching(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Opportunistic batching ablation (INSANE fast goodput, Gbps)",
		Header: []string{"Payload", "Batching on (burst 32)", "Batching off (burst 1)", "Catnip (no batching)"},
	}
	p := model.Build(model.SysInsaneFast)
	catnip := model.Build(model.SysCatnip)
	for _, payload := range []int{1024, 4096, 8192} {
		on := timebase.Goodput(payload, p.Bottleneck(payload, model.DefaultBurst, model.Local))
		off := timebase.Goodput(payload, p.Bottleneck(payload, 1, model.Local))
		cat := timebase.Goodput(payload, catnip.Bottleneck(payload, 1, model.Local))
		t.AddRow(fmt.Sprintf("%dB", payload),
			gbps(float64(on)), gbps(float64(off)), gbps(float64(cat)))
	}
	return Report{
		ID: "ablation-batching", Title: "Ablation — opportunistic batching",
		Tables: []bench.Table{t},
		Notes:  []string{"batching never waits for a burst to fill, so ping-pong latency is unaffected (§6.2)"},
	}, nil
}

// AblationThreads compares the two polling-thread mappings of §5.3: one
// thread per datapath plugin versus one shared thread, on a node with all
// four technologies.
func AblationThreads(cfg RunConfig) (Report, error) {
	rounds := cfg.rounds() / 2
	if rounds < 20 {
		rounds = 20
	}
	run := func(shared bool, perPlugin int) (time.Duration, error) {
		spec := insane.NodeSpec{
			DPDK: true, XDP: true, RDMA: true,
			SharedPoller: shared, PollersPerPlugin: perPlugin,
		}
		a, b := spec, spec
		a.Name, b.Name = "n1", "n2"
		cluster, err := insane.NewCluster(insane.ClusterOptions{Nodes: []insane.NodeSpec{a, b}})
		if err != nil {
			return 0, err
		}
		defer cluster.Close()
		samples := insanePingPongVia(cluster, 64, rounds)
		if len(samples) == 0 {
			return 0, fmt.Errorf("no samples (shared=%v per=%d)", shared, perPlugin)
		}
		return bench.Summarize(samples).Median, nil
	}
	dedicated, err := run(false, 0)
	if err != nil {
		return Report{}, err
	}
	shared, err := run(true, 0)
	if err != nil {
		return Report{}, err
	}
	scaled, err := run(false, 2)
	if err != nil {
		return Report{}, err
	}
	t := bench.Table{
		Title:  "Polling-thread mapping (INSANE fast RTT, 64B, local)",
		Header: []string{"Mapping", "Threads", "RTT (µs)"},
	}
	t.AddRow("one thread per plugin", "4", bench.Micros(dedicated))
	t.AddRow("single shared thread", "1", bench.Micros(shared))
	t.AddRow("two threads per plugin (§8)", "8", bench.Micros(scaled))
	return Report{
		ID: "ablation-threads", Title: "Ablation — polling thread mapping",
		Tables: []bench.Table{t},
		Notes: []string{
			"virtual per-packet costs are identical; the shared mapping trades real CPU cores for slower drain scheduling under load (§5.3, §8)",
		},
	}, nil
}

// AblationTSN drives the 802.1Qbv shaper against plain FIFO under bulk
// cross traffic and reports the worst-case delay of the time-critical
// class — the deterministic-behaviour property the TSN QoS buys (§5.3).
//
// Load pattern: every 250µs cycle, 300 best-effort packets arrive at the
// cycle start and one class-7 packet arrives 10µs in; the egress drains
// one packet per µs (250 per cycle), so a best-effort backlog builds up.
// FIFO queues the critical packet behind that backlog; the shaper releases
// it in the protected window of its own cycle.
func AblationTSN(RunConfig) (Report, error) {
	gcl := sched.GCL{
		{Duration: 50 * time.Microsecond, Gates: 1 << 7},
		{Duration: 200 * time.Microsecond, Gates: 0x7F},
	}
	tas, err := sched.NewTAS(gcl)
	if err != nil {
		return Report{}, err
	}
	fifo := sched.NewFIFO()

	type result struct {
		worst, sum time.Duration
		n          int
	}
	measure := func(s sched.Scheduler) result {
		var res result
		dst := make([]*datapath.Packet, 1)
		const cycleDur = 250 * time.Microsecond
		for cycle := 0; cycle < 40; cycle++ {
			base := timebase.VTime(cycle) * timebase.VTime(cycleDur)
			for i := 0; i < 300; i++ {
				bulk := &datapath.Packet{Class: 0, VTime: base}
				markCritEmit(bulk, int64(base))
				s.Enqueue(bulk, base)
			}
			critAt := base.Add(10 * time.Microsecond)
			crit := &datapath.Packet{Class: 7, VTime: critAt}
			markCritEmit(crit, int64(critAt))
			injected := false
			for step := 0; step < 250; step++ {
				now := base.Add(time.Duration(step) * time.Microsecond)
				if !injected && step >= 10 {
					s.Enqueue(crit, critAt)
					injected = true
				}
				if s.Dequeue(dst, now) != 1 {
					continue
				}
				p := dst[0]
				if p.VTime.Before(now) {
					p.VTime = now
				}
				if p.Class == 7 {
					wait := p.VTime.Sub(timebase.VTime(critEmit(p)))
					if wait > res.worst {
						res.worst = wait
					}
					res.sum += wait
					res.n++
				}
			}
		}
		return res
	}
	tasRes := measure(tas)
	fifoRes := measure(fifo)

	t := bench.Table{
		Title:  "802.1Qbv time-aware shaper vs FIFO under bulk cross traffic",
		Header: []string{"Scheduler", "class-7 worst-case delay", "class-7 mean delay"},
	}
	mean := func(r result) time.Duration {
		if r.n == 0 {
			return 0
		}
		return r.sum / time.Duration(r.n)
	}
	t.AddRow("FIFO (default)", fifoRes.worst.String(), mean(fifoRes).String())
	t.AddRow("TAS 802.1Qbv", tasRes.worst.String(), mean(tasRes).String())
	notes := []string{
		"the shaper bounds the critical class's delay to its gate cycle; FIFO lets best-effort backlog delay it unboundedly (§5.3)",
	}
	if tasRes.worst >= fifoRes.worst {
		notes = append(notes, "WARNING: TAS did not improve worst-case delay")
	}
	if tasRes.worst > gcl.Cycle() {
		notes = append(notes, "WARNING: TAS worst case exceeds the gate cycle")
	}
	return Report{
		ID: "ablation-tsn", Title: "Ablation — FIFO vs TSN scheduling",
		Tables: []bench.Table{t},
		Notes:  notes,
	}, nil
}

// critEmit / markCritEmit stash the emission time in the packet context.
func markCritEmit(p *datapath.Packet, at int64) { p.Ctx = at }
func critEmit(p *datapath.Packet) int64 {
	if v, ok := p.Ctx.(int64); ok {
		return v
	}
	return 0
}

// AblationQoS sweeps the QoS option space over heterogeneous capability
// sets and reports the default mapper's decision table (§5.2).
func AblationQoS(RunConfig) (Report, error) {
	t := bench.Table{
		Title:  "Default QoS mapping across host capability sets",
		Header: []string{"Datapath", "Resources", "Host techs", "Mapped to", "Fallback"},
	}
	capsSets := []struct {
		name string
		caps datapath.Caps
	}{
		{"kernel only", datapath.Caps{}},
		{"xdp", datapath.Caps{XDP: true}},
		{"dpdk", datapath.Caps{DPDK: true}},
		{"dpdk+xdp", datapath.Caps{DPDK: true, XDP: true}},
		{"full (rdma)", datapath.Caps{DPDK: true, XDP: true, RDMA: true}},
	}
	for _, dp := range []qos.Datapath{qos.DatapathSlow, qos.DatapathFast} {
		for _, res := range []qos.Resources{qos.ResourcesUnconstrained, qos.ResourcesConstrained} {
			for _, cs := range capsSets {
				tech, fb := qos.DefaultMap(qos.Options{Datapath: dp, Resources: res}, cs.caps)
				t.AddRow(dp.String(), res.String(), cs.name, tech.String(), fmt.Sprint(fb))
			}
		}
	}
	return Report{
		ID: "ablation-qos", Title: "Ablation — QoS mapping decision table",
		Tables: []bench.Table{t},
		Notes:  []string{"RDMA > DPDK > XDP > kernel under unconstrained resources; DPDK excluded when CPU is constrained; kernel fallback warns (§5.2)"},
	}, nil
}

// insanePingPongVia adapts apps.InsanePingPong for ablations.
func insanePingPongVia(cluster *insane.Cluster, payload, rounds int) []time.Duration {
	return apps.InsanePingPong(cluster, payload, rounds, true)
}
