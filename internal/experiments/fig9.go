package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/experiments/apps"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/refsys"
	"github.com/insane-mw/insane/internal/sim"
	"github.com/insane-mw/insane/lunar/mom"
)

// momPingPong measures Lunar MoM round trips as the sum of the two
// one-way latencies (ping topic out, pong topic back), over the real
// middleware.
func momPingPong(fast bool, payload, rounds int) ([]time.Duration, error) {
	cluster, err := latencyCluster(model.Local)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	opts := insane.Options{Datapath: insane.Slow}
	if fast {
		opts.Datapath = insane.Fast
	}
	pub, err := mom.New(cluster.Nodes()[0], opts)
	if err != nil {
		return nil, err
	}
	defer pub.Close()
	echo, err := mom.New(cluster.Nodes()[1], opts)
	if err != nil {
		return nil, err
	}
	defer echo.Close()

	const pingTopic, pongTopic = "bench/ping", "bench/pong"
	pingLat := make(chan time.Duration, rounds)
	pongLat := make(chan time.Duration, rounds)

	// The echo participant republishes every ping on the pong topic.
	if err := echo.Subscribe(pingTopic, func(payload []byte, m mom.Meta) {
		pingLat <- m.Latency
		_ = echo.Publish(pongTopic, payload)
	}); err != nil {
		return nil, err
	}
	if err := pub.Subscribe(pongTopic, func(_ []byte, m mom.Meta) {
		pongLat <- m.Latency
	}); err != nil {
		return nil, err
	}
	waitTopic(cluster.Nodes()[0], pingTopic)
	waitTopic(cluster.Nodes()[1], pongTopic)

	msg := make([]byte, payload)
	rtts := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		if err := pub.Publish(pingTopic, msg); err != nil {
			return nil, err
		}
		select {
		case l1 := <-pingLat:
			select {
			case l2 := <-pongLat:
				rtts = append(rtts, l1+l2)
			case <-time.After(5 * time.Second):
				return nil, fmt.Errorf("mom ping-pong: pong timeout at round %d", i)
			}
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("mom ping-pong: ping timeout at round %d", i)
		}
	}
	return rtts, nil
}

// waitTopic blocks until a node learns a remote subscription for a topic.
func waitTopic(n *insane.Node, topic string) {
	deadline := time.Now().Add(2 * time.Second)
	for n.SubscriberCount(mom.TopicChannel(topic)) == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
}

// refsysPingPong measures the reference middleware round trip with the
// virtual clock carried through the echo.
func refsysPingPong(f refsys.Flavor, payload, rounds int) ([]time.Duration, error) {
	env, err := newRefsysEnv(f)
	if err != nil {
		return nil, err
	}
	defer env.a.Close()
	defer env.b.Close()

	rtts := make([]time.Duration, 0, rounds)
	var lastRTT time.Duration
	env.b.Subscribe("ping", func(s refsys.Sample) {
		_ = env.b.PublishAt("pong", s.Payload, s.VTime, s.Breakdown)
	})
	env.a.Subscribe("pong", func(s refsys.Sample) {
		lastRTT = s.Latency
	})

	msg := make([]byte, payload)
	for i := 0; i < rounds; i++ {
		if err := env.a.Publish("ping", msg); err != nil {
			return nil, err
		}
		if env.b.Spin(1, 2*time.Second) != 1 {
			return nil, fmt.Errorf("refsys: ping lost at round %d", i)
		}
		if env.a.Spin(1, 2*time.Second) != 1 {
			return nil, fmt.Errorf("refsys: pong lost at round %d", i)
		}
		rtts = append(rtts, lastRTT)
	}
	return rtts, nil
}

// refsysEnv wires two participants over a fabric.
type refsysEnv struct{ a, b *refsys.Participant }

func newRefsysEnv(f refsys.Flavor) (*refsysEnv, error) {
	env, err := apps.NewEnv(model.Local)
	if err != nil {
		return nil, err
	}
	a, err := refsys.NewParticipant(f, refsys.Config{
		Port: env.PortA, Resolver: env.Net.Resolver(), Local: env.AddrA,
		Peers: []netstack.Endpoint{env.AddrB}, Testbed: model.Local, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	b, err := refsys.NewParticipant(f, refsys.Config{
		Port: env.PortB, Resolver: env.Net.Resolver(), Local: env.AddrB,
		Peers: []netstack.Endpoint{env.AddrA}, Testbed: model.Local, Seed: 22,
	})
	if err != nil {
		a.Close()
		return nil, err
	}
	return &refsysEnv{a: a, b: b}, nil
}

// fig9Payloads are the Fig. 9 message sizes.
var fig9Payloads = []int{64, 256, 1024}

// Fig9a reproduces the MoM latency comparison.
func Fig9a(cfg RunConfig) (Report, error) {
	rounds := cfg.rounds()
	if rounds > 100 {
		rounds = 100 // refsys echoes are slower to drive; shape needs less
	}
	t := bench.Table{
		Title:  "MoM RTT (µs) for increasing payload sizes (local)",
		Header: append([]string{"System"}, payloadHeaders(fig9Payloads)...),
	}
	type mrow struct {
		name    string
		measure func(payload int) ([]time.Duration, error)
	}
	rows := []mrow{
		{"Lunar fast", func(p int) ([]time.Duration, error) { return momPingPong(true, p, rounds) }},
		{"Lunar slow", func(p int) ([]time.Duration, error) { return momPingPong(false, p, rounds) }},
		{"Cyclone DDS", func(p int) ([]time.Duration, error) { return refsysPingPong(refsys.FlavorCyclone, p, rounds) }},
		{"ZeroMQ UDP", func(p int) ([]time.Duration, error) { return refsysPingPong(refsys.FlavorZeroMQ, p, rounds) }},
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, p := range fig9Payloads {
			samples, err := r.measure(p)
			if err != nil {
				return Report{}, fmt.Errorf("fig9a: %s: %w", r.name, err)
			}
			cells = append(cells, bench.Micros(bench.Summarize(samples).Median))
		}
		t.AddRow(cells...)
	}
	return Report{
		ID: "fig9a", Title: "Fig. 9a — latency of MoMs for increasing payload sizes",
		Tables: []bench.Table{t},
		Notes: []string{
			"Lunar adds ns-scale overhead to INSANE; Cyclone ≈ +45% over blocking-socket systems with higher variability; ZeroMQ ≈ Cyclone + 20µs (paper §7.1)",
			fmt.Sprintf("%d rounds per cell over the real middleware/reference implementations", rounds),
		},
	}, nil
}

// Fig9b reproduces the MoM throughput comparison: Lunar over the
// simulated INSANE pipelines (the MoM layer runs on application cores and
// does not shift the bottleneck), Cyclone from its marshaling-bound
// analytic model. ZeroMQ is excluded, as in the paper ("unstable
// performance").
func Fig9b(cfg RunConfig) (Report, error) {
	jobs := cfg.jobs()
	t := bench.Table{
		Title:  "MoM throughput (Gbps) for increasing payload sizes (local)",
		Header: append([]string{"System"}, payloadHeaders(fig9Payloads)...),
	}
	paper := map[string][]string{
		"Lunar fast":  {"1.44", "5.72", "22.82"},
		"Lunar slow":  {"0.54", "3.60", "10.51"},
		"Cyclone DDS": {"0.37", "1.49", "4.69"},
	}
	addRow := func(name string, f func(p int) float64) {
		cells := []string{name}
		for _, p := range fig9Payloads {
			cells = append(cells, gbps(f(p)))
		}
		t.AddRow(cells...)
		t.AddRow(append([]string{"  (paper)"}, paper[name]...)...)
	}
	addRow("Lunar fast", func(p int) float64 {
		return float64(sim.SystemGoodput(model.SysInsaneFast, p, jobs, model.Local).Goodput(p))
	})
	addRow("Lunar slow", func(p int) float64 {
		return float64(sim.SystemGoodput(model.SysInsaneSlow, p, jobs, model.Local).Goodput(p))
	})
	addRow("Cyclone DDS", func(p int) float64 {
		return float64(refsys.ModelThroughput(refsys.FlavorCyclone, p, model.Local))
	})
	return Report{
		ID: "fig9b", Title: "Fig. 9b — throughput of MoMs for increasing payload sizes",
		Tables: []bench.Table{t},
		Notes: []string{
			"shape check: Lunar fast ≫ Lunar slow ≳ Cyclone at every size; DPDK batching gives Lunar fast its margin",
		},
	}, nil
}
