// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7). Each experiment produces a Report with the same
// rows/series the paper plots, alongside the paper's reference values
// where the text states them, so paper-vs-measured comparison is direct.
//
// Latency experiments run the real middleware over the virtual fabric and
// read accumulated virtual time; throughput experiments run the
// discrete-event simulator over the same calibrated cost model
// (see DESIGN.md, "Two measurement layers").
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/insane-mw/insane/internal/bench"
)

// RunConfig tunes experiment effort.
type RunConfig struct {
	// Rounds is the ping-pong iteration count for latency experiments.
	// The paper uses one million; virtual time is deterministic here, so
	// a few hundred suffice. Zero means the default.
	Rounds int
	// Jobs is the message count for simulated throughput runs (the
	// paper's stress test sends one million). Zero means the default.
	Jobs int
}

func (c RunConfig) rounds() int {
	if c.Rounds > 0 {
		return c.Rounds
	}
	return 200
}

func (c RunConfig) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return 4000
}

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []bench.Table
	Notes  []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces a report.
type Runner func(cfg RunConfig) (Report, error)

// registry maps experiment ids to runners; ids follow the paper's
// table/figure numbering.
var registry = map[string]Runner{
	"table1":            Table1,
	"table2":            Table2,
	"table3":            Table3,
	"table4":            Table4,
	"fig5a":             Fig5a,
	"fig5b":             Fig5b,
	"fig6":              Fig6,
	"fig7a":             Fig7a,
	"fig7b":             Fig7b,
	"fig8a":             Fig8a,
	"fig8b":             Fig8b,
	"fig9a":             Fig9a,
	"fig9b":             Fig9b,
	"fig11a":            Fig11a,
	"fig11b":            Fig11b,
	"ablation-ipc":      AblationIPC,
	"ablation-batching": AblationBatching,
	"ablation-threads":  AblationThreads,
	"ablation-tsn":      AblationTSN,
	"ablation-qos":      AblationQoS,
}

// IDs lists the experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, cfg RunConfig) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// gbps formats a bit rate in Gbps with two decimals.
func gbps(bitsPerSec float64) string {
	return fmt.Sprintf("%.2f", bitsPerSec/1e9)
}
