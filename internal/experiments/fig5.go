package experiments

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/internal/bench"
	"github.com/insane-mw/insane/internal/experiments/apps"
	"github.com/insane-mw/insane/internal/model"
)

// fig5Payloads are the message sizes of Fig. 5.
var fig5Payloads = []int{64, 256, 1024}

// latencyCluster builds the two-node INSANE deployment for a testbed.
func latencyCluster(tb model.Testbed) (*insane.Cluster, error) {
	topo := insane.TopologyDirect
	if tb.SwitchLatency > 0 {
		topo = insane.TopologySwitched
	}
	return insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "n1", DPDK: true},
			{Name: "n2", DPDK: true},
		},
		Topology: topo,
		Cloud:    tb.Name == model.Cloud.Name,
	})
}

// runFig5 measures the four systems of Fig. 5 on one testbed.
func runFig5(id, title string, tb model.Testbed, cfg RunConfig) (Report, error) {
	rounds := cfg.rounds()
	t := bench.Table{
		Title:  fmt.Sprintf("RTT (µs) for increasing payload sizes — %s testbed", tb.Name),
		Header: []string{"System", "64B median", "64B p25", "64B p75", "256B median", "1024B median"},
	}

	type row struct {
		name    string
		measure func(payload int) []time.Duration
	}
	cluster, err := latencyCluster(tb)
	if err != nil {
		return Report{}, err
	}
	defer cluster.Close()

	rows := []row{
		{"Raw DPDK", func(p int) []time.Duration {
			env, err := apps.NewEnv(tb)
			if err != nil {
				return nil
			}
			return apps.DPDKPingPong(env, p, rounds)
		}},
		{"INSANE fast", func(p int) []time.Duration {
			return apps.InsanePingPong(cluster, p, rounds, true)
		}},
		{"INSANE slow", func(p int) []time.Duration {
			return apps.InsanePingPong(cluster, p, rounds, false)
		}},
		{"Kernel UDP", func(p int) []time.Duration {
			env, err := apps.NewEnv(tb)
			if err != nil {
				return nil
			}
			return apps.UDPPingPong(env, p, rounds, false)
		}},
	}

	for _, r := range rows {
		var cells []string
		for i, p := range fig5Payloads {
			samples := r.measure(p)
			if len(samples) == 0 {
				return Report{}, fmt.Errorf("%s: %s produced no samples at %dB", id, r.name, p)
			}
			s := bench.Summarize(samples)
			if i == 0 {
				cells = append(cells, bench.Micros(s.Median), bench.Micros(s.P25), bench.Micros(s.P75))
			} else {
				cells = append(cells, bench.Micros(s.Median))
			}
		}
		t.AddRow(append([]string{r.name}, cells...)...)
	}

	notes := []string{
		fmt.Sprintf("%d ping-pong rounds per cell (paper: 1M); virtual time is deterministic, so quartiles collapse onto the median", rounds),
		"paper anchors (local, 64B): raw DPDK 3.44, INSANE fast 4.95, kernel UDP 12.58, INSANE slow ≈ kernel + 1µs",
	}
	return Report{ID: id, Title: title, Tables: []bench.Table{t}, Notes: notes}, nil
}

// Fig5a reproduces Fig. 5a: RTT vs payload on the local testbed.
func Fig5a(cfg RunConfig) (Report, error) {
	return runFig5("fig5a", "Fig. 5a — RTT for increasing payload sizes (local testbed)", model.Local, cfg)
}

// Fig5b reproduces Fig. 5b: RTT vs payload on the public cloud testbed.
func Fig5b(cfg RunConfig) (Report, error) {
	return runFig5("fig5b", "Fig. 5b — RTT for increasing payload sizes (public cloud)", model.Cloud, cfg)
}
