package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/insane-mw/insane/internal/model"
)

// quickCfg keeps test runs short; shape does not need many rounds.
var quickCfg = RunConfig{Rounds: 40, Jobs: 1500}

// cell parses a numeric table cell.
func cell(t *testing.T, tab [][]string, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(tab[row][col], "~"), 64)
	if err != nil {
		t.Fatalf("cell[%d][%d] = %q: %v", row, col, tab[row][col], err)
	}
	return v
}

// findRow locates a row by its first cell.
func findRow(t *testing.T, rows [][]string, name string) []string {
	t.Helper()
	for _, r := range rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("row %q not found in %v", name, rows)
	return nil
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id || len(rep.Tables) == 0 {
				t.Fatalf("report malformed: %+v", rep)
			}
			for _, note := range rep.Notes {
				if strings.HasPrefix(note, "WARNING") {
					t.Errorf("experiment self-check failed: %s", note)
				}
			}
			if out := rep.String(); !strings.Contains(out, id) {
				t.Error("rendering lacks the id")
			}
		})
	}
	if _, err := Run("nope", quickCfg); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig5aShape(t *testing.T) {
	rep, err := Fig5a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	raw := findRow(t, rows, "Raw DPDK")
	fast := findRow(t, rows, "INSANE fast")
	slow := findRow(t, rows, "INSANE slow")
	kern := findRow(t, rows, "Kernel UDP")

	val := func(r []string) float64 {
		v, _ := strconv.ParseFloat(r[1], 64)
		return v
	}
	// Paper anchors at 64B local (µs).
	within := func(name string, got, want float64) {
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s @64B = %.2f, want ≈%.2f", name, got, want)
		}
	}
	within("raw DPDK", val(raw), 3.44)
	within("INSANE fast", val(fast), 4.95)
	within("kernel UDP", val(kern), 12.58)
	if !(val(raw) < val(fast) && val(fast) < val(kern) && val(kern) < val(slow)+2) {
		t.Errorf("ordering broken: %v %v %v %v", val(raw), val(fast), val(kern), val(slow))
	}
	// Flat across payloads: 1KB within 15% of 64B for INSANE fast.
	f64, _ := strconv.ParseFloat(fast[1], 64)
	f1k, _ := strconv.ParseFloat(fast[5], 64)
	if f1k > f64*1.15 {
		t.Errorf("INSANE fast grows too much with payload: %v → %v", f64, f1k)
	}
}

func TestFig7aMatchesPaper(t *testing.T) {
	rep, err := Fig7a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	anchors := map[string]float64{
		"Blocking UDP Socket":     13.34,
		"Non-Blocking UDP Socket": 12.58,
		"Catnap":                  13.66,
		"Catnip":                  4.26,
		"INSANE fast":             4.95,
		"Raw DPDK":                3.44,
	}
	for name, want := range anchors {
		r := findRow(t, rows, name)
		got, _ := strconv.ParseFloat(r[1], 64)
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s = %.2f, want ≈%.2f", name, got, want)
		}
	}
}

func TestFig7bCloudShape(t *testing.T) {
	rep, err := Fig7b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	get := func(name string) float64 {
		r := findRow(t, rows, name)
		v, _ := strconv.ParseFloat(r[1], 64)
		return v
	}
	// Cloud shape: everything slower than local; INSANE fast suffers more
	// than Catnip; raw DPDK ≈ 6.5-7.
	if raw := get("Raw DPDK"); raw < 6 || raw > 7.5 {
		t.Errorf("cloud raw DPDK = %.2f, want ≈6.5-7", raw)
	}
	insaneGap := get("INSANE fast") - get("Raw DPDK")
	catnipGap := get("Catnip") - get("Raw DPDK")
	if insaneGap <= catnipGap {
		t.Errorf("cloud: INSANE gap %.2f not larger than Catnip gap %.2f", insaneGap, catnipGap)
	}
}

func TestFig8aShape(t *testing.T) {
	rep, err := Fig8a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	at8K := func(name string) float64 {
		r := findRow(t, rows, name)
		v, _ := strconv.ParseFloat(r[len(r)-1], 64)
		return v
	}
	raw := at8K(model.SysRawDPDK.String())
	fast := at8K(model.SysInsaneFast.String())
	catnip := at8K(model.SysCatnip.String())
	kern := at8K(model.SysUDPNonBlocking.String())
	if !(raw > fast && fast > catnip && catnip > kern) {
		t.Errorf("8KB ordering: raw=%.1f fast=%.1f catnip=%.1f kernel=%.1f", raw, fast, catnip, kern)
	}
	if raw < 90 {
		t.Errorf("raw DPDK @8KB = %.1f, want NIC saturation ≥90", raw)
	}
	if fast < 75 || fast > 95 {
		t.Errorf("INSANE fast @8KB = %.1f, want ≈85-90", fast)
	}
}

func TestFig8bShape(t *testing.T) {
	rep, err := Fig8b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	drops := make(map[string]string, len(rows))
	for _, r := range rows {
		drops[r[0]] = r[2]
	}
	if d := drops["6"]; !strings.HasPrefix(d, "-8") && !strings.HasPrefix(d, "-7") && !strings.HasPrefix(d, "-9") {
		t.Errorf("6-sink drop = %s, want ≈-8%%", d)
	}
	if d := drops["8"]; !strings.HasPrefix(d, "-39") && !strings.HasPrefix(d, "-38") && !strings.HasPrefix(d, "-40") {
		t.Errorf("8-sink drop = %s, want ≈-39%%", d)
	}
}

func TestFig9aShape(t *testing.T) {
	rep, err := Fig9a(RunConfig{Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	at64 := func(name string) float64 { return cell(t, [][]string{findRow(t, rows, name)}, 0, 1) }
	lf, ls := at64("Lunar fast"), at64("Lunar slow")
	cy, zmq := at64("Cyclone DDS"), at64("ZeroMQ UDP")
	if !(lf < ls && ls < cy && cy < zmq) {
		t.Errorf("MoM latency ordering: fast=%.1f slow=%.1f cyclone=%.1f zmq=%.1f", lf, ls, cy, zmq)
	}
	// Lunar fast ≈ INSANE fast + ns overhead: ~5µs RTT.
	if lf < 4.5 || lf > 5.8 {
		t.Errorf("Lunar fast RTT = %.2f, want ≈5.0", lf)
	}
	// ZeroMQ ≈ Cyclone + 20µs.
	if zmq-cy < 15 || zmq-cy > 25 {
		t.Errorf("ZeroMQ - Cyclone = %.1f, want ≈20", zmq-cy)
	}
}

func TestFig9bShape(t *testing.T) {
	rep, err := Fig9b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	at1K := func(name string) float64 {
		r := findRow(t, rows, name)
		v, _ := strconv.ParseFloat(r[3], 64)
		return v
	}
	lf, ls, cy := at1K("Lunar fast"), at1K("Lunar slow"), at1K("Cyclone DDS")
	if !(lf > 2.5*ls && ls > cy) {
		t.Errorf("MoM throughput ordering @1KB: fast=%.1f slow=%.1f cyclone=%.1f", lf, ls, cy)
	}
	if lf < 20 || lf > 30 {
		t.Errorf("Lunar fast @1KB = %.1f Gbps, want ≈23-26 (paper 22.82)", lf)
	}
}

func TestFig11Shape(t *testing.T) {
	repA, err := Fig11a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := repA.Tables[0].Rows
	for i, r := range rows {
		fast, _ := strconv.ParseFloat(r[1], 64)
		slow, _ := strconv.ParseFloat(r[2], 64)
		sf, _ := strconv.ParseFloat(r[3], 64)
		if !(fast > sf && fast > slow) {
			t.Errorf("row %d (%s): fast=%.0f slow=%.0f sendfile=%.0f, want fast dominant", i, r[0], fast, slow, sf)
		}
	}
	// HD above 1000 FPS, 4K above 100 FPS for Lunar fast.
	hd, _ := strconv.ParseFloat(rows[0][1], 64)
	fourK, _ := strconv.ParseFloat(rows[3][1], 64)
	if hd < 1000 || fourK < 100 {
		t.Errorf("Lunar fast FPS: HD=%.0f (want >1000), 4K=%.0f (want >100)", hd, fourK)
	}

	repB, err := Fig11b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rowsB := repB.Tables[0].Rows
	fourKLat, _ := strconv.ParseFloat(rowsB[3][1], 64)
	if fourKLat > 10 {
		t.Errorf("Lunar fast 4K latency = %.1f ms, want <10", fourKLat)
	}
}

func TestTable3Ordering(t *testing.T) {
	rep, err := Table3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	loc := func(name string) float64 {
		r := findRow(t, rows, name)
		v, _ := strconv.ParseFloat(r[1], 64)
		return v
	}
	insane, udp, dpdk := loc("INSANE"), loc("UDP socket"), loc("DPDK")
	if !(insane < udp && udp < dpdk) {
		t.Errorf("LoC ordering: insane=%v udp=%v dpdk=%v", insane, udp, dpdk)
	}
	// DPDK should be roughly double INSANE, as in the paper (+103%).
	if dpdk < insane*1.5 {
		t.Errorf("DPDK LoC %v not clearly larger than INSANE %v", dpdk, insane)
	}
}

func TestFig6Consistency(t *testing.T) {
	rep, err := Fig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	for _, r := range rows {
		sum := cell(t, [][]string{r}, 0, 1) + cell(t, [][]string{r}, 0, 2) +
			cell(t, [][]string{r}, 0, 3) + cell(t, [][]string{r}, 0, 4)
		total := cell(t, [][]string{r}, 0, 5)
		if sum < total*0.99 || sum > total*1.01 {
			t.Errorf("%s: stages %.2f != total %.2f", r[0], sum, total)
		}
	}
}

func TestAblationTSNImproves(t *testing.T) {
	rep, err := AblationTSN(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "WARNING") {
			t.Error(n)
		}
	}
}
