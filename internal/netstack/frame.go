package netstack

import (
	"encoding/binary"
	"errors"
)

// Header sizes and totals for the UDP/IPv4/Ethernet encapsulation the
// engine produces.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	// HeadersLen is the total overhead prepended to every payload.
	HeadersLen = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen // 42

	// StandardMTU is the classic Ethernet maximum IP packet size.
	StandardMTU = 1500
	// JumboMTU is the jumbo-frame maximum the evaluation enables for
	// payloads bigger than 1.5 KB (§6.2).
	JumboMTU = 9000

	// WireOverhead accounts for the preamble, SFD, FCS and inter-frame
	// gap that occupy the wire but never reach software (7+1+4+12).
	WireOverhead = 24

	etherTypeIPv4 = 0x0800
	protoUDP      = 17
	defaultTTL    = 64
)

// Encode/decode errors. All of them are static sentinels: EncodeUDP and
// DecodeUDP run once per packet on the datapath, and a peer spraying
// malformed or oversized traffic must not be able to drive per-packet
// error formatting (hot-path rule; match with errors.Is).
var (
	ErrFrameTooShort   = errors.New("netstack: frame too short")
	ErrNotIPv4         = errors.New("netstack: not an IPv4 frame")
	ErrNotUDP          = errors.New("netstack: not a UDP packet")
	ErrBadChecksum     = errors.New("netstack: IPv4 header checksum mismatch")
	ErrLengthMismatch  = errors.New("netstack: length fields disagree with frame size")
	ErrPayloadTooLarge = errors.New("netstack: payload exceeds MTU")
	ErrBufTooSmall     = errors.New("netstack: buffer too small for frame")
)

// FrameMeta carries the addressing of one UDP-over-Ethernet frame.
type FrameMeta struct {
	SrcMAC MAC
	DstMAC MAC
	Src    Endpoint
	Dst    Endpoint
	// TrafficClass is the IPv4 DSCP value (high 6 bits of TOS). The TSN
	// scheduler maps it to an 802.1Qbv gate (§5.3).
	TrafficClass uint8
}

// MaxPayload returns the largest UDP payload that fits a frame under the
// given MTU.
func MaxPayload(mtu int) int { return mtu - IPv4HeaderLen - UDPHeaderLen }

// FrameLen returns the full Ethernet frame length for a UDP payload of n
// bytes (excluding WireOverhead).
func FrameLen(n int) int { return HeadersLen + n }

// EncodeUDP writes Ethernet+IPv4+UDP headers for a payload of payloadLen
// bytes into buf, assuming the payload is (or will be) at
// buf[HeadersLen : HeadersLen+payloadLen]. It returns the total frame
// length. The buffer must have room; this is guaranteed by the memory
// manager's slot classes. The layout lets a zero-copy datapath reserve
// header room in the same slot the application wrote into.
//
//insane:hotpath
func EncodeUDP(buf []byte, meta FrameMeta, payloadLen int, mtu int) (int, error) {
	if payloadLen < 0 || payloadLen > MaxPayload(mtu) {
		return 0, ErrPayloadTooLarge
	}
	total := FrameLen(payloadLen)
	if len(buf) < total {
		return 0, ErrBufTooSmall
	}

	// Ethernet.
	copy(buf[0:6], meta.DstMAC[:])
	copy(buf[6:12], meta.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// IPv4.
	ip := buf[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	ipLen := IPv4HeaderLen + UDPHeaderLen + payloadLen
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = meta.TrafficClass << 2
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(ip[4:6], 0)      // identification: no fragmentation
	binary.BigEndian.PutUint16(ip[6:8], 0x4000) // DF
	ip[8] = defaultTTL
	ip[9] = protoUDP
	ip[10], ip[11] = 0, 0 // checksum placeholder
	copy(ip[12:16], meta.Src.IP[:])
	copy(ip[16:20], meta.Dst.IP[:])
	cks := internetChecksum(ip)
	binary.BigEndian.PutUint16(ip[10:12], cks)

	// UDP.
	udp := buf[EthHeaderLen+IPv4HeaderLen : HeadersLen]
	binary.BigEndian.PutUint16(udp[0:2], meta.Src.Port)
	binary.BigEndian.PutUint16(udp[2:4], meta.Dst.Port)
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHeaderLen+payloadLen))
	// UDP checksum is legitimately optional over IPv4; modern NICs
	// offload it, so the engine leaves it zero like DPDK test apps do.
	binary.BigEndian.PutUint16(udp[6:8], 0)

	return total, nil
}

// DecodeUDP validates a frame and returns its metadata and a payload view
// aliasing frame's backing array (zero-copy).
//
//insane:hotpath
func DecodeUDP(frame []byte) (FrameMeta, []byte, error) {
	var meta FrameMeta
	if len(frame) < HeadersLen {
		return meta, nil, ErrFrameTooShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return meta, nil, ErrNotIPv4
	}
	copy(meta.DstMAC[:], frame[0:6])
	copy(meta.SrcMAC[:], frame[6:12])

	ip := frame[EthHeaderLen:]
	if ip[0] != 0x45 {
		return meta, nil, ErrNotIPv4
	}
	if ip[9] != protoUDP {
		return meta, nil, ErrNotUDP
	}
	if internetChecksum(ip[:IPv4HeaderLen]) != 0 {
		return meta, nil, ErrBadChecksum
	}
	meta.TrafficClass = ip[1] >> 2
	ipLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if EthHeaderLen+ipLen > len(frame) || ipLen < IPv4HeaderLen+UDPHeaderLen {
		return meta, nil, ErrLengthMismatch
	}
	copy(meta.Src.IP[:], ip[12:16])
	copy(meta.Dst.IP[:], ip[16:20])

	udp := frame[EthHeaderLen+IPv4HeaderLen:]
	meta.Src.Port = binary.BigEndian.Uint16(udp[0:2])
	meta.Dst.Port = binary.BigEndian.Uint16(udp[2:4])
	udpLen := int(binary.BigEndian.Uint16(udp[4:6]))
	if udpLen != ipLen-IPv4HeaderLen {
		return meta, nil, ErrLengthMismatch
	}
	payload := frame[HeadersLen : EthHeaderLen+ipLen]
	return meta, payload, nil
}

// internetChecksum computes the RFC 1071 ones-complement checksum of b.
// Computing it over a header whose checksum field is filled yields zero.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	//insane:bounded by=b is one frame's header or payload, <= the MTU
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	//insane:bounded by=folding the 32-bit sum into 16 bits converges in at most two iterations
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
