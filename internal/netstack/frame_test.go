package netstack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

var testMeta = FrameMeta{
	SrcMAC:       MAC{0x02, 0, 0, 0, 0, 1},
	DstMAC:       MAC{0x02, 0, 0, 0, 0, 2},
	Src:          Endpoint{IP: IPv4{10, 0, 0, 1}, Port: 5000},
	Dst:          Endpoint{IP: IPv4{10, 0, 0, 2}, Port: 6000},
	TrafficClass: 5,
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello insane")
	buf := make([]byte, 2048)
	copy(buf[HeadersLen:], payload)
	n, err := EncodeUDP(buf, testMeta, len(payload), StandardMTU)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeadersLen+len(payload) {
		t.Fatalf("frame len = %d, want %d", n, HeadersLen+len(payload))
	}
	meta, got, err := DecodeUDP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if meta != testMeta {
		t.Errorf("meta = %+v, want %+v", meta, testMeta)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
}

func TestDecodePayloadAliasesFrame(t *testing.T) {
	buf := make([]byte, 256)
	copy(buf[HeadersLen:], "abcd")
	n, _ := EncodeUDP(buf, testMeta, 4, StandardMTU)
	_, payload, err := DecodeUDP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	payload[0] = 'Z'
	if buf[HeadersLen] != 'Z' {
		t.Error("decoded payload is a copy; want zero-copy alias")
	}
}

func TestEncodePayloadTooLarge(t *testing.T) {
	buf := make([]byte, 16*1024)
	if _, err := EncodeUDP(buf, testMeta, MaxPayload(StandardMTU)+1, StandardMTU); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
	// Jumbo MTU admits the same payload.
	if _, err := EncodeUDP(buf, testMeta, MaxPayload(StandardMTU)+1, JumboMTU); err != nil {
		t.Errorf("jumbo encode: %v", err)
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	buf := make([]byte, HeadersLen+3)
	if _, err := EncodeUDP(buf, testMeta, 100, StandardMTU); err == nil {
		t.Error("want error for undersized buffer")
	}
}

func TestEncodeZeroPayload(t *testing.T) {
	buf := make([]byte, 64)
	n, err := EncodeUDP(buf, testMeta, 0, StandardMTU)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := DecodeUDP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 {
		t.Errorf("payload len = %d, want 0", len(payload))
	}
}

func TestDecodeErrors(t *testing.T) {
	good := make([]byte, 256)
	copy(good[HeadersLen:], "payload")
	n, _ := EncodeUDP(good, testMeta, 7, StandardMTU)
	good = good[:n]

	t.Run("too short", func(t *testing.T) {
		if _, _, err := DecodeUDP(good[:HeadersLen-1]); !errors.Is(err, ErrFrameTooShort) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("not ipv4 ethertype", func(t *testing.T) {
		f := append([]byte(nil), good...)
		binary.BigEndian.PutUint16(f[12:14], 0x86dd)
		if _, _, err := DecodeUDP(f); !errors.Is(err, ErrNotIPv4) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		f := append([]byte(nil), good...)
		f[EthHeaderLen] = 0x46
		if _, _, err := DecodeUDP(f); !errors.Is(err, ErrNotIPv4) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("not udp", func(t *testing.T) {
		f := append([]byte(nil), good...)
		f[EthHeaderLen+9] = 6 // TCP
		// Fix checksum so the protocol check is what fires.
		f[EthHeaderLen+10], f[EthHeaderLen+11] = 0, 0
		cks := internetChecksum(f[EthHeaderLen : EthHeaderLen+IPv4HeaderLen])
		binary.BigEndian.PutUint16(f[EthHeaderLen+10:EthHeaderLen+12], cks)
		if _, _, err := DecodeUDP(f); !errors.Is(err, ErrNotUDP) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupted header checksum", func(t *testing.T) {
		f := append([]byte(nil), good...)
		f[EthHeaderLen+12] ^= 0xff // flip a source IP byte
		if _, _, err := DecodeUDP(f); !errors.Is(err, ErrBadChecksum) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, _, err := DecodeUDP(good[:len(good)-3]); !errors.Is(err, ErrLengthMismatch) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("udp/ip length disagreement", func(t *testing.T) {
		f := append([]byte(nil), good...)
		off := EthHeaderLen + IPv4HeaderLen + 4
		binary.BigEndian.PutUint16(f[off:off+2], 99)
		if _, _, err := DecodeUDP(f); !errors.Is(err, ErrLengthMismatch) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001f203f4f5f6f7 → checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(b); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
	// Odd length handling.
	odd := []byte{0xab}
	if got := internetChecksum(odd); got != ^uint16(0xab00) {
		t.Errorf("odd checksum = %#04x", got)
	}
}

func TestQuickRoundTripArbitraryPayloads(t *testing.T) {
	buf := make([]byte, 16*1024)
	prop := func(payload []byte, tc uint8) bool {
		if len(payload) > MaxPayload(JumboMTU) {
			payload = payload[:MaxPayload(JumboMTU)]
		}
		meta := testMeta
		meta.TrafficClass = tc & 0x3f
		copy(buf[HeadersLen:], payload)
		n, err := EncodeUDP(buf, meta, len(payload), JumboMTU)
		if err != nil {
			return false
		}
		m2, p2, err := DecodeUDP(buf[:n])
		if err != nil {
			return false
		}
		return m2 == meta && bytes.Equal(p2, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxPayload(t *testing.T) {
	if got := MaxPayload(StandardMTU); got != 1472 {
		t.Errorf("MaxPayload(1500) = %d, want 1472", got)
	}
	if got := MaxPayload(JumboMTU); got != 8972 {
		t.Errorf("MaxPayload(9000) = %d, want 8972", got)
	}
}

func TestResolver(t *testing.T) {
	r := NewResolver()
	ip := IPv4{10, 0, 0, 7}
	mac := MAC{2, 0, 0, 0, 0, 7}
	r.Add(ip, mac)
	got, err := r.Resolve(ip)
	if err != nil || got != mac {
		t.Errorf("Resolve = %v,%v", got, err)
	}
	if _, err := r.Resolve(IPv4{1, 2, 3, 4}); err == nil {
		t.Error("Resolve unknown: want error")
	}
}

func TestAddrStrings(t *testing.T) {
	if got := (MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}).String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String = %q", got)
	}
	if got := (Endpoint{IP: IPv4{192, 168, 1, 9}, Port: 80}).String(); got != "192.168.1.9:80" {
		t.Errorf("Endpoint.String = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Error("BroadcastMAC.IsBroadcast() = false")
	}
	ip := IPv4{1, 2, 3, 4}
	if IPv4FromUint32(ip.Uint32()) != ip {
		t.Error("IPv4 uint32 round trip failed")
	}
}

func BenchmarkEncodeUDP(b *testing.B) {
	buf := make([]byte, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeUDP(buf, testMeta, 1024, StandardMTU); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUDP(b *testing.B) {
	buf := make([]byte, 2048)
	n, _ := EncodeUDP(buf, testMeta, 1024, StandardMTU)
	frame := buf[:n]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeUDP(frame); err != nil {
			b.Fatal(err)
		}
	}
}
