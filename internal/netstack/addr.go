// Package netstack is INSANE's minimal userspace network protocol stack:
// the "packet processing engine" of §5.3. Kernel-bypassing datapaths (DPDK,
// XDP) hand raw Ethernet frames to and from the NIC, so the middleware must
// build and parse Ethernet/IPv4/UDP headers itself; kernel-based UDP and
// RDMA skip this engine (the kernel or the NIC does the work).
//
// The stack is deliberately minimal (the paper: "INSANE defines a custom and
// minimal network stack that can introduce only ns-scale overhead on packet
// processing"): no IP fragmentation (jumbo frames are used instead, §8),
// no reassembly, no retransmission — INSANE is best-effort by design (§5.2).
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in the canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IPv4 is a 32-bit IPv4 address.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address in host integer form (big-endian semantics).
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromUint32 builds an address from its integer form.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// Endpoint is an IPv4 address/UDP port pair.
type Endpoint struct {
	IP   IPv4
	Port uint16
}

// String renders the endpoint as ip:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Resolver maps IPv4 addresses to MAC addresses. On a real deployment this
// is ARP; the reproduction uses a static table populated from the fabric
// topology, which matches how DPDK test rigs are usually configured.
type Resolver struct {
	table map[IPv4]MAC
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver { return &Resolver{table: make(map[IPv4]MAC)} }

// Add records a static IP→MAC binding.
func (r *Resolver) Add(ip IPv4, mac MAC) { r.table[ip] = mac }

// ErrNoMACBinding is returned by Resolve for an address with no static
// binding. A static sentinel: the datapath resolves per packet, and an
// unroutable destination must not drive per-packet error formatting.
var ErrNoMACBinding = errors.New("netstack: no MAC binding")

// Resolve looks up the MAC for ip.
//
//insane:hotpath
func (r *Resolver) Resolve(ip IPv4) (MAC, error) {
	mac, ok := r.table[ip]
	if !ok {
		return MAC{}, ErrNoMACBinding
	}
	return mac, nil
}
