package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMPMCInvalidCapacity(t *testing.T) {
	if _, err := NewMPMC[int](0); err == nil {
		t.Error("NewMPMC(0): want error, got nil")
	}
}

func TestMPMCPushPopOrderSingleThread(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed", i)
		}
	}
	if q.TryPush(99) {
		t.Error("TryPush succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop succeeded on empty ring")
	}
}

func TestMPMCWrapAround(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for lap := 0; lap < 1000; lap++ {
		if !q.TryPush(lap) {
			t.Fatalf("lap %d: push failed", lap)
		}
		v, ok := q.TryPop()
		if !ok || v != lap {
			t.Fatalf("lap %d: pop = %d,%v", lap, v, ok)
		}
	}
}

// TestMPMCConcurrentExactlyOnce runs multiple producers and consumers and
// verifies no element is lost or duplicated.
func TestMPMCConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2_000
	)
	q, err := NewMPMC[int](256)
	if err != nil {
		t.Fatal(err)
	}
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]int, producers*perProd)
	var consWG sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			local := make(map[int]int)
			for {
				v, ok := q.TryPop()
				if ok {
					local[v]++
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					// Final drain after producers stop.
					for {
						v, ok := q.TryPop()
						if !ok {
							break
						}
						local[v]++
					}
					mu.Lock()
					for k, n := range local {
						seen[k] += n
					}
					mu.Unlock()
					return
				default:
				}
			}
		}()
	}
	prodWG.Wait()
	close(done)
	consWG.Wait()

	if len(seen) != producers*perProd {
		t.Fatalf("saw %d distinct values, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times", k, n)
		}
	}
}

// TestMPMCPerProducerOrder: with concurrent consumers, values from a single
// producer must still be observed in that producer's push order.
func TestMPMCPerProducerOrder(t *testing.T) {
	const perProd = 2_000
	q, err := NewMPMC[[2]int](128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !q.TryPush([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	lastSeen := map[int]int{0: -1, 1: -1}
	got := 0
	for got < 2*perProd {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		p, i := v[0], v[1]
		if i <= lastSeen[p] {
			t.Fatalf("producer %d: value %d after %d", p, i, lastSeen[p])
		}
		lastSeen[p] = i
		got++
	}
	wg.Wait()
}

func TestMPMCQuickFIFO(t *testing.T) {
	prop := func(vals []uint16) bool {
		q, err := NewMPMC[uint16](32)
		if err != nil {
			return false
		}
		pushed := 0
		for _, v := range vals {
			if !q.TryPush(v) {
				break
			}
			pushed++
		}
		for i := 0; i < pushed; i++ {
			v, ok := q.TryPop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := q.TryPop()
		return !ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMPMCPushPop(b *testing.B) {
	q, _ := NewMPMC[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(uint64(i))
		q.TryPop()
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	q, _ := NewMPMC[uint64](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}
