package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMPMCInvalidCapacity(t *testing.T) {
	if _, err := NewMPMC[int](0); err == nil {
		t.Error("NewMPMC(0): want error, got nil")
	}
}

// TestMPMCCapacityOnePromoted: a capacity-1 request is promoted to 2
// cells. With a single cell, Vyukov's seq encoding cannot tell "free for
// position p+1" from "published at position p", so a push into a full
// ring would overwrite the unconsumed element and wedge TryPop forever.
func TestMPMCCapacityOnePromoted(t *testing.T) {
	q, err := NewMPMC[int](1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", q.Cap())
	}
	// Fill, overflow, and drain repeatedly: every accepted element must
	// come back out, and a full ring must reject pushes rather than
	// corrupt itself.
	for lap := 0; lap < 4; lap++ {
		if !q.TryPush(10*lap) || !q.TryPush(10*lap+1) {
			t.Fatalf("lap %d: push into empty ring failed", lap)
		}
		if q.TryPush(99) || q.PushBatch([]int{99}) != 0 {
			t.Fatalf("lap %d: push into full ring succeeded", lap)
		}
		for i := 0; i < 2; i++ {
			v, ok := q.TryPop()
			if !ok || v != 10*lap+i {
				t.Fatalf("lap %d: TryPop = %d,%v want %d,true", lap, v, ok, 10*lap+i)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Fatalf("lap %d: TryPop succeeded on empty ring", lap)
		}
	}
}

func TestMPMCPushPopOrderSingleThread(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed", i)
		}
	}
	if q.TryPush(99) {
		t.Error("TryPush succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop succeeded on empty ring")
	}
}

func TestMPMCWrapAround(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for lap := 0; lap < 1000; lap++ {
		if !q.TryPush(lap) {
			t.Fatalf("lap %d: push failed", lap)
		}
		v, ok := q.TryPop()
		if !ok || v != lap {
			t.Fatalf("lap %d: pop = %d,%v", lap, v, ok)
		}
	}
}

// TestMPMCConcurrentExactlyOnce runs multiple producers and consumers and
// verifies no element is lost or duplicated.
func TestMPMCConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2_000
	)
	q, err := NewMPMC[int](256)
	if err != nil {
		t.Fatal(err)
	}
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]int, producers*perProd)
	var consWG sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			local := make(map[int]int)
			for {
				v, ok := q.TryPop()
				if ok {
					local[v]++
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					// Final drain after producers stop.
					for {
						v, ok := q.TryPop()
						if !ok {
							break
						}
						local[v]++
					}
					mu.Lock()
					for k, n := range local {
						seen[k] += n
					}
					mu.Unlock()
					return
				default:
				}
			}
		}()
	}
	prodWG.Wait()
	close(done)
	consWG.Wait()

	if len(seen) != producers*perProd {
		t.Fatalf("saw %d distinct values, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times", k, n)
		}
	}
}

// TestMPMCPerProducerOrder: with concurrent consumers, values from a single
// producer must still be observed in that producer's push order.
func TestMPMCPerProducerOrder(t *testing.T) {
	const perProd = 2_000
	q, err := NewMPMC[[2]int](128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !q.TryPush([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	lastSeen := map[int]int{0: -1, 1: -1}
	got := 0
	for got < 2*perProd {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		p, i := v[0], v[1]
		if i <= lastSeen[p] {
			t.Fatalf("producer %d: value %d after %d", p, i, lastSeen[p])
		}
		lastSeen[p] = i
		got++
	}
	wg.Wait()
}

func TestMPMCQuickFIFO(t *testing.T) {
	prop := func(vals []uint16) bool {
		q, err := NewMPMC[uint16](32)
		if err != nil {
			return false
		}
		pushed := 0
		for _, v := range vals {
			if !q.TryPush(v) {
				break
			}
			pushed++
		}
		for i := 0; i < pushed; i++ {
			v, ok := q.TryPop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := q.TryPop()
		return !ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMPMCBatchEmptyAndFull(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 8)
	if n := q.PopBatch(dst); n != 0 {
		t.Fatalf("PopBatch on empty ring = %d, want 0", n)
	}
	if n := q.PopBatch(nil); n != 0 {
		t.Fatalf("PopBatch(nil) = %d, want 0", n)
	}
	if n := q.PushBatch([]int{1, 2, 3, 4, 5, 6}); n != 4 {
		t.Fatalf("PushBatch into empty ring of 4 = %d, want 4", n)
	}
	if n := q.PushBatch([]int{7}); n != 0 {
		t.Fatalf("PushBatch into full ring = %d, want 0", n)
	}
	if n := q.PushBatch(nil); n != 0 {
		t.Fatalf("PushBatch(nil) = %d, want 0", n)
	}
	n := q.PopBatch(dst)
	if n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range dst[:n] {
		if v != i+1 {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestMPMCBatchPartial: a batch pop takes only what is published, and a
// batch push only what fits.
func TestMPMCBatchPartial(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if n := q.PushBatch([]int{10, 11, 12}); n != 3 {
		t.Fatalf("PushBatch = %d, want 3", n)
	}
	dst := make([]int, 8)
	if n := q.PopBatch(dst[:2]); n != 2 || dst[0] != 10 || dst[1] != 11 {
		t.Fatalf("PopBatch(2) = %d (%v), want 2 (10 11)", n, dst[:2])
	}
	// 1 element left, 7 free: an oversized push is truncated to the room.
	big := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if n := q.PushBatch(big); n != 7 {
		t.Fatalf("PushBatch(10) with 7 free = %d, want 7", n)
	}
	want := []int{12, 0, 1, 2, 3, 4, 5, 6}
	if n := q.PopBatch(dst); n != 8 {
		t.Fatalf("PopBatch = %d, want 8", n)
	}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], w)
		}
	}
}

// TestMPMCBatchWrapAround pushes/pops batches across the index wrap many
// laps, interleaved with the single-element operations.
func TestMPMCBatchWrapAround(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]int, 5)
	dst := make([]int, 5)
	next := 0 // next value to pop, verifying global FIFO order
	seq := 0
	for lap := 0; lap < 2000; lap++ {
		for i := range src {
			src[i] = seq
			seq++
		}
		if n := q.PushBatch(src); n != 5 {
			t.Fatalf("lap %d: PushBatch = %d, want 5", lap, n)
		}
		if lap%3 == 0 { // mix in the single-element path
			v, ok := q.TryPop()
			if !ok || v != next {
				t.Fatalf("lap %d: TryPop = %d,%v want %d", lap, v, ok, next)
			}
			next++
		}
		for q.Len() > 3 {
			n := q.PopBatch(dst)
			if n == 0 {
				t.Fatalf("lap %d: PopBatch returned 0 with %d queued", lap, q.Len())
			}
			for _, v := range dst[:n] {
				if v != next {
					t.Fatalf("lap %d: popped %d, want %d", lap, v, next)
				}
				next++
			}
		}
	}
}

// TestMPMCBatchConcurrentExactlyOnce round-trips every token exactly once
// through concurrent batch producers and batch consumers (run under
// -race in CI).
func TestMPMCBatchConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5_000
		batchMax  = 16
	)
	q, err := NewMPMC[int](128)
	if err != nil {
		t.Fatal(err)
	}
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			buf := make([]int, 0, batchMax)
			sent := 0
			for sent < perProd {
				buf = buf[:0]
				for i := 0; i < batchMax && sent+len(buf) < perProd; i++ {
					buf = append(buf, p*perProd+sent+len(buf))
				}
				rest := buf
				for len(rest) > 0 {
					n := q.PushBatch(rest)
					rest = rest[n:]
					if n == 0 {
						runtime.Gosched()
					}
				}
				sent += len(buf)
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]int, producers*perProd)
	var consWG sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			local := make(map[int]int)
			dst := make([]int, batchMax)
			drain := func() {
				for {
					n := q.PopBatch(dst)
					if n == 0 {
						return
					}
					for _, v := range dst[:n] {
						local[v]++
					}
				}
			}
			for {
				if n := q.PopBatch(dst); n > 0 {
					for _, v := range dst[:n] {
						local[v]++
					}
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					drain()
					mu.Lock()
					for k, n := range local {
						seen[k] += n
					}
					mu.Unlock()
					return
				default:
				}
			}
		}()
	}
	prodWG.Wait()
	close(done)
	consWG.Wait()

	if len(seen) != producers*perProd {
		t.Fatalf("saw %d distinct values, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times", k, n)
		}
	}
}

// TestMPMCBatchMixedWithSingle: batch producers against single-element
// consumers (and vice versa) must still deliver exactly once.
func TestMPMCBatchMixedWithSingle(t *testing.T) {
	const total = 20_000
	q, err := NewMPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]int, 7)
		v := 0
		for v < total {
			n := 0
			for n < len(buf) && v+n < total {
				buf[n] = v + n
				n++
			}
			rest := buf[:n]
			for len(rest) > 0 {
				k := q.PushBatch(rest)
				rest = rest[k:]
				if k == 0 {
					runtime.Gosched()
				}
			}
			v += n
		}
	}()
	seen := make([]bool, total)
	got := 0
	for got < total {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v < 0 || v >= total || seen[v] {
			t.Fatalf("bad or duplicate value %d", v)
		}
		seen[v] = true
		got++
	}
}

func BenchmarkMPMCPushPop(b *testing.B) {
	q, _ := NewMPMC[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(uint64(i))
		q.TryPop()
	}
}

func BenchmarkMPMCBatch16(b *testing.B) {
	q, _ := NewMPMC[uint64](1024)
	src := make([]uint64, 16)
	dst := make([]uint64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.PushBatch(src)
		q.PopBatch(dst)
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	q, _ := NewMPMC[uint64](1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}
