// Package ringbuf implements the bounded lock-free rings that carry tokens
// between the INSANE client library and the runtime, mirroring the
// shared-memory queues of the paper's prototype (§5.3: "state-of-the-art
// lock-free queues" in the style of the DPDK ring library and BBQ).
//
// Two variants are provided:
//
//   - SPSC: a single-producer/single-consumer ring used where the runtime
//     can prove each end is owned by exactly one goroutine — notably the
//     per-(session,technology) TX lanes elected single-producer
//     (internal/core's txLane) — and cheaper than the MPMC by two CAS
//     loops per transfer.
//   - MPMC: a Vyukov-style bounded multi-producer/multi-consumer ring used
//     wherever ownership cannot be pinned: multi-source TX lanes, sink RX
//     rings (fed by pollers and run-to-completion emitters alike), and the
//     memory manager's free-slot list.
//
// Both are fixed capacity (a power of two), never allocate after
// construction, and never block: full/empty conditions are reported to the
// caller, which decides whether to retry, back off, or drop.
package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// cacheLinePad separates hot atomics to avoid false sharing between the
// producer and consumer cache lines.
type cacheLinePad [64]byte

// SPSC is a bounded single-producer/single-consumer lock-free ring.
// Exactly one goroutine may call Push/TryPush and exactly one may call
// Pop/TryPop; under that contract all operations are wait-free.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next slot to pop (owned by consumer)
	_    cacheLinePad
	tail atomic.Uint64 // next slot to push (owned by producer)
	_    cacheLinePad
}

// NewSPSC returns an SPSC ring holding up to capacity elements.
// Capacity is rounded up to the next power of two and must be at least 1.
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	n, err := ceilPow2(capacity)
	if err != nil {
		return nil, fmt.Errorf("ringbuf: %w", err)
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}, nil
}

// TryPush appends v and reports whether there was room.
//
//insane:hotpath
func (r *SPSC[T]) TryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false // full
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// TryPop removes and returns the oldest element, if any.
//
//insane:hotpath
func (r *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false // empty
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references for GC
	r.head.Store(head + 1)
	return v, true
}

// PushBatch appends up to len(src) elements and returns how many were
// accepted. The single producer owns the tail, so the whole batch costs
// one atomic load of head and one store of tail — the SPSC analogue of
// the MPMC PushBatch run-claim, without the CAS (the paper's
// opportunistic batching, §6.2). Elements become visible to the consumer
// only at the final tail store, in order.
//
//insane:hotpath
func (r *SPSC[T]) PushBatch(src []T) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(src))
	if free < n {
		n = free
	}
	//insane:bounded by=n <= len(src), the caller's batch buffer
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = src[i]
	}
	if n > 0 {
		r.tail.Store(tail + n)
	}
	return int(n)
}

// PopBatch pops up to len(dst) elements into dst and returns the count.
// Batched draining is what lets the runtime's polling threads amortize
// per-wakeup costs (the paper's opportunistic batching, §6.2).
//
//insane:hotpath
func (r *SPSC[T]) PopBatch(dst []T) int {
	var zero T
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(dst))
	if avail < n {
		n = avail
	}
	//insane:bounded by=n <= len(dst), the caller's batch buffer
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	return int(n)
}

// Len returns the number of buffered elements. The result is a snapshot and
// may be stale by the time it is observed.
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Empty reports whether the ring appeared empty at the time of the call.
func (r *SPSC[T]) Empty() bool { return r.Len() == 0 }

// ceilPow2 rounds n up to a power of two, validating the range.
func ceilPow2(n int) (uint64, error) {
	if n < 1 {
		return 0, fmt.Errorf("capacity %d must be >= 1", n)
	}
	if n > 1<<30 {
		return 0, fmt.Errorf("capacity %d too large", n)
	}
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return p, nil
}
