package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSCInvalidCapacity(t *testing.T) {
	for _, c := range []int{0, -1, 1 << 31} {
		if _, err := NewSPSC[int](c); err == nil {
			t.Errorf("NewSPSC(%d): want error, got nil", c)
		}
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	}
	for _, c := range cases {
		r, err := NewSPSC[int](c.in)
		if err != nil {
			t.Fatalf("NewSPSC(%d): %v", c.in, err)
		}
		if r.Cap() != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, r.Cap(), c.want)
		}
	}
}

func TestSPSCPushPopOrder(t *testing.T) {
	r, err := NewSPSC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Error("TryPush succeeded on full ring")
	}
	if got := r.Len(); got != 8 {
		t.Errorf("Len() = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Error("TryPop succeeded on empty ring")
	}
	if !r.Empty() {
		t.Error("Empty() = false on drained ring")
	}
}

func TestSPSCWrapAround(t *testing.T) {
	r, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle many laps to exercise index wrapping.
	next := 0
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("lap %d: pop = %d,%v want %d,true", lap, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestSPSCPopBatch(t *testing.T) {
	r, err := NewSPSC[int](16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.TryPush(i)
	}
	dst := make([]int, 4)
	if n := r.PopBatch(dst); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range dst {
		if v != i {
			t.Errorf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	big := make([]int, 32)
	if n := r.PopBatch(big); n != 6 {
		t.Fatalf("PopBatch on remainder = %d, want 6", n)
	}
	for i := 0; i < 6; i++ {
		if big[i] != 4+i {
			t.Errorf("big[%d] = %d, want %d", i, big[i], 4+i)
		}
	}
	if n := r.PopBatch(big); n != 0 {
		t.Errorf("PopBatch on empty = %d, want 0", n)
	}
}

func TestSPSCZeroesPoppedSlots(t *testing.T) {
	r, err := NewSPSC[*int](2)
	if err != nil {
		t.Fatal(err)
	}
	v := 7
	r.TryPush(&v)
	r.TryPop()
	// Internal buffer slot must be nil so the pointer is collectable.
	if r.buf[0] != nil {
		t.Error("popped slot still references the element")
	}
}

// TestSPSCConcurrent drives one producer against one consumer and asserts
// that every element arrives exactly once and in order.
func TestSPSCConcurrent(t *testing.T) {
	const total = 50_000
	r, err := NewSPSC[int](128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := 0; want < total; {
		if v, ok := r.TryPop(); ok {
			if v != want {
				t.Fatalf("out of order: got %d, want %d", v, want)
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if !r.Empty() {
		t.Error("ring not empty after drain")
	}
}

// TestSPSCQuickFIFO property: any sequence of pushes followed by pops
// returns the pushed prefix in order.
func TestSPSCQuickFIFO(t *testing.T) {
	prop := func(vals []uint32) bool {
		r, err := NewSPSC[uint32](64)
		if err != nil {
			return false
		}
		pushed := 0
		for _, v := range vals {
			if !r.TryPush(v) {
				break
			}
			pushed++
		}
		for i := 0; i < pushed; i++ {
			v, ok := r.TryPop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := r.TryPop()
		return !ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	r, _ := NewSPSC[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(uint64(i))
		r.TryPop()
	}
}
