package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSCInvalidCapacity(t *testing.T) {
	for _, c := range []int{0, -1, 1 << 31} {
		if _, err := NewSPSC[int](c); err == nil {
			t.Errorf("NewSPSC(%d): want error, got nil", c)
		}
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	}
	for _, c := range cases {
		r, err := NewSPSC[int](c.in)
		if err != nil {
			t.Fatalf("NewSPSC(%d): %v", c.in, err)
		}
		if r.Cap() != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, r.Cap(), c.want)
		}
	}
}

func TestSPSCPushPopOrder(t *testing.T) {
	r, err := NewSPSC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Error("TryPush succeeded on full ring")
	}
	if got := r.Len(); got != 8 {
		t.Errorf("Len() = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Error("TryPop succeeded on empty ring")
	}
	if !r.Empty() {
		t.Error("Empty() = false on drained ring")
	}
}

func TestSPSCWrapAround(t *testing.T) {
	r, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle many laps to exercise index wrapping.
	next := 0
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("lap %d: pop = %d,%v want %d,true", lap, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestSPSCPopBatch(t *testing.T) {
	r, err := NewSPSC[int](16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.TryPush(i)
	}
	dst := make([]int, 4)
	if n := r.PopBatch(dst); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range dst {
		if v != i {
			t.Errorf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	big := make([]int, 32)
	if n := r.PopBatch(big); n != 6 {
		t.Fatalf("PopBatch on remainder = %d, want 6", n)
	}
	for i := 0; i < 6; i++ {
		if big[i] != 4+i {
			t.Errorf("big[%d] = %d, want %d", i, big[i], 4+i)
		}
	}
	if n := r.PopBatch(big); n != 0 {
		t.Errorf("PopBatch on empty = %d, want 0", n)
	}
}

func TestSPSCPushBatch(t *testing.T) {
	r, err := NewSPSC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	src := []int{0, 1, 2, 3, 4}
	if n := r.PushBatch(src); n != 5 {
		t.Fatalf("PushBatch = %d, want 5", n)
	}
	// Only 3 slots left: a 5-element batch is truncated.
	if n := r.PushBatch([]int{5, 6, 7, 8, 9}); n != 3 {
		t.Fatalf("PushBatch on near-full ring = %d, want 3", n)
	}
	if n := r.PushBatch(src); n != 0 {
		t.Fatalf("PushBatch on full ring = %d, want 0", n)
	}
	if n := r.PushBatch(nil); n != 0 {
		t.Fatalf("PushBatch(nil) = %d, want 0", n)
	}
	for want := 0; want < 8; want++ {
		v, ok := r.TryPop()
		if !ok || v != want {
			t.Fatalf("TryPop = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestSPSCPushBatchWrapAround(t *testing.T) {
	r, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	dst := make([]int, 3)
	for lap := 0; lap < 100; lap++ {
		if n := r.PushBatch([]int{next, next + 1, next + 2}); n != 3 {
			t.Fatalf("lap %d: PushBatch = %d, want 3", lap, n)
		}
		if n := r.PopBatch(dst); n != 3 {
			t.Fatalf("lap %d: PopBatch = %d, want 3", lap, n)
		}
		for i, v := range dst {
			if v != next+i {
				t.Fatalf("lap %d: dst[%d] = %d, want %d", lap, i, v, next+i)
			}
		}
		next += 3
	}
}

// TestSPSCPushBatchConcurrent drives a batch producer against a batch
// consumer and asserts exactly-once in-order delivery (run it under
// -race to check the publication ordering of the tail store).
func TestSPSCPushBatchConcurrent(t *testing.T) {
	const total = 50_000
	r, err := NewSPSC[int](128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := make([]int, 7)
		for i := 0; i < total; {
			n := len(src)
			if total-i < n {
				n = total - i
			}
			for j := 0; j < n; j++ {
				src[j] = i + j
			}
			pushed := r.PushBatch(src[:n])
			if pushed == 0 {
				runtime.Gosched()
			}
			i += pushed
		}
	}()
	dst := make([]int, 13)
	for want := 0; want < total; {
		n := r.PopBatch(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for j := 0; j < n; j++ {
			if dst[j] != want {
				t.Fatalf("out of order: got %d, want %d", dst[j], want)
			}
			want++
		}
	}
	wg.Wait()
	if !r.Empty() {
		t.Error("ring not empty after drain")
	}
}

// TestBatchSemanticsSPSCvsMPMC cross-checks the two rings under a single
// producer: the same interleaving of PushBatch/PopBatch calls must accept
// the same counts and deliver the same element order, so a txLane elected
// SPSC behaves exactly like the MPMC lane it replaces.
func TestBatchSemanticsSPSCvsMPMC(t *testing.T) {
	prop := func(ops []uint8, vals []uint32) bool {
		s, err := NewSPSC[uint32](16)
		if err != nil {
			return false
		}
		m, err := NewMPMC[uint32](16)
		if err != nil {
			return false
		}
		next := 0
		dstS := make([]uint32, 8)
		dstM := make([]uint32, 8)
		for _, op := range ops {
			if op%2 == 0 {
				// Push a batch of 1-4 values.
				n := int(op/2)%4 + 1
				if next+n > len(vals) {
					n = len(vals) - next
				}
				if n <= 0 {
					continue
				}
				batch := vals[next : next+n]
				next += n
				ns, nm := s.PushBatch(batch), m.PushBatch(batch)
				if ns != nm {
					t.Logf("PushBatch accepted %d (SPSC) vs %d (MPMC)", ns, nm)
					return false
				}
				// Re-queue what one of them rejected for the next round.
				next -= n - ns
			} else {
				n := int(op/2)%8 + 1
				ns, nm := s.PopBatch(dstS[:n]), m.PopBatch(dstM[:n])
				if ns != nm {
					t.Logf("PopBatch returned %d (SPSC) vs %d (MPMC)", ns, nm)
					return false
				}
				for i := 0; i < ns; i++ {
					if dstS[i] != dstM[i] {
						t.Logf("element %d: %d (SPSC) vs %d (MPMC)", i, dstS[i], dstM[i])
						return false
					}
				}
			}
		}
		if s.Len() != m.Len() {
			t.Logf("Len %d (SPSC) vs %d (MPMC)", s.Len(), m.Len())
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSPSCZeroesPoppedSlots(t *testing.T) {
	r, err := NewSPSC[*int](2)
	if err != nil {
		t.Fatal(err)
	}
	v := 7
	r.TryPush(&v)
	r.TryPop()
	// Internal buffer slot must be nil so the pointer is collectable.
	if r.buf[0] != nil {
		t.Error("popped slot still references the element")
	}
}

// TestSPSCConcurrent drives one producer against one consumer and asserts
// that every element arrives exactly once and in order.
func TestSPSCConcurrent(t *testing.T) {
	const total = 50_000
	r, err := NewSPSC[int](128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := 0; want < total; {
		if v, ok := r.TryPop(); ok {
			if v != want {
				t.Fatalf("out of order: got %d, want %d", v, want)
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if !r.Empty() {
		t.Error("ring not empty after drain")
	}
}

// TestSPSCQuickFIFO property: any sequence of pushes followed by pops
// returns the pushed prefix in order.
func TestSPSCQuickFIFO(t *testing.T) {
	prop := func(vals []uint32) bool {
		r, err := NewSPSC[uint32](64)
		if err != nil {
			return false
		}
		pushed := 0
		for _, v := range vals {
			if !r.TryPush(v) {
				break
			}
			pushed++
		}
		for i := 0; i < pushed; i++ {
			v, ok := r.TryPop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := r.TryPop()
		return !ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	r, _ := NewSPSC[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(uint64(i))
		r.TryPop()
	}
}
