package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// mpmcCell is one slot of the MPMC ring. seq encodes the slot state:
// producers may write when seq == position, consumers may read when
// seq == position+1 (Vyukov's bounded MPMC algorithm).
type mpmcCell[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer/multi-consumer lock-free ring.
// Any number of goroutines may push and pop concurrently.
type MPMC[T any] struct {
	cells []mpmcCell[T]
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // next position to pop
	_    cacheLinePad
	tail atomic.Uint64 // next position to push
	_    cacheLinePad
}

// NewMPMC returns an MPMC ring holding up to capacity elements.
// Capacity is rounded up to the next power of two and must be at least 1.
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	n, err := ceilPow2(capacity)
	if err != nil {
		return nil, fmt.Errorf("ringbuf: %w", err)
	}
	q := &MPMC[T]{cells: make([]mpmcCell[T], n), mask: n - 1}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q, nil
}

// TryPush appends v and reports whether there was room.
func (q *MPMC[T]) TryPush(v T) bool {
	pos := q.tail.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			// Slot free at this position: claim it.
			if q.tail.CompareAndSwap(pos, pos+1) {
				cell.val = v
				cell.seq.Store(pos + 1) // publish
				return true
			}
			pos = q.tail.Load()
		case seq < pos:
			// The slot one lap behind has not been consumed: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = q.tail.Load()
		}
	}
}

// TryPop removes and returns the oldest element, if any.
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.head.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1:
			// Published at this position: claim it.
			if q.head.CompareAndSwap(pos, pos+1) {
				v := cell.val
				cell.val = zero
				cell.seq.Store(pos + q.mask + 1) // free for next lap
				return v, true
			}
			pos = q.head.Load()
		case seq <= pos:
			// Not yet published: empty.
			return zero, false
		default:
			// Another consumer claimed pos; reload and retry.
			pos = q.head.Load()
		}
	}
}

// Len returns a snapshot of the number of buffered elements.
func (q *MPMC[T]) Len() int {
	d := int64(q.tail.Load()) - int64(q.head.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(q.cells)) {
		d = int64(len(q.cells))
	}
	return int(d)
}

// Cap returns the ring capacity.
func (q *MPMC[T]) Cap() int { return len(q.cells) }
