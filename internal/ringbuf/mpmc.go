package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// mpmcCell is one slot of the MPMC ring. seq encodes the slot state:
// producers may write when seq == position, consumers may read when
// seq == position+1 (Vyukov's bounded MPMC algorithm).
type mpmcCell[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer/multi-consumer lock-free ring.
// Any number of goroutines may push and pop concurrently.
type MPMC[T any] struct {
	cells []mpmcCell[T]
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // next position to pop
	_    cacheLinePad
	tail atomic.Uint64 // next position to push
	_    cacheLinePad
}

// NewMPMC returns an MPMC ring holding up to capacity elements.
// Capacity is rounded up to the next power of two and must be at least 1;
// a capacity of 1 is silently promoted to 2 because Vyukov's sequence
// encoding cannot distinguish "free for position p+1" from "published at
// position p" when both map to the same cell one lap apart (a push into
// a full 1-cell ring would overwrite the unconsumed element and wedge
// the consumer).
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	if capacity == 1 {
		capacity = 2
	}
	n, err := ceilPow2(capacity)
	if err != nil {
		return nil, fmt.Errorf("ringbuf: %w", err)
	}
	q := &MPMC[T]{cells: make([]mpmcCell[T], n), mask: n - 1}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q, nil
}

// TryPush appends v and reports whether there was room.
//
//insane:hotpath
func (q *MPMC[T]) TryPush(v T) bool {
	pos := q.tail.Load()
	//insane:bounded by=lock-free CAS retry: a failed claim means another producer made progress
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			// Slot free at this position: claim it.
			if q.tail.CompareAndSwap(pos, pos+1) {
				cell.val = v
				cell.seq.Store(pos + 1) // publish
				return true
			}
			pos = q.tail.Load()
		case seq < pos:
			// The slot one lap behind has not been consumed: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = q.tail.Load()
		}
	}
}

// TryPop removes and returns the oldest element, if any.
//
//insane:hotpath
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.head.Load()
	//insane:bounded by=lock-free CAS retry: a failed claim means another consumer made progress
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1:
			// Published at this position: claim it.
			if q.head.CompareAndSwap(pos, pos+1) {
				v := cell.val
				cell.val = zero
				cell.seq.Store(pos + q.mask + 1) // free for next lap
				return v, true
			}
			pos = q.head.Load()
		case seq <= pos:
			// Not yet published: empty.
			return zero, false
		default:
			// Another consumer claimed pos; reload and retry.
			pos = q.head.Load()
		}
	}
}

// PushBatch appends up to len(src) elements and returns how many were
// accepted. The claim is sequence-aware: the producer first counts how
// many consecutive cells starting at the current tail are free (seq ==
// position), then claims the whole run with one CAS, so a burst costs
// one atomic RMW instead of one per element — the MPMC analogue of the
// SPSC PopBatch that the paper's opportunistic batching relies on
// (§6.2). Elements are published in order; concurrent consumers may
// start popping the front of the run before the tail is written.
//
//insane:hotpath
func (q *MPMC[T]) PushBatch(src []T) int {
	if len(src) == 0 {
		return 0
	}
	//insane:bounded by=lock-free CAS retry: a failed claim means another producer made progress
	for {
		pos := q.tail.Load()
		// Count the run of free cells at pos. Cell states only move
		// forward (free → published → free-next-lap), and no producer
		// can claim these positions before our tail CAS succeeds, so an
		// observed free cell stays free until we own it.
		n := uint64(0)
		//insane:bounded by=n <= len(src), the caller's batch buffer
		for n < uint64(len(src)) {
			cell := &q.cells[(pos+n)&q.mask]
			if cell.seq.Load() != pos+n {
				break
			}
			n++
		}
		if n == 0 {
			// Front cell not free: either full, or a racing producer
			// advanced tail between our loads — reload to distinguish.
			if q.tail.Load() == pos {
				return 0 // genuinely full
			}
			continue
		}
		if !q.tail.CompareAndSwap(pos, pos+n) {
			continue // lost the claim race; retry with fresh tail
		}
		//insane:bounded by=n <= len(src), the caller's batch buffer
		for i := uint64(0); i < n; i++ {
			cell := &q.cells[(pos+i)&q.mask]
			cell.val = src[i]
			cell.seq.Store(pos + i + 1) // publish
		}
		return int(n)
	}
}

// PopBatch removes up to len(dst) elements into dst and returns the
// count. Like PushBatch, it counts the run of published cells at the
// current head (seq == position+1), claims the run with one CAS, and
// only then reads the values: once the CAS succeeds no other consumer
// can touch those positions, and producers cannot reuse them until each
// cell's seq is bumped to the next lap.
//
//insane:hotpath
func (q *MPMC[T]) PopBatch(dst []T) int {
	var zero T
	if len(dst) == 0 {
		return 0
	}
	//insane:bounded by=lock-free CAS retry: a failed claim means another consumer made progress
	for {
		pos := q.head.Load()
		n := uint64(0)
		//insane:bounded by=n <= len(dst), the caller's batch buffer
		for n < uint64(len(dst)) {
			cell := &q.cells[(pos+n)&q.mask]
			if cell.seq.Load() != pos+n+1 {
				break
			}
			n++
		}
		if n == 0 {
			if q.head.Load() == pos {
				return 0 // genuinely empty
			}
			continue
		}
		if !q.head.CompareAndSwap(pos, pos+n) {
			continue
		}
		//insane:bounded by=n <= len(dst), the caller's batch buffer
		for i := uint64(0); i < n; i++ {
			cell := &q.cells[(pos+i)&q.mask]
			dst[i] = cell.val
			cell.val = zero
			cell.seq.Store(pos + i + q.mask + 1) // free for next lap
		}
		return int(n)
	}
}

// Len returns a snapshot of the number of buffered elements.
func (q *MPMC[T]) Len() int {
	d := int64(q.tail.Load()) - int64(q.head.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(q.cells)) {
		d = int64(len(q.cells))
	}
	return int(d)
}

// Cap returns the ring capacity.
func (q *MPMC[T]) Cap() int { return len(q.cells) }
