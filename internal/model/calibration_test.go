package model

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/timebase"
)

// within asserts got is within tol (fraction) of want.
func within(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tol*100)
	}
}

// TestCalibrationLocalRTT64B pins the model to the paper's Fig. 7a values
// (average RTT, 64 B payload, local testbed).
func TestCalibrationLocalRTT64B(t *testing.T) {
	cases := []struct {
		sys  System
		want time.Duration
		tol  float64
	}{
		{SysRawDPDK, 3440 * time.Nanosecond, 0.02},
		{SysCatnip, 4260 * time.Nanosecond, 0.02},
		{SysInsaneFast, 4950 * time.Nanosecond, 0.02},
		{SysUDPNonBlocking, 12580 * time.Nanosecond, 0.02},
		{SysUDPBlocking, 13340 * time.Nanosecond, 0.02},
		{SysCatnap, 13660 * time.Nanosecond, 0.02},
		{SysInsaneSlow, 13600 * time.Nanosecond, 0.03},
	}
	for _, c := range cases {
		got := Build(c.sys).RTT(64, Local)
		within(t, c.sys.String()+" local RTT", got, c.want, c.tol)
	}
}

// TestCalibrationPaperDeltas checks the overhead relations the paper
// states in prose: INSANE fast = Catnip + ~690 ns, Catnip = raw + ~820 ns,
// INSANE slow ≈ kernel UDP + ~1 µs RTT (500 ns per packet).
func TestCalibrationPaperDeltas(t *testing.T) {
	rtt := func(s System) time.Duration { return Build(s).RTT(64, Local) }
	within(t, "INSANE fast - Catnip", rtt(SysInsaneFast)-rtt(SysCatnip), 690*time.Nanosecond, 0.15)
	within(t, "Catnip - raw DPDK", rtt(SysCatnip)-rtt(SysRawDPDK), 820*time.Nanosecond, 0.05)
	within(t, "INSANE slow - kernel UDP", rtt(SysInsaneSlow)-rtt(SysUDPNonBlocking), 1000*time.Nanosecond, 0.15)
}

// TestCalibrationCloudRTT64B pins the cloud testbed (Fig. 7b): the switch
// adds 1.7 µs per traversal, the slower CPU inflates the kernel stack and
// the INSANE runtime disproportionately, Catnip keeps its gap to raw DPDK.
func TestCalibrationCloudRTT64B(t *testing.T) {
	cases := []struct {
		sys  System
		want time.Duration
		tol  float64
	}{
		{SysRawDPDK, 6550 * time.Nanosecond, 0.06},
		{SysInsaneFast, 10430 * time.Nanosecond, 0.05},
		{SysUDPNonBlocking, 21330 * time.Nanosecond, 0.08},
		{SysUDPBlocking, 23270 * time.Nanosecond, 0.05},
	}
	for _, c := range cases {
		got := Build(c.sys).RTT(64, Cloud)
		within(t, c.sys.String()+" cloud RTT", got, c.want, c.tol)
	}
	// Catnip preserves "almost the same gap" to raw DPDK in the cloud.
	gap := Build(SysCatnip).RTT(64, Cloud) - Build(SysRawDPDK).RTT(64, Cloud)
	within(t, "cloud Catnip gap", gap, 900*time.Nanosecond, 0.2)
	// INSANE slow ≈ Catnap + ~1.9 µs in the cloud (§6.2).
	slowGap := Build(SysInsaneSlow).RTT(64, Cloud) - Build(SysCatnap).RTT(64, Cloud)
	if slowGap < 1000*time.Nanosecond || slowGap > 2600*time.Nanosecond {
		t.Errorf("cloud INSANE slow - Catnap = %v, want ≈1.9µs", slowGap)
	}
}

// TestCalibrationLatencyFlatAcrossPayloads reproduces the Fig. 5
// observation that there is "no significant difference among different
// payload sizes" from 64 B to 1024 B.
func TestCalibrationLatencyFlatAcrossPayloads(t *testing.T) {
	for _, sys := range []System{SysRawDPDK, SysInsaneFast, SysInsaneSlow, SysUDPNonBlocking} {
		p := Build(sys)
		r64 := p.RTT(64, Local)
		r1024 := p.RTT(1024, Local)
		if growth := float64(r1024-r64) / float64(r64); growth > 0.15 {
			t.Errorf("%s: RTT grows %.0f%% from 64B to 1KB, want <15%%", sys, growth*100)
		}
	}
}

// TestCalibrationThroughput pins the Fig. 8a shape: raw DPDK saturates the
// NIC at 8 KB, INSANE fast peaks near 90 Gbps thanks to opportunistic
// batching, Catnip is markedly lower (one packet at a time), and the
// kernel-path systems (kernel UDP, Catnap, INSANE slow) cluster together
// far below.
func TestCalibrationThroughput(t *testing.T) {
	thr := func(sys System, payload int) float64 {
		return float64(Build(sys).Throughput(payload, Local)) / float64(timebase.Gbps)
	}

	if got := thr(SysRawDPDK, 8192); got < 95 {
		t.Errorf("raw DPDK @8KB = %.1f Gbps, want ≥95 (NIC saturation)", got)
	}
	if got := thr(SysInsaneFast, 8192); got < 80 || got > 95 {
		t.Errorf("INSANE fast @8KB = %.1f Gbps, want ≈90", got)
	}
	if got := thr(SysCatnip, 8192); got < 40 || got > 65 {
		t.Errorf("Catnip @8KB = %.1f Gbps, want ≈50 (no batching)", got)
	}
	if got := thr(SysInsaneFast, 1024); got < 23 || got > 29 {
		t.Errorf("INSANE fast @1KB = %.1f Gbps, want ≈26 (Fig 8b single sink)", got)
	}
	// Kernel-path systems cluster: all within 25% of each other, all <10.
	k := thr(SysUDPNonBlocking, 1024)
	for _, sys := range []System{SysCatnap, SysInsaneSlow} {
		got := thr(sys, 1024)
		if got > 10 || got < k*0.75 || got > k*1.25 {
			t.Errorf("%s @1KB = %.1f Gbps, want ≈ kernel UDP (%.1f)", sys, got, k)
		}
	}
	// Ordering at 8KB: raw > INSANE fast > Catnip > kernel-path.
	if !(thr(SysRawDPDK, 8192) > thr(SysInsaneFast, 8192) &&
		thr(SysInsaneFast, 8192) > thr(SysCatnip, 8192) &&
		thr(SysCatnip, 8192) > thr(SysUDPNonBlocking, 8192)) {
		t.Error("throughput ordering at 8KB violated")
	}
}

// TestCalibrationMultiSink pins Fig. 8b: per-sink throughput at 1 KB drops
// ~8% at 6 sinks and ~39% at 8 sinks.
func TestCalibrationMultiSink(t *testing.T) {
	base := MultiSinkPerSinkThroughput(SysInsaneFast, 1, 1024, Local)
	drop := func(n int) float64 {
		got := MultiSinkPerSinkThroughput(SysInsaneFast, n, 1024, Local)
		return 1 - float64(got)/float64(base)
	}
	if d := drop(6); d < 0.04 || d > 0.12 {
		t.Errorf("6-sink drop = %.0f%%, want ≈8%%", d*100)
	}
	if d := drop(8); d < 0.33 || d > 0.45 {
		t.Errorf("8-sink drop = %.0f%%, want ≈39%%", d*100)
	}
	// Monotone degradation.
	prev := base
	for n := 2; n <= 8; n++ {
		got := MultiSinkPerSinkThroughput(SysInsaneFast, n, 1024, Local)
		if got > prev {
			t.Errorf("per-sink throughput increased from %d to %d sinks", n-1, n)
		}
		prev = got
	}
}

// TestCalibrationTechOrdering checks the QoS-relevant ordering of §5.2:
// RDMA beats DPDK beats XDP beats kernel UDP on latency under INSANE.
func TestCalibrationTechOrdering(t *testing.T) {
	rtt := func(s System) time.Duration { return Build(s).RTT(64, Local) }
	if !(rtt(SysInsaneRDMA) < rtt(SysInsaneFast) &&
		rtt(SysInsaneFast) < rtt(SysInsaneXDP) &&
		rtt(SysInsaneXDP) < rtt(SysInsaneSlow)) {
		t.Errorf("tech ordering violated: rdma=%v dpdk=%v xdp=%v udp=%v",
			rtt(SysInsaneRDMA), rtt(SysInsaneFast), rtt(SysInsaneXDP), rtt(SysInsaneSlow))
	}
}

// TestBreakdownConsistency: the Fig. 6 stage breakdown must sum to the
// one-way latency, and the cloud network share must grow by the switch.
func TestBreakdownConsistency(t *testing.T) {
	for _, tb := range Testbeds() {
		p := Build(SysInsaneFast)
		bd := p.Breakdown(64, tb)
		var sum time.Duration
		for _, d := range bd {
			sum += d
		}
		if want := p.OneWayLatency(64, tb); sum != want {
			t.Errorf("%s: breakdown sum %v != one-way %v", tb.Name, sum, want)
		}
	}
	local := Build(SysInsaneFast).Breakdown(64, Local)
	cloud := Build(SysInsaneFast).Breakdown(64, Cloud)
	if cloud[CatNetwork]-local[CatNetwork] != 1700*time.Nanosecond {
		t.Errorf("cloud network delta = %v, want 1.7µs switch",
			cloud[CatNetwork]-local[CatNetwork])
	}
	// Send+receive stages also inflate on the slower cloud CPU (Fig. 6).
	if cloud[CatSend] <= local[CatSend] || cloud[CatRecv] <= local[CatRecv] {
		t.Error("cloud send/recv stages did not inflate")
	}
}

func TestTable1Matrix(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(rows))
	}
	if i := Info(TechRDMA); !i.DedicatedHW || i.CPU != CPUOffloaded || !i.ZeroCopy {
		t.Errorf("RDMA info wrong: %+v", i)
	}
	if i := Info(TechKernelUDP); i.ZeroCopy || i.DedicatedHW {
		t.Errorf("kernel info wrong: %+v", i)
	}
	if i := Info(TechDPDK); i.CPU != CPUBusyPoll || !i.NeedsUserStack {
		t.Errorf("dpdk info wrong: %+v", i)
	}
	if i := Info(TechXDP); i.KernelIntegration != "in-kernel" {
		t.Errorf("xdp info wrong: %+v", i)
	}
	if got := Info(Tech(99)); got.API != "" {
		t.Errorf("unknown tech info = %+v", got)
	}
}

func TestStringers(t *testing.T) {
	if TechDPDK.String() != "dpdk" || Tech(99).String() != "unknown" {
		t.Error("Tech.String wrong")
	}
	if CPUBusyPoll.String() != "busy polling" || CPUUsage(99).String() != "unknown" {
		t.Error("CPUUsage.String wrong")
	}
	if SysInsaneFast.String() != "INSANE fast" || System(99).String() != "unknown" {
		t.Error("System.String wrong")
	}
	if CatSend.String() != "send" || Category(99).String() != "unknown" {
		t.Error("Category.String wrong")
	}
}

func TestTestbedScale(t *testing.T) {
	d := 100 * time.Nanosecond
	if Cloud.Scale(ScaleNone, d) != d {
		t.Error("hardware costs must not scale")
	}
	if Cloud.Scale(ScaleKernel, d) != 160*time.Nanosecond {
		t.Errorf("kernel scale = %v", Cloud.Scale(ScaleKernel, d))
	}
	var zero Testbed
	if zero.Scale(ScaleRuntime, d) != d {
		t.Error("zero factors must behave as 1.0")
	}
}

func TestWireMath(t *testing.T) {
	// 1000-byte frame at 100 Gbps: (1000+24)*8/100e9 = 81.92 ns → 81ns.
	occ := Local.WireOccupancy(1000)
	if occ < 80*time.Nanosecond || occ > 82*time.Nanosecond {
		t.Errorf("occupancy = %v, want ≈81.9ns", occ)
	}
	lat := Cloud.WireLatency(1000)
	want := occ + Cloud.PropDelay + Cloud.SwitchLatency
	if lat != want {
		t.Errorf("cloud wire latency = %v, want %v", lat, want)
	}
}

func TestUnknownSystemPipeline(t *testing.T) {
	p := Build(System(99))
	if p.RTT(64, Local) != 0 || p.Throughput(64, Local) != 0 {
		t.Error("unknown system should have zero cost model")
	}
}
