package model

import (
	"time"

	"github.com/insane-mw/insane/internal/timebase"
)

// System identifies one of the end-to-end configurations the evaluation
// compares (Fig. 5, 7, 8).
type System int

// The benchmarked systems.
const (
	SysUDPBlocking    System = iota + 1 // UDP socket, blocking receive
	SysUDPNonBlocking                   // UDP socket, busy-polled non-blocking receive
	SysRawDPDK                          // native DPDK application
	SysCatnap                           // Demikernel over kernel sockets
	SysCatnip                           // Demikernel over DPDK
	SysInsaneSlow                       // INSANE, datapath QoS "slow" → kernel UDP
	SysInsaneFast                       // INSANE, datapath QoS "fast" → DPDK
	SysInsaneXDP                        // INSANE over XDP (extension, §3)
	SysInsaneRDMA                       // INSANE over RDMA (extension, §3)
)

// String names the system as in the paper's figure legends.
func (s System) String() string {
	switch s {
	case SysUDPBlocking:
		return "Blocking UDP Socket"
	case SysUDPNonBlocking:
		return "Non-Blocking UDP Socket"
	case SysRawDPDK:
		return "Raw DPDK"
	case SysCatnap:
		return "Catnap UDP"
	case SysCatnip:
		return "Catnip UDP"
	case SysInsaneSlow:
		return "INSANE slow"
	case SysInsaneFast:
		return "INSANE fast"
	case SysInsaneXDP:
		return "INSANE xdp"
	case SysInsaneRDMA:
		return "INSANE rdma"
	default:
		return "unknown"
	}
}

// Batching reports whether the system's sender amortizes per-burst costs.
// INSANE uses opportunistic batching and raw DPDK applications use burst
// TX/RX; Demikernel's Catnip "is optimized for latency and sends one packet
// per time on the network" (§6.2), and kernel sockets have no burst API.
func (s System) Batching() bool {
	switch s {
	case SysRawDPDK, SysInsaneSlow, SysInsaneFast, SysInsaneXDP, SysInsaneRDMA:
		return true
	default:
		return false
	}
}

// DefaultBurst is the burst size used by batching systems; it matches the
// DPDK conventional burst of 32 descriptors.
const DefaultBurst = 32

// MaxBurst caps any configured burst size. The runtime clamps
// Config.Burst against it, so every per-pass batch loop in the poller
// has a hard compile-time bound (the //insane:bounded waivers in
// internal/core cite this constant).
const MaxBurst = 512

// FrameOverhead is the Ethernet+IPv4+UDP encapsulation added to every
// payload (netstack.HeadersLen; duplicated here to keep model a leaf
// package).
const FrameOverhead = 42

// Stage is one pipeline resource (a CPU core, the NIC, or the wire) that
// every packet of a flow traverses in order.
type Stage struct {
	Name  string
	Comps []Component
	// Wire marks the link stage, whose cost comes from the testbed's
	// rate/propagation/switch parameters rather than from components.
	Wire bool
}

// Latency returns the stage's contribution to single-packet latency.
func (st Stage) Latency(payload int, tb Testbed) time.Duration {
	if st.Wire {
		return tb.WireLatency(payload + FrameOverhead)
	}
	var d time.Duration
	for _, c := range st.Comps {
		d += c.Latency(payload, tb)
	}
	return d
}

// Occupancy returns how long one packet occupies the stage's resource
// under the given burst size — the quantity that bounds pipelined
// throughput.
func (st Stage) Occupancy(payload, burst int, tb Testbed) time.Duration {
	if st.Wire {
		return tb.WireOccupancy(payload + FrameOverhead)
	}
	var d time.Duration
	for _, c := range st.Comps {
		d += c.Occupancy(payload, burst, tb)
	}
	return d
}

// Pipeline is the ordered list of stages a packet traverses one way,
// sender application through receiver application.
type Pipeline struct {
	Sys    System
	Stages []Stage
}

// Build composes the one-way pipeline of a system from the technology,
// runtime and library cost profiles.
func Build(sys System) Pipeline {
	rc := DefaultRuntimeCosts()
	switch sys {
	case SysUDPBlocking, SysUDPNonBlocking:
		tc := KernelUDP()
		rxApp := []Component{tc.RxPoll}
		if sys == SysUDPBlocking {
			rxApp = append(rxApp, Component{
				Name: "rx-wakeup", Category: CatRecv, Class: ScaleKernel,
				LatencyOnly: kernelBlockingWakeup,
			})
		}
		return Pipeline{Sys: sys, Stages: []Stage{
			{Name: "app-tx", Comps: []Component{tc.TxSyscall}},
			{Name: "kstack-tx", Comps: []Component{tc.TxStack}},
			{Name: "nic-tx", Comps: []Component{tc.NICTx}},
			{Name: "wire", Wire: true},
			{Name: "nic-rx", Comps: []Component{tc.NICRx}},
			{Name: "kstack-rx", Comps: []Component{tc.RxWait, tc.RxStack}},
			{Name: "app-rx", Comps: rxApp},
		}}

	case SysRawDPDK:
		tc := DPDK()
		return Pipeline{Sys: sys, Stages: []Stage{
			{Name: "app-tx", Comps: []Component{tc.TxDriver, tc.TxComplete}},
			{Name: "nic-tx", Comps: []Component{tc.NICTx}},
			{Name: "wire", Wire: true},
			{Name: "nic-rx", Comps: []Component{tc.NICRx}},
			{Name: "app-rx", Comps: []Component{tc.RxPoll}},
		}}

	case SysCatnap:
		base := Build(SysUDPNonBlocking)
		base.Sys = sys
		return appendAppLib(base, CatnapLib().PerSide)

	case SysCatnip:
		base := Build(SysRawDPDK)
		base.Sys = sys
		return appendAppLib(base, CatnipLib().PerSide)

	case SysInsaneSlow:
		tc := KernelUDP()
		return Pipeline{Sys: sys, Stages: []Stage{
			{Name: "client-tx", Comps: []Component{rc.IPCTx}},
			{Name: "runtime-tx", Comps: []Component{rc.Sched, tc.TxSyscall}},
			{Name: "kstack-tx", Comps: []Component{tc.TxStack}},
			{Name: "nic-tx", Comps: []Component{tc.NICTx}},
			{Name: "wire", Wire: true},
			{Name: "nic-rx", Comps: []Component{tc.NICRx}},
			{Name: "kstack-rx", Comps: []Component{tc.RxWait, tc.RxStack}},
			{Name: "runtime-rx", Comps: []Component{tc.RxPoll, rc.Deliver}},
		}}

	case SysInsaneFast:
		return insanePipeline(sys, DPDK(), rc)
	case SysInsaneXDP:
		return insanePipeline(sys, XDP(), rc)
	case SysInsaneRDMA:
		return insanePipeline(sys, RDMA(), rc)
	default:
		return Pipeline{Sys: sys}
	}
}

// insanePipeline builds the INSANE pipeline over a kernel-bypassing
// technology: client → runtime polling thread (scheduler + packet
// processing engine + driver) → NIC → wire → NIC → runtime polling thread
// (driver poll + engine + sink delivery).
func insanePipeline(sys System, tc TechCosts, rc RuntimeCosts) Pipeline {
	txComps := []Component{rc.Sched}
	rxComps := []Component{tc.RxWait, tc.RxStack, tc.RxPoll}
	if tc.NeedsUserStack() {
		txComps = append(txComps, rc.NetstackTx)
		rxComps = append(rxComps, rc.NetstackRx)
	}
	txComps = append(txComps, tc.TxSyscall, tc.TxStack, tc.TxDriver, tc.TxComplete)
	rxComps = append(rxComps,
		Component{Name: "rx-dma-touch", Category: CatRecv, Class: ScaleRuntime, PerByteNs: rc.RxDMATouchNs},
		rc.Deliver)
	return Pipeline{Sys: sys, Stages: []Stage{
		{Name: "client-tx", Comps: []Component{rc.IPCTx}},
		{Name: "runtime-tx", Comps: txComps},
		{Name: "nic-tx", Comps: []Component{tc.NICTx}},
		{Name: "wire", Wire: true},
		{Name: "nic-rx", Comps: []Component{tc.NICRx}},
		{Name: "runtime-rx", Comps: rxComps},
	}}
}

// appendAppLib adds a library-OS overhead component to the first and last
// (application) stages of a raw pipeline.
func appendAppLib(p Pipeline, lib Component) Pipeline {
	stages := make([]Stage, len(p.Stages))
	copy(stages, p.Stages)
	first := stages[0]
	first.Comps = append(append([]Component{}, first.Comps...), lib)
	stages[0] = first
	last := stages[len(stages)-1]
	last.Comps = append(append([]Component{}, last.Comps...), lib)
	stages[len(stages)-1] = last
	p.Stages = stages
	return p
}

// OneWayLatency returns the modeled one-way latency of a packet with the
// given payload size.
func (p Pipeline) OneWayLatency(payload int, tb Testbed) time.Duration {
	var d time.Duration
	for _, st := range p.Stages {
		d += st.Latency(payload, tb)
	}
	return d
}

// RTT returns the modeled ping-pong round-trip time (the echo path is
// symmetric, as in the paper's benchmark).
func (p Pipeline) RTT(payload int, tb Testbed) time.Duration {
	return 2 * p.OneWayLatency(payload, tb)
}

// Bottleneck returns the slowest stage occupancy, which bounds pipelined
// throughput.
func (p Pipeline) Bottleneck(payload, burst int, tb Testbed) time.Duration {
	var worst time.Duration
	for _, st := range p.Stages {
		if d := st.Occupancy(payload, burst, tb); d > worst {
			worst = d
		}
	}
	return worst
}

// Throughput returns the modeled sustained goodput for back-to-back
// messages of the given payload, using the system's batching behaviour.
func (p Pipeline) Throughput(payload int, tb Testbed) timebase.Rate {
	burst := 1
	if p.Sys.Batching() {
		burst = DefaultBurst
	}
	b := p.Bottleneck(payload, burst, tb)
	if b <= 0 {
		return 0
	}
	return timebase.Goodput(payload, b)
}

// Breakdown returns the one-way latency split by Fig. 6 category.
func (p Pipeline) Breakdown(payload int, tb Testbed) map[Category]time.Duration {
	out := make(map[Category]time.Duration, 4)
	for _, st := range p.Stages {
		if st.Wire {
			out[CatNetwork] += tb.WireLatency(payload + FrameOverhead)
			continue
		}
		for _, c := range st.Comps {
			out[c.Category] += c.Latency(payload, tb)
		}
	}
	return out
}

// MultiSinkPerSinkThroughput models Fig. 8b: the per-sink goodput when n
// separate applications subscribe to the same channel on one receiving
// runtime. All deliveries are performed by the single polling thread, so
// its occupancy grows with n; past the cache knee each additional sink is
// much more expensive (working-set spill), producing the cliff the paper
// observes at 8 sinks.
func MultiSinkPerSinkThroughput(sys System, n, payload int, tb Testbed) timebase.Rate {
	if n < 1 {
		n = 1
	}
	rc := DefaultRuntimeCosts()
	p := Build(sys)
	burst := 1
	if sys.Batching() {
		burst = DefaultBurst
	}
	extra := rc.MultiSinkExtra(n)
	var worst time.Duration
	for _, st := range p.Stages {
		d := st.Occupancy(payload, burst, tb)
		if st.Name == "runtime-rx" {
			d += tb.Scale(ScaleRuntime, extra)
		}
		if d > worst {
			worst = d
		}
	}
	if worst <= 0 {
		return 0
	}
	return timebase.Goodput(payload, worst)
}

// MultiSinkExtra returns the extra per-packet delivery cost the receive
// polling thread pays when fanning a packet out to n sinks (unscaled;
// apply the testbed's runtime factor).
func (rc RuntimeCosts) MultiSinkExtra(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	cached := n - 1
	spilled := 0
	if rc.SinkCacheKnee > 0 && n > rc.SinkCacheKnee {
		cached = rc.SinkCacheKnee - 1
		spilled = n - rc.SinkCacheKnee
	}
	ns := float64(cached)*rc.PerExtraSinkNs + float64(spilled)*rc.PerExtraSinkSpillNs
	return time.Duration(ns)
}
