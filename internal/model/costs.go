package model

import "time"

// Category classifies where a cost shows up in the Fig. 6 latency
// breakdown (send / network / receive / data processing).
type Category int

// Breakdown categories, matching the paper's Fig. 6 legend.
const (
	CatSend Category = iota + 1
	CatNetwork
	CatRecv
	CatProcessing
)

// String names the category as in the Fig. 6 legend.
func (c Category) String() string {
	switch c {
	case CatSend:
		return "send"
	case CatNetwork:
		return "network"
	case CatRecv:
		return "receive"
	case CatProcessing:
		return "data processing"
	default:
		return "unknown"
	}
}

// Component is one additive cost element of a pipeline stage.
//
// Latency charges Fixed + Amort + PerByteNs*payload + LatencyOnly.
// Throughput occupancy charges Fixed + Amort/burst + PerByteNs*payload:
// Amort models per-burst work (doorbells, cache warmup) that opportunistic
// batching amortizes, and LatencyOnly models pure waiting (softirq
// scheduling, poll pickup) that occupies no resource. OccupancyOnly marks
// work that is off the latency critical path but still occupies the core
// (e.g. TX completion reaping).
type Component struct {
	Name          string
	Category      Category
	Class         ScaleClass
	Fixed         time.Duration
	Amort         time.Duration
	PerByteNs     float64
	LatencyOnly   time.Duration
	OccupancyOnly bool
}

// Latency returns the component's contribution to one-packet latency.
func (c Component) Latency(payload int, tb Testbed) time.Duration {
	if c.OccupancyOnly {
		return 0
	}
	d := c.Fixed + c.Amort + time.Duration(c.PerByteNs*float64(payload)) + c.LatencyOnly
	return tb.Scale(c.Class, d)
}

// Occupancy returns the component's per-packet resource occupancy under a
// send/receive burst of the given size.
func (c Component) Occupancy(payload, burst int, tb Testbed) time.Duration {
	if burst < 1 {
		burst = 1
	}
	d := c.Fixed + c.Amort/time.Duration(burst) + time.Duration(c.PerByteNs*float64(payload))
	return tb.Scale(c.Class, d)
}

// TechCosts is the calibrated per-packet cost profile of one datapath
// technology, split into the components a packet traverses. All values are
// for the local testbed baseline; Testbed scaling adapts them to the cloud.
type TechCosts struct {
	Tech Tech

	// Transmit path (application/runtime side).
	TxSyscall Component // kernel crossing on send (kernel & XDP)
	TxStack   Component // kernel protocol processing + copy
	TxDriver  Component // userspace driver / verbs post
	// TxComplete is the TX completion reaping work: off the latency
	// critical path (OccupancyOnly) but it occupies the sending core, and
	// it amortizes under bursts. This is what makes an unbatched sender
	// (Catnip) markedly slower than a batching one (INSANE) in Fig. 8a.
	TxComplete Component
	// NIC hardware.
	NICTx Component
	NICRx Component
	// Receive path.
	RxPoll  Component // driver poll / CQ poll / socket read pickup
	RxStack Component // kernel protocol processing + copy
	RxWait  Component // latency-only queueing (softirq, poll pickup)
}

// txComponents lists the transmit-side components in traversal order.
func (tc TechCosts) txComponents() []Component {
	return []Component{tc.TxSyscall, tc.TxStack, tc.TxDriver, tc.TxComplete}
}

// rxComponents lists the receive-side components in traversal order.
func (tc TechCosts) rxComponents() []Component {
	return []Component{tc.RxWait, tc.RxStack, tc.RxPoll}
}

// NeedsUserStack reports whether the middleware must run its own packet
// processing engine for this technology (DPDK and XDP; the kernel and the
// RDMA NIC handle protocols themselves — §5.3).
func (tc TechCosts) NeedsUserStack() bool {
	return tc.Tech == TechDPDK || tc.Tech == TechXDP
}

// KernelUDP returns the kernel socket cost profile. Calibration: one-way
// non-blocking 64 B ≈ 6.29 µs (RTT 12.58, Fig. 7a); the pipelined stack
// stage (~0.9 µs + copies) bounds throughput. Blocking receive swaps the
// poll pickup wait for a costlier wakeup (RTT 13.34).
func KernelUDP() TechCosts {
	return TechCosts{
		Tech:      TechKernelUDP,
		TxSyscall: Component{Name: "tx-syscall", Category: CatSend, Class: ScaleKernel, Fixed: 450},
		TxStack:   Component{Name: "tx-kstack", Category: CatProcessing, Class: ScaleKernel, Fixed: 900, PerByteNs: 0.25},
		TxDriver:  Component{Name: "tx-kdriver", Category: CatSend, Class: ScaleKernel},
		NICTx:     Component{Name: "nic-tx", Category: CatSend, Class: ScaleNone, Fixed: 150},
		NICRx:     Component{Name: "nic-rx", Category: CatRecv, Class: ScaleNone, Fixed: 150, PerByteNs: 0.012},
		RxPoll:    Component{Name: "rx-syscall", Category: CatRecv, Class: ScaleKernel, Fixed: 450},
		RxStack:   Component{Name: "rx-kstack", Category: CatProcessing, Class: ScaleKernel, Fixed: 900, PerByteNs: 0.25},
		RxWait:    Component{Name: "rx-softirq-wait", Category: CatRecv, Class: ScaleKernel, LatencyOnly: 2800},
	}
}

// kernelBlockingWakeup is the extra latency-only cost of a blocking
// receive (process wakeup) relative to the non-blocking pickup wait that
// is already part of RxWait.
const kernelBlockingWakeup = 380 * time.Nanosecond

// BlockingWakeup returns the extra per-packet latency of blocking receive
// mode on the kernel path ("process wake-ups are costly", §6.2).
func BlockingWakeup() time.Duration { return kernelBlockingWakeup }

// DPDK returns the DPDK cost profile. Calibration: raw DPDK 64 B RTT =
// 3.44 µs locally (Fig. 7a): per direction 100 (driver) + 450 (doorbell) +
// 150+150 (NIC) + 410 (poll) + ~460 wire. The doorbell and most of the
// poll cost amortize under bursts, which is how raw DPDK saturates the
// 100 Gbps NIC (Fig. 8a).
func DPDK() TechCosts {
	return TechCosts{
		Tech:       TechDPDK,
		TxSyscall:  Component{},
		TxStack:    Component{},
		TxDriver:   Component{Name: "tx-pmd", Category: CatSend, Class: ScaleDriver, Fixed: 100, Amort: 450},
		TxComplete: Component{Name: "tx-complete", Category: CatSend, Class: ScaleDriver, Amort: 400, OccupancyOnly: true},
		NICTx:      Component{Name: "nic-tx", Category: CatSend, Class: ScaleNone, Fixed: 150},
		NICRx:      Component{Name: "nic-rx", Category: CatRecv, Class: ScaleNone, Fixed: 150, PerByteNs: 0.058},
		RxPoll:     Component{Name: "rx-pmd-poll", Category: CatRecv, Class: ScaleDriver, Fixed: 110, Amort: 300},
		RxStack:    Component{},
		RxWait:     Component{},
	}
}

// XDP returns the AF_XDP cost profile: zero-copy like DPDK but paying a
// per-packet kernel driver hop (eBPF execution + descriptor forwarding)
// instead of burning a busy-polling core. Not in the paper's measured
// prototype (integration was ongoing); calibrated between kernel UDP and
// DPDK per the AF_XDP literature (~2x DPDK latency).
func XDP() TechCosts {
	return TechCosts{
		Tech:       TechXDP,
		TxSyscall:  Component{Name: "tx-sendto", Category: CatSend, Class: ScaleKernel, Fixed: 250},
		TxStack:    Component{Name: "tx-ebpf", Category: CatProcessing, Class: ScaleKernel, Fixed: 300},
		TxDriver:   Component{Name: "tx-umem", Category: CatSend, Class: ScaleDriver, Fixed: 120, Amort: 180},
		TxComplete: Component{Name: "tx-complete", Category: CatSend, Class: ScaleDriver, Amort: 280, OccupancyOnly: true},
		NICTx:      Component{Name: "nic-tx", Category: CatSend, Class: ScaleNone, Fixed: 150},
		NICRx:      Component{Name: "nic-rx", Category: CatRecv, Class: ScaleNone, Fixed: 150, PerByteNs: 0.058},
		RxPoll:     Component{Name: "rx-umem-poll", Category: CatRecv, Class: ScaleDriver, Fixed: 140, Amort: 160},
		RxStack:    Component{Name: "rx-ebpf", Category: CatProcessing, Class: ScaleKernel, Fixed: 300},
		RxWait:     Component{Name: "rx-driver-wait", Category: CatRecv, Class: ScaleKernel, LatencyOnly: 450},
	}
}

// RDMA returns the two-sided RDMA (RoCEv2) cost profile: the NIC executes
// the transport in hardware, so host CPU only posts WQEs and polls CQs.
// Best latency of all technologies at near-zero CPU (Table 1, §5.2:
// "RDMA is the best alternative").
func RDMA() TechCosts {
	return TechCosts{
		Tech:       TechRDMA,
		TxSyscall:  Component{},
		TxStack:    Component{},
		TxDriver:   Component{Name: "tx-post-wqe", Category: CatSend, Class: ScaleDriver, Fixed: 100},
		TxComplete: Component{Name: "tx-cq-reap", Category: CatSend, Class: ScaleDriver, Amort: 200, OccupancyOnly: true},
		NICTx:      Component{Name: "nic-tx-transport", Category: CatSend, Class: ScaleNone, Fixed: 350},
		NICRx:      Component{Name: "nic-rx-transport", Category: CatRecv, Class: ScaleNone, Fixed: 350, PerByteNs: 0.058},
		RxPoll:     Component{Name: "rx-cq-poll", Category: CatRecv, Class: ScaleDriver, Fixed: 200},
		RxStack:    Component{},
		RxWait:     Component{},
	}
}

// Costs returns the profile for one technology.
func Costs(t Tech) TechCosts {
	switch t {
	case TechKernelUDP:
		return KernelUDP()
	case TechXDP:
		return XDP()
	case TechDPDK:
		return DPDK()
	case TechRDMA:
		return RDMA()
	default:
		return TechCosts{Tech: t}
	}
}

// RuntimeCosts models the INSANE runtime's own per-packet work: the IPC
// token hop, the packet scheduler, the packet processing engine (only on
// technologies that need a userspace stack) and sink delivery. Calibrated
// so INSANE adds ≈500 ns/packet on the slow path and ≈755 ns/packet on the
// fast path (§6.2), and so the receive polling thread sustains ≈26 Gbps of
// 1 KB messages to a single sink (Fig. 8b).
type RuntimeCosts struct {
	IPCTx      Component // client→runtime token enqueue+dequeue
	Sched      Component // FIFO scheduling decision
	NetstackTx Component // packet processing engine, transmit
	NetstackRx Component // packet processing engine, receive
	Deliver    Component // token insert into the sink's RX ring
	// RTCDeliver is the run-to-completion hop: a latency-class Emit that
	// delivers straight to local sinks on the emitting core, replacing
	// the IPCTx+Sched pair. Cheaper than either alone — no ring crossing,
	// no scheduling decision, just the admission checks.
	RTCDeliver Component
	// RxDMATouchNs is the per-byte receive-side cost (DMA/PCIe share and
	// payload cache touch) charged on the runtime's polling thread.
	RxDMATouchNs float64
	// PerExtraSinkNs is the additional delivery cost per sink beyond the
	// first, while the polling thread's working set stays cache-resident.
	PerExtraSinkNs float64
	// SinkCacheKnee is the sink count past which the working set spills
	// (Fig. 8b shows the knee between 6 and 8 sinks)...
	SinkCacheKnee int
	// PerExtraSinkSpillNs replaces PerExtraSinkNs beyond the knee.
	PerExtraSinkSpillNs float64
}

// DefaultRuntimeCosts returns the calibrated INSANE runtime profile.
func DefaultRuntimeCosts() RuntimeCosts {
	return RuntimeCosts{
		IPCTx:               Component{Name: "ipc-token", Category: CatSend, Class: ScaleRuntime, Fixed: 190},
		Sched:               Component{Name: "scheduler", Category: CatSend, Class: ScaleRuntime, Fixed: 100, Amort: 50},
		NetstackTx:          Component{Name: "netstack-tx", Category: CatProcessing, Class: ScaleRuntime, Fixed: 60, Amort: 50},
		NetstackRx:          Component{Name: "netstack-rx", Category: CatProcessing, Class: ScaleRuntime, Fixed: 50, Amort: 55},
		Deliver:             Component{Name: "sink-deliver", Category: CatRecv, Class: ScaleRuntime, Fixed: 80, Amort: 110},
		RTCDeliver:          Component{Name: "rtc-deliver", Category: CatSend, Class: ScaleRuntime, Fixed: 40},
		RxDMATouchNs:        0.058,
		PerExtraSinkNs:      5.4,
		SinkCacheKnee:       6,
		PerExtraSinkSpillNs: 87,
	}
}

// LibCosts models Demikernel's in-process library overhead: PerSide is
// charged once on the pushing application core and once on the popping one,
// so one packet pays 2x PerSide end to end. Calibrated from Fig. 7a:
// Catnap = native socket + 540 ns/packet, Catnip = raw DPDK + 410 ns/packet.
type LibCosts struct {
	PerSide Component
}

// CatnapLib returns the Demikernel Catnap overhead profile.
func CatnapLib() LibCosts {
	return LibCosts{PerSide: Component{Name: "catnap-lib", Category: CatProcessing, Class: ScaleLib, Fixed: 270}}
}

// CatnipLib returns the Demikernel Catnip overhead profile.
func CatnipLib() LibCosts {
	return LibCosts{PerSide: Component{Name: "catnip-lib", Category: CatProcessing, Class: ScaleLib, Fixed: 205}}
}
