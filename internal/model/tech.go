// Package model defines the technology taxonomy and the calibrated cost
// models of the reproduction.
//
// Real DPDK/RDMA/XDP hardware is not available to a pure-Go build, so each
// datapath plugin charges virtual time according to a per-technology cost
// profile. The constants below are calibrated against the numbers the paper
// reports in §6 (see DESIGN.md "Calibration targets"): e.g. raw DPDK 64 B
// RTT = 3.44 µs on the local testbed, kernel UDP ≈ 12.6 µs, INSANE adding
// ≈500 ns per packet on the slow path and ≈755 ns on the fast path.
//
// Latency is the *sum* of stage costs along the path; throughput is governed
// by the *bottleneck* stage of the pipelined path (each stage runs on its
// own core/resource), with batchable costs amortized over the burst size.
// The calibration test in this package asserts that the composed models hit
// the paper's headline numbers.
package model

// Tech identifies one end-host networking technology (Table 1).
type Tech int

// The supported technologies, ordered roughly by acceleration level.
const (
	TechKernelUDP Tech = iota + 1
	TechXDP
	TechDPDK
	TechRDMA
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case TechKernelUDP:
		return "kernel-udp"
	case TechXDP:
		return "xdp"
	case TechDPDK:
		return "dpdk"
	case TechRDMA:
		return "rdma"
	default:
		return "unknown"
	}
}

// CPUUsage classifies how a technology consumes CPU (Table 1).
type CPUUsage int

// CPU consumption classes from Table 1 of the paper.
const (
	CPUPerPacket CPUUsage = iota + 1 // work proportional to packets
	CPUBusyPoll                      // dedicated spinning cores
	CPUOffloaded                     // hardware offloading
)

// String names the CPU usage class.
func (c CPUUsage) String() string {
	switch c {
	case CPUPerPacket:
		return "per-packet"
	case CPUBusyPoll:
		return "busy polling"
	case CPUOffloaded:
		return "hardware offloading"
	default:
		return "unknown"
	}
}

// TechInfo is the static capability record of a technology — the rows of
// the paper's Table 1.
type TechInfo struct {
	Tech              Tech
	KernelIntegration string   // "in-kernel" or "kernel-bypassing"
	API               string   // native programming interface
	ZeroCopy          bool     // zero-copy transfers supported
	CPU               CPUUsage // CPU consumption class
	DedicatedHW       bool     // requires special hardware (RDMA NIC)
	NeedsUserStack    bool     // middleware must supply L2-L4 processing
}

// Table1 returns the capability matrix of all supported technologies,
// reproducing Table 1 of the paper.
func Table1() []TechInfo {
	return []TechInfo{
		{TechKernelUDP, "in-kernel", "AF_INET socket", false, CPUPerPacket, false, false},
		{TechXDP, "in-kernel", "AF_XDP socket", true, CPUPerPacket, false, true},
		{TechDPDK, "kernel-bypassing", "RTE", true, CPUBusyPoll, false, true},
		{TechRDMA, "kernel-bypassing", "Verbs", true, CPUOffloaded, true, false},
	}
}

// Info returns the capability record for one technology.
func Info(t Tech) TechInfo {
	for _, i := range Table1() {
		if i.Tech == t {
			return i
		}
	}
	return TechInfo{Tech: t}
}
