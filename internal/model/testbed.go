package model

import (
	"time"

	"github.com/insane-mw/insane/internal/timebase"
)

// ScaleClass says which testbed scaling factor applies to a cost component.
// The two testbeds differ in CPU (18-core i9 @3.0 GHz locally vs 32-core
// AMD 7452 @2.35 GHz in the cloud) and the paper observes that the slower
// cloud cores inflate different software layers by different factors
// (Fig. 6/7: the kernel stack slows ~1.6x, the INSANE runtime ~2.5x because
// of its cross-process cache footprint, Demikernel's in-process library
// barely at all).
type ScaleClass int

// Scaling classes for cost components.
const (
	ScaleNone    ScaleClass = iota // hardware (NIC, wire): unaffected by CPU
	ScaleKernel                    // kernel stack and syscall costs
	ScaleDriver                    // userspace driver costs (DPDK PMD etc.)
	ScaleLib                       // library-OS overhead (Demikernel)
	ScaleRuntime                   // INSANE runtime overhead (IPC, sched)
)

// Testbed describes one evaluation environment (Table 2 of the paper).
type Testbed struct {
	Name string
	// Node descriptions, reported by cmd/insane-info (Table 2).
	OS, CPU, RAM, NIC, Switch string

	// LinkRate is the NIC line rate.
	LinkRate timebase.Rate
	// PropDelay is the one-way propagation + PHY delay per link.
	PropDelay time.Duration
	// SwitchLatency is the per-traversal switch latency (0 = direct
	// cable, the local testbed).
	SwitchLatency time.Duration

	// Scale factors per component class (1.0 = local baseline).
	KernelScale  float64
	DriverScale  float64
	LibScale     float64
	RuntimeScale float64
}

// Scale applies the testbed factor for the given class to a duration.
func (tb Testbed) Scale(class ScaleClass, d time.Duration) time.Duration {
	f := 1.0
	switch class {
	case ScaleKernel:
		f = tb.KernelScale
	case ScaleDriver:
		f = tb.DriverScale
	case ScaleLib:
		f = tb.LibScale
	case ScaleRuntime:
		f = tb.RuntimeScale
	}
	if f == 0 {
		f = 1.0
	}
	return time.Duration(float64(d) * f)
}

// WireLatency returns the one-way wire time for a frame of frameLen bytes:
// serialization (plus preamble/IFG), propagation, and switch traversal.
func (tb Testbed) WireLatency(frameLen int) time.Duration {
	const wireOverhead = 24 // preamble+SFD+FCS+IFG, mirrors netstack.WireOverhead
	return tb.LinkRate.Transmission(frameLen+wireOverhead) + tb.PropDelay + tb.SwitchLatency
}

// WireOccupancy returns how long a frame occupies the wire (the throughput
// bottleneck contribution of the link): serialization only, since
// propagation and switch latency are pipelined away.
func (tb Testbed) WireOccupancy(frameLen int) time.Duration {
	const wireOverhead = 24
	return tb.LinkRate.Transmission(frameLen + wireOverhead)
}

// Local reproduces the paper's local testbed: two nodes back to back on
// 100 Gbps Mellanox ConnectX-6 Dx, Intel i9-10980XE @ 3.00 GHz.
var Local = Testbed{
	Name:          "local",
	OS:            "Ubuntu 22.04",
	CPU:           "18-core Intel i9-10980XE @ 3.00GHz",
	RAM:           "64GB",
	NIC:           "Mellanox DX-6 100Gbps",
	Switch:        "(direct cable)",
	LinkRate:      100 * timebase.Gbps,
	PropDelay:     450 * time.Nanosecond,
	SwitchLatency: 0,
	KernelScale:   1.0,
	DriverScale:   1.0,
	LibScale:      1.0,
	RuntimeScale:  1.0,
}

// Cloud reproduces the CloudLab testbed: two nodes through a Dell
// Z9264F-ON switch (the paper measured 1.7 µs per traversal), AMD EPYC
// 7452 @ 2.35 GHz. The per-class CPU factors reproduce the paper's
// observation that the slower processor penalizes the cross-process INSANE
// runtime (~2.5x) much more than Demikernel's in-process library, with the
// kernel stack in between (~1.6x).
var Cloud = Testbed{
	Name:          "cloud",
	OS:            "Ubuntu 22.04",
	CPU:           "32-core AMD 7452 @ 2.35GHz",
	RAM:           "128GB",
	NIC:           "Mellanox DX-5 100Gbps",
	Switch:        "Dell Z9264F-ON",
	LinkRate:      100 * timebase.Gbps,
	PropDelay:     450 * time.Nanosecond,
	SwitchLatency: 1700 * time.Nanosecond,
	KernelScale:   1.6,
	DriverScale:   1.0,
	LibScale:      1.1,
	RuntimeScale:  2.55,
}

// Testbeds lists the two evaluation environments (Table 2).
func Testbeds() []Testbed { return []Testbed{Local, Cloud} }
