// Package rdma implements the RDMA (RoCEv2, two-sided) datapath plugin:
// the preferred accelerated path when available (§5.2: "RDMA is the best
// alternative, because it offers the best network performance for a low
// resource usage").
//
// The plugin models a verbs-style interface: applications (here, the
// runtime) post send work requests to a queue pair and poll a completion
// queue; the NIC engine executes the transport in hardware, so host CPU
// costs are tiny and protocol processing is charged to the NIC, not to a
// core. Receives consume pre-posted receive buffers — if none are posted
// the packet is dropped (receiver-not-ready), which the runtime avoids by
// keeping the receive queue replenished.
//
// INSANE deliberately supports only two-sided SEND/RECV (§3): one-sided
// READ/WRITE is out of scope for the middleware's common-denominator API.
//
// The wire format is UDP encapsulation, which is faithful: RoCEv2 *is*
// an InfiniBand transport carried in UDP/IP packets.
package rdma

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// DefaultRecvDepth is the default receive queue depth: how many receive
// buffers the endpoint keeps posted. Matches common verbs defaults.
const DefaultRecvDepth = 256

// Plugin creates RDMA endpoints on hosts with an RDMA-capable NIC.
type Plugin struct {
	// RecvDepth overrides DefaultRecvDepth when positive (tests use a
	// tiny depth to exercise receiver-not-ready drops).
	RecvDepth int
}

var _ datapath.Plugin = Plugin{}

// Tech returns model.TechRDMA.
func (Plugin) Tech() model.Tech { return model.TechRDMA }

// Info returns the Table 1 record for RDMA.
func (Plugin) Info() model.TechInfo { return model.Info(model.TechRDMA) }

// Available reports whether the host has an RDMA NIC (Table 1: dedicated
// hardware required).
func (Plugin) Available(caps datapath.Caps) bool { return caps.RDMA }

// Open registers the runtime memory with the NIC and creates a queue pair
// endpoint.
func (p Plugin) Open(cfg datapath.Config) (datapath.Endpoint, error) {
	if cfg.Port == nil || cfg.Resolver == nil || cfg.Alloc == nil {
		return nil, fmt.Errorf("rdma: incomplete config")
	}
	depth := p.RecvDepth
	if depth <= 0 {
		depth = DefaultRecvDepth
	}
	e := &endpoint{
		cfg:     cfg,
		costs:   model.RDMA(),
		depth:   depth,
		scratch: make([]byte, netstack.HeadersLen+netstack.MaxPayload(cfg.Port.MTU())),
	}
	e.credits.Store(int64(depth))
	return e, nil
}

// endpoint models one queue pair bound to a hardware NIC engine.
type endpoint struct {
	cfg     datapath.Config
	costs   model.TechCosts
	depth   int
	scratch []byte
	closed  atomic.Bool

	// credits counts posted receive buffers (the receive queue).
	credits atomic.Int64

	txPackets, rxPackets atomic.Uint64
	txBytes, rxBytes     atomic.Uint64
	drops                atomic.Uint64
	rnrDrops             atomic.Uint64
	emptyPolls           atomic.Uint64
}

// Tech returns model.TechRDMA.
func (e *endpoint) Tech() model.Tech { return model.TechRDMA }

// MTU returns the maximum message payload per work request.
func (e *endpoint) MTU() int { return netstack.MaxPayload(e.cfg.Port.MTU()) }

// Stats returns a snapshot of the endpoint counters; receiver-not-ready
// drops count into Drops.
func (e *endpoint) Stats() datapath.Stats {
	return datapath.Stats{
		TxPackets:  e.txPackets.Load(),
		RxPackets:  e.rxPackets.Load(),
		TxBytes:    e.txBytes.Load(),
		RxBytes:    e.rxBytes.Load(),
		Drops:      e.drops.Load() + e.rnrDrops.Load(),
		EmptyPolls: e.emptyPolls.Load(),
	}
}

// RNRDrops reports how many inbound messages were dropped because no
// receive buffer was posted.
func (e *endpoint) RNRDrops() uint64 { return e.rnrDrops.Load() }

// Send posts send work requests for a burst of messages. The host only
// writes the WQE; transport processing is charged to the NIC engine.
func (e *endpoint) Send(pkts []*datapath.Packet, dst netstack.Endpoint) (int, error) {
	if e.closed.Load() {
		return 0, datapath.ErrClosed
	}
	dstMAC, err := e.cfg.Resolver.Resolve(dst.IP)
	if err != nil {
		return 0, fmt.Errorf("rdma: %w", err)
	}
	burst := len(pkts)
	for i, p := range pkts {
		if p.Framed {
			return i, fmt.Errorf("rdma: framed packet; the NIC implements the transport")
		}
		if p.Len > e.MTU() {
			return i, fmt.Errorf("%w: %d > %d", datapath.ErrTooLarge, p.Len, e.MTU())
		}
		tb := e.cfg.Testbed
		p.Charge(e.costs.TxDriver, p.Len, burst, tb)   // post WQE
		p.Charge(e.costs.TxComplete, p.Len, burst, tb) // CQ reaping (occupancy only)
		p.Charge(e.costs.NICTx, p.Len, burst, tb)      // hardware transport

		// The NIC reads the message directly from the registered memory
		// region (zero-copy from the slot) and encapsulates it (RoCEv2).
		copy(e.scratch[netstack.HeadersLen:], p.Bytes())
		meta := netstack.FrameMeta{
			SrcMAC: e.cfg.Port.MAC(),
			DstMAC: dstMAC,
			Src:    e.cfg.Local,
			Dst:    dst,
		}
		n, err := netstack.EncodeUDP(e.scratch, meta, p.Len, e.cfg.Port.MTU())
		if err != nil {
			return i, fmt.Errorf("rdma: %w", err)
		}
		if err := e.cfg.Port.Transmit(e.scratch[:n], p.VTime, p.Breakdown); err != nil {
			return i, fmt.Errorf("rdma: %w", err)
		}
		e.txPackets.Add(1)
		e.txBytes.Add(uint64(p.Len))
	}
	return len(pkts), nil
}

// Poll reaps receive completions: each completed message sits in a
// pre-posted receive buffer (a memory-manager slot). Consumed receive
// credits are re-posted afterwards, as the runtime's receive loop would.
func (e *endpoint) Poll(max int) ([]*datapath.Packet, error) {
	if e.closed.Load() {
		return nil, datapath.ErrClosed
	}
	var out []*datapath.Packet
	for len(out) < max {
		frame, ok := e.cfg.Port.TryRecv()
		if !ok {
			break
		}
		meta, payload, err := netstack.DecodeUDP(frame.Data)
		if err != nil || meta.Dst.Port != e.cfg.Local.Port {
			e.drops.Add(1)
			continue
		}
		// A receive buffer must have been posted (two-sided semantics:
		// "the receiver [must] actively listen to incoming data", §3).
		if e.credits.Add(-1) < 0 {
			e.credits.Add(1)
			e.rnrDrops.Add(1)
			continue
		}
		slot, buf, err := e.cfg.Alloc(datapath.Headroom + len(payload))
		if err != nil {
			e.credits.Add(1)
			e.drops.Add(1)
			continue
		}
		copy(buf[datapath.Headroom:], payload) // NIC DMA into the posted buffer
		out = append(out, &datapath.Packet{
			Slot:      slot,
			Buf:       buf,
			Off:       datapath.Headroom,
			Len:       len(payload),
			Src:       meta.Src,
			Dst:       meta.Dst,
			VTime:     frame.VTime,
			Breakdown: frame.Breakdown,
		})
	}
	burst := len(out)
	for _, p := range out {
		tb := e.cfg.Testbed
		p.Charge(e.costs.NICRx, p.Len, burst, tb)  // hardware transport
		p.Charge(e.costs.RxPoll, p.Len, burst, tb) // CQ poll
		e.rxPackets.Add(1)
		e.rxBytes.Add(uint64(p.Len))
		// Re-post the consumed receive buffer.
		e.credits.Add(1)
	}
	if burst == 0 {
		e.emptyPolls.Add(1)
	}
	return out, nil
}

// WaitRecv returns immediately: completion queues are polled.
func (e *endpoint) WaitRecv(time.Duration) error {
	if e.closed.Load() {
		return datapath.ErrClosed
	}
	return nil
}

// Close destroys the queue pair.
func (e *endpoint) Close() error {
	e.closed.Store(true)
	return nil
}
