// Package kernel implements the kernel UDP/IP datapath plugin: the
// baseline "slow path" of INSANE (§5.2: "if no acceleration is required,
// the kernel-based UDP protocol is always used").
//
// The plugin stands in for AF_INET sockets over the OS stack. Frames are
// built and parsed by this plugin itself — modeling the kernel's protocol
// processing — and every packet is charged the calibrated syscall, stack
// and copy costs of the kernel path (internal/model). Payloads are copied
// at both ends because the kernel path is not zero-copy (Table 1).
package kernel

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// Plugin creates kernel UDP endpoints. Kernel networking is available on
// every host.
type Plugin struct{}

var _ datapath.Plugin = Plugin{}

// Tech returns model.TechKernelUDP.
func (Plugin) Tech() model.Tech { return model.TechKernelUDP }

// Info returns the Table 1 record for kernel UDP.
func (Plugin) Info() model.TechInfo { return model.Info(model.TechKernelUDP) }

// Available always reports true: every host has a kernel stack.
func (Plugin) Available(datapath.Caps) bool { return true }

// Open creates a socket-like endpoint bound to cfg.Local.
func (Plugin) Open(cfg datapath.Config) (datapath.Endpoint, error) {
	if cfg.Port == nil || cfg.Resolver == nil || cfg.Alloc == nil {
		return nil, fmt.Errorf("kernel: incomplete config")
	}
	return &endpoint{
		cfg:     cfg,
		costs:   model.KernelUDP(),
		scratch: make([]byte, netstack.HeadersLen+netstack.MaxPayload(cfg.Port.MTU())),
	}, nil
}

// endpoint is a simulated AF_INET UDP socket. It is not safe for
// concurrent use: the runtime serializes access from one polling thread,
// matching how the C prototype binds each datapath to a thread (§5.3).
type endpoint struct {
	cfg     datapath.Config
	costs   model.TechCosts
	scratch []byte
	// pending holds packets already consumed by WaitRecv, returned by
	// the next Poll.
	pending []*datapath.Packet
	closed  atomic.Bool
	stats   statCounters
}

type statCounters struct {
	txPackets, rxPackets atomic.Uint64
	txBytes, rxBytes     atomic.Uint64
	drops                atomic.Uint64
	emptyPolls           atomic.Uint64
}

func (s *statCounters) snapshot() datapath.Stats {
	return datapath.Stats{
		TxPackets:  s.txPackets.Load(),
		RxPackets:  s.rxPackets.Load(),
		TxBytes:    s.txBytes.Load(),
		RxBytes:    s.rxBytes.Load(),
		Drops:      s.drops.Load(),
		EmptyPolls: s.emptyPolls.Load(),
	}
}

// Tech returns model.TechKernelUDP.
func (e *endpoint) Tech() model.Tech { return model.TechKernelUDP }

// MTU returns the maximum message the socket accepts (no fragmentation).
func (e *endpoint) MTU() int { return netstack.MaxPayload(e.cfg.Port.MTU()) }

// Stats returns a snapshot of the endpoint counters.
func (e *endpoint) Stats() datapath.Stats { return e.stats.snapshot() }

// Send copies each message through the simulated kernel stack and
// transmits it. Kernel sockets have no burst interface, so costs never
// amortize (burst = 1).
func (e *endpoint) Send(pkts []*datapath.Packet, dst netstack.Endpoint) (int, error) {
	if e.closed.Load() {
		return 0, datapath.ErrClosed
	}
	dstMAC, err := e.cfg.Resolver.Resolve(dst.IP)
	if err != nil {
		return 0, fmt.Errorf("kernel: %w", err)
	}
	for i, p := range pkts {
		if p.Framed {
			return i, fmt.Errorf("kernel: framed packet on kernel path")
		}
		if p.Len > e.MTU() {
			return i, fmt.Errorf("%w: %d > %d", datapath.ErrTooLarge, p.Len, e.MTU())
		}
		tb := e.cfg.Testbed
		p.Charge(e.costs.TxSyscall, p.Len, 1, tb)
		p.Charge(e.costs.TxStack, p.Len, 1, tb) // includes the user→kernel copy
		p.Charge(e.costs.NICTx, p.Len, 1, tb)

		// The "kernel" builds the frame in its own buffer: a real copy,
		// as on the non-zero-copy kernel path.
		copy(e.scratch[netstack.HeadersLen:], p.Bytes())
		meta := netstack.FrameMeta{
			SrcMAC: e.cfg.Port.MAC(),
			DstMAC: dstMAC,
			Src:    e.cfg.Local,
			Dst:    dst,
		}
		n, err := netstack.EncodeUDP(e.scratch, meta, p.Len, e.cfg.Port.MTU())
		if err != nil {
			return i, fmt.Errorf("kernel: %w", err)
		}
		if err := e.cfg.Port.Transmit(e.scratch[:n], p.VTime, p.Breakdown); err != nil {
			return i, fmt.Errorf("kernel: %w", err)
		}
		e.stats.txPackets.Add(1)
		e.stats.txBytes.Add(uint64(p.Len))
	}
	return len(pkts), nil
}

// Poll receives up to max datagrams without blocking.
func (e *endpoint) Poll(max int) ([]*datapath.Packet, error) {
	if e.closed.Load() {
		return nil, datapath.ErrClosed
	}
	var out []*datapath.Packet
	for len(e.pending) > 0 && len(out) < max {
		out = append(out, e.pending[0])
		e.pending = e.pending[1:]
	}
	for len(out) < max {
		frame, ok := e.cfg.Port.TryRecv()
		if !ok {
			break
		}
		if p := e.receive(frame); p != nil {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		e.stats.emptyPolls.Add(1)
	}
	return out, nil
}

// WaitRecv blocks until a datagram is queued (blocking-socket semantics).
// The received frame is processed on the next Poll: the port queue keeps
// it; here we only wait for availability.
func (e *endpoint) WaitRecv(timeout time.Duration) error {
	if e.closed.Load() {
		return datapath.ErrClosed
	}
	if !e.cfg.Blocking {
		return nil
	}
	frame, err := e.cfg.Port.Recv(timeout)
	if err != nil {
		return err
	}
	// Hand the frame straight through the receive path and keep it for
	// the next Poll.
	if p := e.receive(frame); p != nil {
		e.pending = append(e.pending, p)
	}
	return nil
}

// receive runs one frame through the simulated kernel receive path.
func (e *endpoint) receive(frame fabric.Frame) *datapath.Packet {
	meta, payload, err := netstack.DecodeUDP(frame.Data)
	if err != nil || meta.Dst.Port != e.cfg.Local.Port {
		e.stats.drops.Add(1)
		return nil
	}
	slot, buf, err := e.cfg.Alloc(datapath.Headroom + len(payload))
	if err != nil {
		e.stats.drops.Add(1)
		return nil
	}
	copy(buf[datapath.Headroom:], payload) // kernel→user copy
	p := &datapath.Packet{
		Slot:      slot,
		Buf:       buf,
		Off:       datapath.Headroom,
		Len:       len(payload),
		Src:       meta.Src,
		Dst:       meta.Dst,
		VTime:     frame.VTime,
		Breakdown: frame.Breakdown,
	}
	tb := e.cfg.Testbed
	p.Charge(e.costs.NICRx, p.Len, 1, tb)
	p.Charge(e.costs.RxWait, p.Len, 1, tb)
	p.Charge(e.costs.RxStack, p.Len, 1, tb) // kernel→user copy cost
	p.Charge(e.costs.RxPoll, p.Len, 1, tb)
	if e.cfg.Blocking {
		p.Charge(model.Component{
			Name: "rx-wakeup", Category: model.CatRecv,
			Class: model.ScaleKernel, LatencyOnly: model.BlockingWakeup(),
		}, p.Len, 1, tb)
	}
	e.stats.rxPackets.Add(1)
	e.stats.rxBytes.Add(uint64(p.Len))
	return p
}

// Close marks the endpoint closed.
func (e *endpoint) Close() error {
	e.closed.Store(true)
	return nil
}
